// Weighted fairness: reproduce the scenario of the paper's Table II.
// Ten stations carry weights 1,1,1,2,2,2,3,3,3,3; wTOP-CSMA must give
// every station throughput proportional to its weight — without the AP
// ever learning the weights — while the total stays at the system
// optimum.
//
// Station t applies Lemma 1 locally: p_t = w·p/(1 + (w−1)·p), where p is
// the single control variable the AP tunes and broadcasts.
package main

import (
	"fmt"
	"time"

	"repro/wlan"
)

func main() {
	weights := []float64{1, 1, 1, 2, 2, 2, 3, 3, 3, 3}
	const duration = 90 * time.Second

	res, err := wlan.Run(wlan.Config{
		Topology: wlan.Connected(len(weights)),
		Scheme:   wlan.WTOPCSMA,
		Weights:  weights,
		Duration: duration,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("node  weight  throughput (Mbps)  normalized (Mbps/weight)")
	total := 0.0
	for i, st := range res.Stations {
		total += st.Throughput
		fmt.Printf("%-4d  %-6.0f  %-17.5f  %.5f\n",
			i+1, weights[i], st.Throughput/1e6, st.Throughput/weights[i]/1e6)
	}
	fmt.Printf("\ntotal throughput    %.4f Mbps\n", total/1e6)
	fmt.Printf("weighted Jain index %.4f (1.0 = perfectly proportional)\n", res.WeightedJainIndex())
	fmt.Println("\nThe normalized column should be (nearly) constant: each unit of")
	fmt.Println("weight buys the same throughput, as in the paper's Table II.")
}
