// Hidden nodes: the paper's headline scenario. Stations scattered in a
// 16 m disc around the AP can be mutually out of carrier-sense range
// (sensing radius 24 m), so their backoff clocks free-run over each
// other's transmissions and frames collide at the AP.
//
// Model-based schemes (IdleSense) regulate a statistic whose optimal
// value silently changed, and collapse. The paper's model-free schemes
// keep climbing the measured throughput gradient; the exponential-
// backoff TORA-CSMA typically ends up on top — the paper's argument for
// keeping exponential backoff.
package main

import (
	"fmt"
	"time"

	"repro/wlan"
)

func main() {
	const (
		n        = 30
		seed     = 2024
		duration = 90 * time.Second
	)
	tp := wlan.HiddenDisc(n, 16, seed)
	fmt.Printf("Topology: %d stations in a 16 m disc, %d hidden pairs.\n\n",
		n, len(tp.HiddenPairs()))

	fmt.Println("scheme      converged Mbps  collisions  idle slots/tx")
	for _, scheme := range []wlan.Scheme{wlan.DCF, wlan.IdleSense, wlan.WTOPCSMA, wlan.TORACSMA} {
		res, err := wlan.Run(wlan.Config{
			Topology: tp,
			Scheme:   scheme,
			Duration: duration,
			Seed:     seed,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s  %-14.2f  %-9.1f%%  %.2f\n",
			scheme,
			res.ConvergedThroughput(duration/2)/1e6,
			100*res.CollisionRate(),
			res.APIdleSlots)
	}

	fmt.Println("\nCompare the same four schemes on a fully connected layout:")
	conn := wlan.Connected(n)
	for _, scheme := range []wlan.Scheme{wlan.DCF, wlan.IdleSense, wlan.WTOPCSMA, wlan.TORACSMA} {
		res, err := wlan.Run(wlan.Config{
			Topology: conn,
			Scheme:   scheme,
			Duration: duration,
			Seed:     seed,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s  %6.2f Mbps\n", scheme, res.ConvergedThroughput(duration/2)/1e6)
	}
	fmt.Println("\nNote how IdleSense swaps from best-in-class to collapsed once")
	fmt.Println("hidden pairs appear, while the stochastic-approximation schemes")
	fmt.Println("hold up — and TORA-CSMA's exponential backoff wins among them.")
}
