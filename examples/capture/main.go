// Capture: record every frame of a simulation to a JSONL trace, then
// analyse it offline — per-station delivery, retries, and short-term
// fairness (Jain's index over sliding windows of successful frames).
//
// Short-term fairness is where backoff families differ visibly: the
// standard DCF's post-success reset lets winners win again (bursty
// service), while p-persistent CSMA's per-slot independence spreads
// successes evenly even over short horizons.
package main

import (
	"bytes"
	"fmt"
	"time"

	"repro/wlan"
)

func main() {
	const n = 10
	for _, scheme := range []wlan.Scheme{wlan.DCF, wlan.WTOPCSMA} {
		var buf bytes.Buffer
		w := wlan.NewTraceWriter(&buf)
		res, err := wlan.Run(wlan.Config{
			Topology: wlan.Connected(n),
			Scheme:   scheme,
			Duration: 30 * time.Second,
			Trace:    w,
		})
		if err != nil {
			panic(err)
		}
		if err := w.Close(); err != nil {
			panic(err)
		}

		sum, err := wlan.AnalyzeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			panic(err)
		}
		_, stf, err := wlan.ShortTermFairness(bytes.NewReader(buf.Bytes()), 3*n)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s  %6.2f Mbps  %7d frames captured  long-term Jain %.4f  short-term Jain %.4f\n",
			scheme, res.ThroughputMbps(), sum.Frames, res.JainIndex(), stf)
	}
	fmt.Println("\nBoth schemes are long-term fair; the short-term index separates")
	fmt.Println("them. Inspect a capture yourself:")
	fmt.Println("  go run ./cmd/wlansim -scheme 802.11 -nodes 10 -trace cap.jsonl")
	fmt.Println("  go run ./cmd/tracestat cap.jsonl")
}
