// Dynamic nodes: the scenario of the paper's Figs. 8–11. Stations
// arrive and depart in steps (10 → 30 → 15 active) while wTOP-CSMA keeps
// re-tuning the attempt probability online. Because the optimal p scales
// as Θ(1/N) (Eq. 8), each arrival wave shifts the target; the Kiefer–
// Wolfowitz iteration tracks it from throughput measurements alone.
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/wlan"
)

func main() {
	const (
		maxN  = 30
		phase = 60 * time.Second
	)
	s, err := wlan.New(wlan.Config{
		Topology: wlan.Connected(maxN),
		Scheme:   wlan.WTOPCSMA,
		Duration: 3 * phase,
	})
	if err != nil {
		panic(err)
	}
	// Start with 10 stations (SetActiveAt at t=0 applies immediately
	// when the run starts), grow to 30, shrink to 15.
	must(s.SetActiveAt(0, 10))
	must(s.SetActiveAt(phase, 30))
	must(s.SetActiveAt(2*phase, 15))

	res := s.Run(3 * phase)

	fmt.Println("time(s)  active  Mbps    p (broadcast)   bar")
	stride := res.ThroughputSeries.Len() / 36
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < res.ThroughputSeries.Len(); i += stride {
		mbps := res.ThroughputSeries.Values[i] / 1e6
		p := 0.0
		if i < res.ControlSeries.Len() {
			p = res.ControlSeries.Values[i]
		}
		bar := strings.Repeat("#", int(mbps))
		fmt.Printf("%-7.0f  %-6.0f  %-6.2f  %-13.5f  %s\n",
			res.ThroughputSeries.Times[i].Seconds(),
			res.ActiveSeries.Values[i],
			mbps, p, bar)
	}

	fmt.Println("\nEach arrival wave dents throughput briefly; the controller then")
	fmt.Println("walks p back to the new optimum. The analytic targets are:")
	for _, n := range []int{10, 30, 15} {
		fmt.Printf("  N=%-3d  p* = %.4f  S* = %.2f Mbps\n",
			n, wlan.OptimalAttemptProbability(n), wlan.MaxThroughputMbps(n))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
