// Quickstart: simulate a saturated WLAN of 20 stations under the
// standard 802.11 DCF and under wTOP-CSMA (the paper's Kiefer–Wolfowitz
// tuned p-persistent CSMA), and compare both against the analytic
// optimum.
package main

import (
	"fmt"
	"time"

	"repro/wlan"
)

func main() {
	const n = 20
	const duration = 60 * time.Second

	fmt.Printf("Saturated uplink, %d stations, fully connected, %v simulated.\n\n", n, duration)

	for _, scheme := range []wlan.Scheme{wlan.DCF, wlan.WTOPCSMA} {
		res, err := wlan.Run(wlan.Config{
			Topology: wlan.Connected(n),
			Scheme:   scheme,
			Duration: duration,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s  %6.2f Mbps converged   collisions %4.1f%%   Jain %.4f\n",
			scheme,
			res.ConvergedThroughput(duration/2)/1e6,
			100*res.CollisionRate(),
			res.JainIndex())
	}

	fmt.Printf("\nAnalytic optimum (Theorem 2): S(p*) = %.2f Mbps at p* = %.4f\n",
		wlan.MaxThroughputMbps(n), wlan.OptimalAttemptProbability(n))
	fmt.Printf("Bianchi prediction for standard 802.11: %.2f Mbps\n", wlan.DCFThroughputMbps(n))
	fmt.Println("\nwTOP-CSMA reaches the optimum without knowing N, the PHY timing,")
	fmt.Println("or the topology — it climbs the measured throughput gradient.")
}
