// Command benchreport runs the repository's benchmark suite at short
// scale and renders the results as a stable JSON document — the unit of
// the performance trajectory. Each PR that claims a speedup commits the
// measured numbers (BENCH_PR4.json is the first point), and CI re-runs
// the same suite and diffs against the committed baseline, warning on
// regressions beyond a tolerance without failing the build (shared
// runners are noisy; the committed history is the authority).
//
// Usage:
//
//	go run ./cmd/benchreport -out BENCH_PR4.json
//	go run ./cmd/benchreport -compare BENCH_PR4.json -tolerance 0.2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// defaultBench selects the committed-trajectory suite: kernel
// micro-benchmarks, both engines, and the sweep pipeline — fast enough
// to run in CI, covering every layer the perf work touches.
const defaultBench = "BenchmarkEventQueue$|BenchmarkEventQueueArg$|BenchmarkEventCancel$" +
	"|BenchmarkGeometricDraw|BenchmarkFrameCodec|BenchmarkRNGSeed" +
	"|BenchmarkEventSimThroughput$|BenchmarkAblationEngines|BenchmarkSlotSimBianchi" +
	"|BenchmarkSimulatorReuse|BenchmarkScenarioReplications$" +
	"|BenchmarkSweepSmoke$|BenchmarkSweep120$"

// Measurement is one benchmark's parsed result.
type Measurement struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the on-disk document.
type Report struct {
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	NumCPU     int                    `json:"num_cpu"`
	BenchTime  string                 `json:"benchtime"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report to this file")
		compare   = flag.String("compare", "", "compare a fresh run against this committed baseline (warn-only)")
		benchRe   = flag.String("bench", defaultBench, "benchmark selection regexp passed to go test")
		benchTime = flag.String("benchtime", "20x", "benchtime passed to go test")
		pkgs      = flag.String("pkgs", "./...", "package pattern to benchmark")
		tolerance = flag.Float64("tolerance", 0.20, "relative ns/op slowdown that triggers a warning in -compare mode")
		strict    = flag.Bool("strict", false, "exit non-zero when -compare finds regressions")
	)
	flag.Parse()
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchreport: need -out and/or -compare")
		os.Exit(2)
	}

	rep, err := run(*benchRe, *benchTime, *pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}
	if *compare != "" {
		base, err := load(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if regressions := diff(base, rep, *tolerance); regressions > 0 && *strict {
			os.Exit(1)
		}
	}
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// run executes the benchmarks and parses the textual output.
func run(benchRe, benchTime, pkgs string) (*Report, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe,
		"-benchmem", "-benchtime", benchTime, "-count", "1", pkgs}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		BenchTime:  benchTime,
		Benchmarks: map[string]Measurement{},
	}
	sc := bufio.NewScanner(outPipe)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseLine(line)
		if !ok {
			continue
		}
		if _, dup := rep.Benchmarks[name]; dup {
			return nil, fmt.Errorf("duplicate benchmark name %q across packages", name)
		}
		rep.Benchmarks[name] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks matched %q", benchRe)
	}
	return rep, nil
}

// parseLine decodes one "BenchmarkName-8  N  v unit  v unit ..." line.
func parseLine(line string) (string, Measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Measurement{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Measurement{}, false
	}
	m := Measurement{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			if m.Metrics == nil {
				m.Metrics = map[string]float64{}
			}
			m.Metrics[unit] = v
		}
	}
	if m.NsPerOp == 0 {
		return "", Measurement{}, false
	}
	return name, m, true
}

// diff prints a benchstat-style comparison and returns the number of
// regressions beyond the tolerance. GitHub Actions renders the
// ::warning:: lines as annotations.
func diff(base, fresh *Report, tolerance float64) int {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Printf("%-50s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range names {
		b := base.Benchmarks[name]
		f, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("::warning::benchmark %s missing from fresh run\n", name)
			regressions++
			continue
		}
		delta := (f.NsPerOp - b.NsPerOp) / b.NsPerOp
		fmt.Printf("%-50s %14.0f %14.0f %+7.1f%%\n", name, b.NsPerOp, f.NsPerOp, 100*delta)
		if delta > tolerance {
			fmt.Printf("::warning::%s regressed %.1f%% (%.0f → %.0f ns/op, tolerance %.0f%%)\n",
				name, 100*delta, b.NsPerOp, f.NsPerOp, 100*tolerance)
			regressions++
		}
	}
	for name := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("%-50s %14s %14.0f %8s\n", name, "(new)", fresh.Benchmarks[name].NsPerOp, "")
		}
	}
	if regressions == 0 {
		fmt.Println("no regressions beyond tolerance")
	}
	return regressions
}
