// Command benchreport runs the repository's benchmark suite at short
// scale and renders the results as a stable JSON document — the unit of
// the performance trajectory. Each PR that claims a speedup commits the
// measured numbers (BENCH_PR4.json was the first point, BENCH_PR7.json
// the current one), and CI re-runs the same suite and diffs against the
// committed baseline across ns/op, allocs/op, B/op and higher-is-better
// custom metrics like Mbps.
//
// With -strict the comparison is a gate: regressions beyond the
// tolerance fail the run — unless the baseline was recorded on a
// different environment (Go version, platform or CPU count), in which
// case every report is stamped with its fingerprint and the comparison
// is downgraded to informational, because a foreign baseline says
// nothing about this machine's trajectory.
//
// Usage:
//
//	go run ./cmd/benchreport -out BENCH_PR7.json
//	go run ./cmd/benchreport -compare BENCH_PR7.json -tolerance 0.2 -strict
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// defaultBench selects the committed-trajectory suite: kernel
// micro-benchmarks, both engines, and the sweep pipeline — fast enough
// to run in CI, covering every layer the perf work touches.
const defaultBench = "BenchmarkEventQueue$|BenchmarkEventQueueArg$|BenchmarkEventCancel$" +
	"|BenchmarkGeometricDraw|BenchmarkFrameCodec|BenchmarkRNGSeed" +
	"|BenchmarkEventSimThroughput$|BenchmarkAblationEngines|BenchmarkSlotSimBianchi" +
	"|BenchmarkSimulatorReuse|BenchmarkScenarioReplications$" +
	"|BenchmarkSweepSmoke$|BenchmarkSweep120$" +
	"|BenchmarkTopologyBuild|BenchmarkSlotSimScaleTier$"

// Measurement is one benchmark's parsed result.
type Measurement struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the on-disk document.
type Report struct {
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	NumCPU     int                    `json:"num_cpu"`
	BenchTime  string                 `json:"benchtime"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report to this file")
		compare   = flag.String("compare", "", "compare a fresh run against this committed baseline")
		benchRe   = flag.String("bench", defaultBench, "benchmark selection regexp passed to go test")
		benchTime = flag.String("benchtime", "25ms", "benchtime passed to go test (time-based, so ns-scale ops get enough iterations to be stable)")
		count     = flag.Int("count", 3, "benchmark repetitions; repeated measurements fold to the fastest run (noise reduction for the gate)")
		retries   = flag.Int("retries", 2, "in -compare mode, re-measure regressed benchmarks up to this many times before believing them (a load spike fakes a regression; a real one survives re-measurement)")
		pkgs      = flag.String("pkgs", "./...", "package pattern to benchmark")
		tolerance = flag.Float64("tolerance", 0.20, "relative regression (ns/op, allocs/op, B/op slowdown, or Mbps drop) that counts in -compare mode")
		strict    = flag.Bool("strict", false, "exit non-zero when -compare finds regressions on a matching environment (env mismatch stays informational)")
	)
	flag.Parse()
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchreport: need -out and/or -compare")
		os.Exit(2)
	}

	rep, err := run(*benchRe, *benchTime, *pkgs, *count)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}
	if *compare != "" {
		base, err := load(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		mismatch := envMismatch(base, rep)
		regressions, flagged := diff(io.Discard, base, rep, *tolerance)
		// Shared runners fake regressions with load spikes. Before
		// believing one, re-measure just the flagged benchmark families
		// and fold the fastest samples in: a genuine regression is still
		// there on every re-run, a spike is not. Cross-environment
		// comparisons skip this — they never gate anyway.
		for retry := 0; retry < *retries && regressions > 0 && mismatch == ""; retry++ {
			sel := retryRegexp(flagged)
			if sel == "" {
				break
			}
			fmt.Printf("::notice::re-measuring %d regressed benchmark(s) to rule out runner noise (retry %d/%d)\n",
				len(flagged), retry+1, *retries)
			again, err := run(sel, *benchTime, *pkgs, *count)
			if err != nil {
				// A flagged benchmark that no longer exists matches
				// nothing; let the final diff report it as missing.
				fmt.Printf("::notice::retry skipped: %v\n", err)
				break
			}
			for name, m := range again.Benchmarks {
				record(rep, name, m)
			}
			regressions, flagged = diff(io.Discard, base, rep, *tolerance)
		}
		regressions, _ = diff(os.Stdout, base, rep, *tolerance)
		if mismatch != "" {
			// A baseline from a different machine says nothing about
			// this machine's trajectory: report, but never gate.
			fmt.Printf("::notice::environment mismatch (%s) — comparison downgraded to informational\n", mismatch)
		} else if regressions > 0 && *strict {
			os.Exit(1)
		}
	}
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}

// run executes the benchmarks and parses the textual output.
func run(benchRe, benchTime, pkgs string, count int) (*Report, error) {
	if count < 1 {
		count = 1
	}
	args := []string{"test", "-run", "^$", "-bench", benchRe,
		"-benchmem", "-benchtime", benchTime, "-count", strconv.Itoa(count), pkgs}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		BenchTime:  benchTime,
		Benchmarks: map[string]Measurement{},
	}
	sc := bufio.NewScanner(outPipe)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseLine(line)
		if !ok {
			continue
		}
		record(rep, name, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks matched %q", benchRe)
	}
	return rep, nil
}

// record stores a measurement, folding repeated runs of one benchmark
// (from -count > 1) to the fastest: the minimum is the least-noisy
// estimate of a deterministic workload's cost, which is what makes the
// strict gate usable on nanosecond-scale benchmarks — a single short
// sample of a 40 ns op can jitter ±30% run to run.
func record(rep *Report, name string, m Measurement) {
	if prev, ok := rep.Benchmarks[name]; ok && prev.NsPerOp <= m.NsPerOp {
		return
	}
	rep.Benchmarks[name] = m
}

// parseLine decodes one "BenchmarkName-8  N  v unit  v unit ..." line.
func parseLine(line string) (string, Measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Measurement{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Measurement{}, false
	}
	m := Measurement{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			if m.Metrics == nil {
				m.Metrics = map[string]float64{}
			}
			m.Metrics[unit] = v
		}
	}
	if m.NsPerOp == 0 {
		return "", Measurement{}, false
	}
	return name, m, true
}

// Fingerprint renders the environment a report was measured on. Two
// reports are only gate-comparable when their fingerprints match:
// different Go versions, platforms or CPU counts shift every number
// for reasons that are not regressions.
func (r *Report) Fingerprint() string {
	return fmt.Sprintf("%s %s/%s cpu=%d", r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
}

// envMismatch describes why two reports' environments differ, or
// returns "" when they match.
func envMismatch(base, fresh *Report) string {
	if base.GoVersion == fresh.GoVersion && base.GOOS == fresh.GOOS &&
		base.GOARCH == fresh.GOARCH && base.NumCPU == fresh.NumCPU {
		return ""
	}
	return fmt.Sprintf("baseline %s vs current %s", base.Fingerprint(), fresh.Fingerprint())
}

// higherBetter lists custom benchmark metrics where larger is better;
// dropping beyond the tolerance is a regression. Custom metrics not
// listed here are informational only (e.g. events/run is a workload
// size, not a speed).
var higherBetter = map[string]bool{
	"Mbps":       true,
	"events/sec": true,
}

// Absolute noise floors for the memory columns: a delta at or below
// the floor is never a regression, whatever the relative change, so a
// 3 B/op → 4 B/op jitter cannot read as +33%. Deltas from a zero
// baseline beyond the floor ARE regressions — the zero-alloc contract
// is exactly the thing worth gating.
const (
	allocsFloor = 2.0
	bytesFloor  = 64.0
)

// diff prints a benchstat-style comparison of fresh against base and
// returns the number of regressions beyond the tolerance, across
// ns/op, allocs/op, B/op and the higher-is-better custom metrics,
// together with the names of the regressed benchmarks (for targeted
// re-measurement). GitHub Actions renders the ::warning:: lines as
// annotations.
func diff(w io.Writer, base, fresh *Report, tolerance float64) (int, []string) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	flagged := map[string]bool{}
	regress := func(name, format string, args ...any) {
		fmt.Fprintf(w, "::warning::"+format+"\n", args...)
		regressions++
		flagged[name] = true
	}
	fmt.Fprintf(w, "comparing against %s (current: %s)\n", base.Fingerprint(), fresh.Fingerprint())
	fmt.Fprintf(w, "%-50s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range names {
		b := base.Benchmarks[name]
		f, ok := fresh.Benchmarks[name]
		if !ok {
			regress(name, "benchmark %s missing from fresh run", name)
			continue
		}
		// ns/op. A zero or negative baseline is a corrupt entry (the
		// parser never emits one): flag it instead of dividing by it.
		if b.NsPerOp <= 0 {
			fmt.Fprintf(w, "::notice::%s has baseline ns/op %v — skipping time comparison\n", name, b.NsPerOp)
			fmt.Fprintf(w, "%-50s %14s %14.0f %8s\n", name, "(bad)", f.NsPerOp, "")
		} else {
			delta := (f.NsPerOp - b.NsPerOp) / b.NsPerOp
			fmt.Fprintf(w, "%-50s %14.0f %14.0f %+7.1f%%\n", name, b.NsPerOp, f.NsPerOp, 100*delta)
			if delta > tolerance {
				regress(name, "%s regressed %.1f%% (%.0f → %.0f ns/op, tolerance %.0f%%)",
					name, 100*delta, b.NsPerOp, f.NsPerOp, 100*tolerance)
			}
		}
		// Memory: same tolerance, plus an absolute noise floor.
		for _, col := range []struct {
			unit        string
			base, fresh float64
			floor       float64
		}{
			{"allocs/op", b.AllocsPerOp, f.AllocsPerOp, allocsFloor},
			{"B/op", b.BytesPerOp, f.BytesPerOp, bytesFloor},
		} {
			grown := col.fresh - col.base
			if grown <= col.floor {
				continue
			}
			if col.base == 0 {
				regress(name, "%s now allocates: 0 → %.0f %s", name, col.fresh, col.unit)
				continue
			}
			if delta := grown / col.base; delta > tolerance {
				regress(name, "%s regressed %.1f%% (%.0f → %.0f %s, tolerance %.0f%%)",
					name, 100*delta, col.base, col.fresh, col.unit, 100*tolerance)
			}
		}
		// Custom metrics: a known higher-is-better metric dropping
		// beyond the tolerance regresses; anything else is context.
		metricNames := make([]string, 0, len(b.Metrics))
		for mn := range b.Metrics {
			metricNames = append(metricNames, mn)
		}
		sort.Strings(metricNames)
		for _, mn := range metricNames {
			bv := b.Metrics[mn]
			if !higherBetter[mn] || bv <= 0 {
				continue
			}
			fv, ok := f.Metrics[mn]
			if !ok {
				fmt.Fprintf(w, "::notice::%s metric %s missing from fresh run\n", name, mn)
				continue
			}
			if drop := (bv - fv) / bv; drop > tolerance {
				regress(name, "%s %s dropped %.1f%% (%v → %v, tolerance %.0f%%)",
					name, mn, 100*drop, bv, fv, 100*tolerance)
			}
		}
	}
	newNames := make([]string, 0)
	for name := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		fmt.Fprintf(w, "%-50s %14s %14.0f %8s\n", name, "(new)", fresh.Benchmarks[name].NsPerOp, "")
	}
	if regressions == 0 {
		fmt.Fprintln(w, "no regressions beyond tolerance")
	}
	flaggedNames := make([]string, 0, len(flagged))
	for name := range flagged {
		flaggedNames = append(flaggedNames, name)
	}
	sort.Strings(flaggedNames)
	return regressions, flaggedNames
}

// retryRegexp builds a go test -bench selector for the top-level
// families of the flagged benchmarks (sub-benchmarks like
// "BenchmarkX/case" re-run the whole X family, which only folds in
// more samples). Empty when there is nothing re-runnable.
func retryRegexp(names []string) string {
	tops := map[string]bool{}
	for _, name := range names {
		if i := strings.Index(name, "/"); i > 0 {
			name = name[:i]
		}
		tops[name] = true
	}
	parts := make([]string, 0, len(tops))
	for name := range tops {
		parts = append(parts, regexp.QuoteMeta(name))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return ""
	}
	return "^(" + strings.Join(parts, "|") + ")$"
}
