package main

import (
	"strings"
	"testing"
)

// report builds a minimal Report on a fixed environment.
func report(benchmarks map[string]Measurement) *Report {
	return &Report{
		GoVersion:  "go1.24.0",
		GOOS:       "linux",
		GOARCH:     "amd64",
		NumCPU:     4,
		BenchTime:  "20x",
		Benchmarks: benchmarks,
	}
}

// TestDiff is the table over the comparison semantics: what gates,
// what stays informational, and what the output must mention. A
// baseline artificially better than the fresh run (the "artificially
// regressed baseline" of the CI gate) must produce regressions > 0 —
// that is the property the strict CI job relies on.
func TestDiff(t *testing.T) {
	cases := []struct {
		name        string
		base, fresh map[string]Measurement
		tolerance   float64
		regressions int
		wantOutput  []string
	}{
		{
			name:        "clean pass within tolerance",
			base:        map[string]Measurement{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1000}},
			fresh:       map[string]Measurement{"BenchmarkA": {NsPerOp: 110, AllocsPerOp: 10, BytesPerOp: 1000}},
			tolerance:   0.2,
			regressions: 0,
			wantOutput:  []string{"no regressions beyond tolerance"},
		},
		{
			name:        "ns/op regression beyond tolerance",
			base:        map[string]Measurement{"BenchmarkA": {NsPerOp: 100}},
			fresh:       map[string]Measurement{"BenchmarkA": {NsPerOp: 150}},
			tolerance:   0.2,
			regressions: 1,
			wantOutput:  []string{"::warning::BenchmarkA regressed 50.0%"},
		},
		{
			name: "zero baseline ns/op is flagged, not divided by",
			base: map[string]Measurement{"BenchmarkA": {NsPerOp: 0}},
			// Old code produced +Inf% here and, with a NaN, no warning
			// at all; now it is an explicit notice and never a panic or
			// a bogus regression.
			fresh:       map[string]Measurement{"BenchmarkA": {NsPerOp: 150}},
			tolerance:   0.2,
			regressions: 0,
			wantOutput:  []string{"::notice::BenchmarkA has baseline ns/op 0"},
		},
		{
			name:        "benchmark missing from fresh run regresses",
			base:        map[string]Measurement{"BenchmarkGone": {NsPerOp: 100}},
			fresh:       map[string]Measurement{},
			tolerance:   0.2,
			regressions: 1,
			wantOutput:  []string{"::warning::benchmark BenchmarkGone missing from fresh run"},
		},
		{
			name:        "new benchmark is reported, never a regression",
			base:        map[string]Measurement{},
			fresh:       map[string]Measurement{"BenchmarkNew": {NsPerOp: 100}},
			tolerance:   0.2,
			regressions: 0,
			wantOutput:  []string{"BenchmarkNew", "(new)"},
		},
		{
			name:        "allocs/op regression beyond tolerance",
			base:        map[string]Measurement{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 100}},
			fresh:       map[string]Measurement{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 200}},
			tolerance:   0.2,
			regressions: 1,
			wantOutput:  []string{"::warning::BenchmarkA regressed 100.0% (100 → 200 allocs/op"},
		},
		{
			name:        "zero-alloc baseline growing allocations regresses",
			base:        map[string]Measurement{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0}},
			fresh:       map[string]Measurement{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 50}},
			tolerance:   0.2,
			regressions: 1,
			wantOutput:  []string{"::warning::BenchmarkA now allocates: 0 → 50 allocs/op"},
		},
		{
			name:        "tiny absolute memory jitter stays under the noise floor",
			base:        map[string]Measurement{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 3}},
			fresh:       map[string]Measurement{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 2, BytesPerOp: 4}},
			tolerance:   0.2,
			regressions: 0,
			wantOutput:  []string{"no regressions beyond tolerance"},
		},
		{
			name:        "B/op regression beyond tolerance",
			base:        map[string]Measurement{"BenchmarkA": {NsPerOp: 100, BytesPerOp: 1000}},
			fresh:       map[string]Measurement{"BenchmarkA": {NsPerOp: 100, BytesPerOp: 2000}},
			tolerance:   0.2,
			regressions: 1,
			wantOutput:  []string{"::warning::BenchmarkA regressed 100.0% (1000 → 2000 B/op"},
		},
		{
			name: "higher-is-better metric dropping regresses",
			base: map[string]Measurement{"BenchmarkA": {NsPerOp: 100,
				Metrics: map[string]float64{"Mbps": 24.0}}},
			fresh: map[string]Measurement{"BenchmarkA": {NsPerOp: 100,
				Metrics: map[string]float64{"Mbps": 12.0}}},
			tolerance:   0.2,
			regressions: 1,
			wantOutput:  []string{"::warning::BenchmarkA Mbps dropped 50.0% (24 → 12"},
		},
		{
			name: "higher-is-better metric rising is fine",
			base: map[string]Measurement{"BenchmarkA": {NsPerOp: 100,
				Metrics: map[string]float64{"Mbps": 12.0}}},
			fresh: map[string]Measurement{"BenchmarkA": {NsPerOp: 100,
				Metrics: map[string]float64{"Mbps": 24.0}}},
			tolerance:   0.2,
			regressions: 0,
			wantOutput:  []string{"no regressions beyond tolerance"},
		},
		{
			name: "unlisted custom metric never gates",
			base: map[string]Measurement{"BenchmarkA": {NsPerOp: 100,
				Metrics: map[string]float64{"events/run": 40000}}},
			fresh: map[string]Measurement{"BenchmarkA": {NsPerOp: 100,
				Metrics: map[string]float64{"events/run": 10}}},
			tolerance:   0.2,
			regressions: 0,
			wantOutput:  []string{"no regressions beyond tolerance"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			got, flagged := diff(&sb, report(tc.base), report(tc.fresh), tc.tolerance)
			if got != tc.regressions {
				t.Errorf("diff returned %d regressions, want %d\noutput:\n%s", got, tc.regressions, sb.String())
			}
			if got > 0 && len(flagged) == 0 {
				t.Errorf("diff found regressions but flagged no benchmark names")
			}
			for _, want := range tc.wantOutput {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("output missing %q:\n%s", want, sb.String())
				}
			}
		})
	}
}

// TestEnvMismatch pins the fingerprint comparison that downgrades a
// cross-environment diff to informational.
func TestEnvMismatch(t *testing.T) {
	same := report(nil)
	if got := envMismatch(same, report(nil)); got != "" {
		t.Errorf("matching environments reported mismatch %q", got)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"go version", func(r *Report) { r.GoVersion = "go1.23.0" }},
		{"goos", func(r *Report) { r.GOOS = "darwin" }},
		{"goarch", func(r *Report) { r.GOARCH = "arm64" }},
		{"num_cpu", func(r *Report) { r.NumCPU = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			other := report(nil)
			tc.mutate(other)
			got := envMismatch(same, other)
			if got == "" {
				t.Fatalf("%s mismatch not detected", tc.name)
			}
			if !strings.Contains(got, same.Fingerprint()) || !strings.Contains(got, other.Fingerprint()) {
				t.Errorf("mismatch description %q missing a fingerprint", got)
			}
		})
	}
}

// Repeated measurements (from -count > 1) must fold to the fastest
// run, whole-measurement: the memory columns travel with the winning
// time sample.
func TestRecordKeepsFastest(t *testing.T) {
	rep := report(map[string]Measurement{})
	record(rep, "BenchmarkA", Measurement{NsPerOp: 50, AllocsPerOp: 7})
	record(rep, "BenchmarkA", Measurement{NsPerOp: 36, AllocsPerOp: 5})
	record(rep, "BenchmarkA", Measurement{NsPerOp: 47, AllocsPerOp: 6})
	got := rep.Benchmarks["BenchmarkA"]
	if got.NsPerOp != 36 || got.AllocsPerOp != 5 {
		t.Fatalf("folded measurement = %+v, want the 36 ns/op sample", got)
	}
}

// retryRegexp drives the targeted re-measurement of flagged
// benchmarks: sub-benchmarks fold to their top-level family, names are
// anchored and deduplicated.
func TestRetryRegexp(t *testing.T) {
	got := retryRegexp([]string{
		"BenchmarkAblationEngines/eventsim",
		"BenchmarkAblationEngines/slotsim",
		"BenchmarkEventCancel",
	})
	want := "^(BenchmarkAblationEngines|BenchmarkEventCancel)$"
	if got != want {
		t.Fatalf("retryRegexp = %q, want %q", got, want)
	}
	if got := retryRegexp(nil); got != "" {
		t.Fatalf("retryRegexp(nil) = %q, want empty", got)
	}
}

// The parser guarantee diff relies on: fresh measurements never carry
// a zero ns/op (such lines are dropped at parse time).
func TestParseLineRejectsZeroNs(t *testing.T) {
	if name, _, ok := parseLine("BenchmarkBad-8   20   0 ns/op"); ok {
		t.Fatalf("parseLine accepted zero ns/op as %q", name)
	}
	name, m, ok := parseLine("BenchmarkGood-8   20   153.5 ns/op   24 B/op   1 allocs/op   24.33 Mbps")
	if !ok || name != "BenchmarkGood" {
		t.Fatalf("parseLine failed: ok=%v name=%q", ok, name)
	}
	if m.NsPerOp != 153.5 || m.BytesPerOp != 24 || m.AllocsPerOp != 1 || m.Metrics["Mbps"] != 24.33 {
		t.Fatalf("parseLine decoded %+v", m)
	}
}
