// Command wlansim runs WLAN simulations and prints summaries: either a
// single ad-hoc run assembled from flags, or a declarative scenario file
// executed through the parallel scenario runner. Every mode is a thin
// shell over the public wlan.Lab facade, and every mode cancels cleanly
// on SIGINT/SIGTERM (in-flight replications finish, the rest drain).
//
// Examples:
//
//	wlansim -scenario examples/hiddennodes.json
//	wlansim -scenario examples/unsaturated.json -quick -parallel 4
//	wlansim -scenario examples/capture.json -summary-json out.json
//	wlansim -sweep examples/sweeps/smoke.json -cache ~/.cache/wlansim-sweep -sweep-out out.jsonl
//	wlansim -sweep grid.json -shard 0/4 -cache /shared/cache -sweep-out shard0.jsonl
//	wlansim -merge merged.jsonl shard0.jsonl shard1.jsonl shard2.jsonl shard3.jsonl
//	wlansim -scheme wTOP-CSMA -nodes 40 -duration 60s
//	wlansim -scheme 802.11 -nodes 20 -disc 16 -seed 7 -series
//	wlansim -scheme wTOP-CSMA -nodes 10 -weights 1,1,1,2,2,2,3,3,3,3
//	wlansim -scheme TORA-CSMA -nodes 40 -duration 120s -fast
//	wlansim -scheme 802.11 -nodes 40 -engine slotsim -fast
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/wlan"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "run a declarative scenario file (JSON suite or single spec) instead of flag-based config")
		quick        = flag.Bool("quick", false, "with -scenario: scale the suite for fast runs (3s simulated, ≤2 seeds) — the scale CI pins with golden summaries")
		parallel     = flag.Int("parallel", 0, "with -scenario/-sweep: replication worker count (0 = GOMAXPROCS); the aggregate is bit-identical for any value")
		summaryJSON  = flag.String("summary-json", "", "with -scenario: also write the aggregate summaries as canonical JSON to this file")
	)
	var (
		sweepPath = flag.String("sweep", "", "run a declarative sweep grid file (base scenario × axes) and stream one JSONL row per point")
		sweepOut  = flag.String("sweep-out", "", "with -sweep: write the JSONL rows to this file (default stdout)")
		shardSpec = flag.String("shard", "", "with -sweep: run only shard i/N of the expanded grid (deterministic partition; merged shard outputs are byte-identical to an unsharded run)")
		cacheDir  = flag.String("cache", "", "with -sweep: content-addressed result cache directory; completed (spec, engine) points are served without re-simulating")
		mergeOut  = flag.String("merge", "", "merge shard JSONL files (the remaining arguments) into this file, restoring unsharded byte-identical order")
	)
	var (
		schemeName = flag.String("scheme", "802.11", "channel access scheme: 802.11, IdleSense, wTOP-CSMA, TORA-CSMA")
		engine     = flag.String("engine", "eventsim", "simulation engine: eventsim (continuous-time, hidden-node capable) or slotsim (slot-synchronous, connected-only, fast)")
		nodes      = flag.Int("nodes", 20, "number of stations")
		disc       = flag.Float64("disc", 0, "place stations uniformly in a disc of this radius in metres (0 = fully connected circle)")
		duration   = flag.Duration("duration", 30*time.Second, "simulated run time")
		seed       = flag.Int64("seed", 1, "random seed")
		weights    = flag.String("weights", "", "comma-separated per-station weights (wTOP-CSMA only)")
		series     = flag.Bool("series", false, "print the windowed throughput/control time series")
		perNode    = flag.Bool("per-node", false, "print per-station throughput")
		rtscts     = flag.Bool("rtscts", false, "enable the RTS/CTS exchange")
		errRate    = flag.Float64("error-rate", 0, "i.i.d. data frame error rate in [0,1)")
		traceOut   = flag.String("trace", "", "write a JSONL frame capture to this file")
		fast       = flag.Bool("fast", false, "engine-speed mode: print wall-clock time and events/sec alongside the summary")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the context: replications in flight finish,
	// everything else drains, and the process exits with a clean error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *mergeOut != "" {
		runMerge(*mergeOut, flag.Args())
		return
	}

	lab := wlan.NewLab(wlan.WithParallelism(*parallel))
	defer lab.Close()

	if *sweepPath != "" {
		runSweep(ctx, lab, *sweepPath, *sweepOut, *shardSpec, *cacheDir)
		return
	}
	if *scenarioPath != "" {
		runScenario(ctx, lab, *scenarioPath, *quick, *summaryJSON)
		return
	}

	var tp *wlan.Topology
	if *disc > 0 {
		tp = wlan.HiddenDisc(*nodes, *disc, *seed)
	} else {
		tp = wlan.Connected(*nodes)
	}

	cfg := wlan.Config{
		Topology:       tp,
		Engine:         wlan.Engine(*engine),
		Scheme:         wlan.Scheme(*schemeName),
		Duration:       *duration,
		Seed:           *seed,
		RTSCTS:         *rtscts,
		FrameErrorRate: *errRate,
	}
	var traceWriter *wlan.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		traceWriter = wlan.NewTraceWriter(f)
		cfg.Trace = traceWriter
	}
	if *weights != "" {
		for _, tok := range strings.Split(*weights, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatalf("bad weight %q: %v", tok, err)
			}
			cfg.Weights = append(cfg.Weights, w)
		}
	}

	start := time.Now()
	res, err := lab.Run(ctx, cfg)
	wall := time.Since(start)
	if err != nil {
		fatalf("%v", err)
	}
	if traceWriter != nil {
		if err := traceWriter.Close(); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Printf("trace       %d frames -> %s\n", traceWriter.Count(), *traceOut)
	}

	fmt.Printf("scheme      %s\n", *schemeName)
	fmt.Printf("stations    %d (hidden pairs: %d)\n", tp.N(), len(tp.HiddenPairs()))
	fmt.Printf("duration    %v simulated\n", *duration)
	fmt.Printf("throughput  %.3f Mbps (converged %.3f Mbps)\n",
		res.ThroughputMbps(), res.ConvergedThroughput(cfg.Duration/2)/1e6)
	fmt.Printf("successes   %d\n", res.Successes)
	fmt.Printf("collisions  %d (%.1f%%)\n", res.Collisions, 100*res.CollisionRate())
	fmt.Printf("idle slots  %.2f per transmission\n", res.APIdleSlots)
	fmt.Printf("fairness    Jain %.4f (weighted %.4f)\n", res.JainIndex(), res.WeightedJainIndex())
	fmt.Printf("events      %d\n", res.EventsFired)
	if *fast {
		fmt.Printf("wall        %v\n", wall.Round(time.Microsecond))
		fmt.Printf("events/sec  %.0f\n", float64(res.EventsFired)/wall.Seconds())
		fmt.Printf("speedup     %.0fx real time\n", duration.Seconds()/wall.Seconds())
	}

	if *perNode {
		fmt.Println("\nstation  weight  Mbps      successes  failures")
		for i, st := range res.Stations {
			fmt.Printf("%-7d  %-6.1f  %-8.4f  %-9d  %d\n",
				i, st.Weight, st.Throughput/1e6, st.Successes, st.Failures)
		}
	}
	if *series {
		fmt.Println("\ntime(s)  Mbps     control")
		for i, at := range res.ThroughputSeries.Times {
			ctl := ""
			if i < res.ControlSeries.Len() {
				ctl = fmt.Sprintf("%.5f", res.ControlSeries.Values[i])
			}
			fmt.Printf("%-7.2f  %-7.3f  %s\n", at.Seconds(), res.ThroughputSeries.Values[i]/1e6, ctl)
		}
	}
}

// runSweep loads a sweep grid, executes (its shard of) the expanded
// cross-product through the Lab's cached sweep path and streams one
// JSONL row per point. The final stats line goes to stdout — CI greps
// its "N simulated" figure to prove cache hits — unless the rows
// themselves stream to stdout, in which case stats go to stderr.
func runSweep(ctx context.Context, lab *wlan.Lab, path, outPath, shardSpec, cacheDir string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	g, err := wlan.DecodeSweep(data)
	if err != nil {
		fatalf("%v", err)
	}
	var opts []wlan.SweepOption
	if shardSpec != "" {
		sh, err := wlan.ParseShard(shardSpec)
		if err != nil {
			fatalf("%v", err)
		}
		opts = append(opts, wlan.WithShard(sh.Index, sh.Count))
	}
	if cacheDir != "" {
		opts = append(opts, wlan.WithSweepCache(cacheDir))
	}
	out := os.Stdout
	statsOut := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("%v", err)
		}
		out = f
	} else {
		statsOut = os.Stderr
	}
	name := g.Name
	if name == "" {
		name = path
	}
	start := time.Now()
	st, err := lab.SweepStream(ctx, g, out, opts...)
	if err != nil {
		if out != os.Stdout {
			out.Close()
		}
		fatalf("sweep %s: %v", name, err)
	}
	if out != os.Stdout {
		if err := out.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Fprintf(statsOut, "sweep %s: %s in %v\n", name, st, time.Since(start).Round(time.Millisecond))
}

// runMerge combines shard JSONL outputs into the byte-identical
// unsharded stream.
func runMerge(outPath string, shardPaths []string) {
	if len(shardPaths) == 0 {
		fatalf("-merge needs shard files as arguments")
	}
	var readers []*os.File
	defer func() {
		for _, f := range readers {
			f.Close()
		}
	}()
	var inputs []io.Reader
	for _, p := range shardPaths {
		f, err := os.Open(p)
		if err != nil {
			fatalf("%v", err)
		}
		readers = append(readers, f)
		inputs = append(inputs, f)
	}
	out, err := os.Create(outPath)
	if err != nil {
		fatalf("%v", err)
	}
	n, err := wlan.MergeSweeps(out, inputs...)
	if err != nil {
		out.Close()
		fatalf("%v", err)
	}
	if err := out.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("merged %d points from %d shard(s) -> %s\n", n, len(shardPaths), outPath)
}

// runScenario loads a scenario file, executes every scenario through the
// Lab's parallel runner and prints one summary line each.
func runScenario(ctx context.Context, lab *wlan.Lab, path string, quick bool, summaryPath string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	suite, err := wlan.DecodeScenarios(data)
	if err != nil {
		fatalf("%v", err)
	}
	if quick {
		suite = suite.Quick()
	}
	name := suite.Name
	if name == "" {
		name = path
	}
	scale := "full scale"
	if quick {
		scale = "quick scale"
	}
	fmt.Printf("suite %s: %d scenario(s), %s\n", name, len(suite.Scenarios), scale)
	start := time.Now()
	sums, err := lab.RunSuite(ctx, suite)
	if err != nil {
		fatalf("%v", err)
	}
	for _, s := range sums {
		fmt.Println(s)
	}
	var events uint64
	for _, s := range sums {
		events += s.Events
	}
	wall := time.Since(start)
	fmt.Printf("wall %v  events %d  events/sec %.0f\n",
		wall.Round(time.Millisecond), events, float64(events)/wall.Seconds())
	if summaryPath != "" {
		out, err := wlan.MarshalSummaries(sums)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(summaryPath, out, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("summaries -> %s\n", summaryPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wlansim: "+format+"\n", args...)
	os.Exit(1)
}
