// Command wlansim runs WLAN simulations and prints summaries: either a
// single ad-hoc run assembled from flags, or a declarative scenario file
// executed through the parallel scenario runner. Every mode is a thin
// shell over the public wlan.Lab facade, and every mode cancels cleanly
// on SIGINT/SIGTERM (in-flight replications finish, the rest drain).
//
// Examples:
//
//	wlansim -scenario examples/hiddennodes.json
//	wlansim -scenario examples/unsaturated.json -quick -parallel 4
//	wlansim -scenario examples/capture.json -summary-json out.json
//	wlansim -sweep examples/sweeps/smoke.json -cache ~/.cache/wlansim-sweep -sweep-out out.jsonl
//	wlansim -sweep grid.json -shard 0/4 -cache /shared/cache -sweep-out shard0.jsonl
//	wlansim -merge merged.jsonl shard0.jsonl shard1.jsonl shard2.jsonl shard3.jsonl
//	wlansim -sweep grid.json -sweep-out out.jsonl -metrics-addr :9090 -progress
//	wlansim -scheme wTOP-CSMA -nodes 40 -duration 60s
//	wlansim -scheme 802.11 -nodes 20 -disc 16 -seed 7 -series
//	wlansim -scheme wTOP-CSMA -nodes 10 -weights 1,1,1,2,2,2,3,3,3,3
//	wlansim -scheme TORA-CSMA -nodes 40 -duration 120s -fast
//	wlansim -scheme 802.11 -nodes 40 -engine slotsim -fast
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/wlan"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "run a declarative scenario file (JSON suite or single spec) instead of flag-based config")
		quick        = flag.Bool("quick", false, "with -scenario: scale the suite for fast runs (3s simulated, ≤2 seeds) — the scale CI pins with golden summaries")
		parallel     = flag.Int("parallel", 0, "with -scenario/-sweep: replication worker count (0 = GOMAXPROCS); the aggregate is bit-identical for any value")
		summaryJSON  = flag.String("summary-json", "", "with -scenario: also write the aggregate summaries as canonical JSON to this file")
	)
	var (
		sweepPath = flag.String("sweep", "", "run a declarative sweep grid file (base scenario × axes) and stream one JSONL row per point")
		sweepOut  = flag.String("sweep-out", "", "with -sweep: write the JSONL rows to this file (default stdout), plus a <file>.meta.json run stamp")
		shardSpec = flag.String("shard", "", "with -sweep: run only shard i/N of the expanded grid (deterministic partition; merged shard outputs are byte-identical to an unsharded run)")
		cacheDir  = flag.String("cache", "", "with -sweep: content-addressed result cache directory; completed (spec, engine) points are served without re-simulating")
		mergeOut  = flag.String("merge", "", "merge shard JSONL files (the remaining arguments) into this file, restoring unsharded byte-identical order")
	)
	var (
		metricsAddr = flag.String("metrics-addr", "", "with -scenario/-sweep: serve live Prometheus metrics on this address at /metrics (e.g. :9090)")
		progress    = flag.Bool("progress", false, "with -scenario/-sweep: print a once-per-second progress line to stderr")
	)
	var (
		schemeName = flag.String("scheme", "802.11", "channel access scheme: 802.11, IdleSense, wTOP-CSMA, TORA-CSMA")
		engine     = flag.String("engine", "eventsim", "simulation engine: eventsim (continuous-time, hidden-node capable) or slotsim (slot-synchronous, connected-only, fast)")
		nodes      = flag.Int("nodes", 20, "number of stations")
		disc       = flag.Float64("disc", 0, "place stations uniformly in a disc of this radius in metres (0 = fully connected circle)")
		duration   = flag.Duration("duration", 30*time.Second, "simulated run time")
		seed       = flag.Int64("seed", 1, "random seed")
		weights    = flag.String("weights", "", "comma-separated per-station weights (wTOP-CSMA only)")
		series     = flag.Bool("series", false, "print the windowed throughput/control time series")
		perNode    = flag.Bool("per-node", false, "print per-station throughput")
		rtscts     = flag.Bool("rtscts", false, "enable the RTS/CTS exchange")
		errRate    = flag.Float64("error-rate", 0, "i.i.d. data frame error rate in [0,1)")
		traceOut   = flag.String("trace", "", "write a JSONL frame capture to this file")
		fast       = flag.Bool("fast", false, "engine-speed mode: print wall-clock time and events/sec alongside the summary")
	)
	flag.Parse()
	validateFlagModes(*scenarioPath != "", *sweepPath != "", *mergeOut != "")

	// SIGINT/SIGTERM cancel the context: replications in flight finish,
	// everything else drains, and the process exits with a clean error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *mergeOut != "" {
		runMerge(*mergeOut, flag.Args())
		return
	}

	// Observability is opt-in: a metric set exists only when an
	// endpoint or progress ticker will read it, and attaching one
	// never changes results or output bytes.
	var met *wlan.Metrics
	if *metricsAddr != "" || *progress {
		met = wlan.NewMetrics()
	}
	labOpts := []wlan.LabOption{wlan.WithParallelism(*parallel)}
	if met != nil {
		labOpts = append(labOpts, wlan.WithMetrics(met))
	}
	lab := wlan.NewLab(labOpts...)
	defer lab.Close()

	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, met)
	}
	if *progress {
		defer startProgress(met)()
	}

	if *sweepPath != "" {
		runSweep(ctx, lab, *sweepPath, *sweepOut, *shardSpec, *cacheDir)
		return
	}
	if *scenarioPath != "" {
		runScenario(ctx, lab, *scenarioPath, *quick, *summaryJSON)
		return
	}

	var tp *wlan.Topology
	if *disc > 0 {
		tp = wlan.HiddenDisc(*nodes, *disc, *seed)
	} else {
		tp = wlan.Connected(*nodes)
	}

	cfg := wlan.Config{
		Topology:       tp,
		Engine:         wlan.Engine(*engine),
		Scheme:         wlan.Scheme(*schemeName),
		Duration:       *duration,
		Seed:           *seed,
		RTSCTS:         *rtscts,
		FrameErrorRate: *errRate,
	}
	var traceWriter *wlan.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		traceWriter = wlan.NewTraceWriter(f)
		cfg.Trace = traceWriter
	}
	if *weights != "" {
		for _, tok := range strings.Split(*weights, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatalf("bad weight %q: %v", tok, err)
			}
			cfg.Weights = append(cfg.Weights, w)
		}
	}

	start := time.Now()
	res, err := lab.Run(ctx, cfg)
	wall := time.Since(start)
	if err != nil {
		fatalf("%v", err)
	}
	if traceWriter != nil {
		if err := traceWriter.Close(); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Printf("trace       %d frames -> %s\n", traceWriter.Count(), *traceOut)
	}

	fmt.Printf("scheme      %s\n", *schemeName)
	fmt.Printf("stations    %d (hidden pairs: %d)\n", tp.N(), tp.HiddenPairCount())
	fmt.Printf("duration    %v simulated\n", *duration)
	fmt.Printf("throughput  %.3f Mbps (converged %.3f Mbps)\n",
		res.ThroughputMbps(), res.ConvergedThroughput(cfg.Duration/2)/1e6)
	fmt.Printf("successes   %d\n", res.Successes)
	fmt.Printf("collisions  %d (%.1f%%)\n", res.Collisions, 100*res.CollisionRate())
	fmt.Printf("idle slots  %.2f per transmission\n", res.APIdleSlots)
	fmt.Printf("fairness    Jain %.4f (weighted %.4f)\n", res.JainIndex(), res.WeightedJainIndex())
	fmt.Printf("events      %d\n", res.EventsFired)
	if *fast {
		fmt.Printf("wall        %v\n", wall.Round(time.Microsecond))
		fmt.Printf("events/sec  %.0f\n", float64(res.EventsFired)/wall.Seconds())
		fmt.Printf("speedup     %.0fx real time\n", duration.Seconds()/wall.Seconds())
	}

	if *perNode {
		fmt.Println("\nstation  weight  Mbps      successes  failures")
		for i, st := range res.Stations {
			fmt.Printf("%-7d  %-6.1f  %-8.4f  %-9d  %d\n",
				i, st.Weight, st.Throughput/1e6, st.Successes, st.Failures)
		}
	}
	if *series {
		fmt.Println("\ntime(s)  Mbps     control")
		for i, at := range res.ThroughputSeries.Times {
			ctl := ""
			if i < res.ControlSeries.Len() {
				ctl = fmt.Sprintf("%.5f", res.ControlSeries.Values[i])
			}
			fmt.Printf("%-7.2f  %-7.3f  %s\n", at.Seconds(), res.ThroughputSeries.Values[i]/1e6, ctl)
		}
	}
}

// validateFlagModes rejects flag combinations that one mode would
// silently ignore, before anything runs: -scenario, -sweep and -merge
// are mutually exclusive; single-run-only flags (-series, -per-node,
// -trace, -fast, -weights) make no sense alongside any of them; and
// the observability flags need a Lab-routed mode (-scenario/-sweep) to
// have anything to measure. Violations exit 2 with a usage message,
// matching the experiments CLI's up-front validation.
func validateFlagModes(scenarioMode, sweepMode, mergeMode bool) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	modes := 0
	for _, on := range []bool{scenarioMode, sweepMode, mergeMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		usageExit("at most one of -scenario, -sweep and -merge may be given")
	}
	mode := ""
	switch {
	case scenarioMode:
		mode = "-scenario"
	case sweepMode:
		mode = "-sweep"
	case mergeMode:
		mode = "-merge"
	}
	if mode != "" {
		var bad []string
		for _, name := range []string{"series", "per-node", "trace", "fast", "weights"} {
			if set[name] {
				bad = append(bad, "-"+name)
			}
		}
		if len(bad) > 0 {
			usageExit(fmt.Sprintf("single-run-only flag(s) %s would be ignored with %s",
				strings.Join(bad, ", "), mode))
		}
	}
	if (set["metrics-addr"] || set["progress"]) && !scenarioMode && !sweepMode {
		usageExit("-metrics-addr and -progress require -scenario or -sweep")
	}
}

// usageExit reports a flag-validation failure and exits 2, the
// CLI-misuse exit code.
func usageExit(msg string) {
	fmt.Fprintf(os.Stderr, "wlansim: %s\nrun 'wlansim -h' for usage\n", msg)
	os.Exit(2)
}

// serveMetrics starts the /metrics endpoint. Listening failures are
// fatal up front (a typo'd address should not silently run an
// unobservable campaign); serve errors after that only surface on
// stderr, never abort the simulation.
func serveMetrics(addr string, met *wlan.Metrics) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("metrics: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", met.Handler())
	fmt.Fprintf(os.Stderr, "wlansim: serving metrics on http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "wlansim: metrics server: %v\n", err)
		}
	}()
}

// startProgress prints a once-per-second progress line to stderr and
// returns the stop function (which prints one final line, so short
// runs still report).
func startProgress(met *wlan.Metrics) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(os.Stderr, progressLine(met.Snapshot()))
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		fmt.Fprintln(os.Stderr, progressLine(met.Snapshot()))
	}
}

// progressLine renders one human-oriented status line: sweep point
// totals when a sweep is running, the replication fan-out otherwise.
func progressLine(s wlan.MetricsSnapshot) string {
	if s.PointsOwned > 0 {
		return fmt.Sprintf("progress: %d/%d points (%d simulated, %d cached), %d repl in flight, util %.0f%%, %.3g events/s",
			s.PointsSimulated+s.PointsCached, s.PointsOwned, s.PointsSimulated, s.PointsCached,
			s.ReplicationsInFlight, 100*s.Utilization, s.EventsPerSecond)
	}
	return fmt.Sprintf("progress: %d replications done, %d in flight, util %.0f%%, %.3g events/s",
		s.Replications, s.ReplicationsInFlight, 100*s.Utilization, s.EventsPerSecond)
}

// runSweep loads a sweep grid, executes (its shard of) the expanded
// cross-product through the Lab's cached sweep path and streams one
// JSONL row per point. The final stats line goes to stdout — CI greps
// its "N simulated" figure to prove cache hits — unless the rows
// themselves stream to stdout, in which case stats go to stderr.
func runSweep(ctx context.Context, lab *wlan.Lab, path, outPath, shardSpec, cacheDir string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	g, err := wlan.DecodeSweep(data)
	if err != nil {
		fatalf("%v", err)
	}
	var opts []wlan.SweepOption
	var sh wlan.Shard
	if shardSpec != "" {
		sh, err = wlan.ParseShard(shardSpec)
		if err != nil {
			fatalf("%v", err)
		}
		opts = append(opts, wlan.WithShard(sh.Index, sh.Count))
	}
	if cacheDir != "" {
		opts = append(opts, wlan.WithSweepCache(cacheDir))
	}
	out := os.Stdout
	statsOut := os.Stdout
	var tmp *os.File
	if outPath != "" {
		// A stale sidecar from an earlier run must not survive next to
		// rows it does not describe: drop it before simulating, so even
		// an interrupted run leaves no misleading provenance.
		if err := os.Remove(wlan.SweepMetaPath(outPath)); err != nil && !os.IsNotExist(err) {
			fatalf("%v", err)
		}
		// Stream rows into a temp file beside the target and rename it
		// into place only once the sweep completes: a failed or killed
		// run can never leave a truncated JSONL at outPath.
		tmp, err = os.CreateTemp(filepath.Dir(outPath), filepath.Base(outPath)+".tmp-*")
		if err != nil {
			fatalf("%v", err)
		}
		if err := tmp.Chmod(0o644); err != nil {
			fatalf("%v", err)
		}
		out = tmp
	} else {
		statsOut = os.Stderr
	}
	name := g.Name
	if name == "" {
		name = path
	}
	start := time.Now()
	st, err := lab.SweepStream(ctx, g, out, opts...)
	if err != nil {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
		fatalf("sweep %s: %v", name, err)
	}
	if tmp != nil {
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			fatalf("%v", err)
		}
		if err := os.Rename(tmp.Name(), outPath); err != nil {
			os.Remove(tmp.Name())
			fatalf("%v", err)
		}
	}
	// Stamp the run in a sidecar meta file, next to — never inside —
	// the JSONL rows, which must stay byte-identical across runs.
	if outPath != "" {
		meta := wlan.NewSweepMeta(g, sh, st, start, time.Since(start))
		if err := meta.WriteFile(wlan.SweepMetaPath(outPath)); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Fprintf(statsOut, "sweep %s: %s in %v\n", name, st, time.Since(start).Round(time.Millisecond))
}

// runMerge combines shard JSONL outputs into the byte-identical
// unsharded stream.
func runMerge(outPath string, shardPaths []string) {
	if len(shardPaths) == 0 {
		fatalf("-merge needs shard files as arguments")
	}
	var readers []*os.File
	defer func() {
		for _, f := range readers {
			f.Close()
		}
	}()
	var inputs []io.Reader
	for _, p := range shardPaths {
		f, err := os.Open(p)
		if err != nil {
			fatalf("%v", err)
		}
		readers = append(readers, f)
		inputs = append(inputs, f)
	}
	out, err := os.Create(outPath)
	if err != nil {
		fatalf("%v", err)
	}
	n, err := wlan.MergeSweeps(out, inputs...)
	if err != nil {
		out.Close()
		fatalf("%v", err)
	}
	if err := out.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("merged %d points from %d shard(s) -> %s\n", n, len(shardPaths), outPath)
}

// runScenario loads a scenario file, executes every scenario through the
// Lab's parallel runner and prints one summary line each.
func runScenario(ctx context.Context, lab *wlan.Lab, path string, quick bool, summaryPath string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	suite, err := wlan.DecodeScenarios(data)
	if err != nil {
		fatalf("%v", err)
	}
	if quick {
		suite = suite.Quick()
	}
	name := suite.Name
	if name == "" {
		name = path
	}
	scale := "full scale"
	if quick {
		scale = "quick scale"
	}
	fmt.Printf("suite %s: %d scenario(s), %s\n", name, len(suite.Scenarios), scale)
	start := time.Now()
	sums, err := lab.RunSuite(ctx, suite)
	if err != nil {
		fatalf("%v", err)
	}
	for _, s := range sums {
		fmt.Println(s)
	}
	var events uint64
	for _, s := range sums {
		events += s.Events
	}
	wall := time.Since(start)
	fmt.Printf("wall %v  events %d  events/sec %.0f\n",
		wall.Round(time.Millisecond), events, float64(events)/wall.Seconds())
	if summaryPath != "" {
		out, err := wlan.MarshalSummaries(sums)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(summaryPath, out, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("summaries -> %s\n", summaryPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wlansim: "+format+"\n", args...)
	os.Exit(1)
}
