package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// testdataWd pins the working directory run() sees to testdata/src, so
// the fixture packages load through the real go-list pipeline with
// their directory base ("slotsim") deciding analyzer scope.
func testdataWd(t *testing.T) func() (string, error) {
	t.Helper()
	wd, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	return func() (string, error) { return wd, nil }
}

func TestRunSeededViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./slotsim"}, testdataWd(t), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on a seeded violation\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	// The finding must name file, line and column, go-vet style.
	loc := regexp.MustCompile(`slotsim\.go:\d+:\d+: \[inttime\] narrowing conversion int\(\.\.\.\)`)
	if !loc.MatchString(stdout.String()) {
		t.Errorf("report does not name the seeded violation's file:line:col:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr summary missing:\n%s", stderr.String())
	}
}

func TestRunCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./clean"}, testdataWd(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 on clean input\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

func TestRunJSONSchema(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./slotsim"}, testdataWd(t), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (-json keeps the exit contract)\nstderr: %s", code, stderr.String())
	}
	// Decode generically so a renamed or dropped field fails loudly: the
	// key set is a published contract (CI's ::error annotation step).
	var raw []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &raw); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(raw) == 0 {
		t.Fatalf("-json array empty, want the seeded finding")
	}
	wantKeys := []string{"analyzer", "col", "file", "line", "message"}
	for i, el := range raw {
		var keys []string
		for k := range el {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(wantKeys, ",") {
			t.Errorf("element %d keys = %v, want exactly %v (schema-stable contract)", i, keys, wantKeys)
		}
	}
	first := raw[0]
	if got, _ := first["analyzer"].(string); got != "inttime" {
		t.Errorf("analyzer = %q, want inttime", got)
	}
	if file, _ := first["file"].(string); !strings.HasSuffix(file, "slotsim.go") {
		t.Errorf("file = %q, want .../slotsim.go", file)
	}
	if line, ok := first["line"].(float64); !ok || line < 1 {
		t.Errorf("line = %v, want a positive integer", first["line"])
	}
	if col, ok := first["col"].(float64); !ok || col < 1 {
		t.Errorf("col = %v, want a positive integer", first["col"])
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./clean"}, testdataWd(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want [] (an array, never null)", got)
	}
}

func TestRunListsAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, testdataWd(t), &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"atomicmix", "determinism", "envelope", "goshare", "hotpath", "inttime", "lockorder", "observerpurity", "rngstream", "sentinelwrap"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}
