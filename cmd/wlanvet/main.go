// Command wlanvet is the repository's invariant checker: a multichecker
// over the five project-specific analyzers that make the simulator's
// load-bearing contracts structural instead of incidental to whichever
// golden happened to exercise them.
//
//	determinism    — no wall clocks, global math/rand, or order-leaking
//	                 map ranges in sim-critical packages
//	inttime        — no narrowing conversions of int64 tick/expiry/slot
//	                 arithmetic (the PR 7 minCounter truncation class)
//	hotpath        — //wlanvet:hotpath functions contain no closures,
//	                 fmt calls, boxing conversions or unguarded appends
//	observerpurity — metrics are write-only inside simulation code
//	sentinelwrap   — errors crossing the wlan facade wrap a typed
//	                 sentinel via %w
//
// Usage:
//
//	wlanvet [-list] [packages]
//
// With no packages, ./... is checked. Suppressions are explicit in the
// source: a //wlanvet:allow <reason> comment on (or immediately above)
// the offending line silences it, and the reason is mandatory. Exit
// status is 1 when findings remain, 2 on usage or load errors — the
// same contract as go vet, which `make lint` and CI rely on.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/inttime"
	"repro/internal/analysis/observerpurity"
	"repro/internal/analysis/sentinelwrap"
)

// analyzers is the wlanvet suite, in diagnostic-prefix order.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	hotpath.Analyzer,
	inttime.Analyzer,
	observerpurity.Analyzer,
	sentinelwrap.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wlanvet [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Checks the repository's simulator invariants; with no packages, ./... .\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlanvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlanvet: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlanvet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Printf("%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wlanvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
