// Command wlanvet is the repository's invariant checker: a multichecker
// over the ten project-specific analyzers that make the simulator's
// load-bearing contracts structural instead of incidental to whichever
// golden happened to exercise them.
//
// The original five are single-function and syntactic:
//
//	determinism    — no wall clocks, global math/rand, or order-leaking
//	                 map ranges in sim-critical packages
//	inttime        — no narrowing conversions of int64 tick/expiry/slot
//	                 arithmetic (the PR 7 minCounter truncation class)
//	hotpath        — //wlanvet:hotpath functions contain no closures,
//	                 fmt calls, boxing conversions or unguarded appends
//	observerpurity — metrics are write-only inside simulation code
//	sentinelwrap   — errors crossing the wlan facade wrap a typed
//	                 sentinel via %w
//
// The v2 five are flow analyzers over the module call graph, gating
// the concurrency the contention-domain kernel will introduce:
//
//	goshare        — goroutine-shared variables are mutex-guarded,
//	                 atomic, or never written after spawn
//	atomicmix      — a variable accessed via sync/atomic is never also
//	                 accessed plainly
//	rngstream      — RNGs derive from the seed-substream helper and
//	                 never cross a goroutine boundary
//	lockorder      — lock acquisition order is acyclic module-wide
//	envelope       — svc error sentinels ↔ wire codes ↔ HTTP statuses
//	                 map 1:1 with no default-arm fall-through
//
// Usage:
//
//	wlanvet [-list] [-json] [packages]
//
// With no packages, ./... is checked. Suppressions are explicit in the
// source: a //wlanvet:allow <reason> comment on (or immediately above)
// the offending line silences it, and the reason is mandatory. Exit
// status is 1 when findings remain, 2 on usage or load errors — the
// same contract as go vet, which `make lint` and CI rely on.
//
// -json emits findings as a JSON array (schema-stable: file, line,
// col, analyzer, message; sorted by package path then position) for
// toolchain consumers — CI turns each element into a GitHub
// ::error annotation. The exit-status contract is unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/envelope"
	"repro/internal/analysis/goshare"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/inttime"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/observerpurity"
	"repro/internal/analysis/rngstream"
	"repro/internal/analysis/sentinelwrap"
)

// analyzers is the wlanvet suite, in diagnostic-prefix order.
var analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	determinism.Analyzer,
	envelope.Analyzer,
	goshare.Analyzer,
	hotpath.Analyzer,
	inttime.Analyzer,
	lockorder.Analyzer,
	observerpurity.Analyzer,
	rngstream.Analyzer,
	sentinelwrap.Analyzer,
}

// jsonFinding is the stable -json element shape. Field names are a
// published contract (ci.yml's annotation step and make lint-json parse
// them); add fields if needed, never rename or remove.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Getwd, os.Stdout, os.Stderr))
}

// run is main minus the process boundary, so the seeded-violation tests
// can drive the real flag/load/report path and assert on exit codes.
func run(args []string, getwd func() (string, error), stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wlanvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: wlanvet [-list] [-json] [packages]\n\n")
		fmt.Fprintf(stderr, "Checks the repository's simulator invariants; with no packages, ./... .\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := getwd()
	if err != nil {
		fmt.Fprintf(stderr, "wlanvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "wlanvet: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "wlanvet: %v\n", err)
		return 2
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "wlanvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s\n", f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "wlanvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
