// Package slotsim is the seeded-violation fixture for the wlanvet
// smoke test: the directory base places it under the sim-critical
// scope exactly like the real slot simulator, and the narrowing
// conversion below must surface as an inttime finding naming this
// file and line with exit status 1.
package slotsim

// Truncate narrows a tick count — the minCounter bug class.
func Truncate(ticks int64) int { return int(ticks) }
