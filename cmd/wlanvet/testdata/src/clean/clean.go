// Package clean is the negative fixture for the wlanvet smoke test:
// nothing here violates any analyzer, so checking it must exit 0 with
// no output (and -json must emit an empty array, not null).
package clean

// Span keeps tick arithmetic in int64 end to end.
func Span(from, to int64) int64 { return to - from }
