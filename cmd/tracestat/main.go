// Command tracestat analyses a JSONL frame capture produced by
// `wlansim -trace` (or any wlan.NewTraceWriter consumer): frame counts by
// type, per-station delivery/collision/retry statistics, and goodput.
//
//	wlansim -scheme TORA-CSMA -nodes 20 -disc 16 -trace cap.jsonl
//	tracestat cap.jsonl
//	tracestat -top 5 cap.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	top := flag.Int("top", 0, "print only the top-N stations by delivered bits (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-top N] <capture.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	sum, err := trace.Analyze(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	if *top > 0 && *top < len(sum.Stations) {
		sort.Slice(sum.Stations, func(i, j int) bool {
			return sum.Stations[i].BitsOK > sum.Stations[j].BitsOK
		})
		sum.Stations = sum.Stations[:*top]
	}
	fmt.Print(sum.String())
}
