// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig3
//	experiments -run all -tsv -out results/
//	experiments -run fig6 -paper        # paper-scale durations (slow)
//	experiments -run fig1 -cache /tmp/sweep-cache   # reuse completed sweep points
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/sim"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (fig1..fig13, tab2, tab3) or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		tsv      = flag.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
		outDir   = flag.String("out", "", "also write each table to <out>/<id>.tsv")
		paper    = flag.Bool("paper", false, "paper-scale durations and seed counts (hours)")
		duration = flag.Duration("duration", 0, "override simulated duration per run")
		seeds    = flag.Int("seeds", 0, "override seeds per data point")
		cacheDir = flag.String("cache", "", "back figure sweeps with the content-addressed sweep cache at this directory")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the context: the running figure aborts at
	// its next cell/replication boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range experiment.IDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run <id> or -list required")
		os.Exit(2)
	}

	opts := experiment.Quick()
	if *paper {
		opts = experiment.Paper()
	}
	if *duration != 0 {
		opts.Duration = sim.Duration(*duration)
		opts.Warmup = opts.Duration / 2
	}
	if *seeds != 0 {
		opts.Seeds = *seeds
	}
	opts.CacheDir = *cacheDir
	// Validate the final options — including flag overrides — before any
	// figure starts simulating, so a typo like `-duration 1ns` exits
	// with one clear message instead of failing deep inside a run.
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiment.IDs()
	}
	registry := experiment.Registry()
	for _, id := range ids {
		runner, ok := registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := runner(ctx, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *tsv {
			fmt.Print(table.TSV())
		} else {
			fmt.Print(table.String())
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, table.ID+".tsv")
			if err := os.WriteFile(path, []byte(table.TSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
