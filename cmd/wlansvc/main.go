// Command wlansvc is the fault-tolerant sweep service: a coordinator
// daemon that owns one campaign (a sweep grid manifest), leases batches
// of points to workers over an HTTP JSON control plane, and streams the
// merged rows in canonical order — byte-identical to a single-machine
// wlansim run — with the content-addressed cache as the only durable
// truth. Workers crash, stall, retransmit and partition; none of that
// changes an output byte (see internal/svc for the fault model).
//
// The first SIGINT/SIGTERM drains the coordinator gracefully: no new
// leases, in-flight leases complete or expire, the queue snapshot is
// persisted. A second signal exits immediately. Either way the campaign
// resumes later from the cache alone: restart with the same -manifest
// and -cache and committed points are never re-simulated.
//
// Examples:
//
//	wlansvc -coordinator -manifest examples/sweeps/svc-chaos.json -cache /shared/cache -out merged.jsonl -run-once
//	wlansvc -coordinator -manifest grid.json -cache /shared/cache -listen :8630 -lease-ttl 30s -state drained.json
//	wlansvc -worker -join http://127.0.0.1:8630 -parallel 4 -batch 8
//	wlansvc -worker -join http://coordinator:8630 -worker-id rack3-7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/svc"
	"repro/internal/sweep"
	"repro/wlan"
)

func main() {
	var (
		coordMode  = flag.Bool("coordinator", false, "run the campaign coordinator: lease sweep points to workers and stream the merged rows")
		workerMode = flag.Bool("worker", false, "run a sweep worker: lease points from the -join coordinator, simulate them, submit completions")
	)
	cf := coordFlags{}
	flag.StringVar(&cf.manifest, "manifest", "", "with -coordinator: the sweep grid file defining the campaign (required)")
	flag.StringVar(&cf.listen, "listen", "127.0.0.1:8630", "with -coordinator: control-plane listen address")
	flag.StringVar(&cf.cache, "cache", "", "with -coordinator: content-addressed result cache directory — the campaign's only durable truth; without it a coordinator crash loses all progress")
	flag.StringVar(&cf.out, "out", "", "with -coordinator: write the merged JSONL rows to this file (default stdout), plus a <file>.meta.json run stamp")
	flag.DurationVar(&cf.leaseTTL, "lease-ttl", 15*time.Second, "with -coordinator: how long a lease survives without a heartbeat before its points are reissued")
	flag.IntVar(&cf.maxBatch, "max-batch", 8, "with -coordinator: maximum points per lease")
	flag.IntVar(&cf.maxReissues, "max-reissues", 50, "with -coordinator: per-point reissue budget before the campaign is declared failed")
	flag.StringVar(&cf.state, "state", "", "with -coordinator: write the drained queue snapshot to this file on graceful shutdown (post-mortem record; resume needs only the cache)")
	flag.BoolVar(&cf.runOnce, "run-once", false, "with -coordinator: exit when the campaign completes instead of keeping the control plane up")
	var (
		join     = flag.String("join", "", "with -worker: coordinator base URL to lease points from (required)")
		workerID = flag.String("worker-id", "", "with -worker: name for this worker in coordinator logs (default <hostname>-<pid>)")
		parallel = flag.Int("parallel", 0, "with -worker: replication worker count (0 = GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "with -worker: points to request per lease (0 = coordinator's default)")
	)
	flag.Parse()
	validateFlagModes(*coordMode, *workerMode)

	if *coordMode {
		runCoordinator(cf)
		return
	}
	runWorker(*join, *workerID, *parallel, *batch)
}

// validateFlagModes rejects flag combinations one mode would silently
// ignore, before anything runs: exactly one of -coordinator and
// -worker, the mode's required flag present, and no flags from the
// other mode. Violations exit 2 with a usage message, matching
// wlansim's up-front validation.
func validateFlagModes(coordMode, workerMode bool) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	switch {
	case coordMode && workerMode:
		usageExit("at most one of -coordinator and -worker may be given")
	case !coordMode && !workerMode:
		usageExit("one of -coordinator or -worker is required")
	}
	workerFlags := []string{"join", "worker-id", "parallel", "batch"}
	coordOnly := []string{"manifest", "listen", "cache", "out", "lease-ttl", "max-batch", "max-reissues", "state", "run-once"}
	if coordMode {
		if !set["manifest"] {
			usageExit("-coordinator requires -manifest")
		}
		if bad := setFlags(set, workerFlags); len(bad) > 0 {
			usageExit(fmt.Sprintf("worker-only flag(s) %s would be ignored with -coordinator", strings.Join(bad, ", ")))
		}
		return
	}
	if !set["join"] {
		usageExit("-worker requires -join")
	}
	if bad := setFlags(set, coordOnly); len(bad) > 0 {
		usageExit(fmt.Sprintf("coordinator-only flag(s) %s would be ignored with -worker", strings.Join(bad, ", ")))
	}
}

func setFlags(set map[string]bool, names []string) []string {
	var bad []string
	for _, n := range names {
		if set[n] {
			bad = append(bad, "-"+n)
		}
	}
	return bad
}

// usageExit reports a flag-validation failure and exits 2, the
// CLI-misuse exit code.
func usageExit(msg string) {
	fmt.Fprintf(os.Stderr, "wlansvc: %s\nrun 'wlansvc -h' for usage\n", msg)
	os.Exit(2)
}

type coordFlags struct {
	manifest, listen, cache, out, state string
	leaseTTL                            time.Duration
	maxBatch, maxReissues               int
	runOnce                             bool
}

// runCoordinator owns the campaign end to end: manifest in, control
// plane up, rows streamed as their contiguous prefix completes, output
// renamed into place only when the campaign finishes. The final stats
// line carries the same "N simulated" figure the sweep CLI prints — a
// warm resume reports "(0 simulated", the proof that committed points
// were never re-run.
func runCoordinator(cf coordFlags) {
	data, err := os.ReadFile(cf.manifest)
	if err != nil {
		fatalf("%v", err)
	}
	g, err := wlan.DecodeSweep(data)
	if err != nil {
		fatalf("%v", err)
	}
	name := g.Name
	if name == "" {
		name = cf.manifest
	}
	var cache *sweep.Cache
	if cf.cache != "" {
		if cache, err = sweep.OpenCache(cf.cache); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "wlansvc: warning: no -cache; a coordinator crash loses all campaign progress")
	}

	out := io.Writer(os.Stdout)
	statsOut := io.Writer(os.Stdout)
	var tmp *os.File
	if cf.out != "" {
		// A stale sidecar from an earlier run must not survive next to
		// rows it does not describe; and rows stream into a temp file
		// renamed into place only on completion, so a drained or killed
		// coordinator never leaves a truncated JSONL at -out.
		if err := os.Remove(wlan.SweepMetaPath(cf.out)); err != nil && !os.IsNotExist(err) {
			fatalf("%v", err)
		}
		tmp, err = os.CreateTemp(filepath.Dir(cf.out), filepath.Base(cf.out)+".tmp-*")
		if err != nil {
			fatalf("%v", err)
		}
		if err := tmp.Chmod(0o644); err != nil {
			fatalf("%v", err)
		}
		out = tmp
	} else {
		statsOut = os.Stderr
	}
	discardTmp := func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}

	reg := metrics.NewRegistry()
	c, err := svc.NewCoordinator(svc.CoordinatorConfig{
		Grid:        g,
		Cache:       cache,
		LeaseTTL:    cf.leaseTTL,
		MaxBatch:    cf.maxBatch,
		MaxReissues: cf.maxReissues,
		Out:         out,
		Metrics:     svc.NewMetrics(reg),
		StatePath:   cf.state,
		Logf:        logf,
	})
	if err != nil {
		discardTmp()
		fatalf("%v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.Handle("GET /metrics", reg.Handler())
	ln, err := net.Listen("tcp", cf.listen)
	if err != nil {
		discardTmp()
		fatalf("%v", err)
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "wlansvc: control plane: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "wlansvc: coordinator serving campaign %s (%d points) on http://%s\n",
		name, c.Stats().Total, ln.Addr())

	// First signal drains: no new leases, in-flight leases finish or
	// expire, queue snapshot persisted, then the run loop is released.
	// A second signal abandons the drain and exits immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "wlansvc: signal received, draining (signal again to exit immediately)")
		go func() {
			dctx, dcancel := context.WithTimeout(context.Background(), 2*cf.leaseTTL+time.Second)
			defer dcancel()
			if err := c.Drain(dctx); err != nil {
				fmt.Fprintf(os.Stderr, "wlansvc: drain: %v\n", err)
			}
			cancel()
		}()
		<-sig
		fatalf("second signal, exiting without drain")
	}()

	start := time.Now()
	runErr := c.Run(ctx)
	wall := time.Since(start)
	st := c.Stats()
	switch {
	case errors.Is(runErr, context.Canceled):
		discardTmp()
		fmt.Fprintf(statsOut, "campaign %s drained: %s in %v\n", name, st, wall.Round(time.Millisecond))
		return
	case runErr != nil:
		discardTmp()
		fatalf("campaign %s: %v (%s)", name, runErr, st)
	}
	if tmp != nil {
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			fatalf("%v", err)
		}
		if err := os.Rename(tmp.Name(), cf.out); err != nil {
			os.Remove(tmp.Name())
			fatalf("%v", err)
		}
		meta := wlan.NewSweepMeta(g, wlan.Shard{}, st.SweepStats(), start, wall)
		if err := meta.WriteFile(wlan.SweepMetaPath(cf.out)); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Fprintf(statsOut, "campaign %s: %s in %v\n", name, st, wall.Round(time.Millisecond))
	if !cf.runOnce {
		fmt.Fprintln(os.Stderr, "wlansvc: campaign done; control plane stays up for /v1/rows and /v1/status (signal to exit)")
		<-ctx.Done()
	}
}

// runWorker joins a campaign through the public wlan.Lab facade and
// works it to the end. Graceful outcomes — campaign done, coordinator
// draining, SIGTERM — exit 0; a failed campaign or an unreachable
// coordinator exits 1.
func runWorker(join, id string, parallel, batch int) {
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	lab := wlan.NewLab(wlan.WithParallelism(parallel))
	defer lab.Close()
	fmt.Fprintf(os.Stderr, "wlansvc: worker %s joining %s\n", id, join)
	err := lab.ServeSweeps(ctx, join,
		wlan.WithWorkerID(id), wlan.WithWorkerBatch(batch), wlan.WithServeLogf(logf))
	switch {
	case errors.Is(err, wlan.ErrCanceled):
		fmt.Fprintf(os.Stderr, "wlansvc: worker %s: canceled, exiting\n", id)
	case err != nil:
		fatalf("worker %s: %v", id, err)
	default:
		fmt.Fprintf(os.Stderr, "wlansvc: worker %s: done\n", id)
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wlansvc: "+format+"\n", args...)
	os.Exit(1)
}
