# Development entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

.PHONY: test verify lint lint-json bench bench-compare bench-gate bench-smoke api api-check

# Tier-1 verification: everything must build and every test must pass.
verify:
	go build ./... && go test ./...

test: verify

# Static analysis: go vet plus the project's own wlanvet analyzers
# (determinism, inttime, hotpath, observerpurity, sentinelwrap, and
# the v2 concurrency set: goshare, atomicmix, rngstream, lockorder,
# envelope — see internal/analysis). wlanvet exits non-zero on any
# finding that does not carry a reasoned //wlanvet:allow annotation.
lint:
	go vet ./...
	go run ./cmd/wlanvet ./...

# Same gate, machine-readable: findings as a JSON array on stdout
# (schema-stable file/line/col/analyzer/message, sorted by package
# path then position — pinned by cmd/wlanvet's tests). CI pipes this
# through jq into GitHub ::error annotations; editors and scripts can
# consume it the same way. Exit status matches `lint`.
lint-json:
	go run ./cmd/wlanvet -json ./...

# Regenerate the committed public-API snapshot after an intentional
# surface change (CI diffs it; see cmd/apisnapshot).
api:
	go run ./cmd/apisnapshot

# The CI gate: fail if the exported wlan surface drifted from the
# committed snapshot.
api-check:
	go run ./cmd/apisnapshot -check

# Regenerate the committed benchmark-trajectory point. Run on a quiet
# machine; the committed file is the baseline CI compares against.
bench:
	go run ./cmd/benchreport -out BENCH_PR7.json

# Compare a fresh short-scale run against the committed baseline
# (informational: prints the table and warnings, never fails).
bench-compare:
	go run ./cmd/benchreport -compare BENCH_PR7.json

# The CI perf gate: fail on >20% regression (ns/op, allocs/op, B/op,
# or an Mbps drop) against the committed baseline — unless the
# environment fingerprint differs, which downgrades the comparison to
# informational (a foreign baseline says nothing about this machine).
bench-gate:
	go run ./cmd/benchreport -compare BENCH_PR7.json -strict

# Fast sanity pass: every benchmark must still compile and run.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...
