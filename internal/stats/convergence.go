package stats

import (
	"math"

	"repro/internal/sim"
)

// ConvergenceReport quantifies how an adaptive controller's throughput
// series approaches a target level — the measurements behind the paper's
// Section VI-D convergence discussion.
type ConvergenceReport struct {
	// Target is the reference level (e.g. the analytic optimum).
	Target float64
	// TimeToWithin is when the series first enters the band
	// [Target·(1−Tol), ∞) and stays there for the dwell window; zero
	// value with Converged=false when it never does.
	TimeToWithin sim.Time
	// Converged reports whether the dwell criterion was met.
	Converged bool
	// SteadyMean and SteadyStdDev describe the series after
	// TimeToWithin.
	SteadyMean, SteadyStdDev float64
	// Efficiency is SteadyMean/Target.
	Efficiency float64
}

// ConvergenceOptions tunes the detector.
type ConvergenceOptions struct {
	// Tol is the relative shortfall tolerated (default 0.1: within 90%
	// of target).
	Tol float64
	// Dwell is how many consecutive samples must stay in the band
	// (default 8) — a single lucky window does not count as converged.
	Dwell int
}

// AnalyzeConvergence scans a throughput series against a target level.
func AnalyzeConvergence(ts *TimeSeries, target float64, opt ConvergenceOptions) ConvergenceReport {
	if opt.Tol == 0 {
		opt.Tol = 0.1
	}
	if opt.Dwell == 0 {
		opt.Dwell = 8
	}
	rep := ConvergenceReport{Target: target}
	if ts.Len() == 0 || target <= 0 {
		return rep
	}
	floor := target * (1 - opt.Tol)
	run := 0
	enter := -1
	for i, v := range ts.Values {
		if v >= floor {
			if run == 0 {
				enter = i
			}
			run++
			if run >= opt.Dwell {
				// Verify the band holds (with brief dips allowed) for
				// the remainder: require ≥ 80% of remaining samples in
				// band.
				in, total := 0, 0
				for j := enter; j < ts.Len(); j++ {
					total++
					if ts.Values[j] >= floor {
						in++
					}
				}
				if float64(in) >= 0.8*float64(total) {
					rep.Converged = true
					rep.TimeToWithin = ts.Times[enter]
					var w Welford
					for j := enter; j < ts.Len(); j++ {
						w.Add(ts.Values[j])
					}
					rep.SteadyMean = w.Mean()
					rep.SteadyStdDev = w.StdDev()
					rep.Efficiency = rep.SteadyMean / target
					return rep
				}
				run = 0 // false alarm; keep scanning
			}
		} else {
			run = 0
		}
	}
	// Never converged: still report the tail statistics for diagnosis.
	var w Welford
	start := ts.Len() / 2
	for j := start; j < ts.Len(); j++ {
		w.Add(ts.Values[j])
	}
	rep.SteadyMean = w.Mean()
	rep.SteadyStdDev = w.StdDev()
	if target > 0 {
		rep.Efficiency = rep.SteadyMean / target
	}
	return rep
}

// SlidingJain computes Jain's fairness index over sliding windows of the
// given span across per-station cumulative series — the short-term
// fairness view (the IdleSense paper's headline secondary metric, which
// our paper inherits for its p-persistent schemes).
//
// shares[i][k] is station i's cumulative delivered bits at sample k; all
// stations must share the same sample instants. The result has one index
// per window.
func SlidingJain(shares [][]float64, window int) []float64 {
	if len(shares) == 0 || window <= 0 {
		return nil
	}
	samples := len(shares[0])
	if samples <= window {
		return nil
	}
	var out []float64
	delta := make([]float64, len(shares))
	for k := window; k < samples; k++ {
		for i := range shares {
			if len(shares[i]) != samples {
				return nil // ragged input
			}
			delta[i] = shares[i][k] - shares[i][k-window]
			if delta[i] < 0 || math.IsNaN(delta[i]) {
				delta[i] = 0
			}
		}
		out = append(out, JainIndex(delta))
	}
	return out
}
