package stats

import (
	"math"
	"math/bits"

	"repro/internal/sim"
)

// DurationHist accumulates duration observations (per-packet latencies)
// into a fixed log-linear histogram: power-of-two major buckets, each
// subdivided into histSub linear sub-buckets, giving a worst-case
// relative quantile error of 1/histSub ≈ 12.5% with O(1) observation
// cost and no allocation. Two properties matter to the scenario runner:
// observation order is irrelevant (pure counting), and Merge is exact —
// so replication histograms can be aggregated in any grouping and still
// yield bit-identical quantiles.
//
// The zero value is an empty histogram ready for use.
type DurationHist struct {
	counts   [histBuckets]int64
	n        int64
	sum      int64 // total nanoseconds; exact for < ~292 years of latency
	min, max int64
}

const (
	// histSubBits sub-divides each power-of-two range into 2^histSubBits
	// linear buckets.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: majors for
	// exponents histSubBits..62 plus the initial linear [0, histSub)
	// range.
	histBuckets = (63 - histSubBits + 1) * histSub
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < histSub {
		//wlanvet:allow bounded conversion: this branch requires u < histSub (= 8), which fits an int of any width
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the MSB, ≥ histSubBits
	sub := u >> (uint(exp) - histSubBits)
	//wlanvet:allow bounded conversion: the shift leaves exactly histSubBits+1 significant bits, so sub < 2*histSub (= 16) fits an int of any width
	return (exp-histSubBits)*histSub + int(sub)
}

// bucketMid returns a representative (midpoint) value for bucket i.
func bucketMid(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := i/histSub + histSubBits - 1
	sub := uint64(i%histSub) | histSub
	lo := sub << (uint(exp) - histSubBits)
	width := uint64(1) << (uint(exp) - histSubBits)
	return int64(lo + width/2)
}

// Observe folds one duration into the histogram. Negative durations are
// clamped to zero (they cannot occur for causally measured latencies).
func (h *DurationHist) Observe(d sim.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of observations.
func (h *DurationHist) Count() int64 { return h.n }

// Mean returns the exact mean of the observations, 0 when empty.
func (h *DurationHist) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return sim.Duration(h.sum / h.n)
}

// Min and Max return the exact extreme observations, 0 when empty.
func (h *DurationHist) Min() sim.Duration { return sim.Duration(h.min) }
func (h *DurationHist) Max() sim.Duration { return sim.Duration(h.max) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the midpoint of the
// bucket holding the rank-⌈q·n⌉ observation, clamped to the exact
// min/max. Returns 0 when empty.
func (h *DurationHist) Quantile(q float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return sim.Duration(v)
		}
	}
	return sim.Duration(h.max) // unreachable: counts sum to n
}

// Merge folds another histogram into h. Merging is exact: the result is
// identical to having Observed every sample of both histograms.
func (h *DurationHist) Merge(o *DurationHist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 {
		*h = *o
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
}
