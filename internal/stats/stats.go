// Package stats provides the measurement primitives used across the
// simulators and the experiment harness: running moments, windowed
// throughput meters, time series, fairness indices and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The zero value is an empty
// accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds a new observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (n−1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 1 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge folds another accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) for the given
// allocations: 1 for perfect equality, 1/n for a single hog. Returns 1
// for empty or all-zero input (nothing is unfair about nothing).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	// Normalise by the largest magnitude first so that squaring cannot
	// overflow even for extreme inputs; the index is scale-invariant.
	maxAbs := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		v := x / maxAbs
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WeightedJainIndex normalises each allocation by its weight before
// computing Jain's index — the natural fairness measure for Definition 2's
// weighted throughput allocations.
func WeightedJainIndex(xs, weights []float64) (float64, error) {
	if len(xs) != len(weights) {
		return 0, fmt.Errorf("stats: %d allocations but %d weights", len(xs), len(weights))
	}
	norm := make([]float64, len(xs))
	for i := range xs {
		if weights[i] <= 0 {
			return 0, fmt.Errorf("stats: weight[%d] = %v must be positive", i, weights[i])
		}
		norm[i] = xs[i] / weights[i]
	}
	return JainIndex(norm), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean of xs, NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
