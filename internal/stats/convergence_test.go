package stats

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func seriesFrom(values []float64) *TimeSeries {
	ts := &TimeSeries{}
	for i, v := range values {
		ts.Append(sim.Time(i)*sim.Time(sim.Second), v)
	}
	return ts
}

func TestAnalyzeConvergenceBasic(t *testing.T) {
	// Ramp to 100 and stay.
	var vals []float64
	for i := 0; i < 50; i++ {
		vals = append(vals, math.Min(100, float64(i)*5))
	}
	rep := AnalyzeConvergence(seriesFrom(vals), 100, ConvergenceOptions{})
	if !rep.Converged {
		t.Fatal("ramp series not detected as converged")
	}
	// Band entry at value ≥ 90: i = 18.
	if got := rep.TimeToWithin.Seconds(); got != 18 {
		t.Errorf("TimeToWithin = %vs, want 18", got)
	}
	if rep.Efficiency < 0.95 || rep.Efficiency > 1.05 {
		t.Errorf("Efficiency = %v", rep.Efficiency)
	}
	if rep.SteadyStdDev > 5 {
		t.Errorf("SteadyStdDev = %v", rep.SteadyStdDev)
	}
}

func TestAnalyzeConvergenceNeverConverges(t *testing.T) {
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 10 // far below target 100
	}
	rep := AnalyzeConvergence(seriesFrom(vals), 100, ConvergenceOptions{})
	if rep.Converged {
		t.Fatal("flat low series reported converged")
	}
	if math.Abs(rep.SteadyMean-10) > 1e-9 {
		t.Errorf("tail mean %v", rep.SteadyMean)
	}
	if math.Abs(rep.Efficiency-0.1) > 1e-9 {
		t.Errorf("efficiency %v", rep.Efficiency)
	}
}

func TestAnalyzeConvergenceIgnoresLuckySpike(t *testing.T) {
	// A brief excursion into the band must not count (dwell criterion).
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 10
	}
	vals[5] = 100
	vals[6] = 100
	rep := AnalyzeConvergence(seriesFrom(vals), 100, ConvergenceOptions{Dwell: 5})
	if rep.Converged {
		t.Error("two-sample spike counted as convergence")
	}
}

func TestAnalyzeConvergenceToleratesBriefDips(t *testing.T) {
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = 100
	}
	vals[30] = 50 // single dip
	rep := AnalyzeConvergence(seriesFrom(vals), 100, ConvergenceOptions{})
	if !rep.Converged {
		t.Error("single dip broke convergence detection")
	}
	if rep.TimeToWithin != 0 {
		t.Errorf("TimeToWithin = %v, want 0", rep.TimeToWithin)
	}
}

func TestAnalyzeConvergenceEdgeCases(t *testing.T) {
	if rep := AnalyzeConvergence(&TimeSeries{}, 100, ConvergenceOptions{}); rep.Converged {
		t.Error("empty series converged")
	}
	if rep := AnalyzeConvergence(seriesFrom([]float64{1, 2}), 0, ConvergenceOptions{}); rep.Converged {
		t.Error("zero target converged")
	}
}

func TestSlidingJain(t *testing.T) {
	// Two stations alternating strict turns: short-window fairness is
	// poor, long-window fairness perfect.
	const samples = 100
	a := make([]float64, samples)
	b := make([]float64, samples)
	ca, cb := 0.0, 0.0
	for k := 0; k < samples; k++ {
		if k%2 == 0 {
			ca += 10
		} else {
			cb += 10
		}
		a[k], b[k] = ca, cb
	}
	short := SlidingJain([][]float64{a, b}, 1)
	long := SlidingJain([][]float64{a, b}, 20)
	if len(short) == 0 || len(long) == 0 {
		t.Fatal("no windows")
	}
	if Mean(short) > 0.7 {
		t.Errorf("1-sample windows should look unfair, mean Jain %v", Mean(short))
	}
	if Mean(long) < 0.99 {
		t.Errorf("20-sample windows should look fair, mean Jain %v", Mean(long))
	}
}

func TestSlidingJainEdgeCases(t *testing.T) {
	if SlidingJain(nil, 5) != nil {
		t.Error("nil input")
	}
	if SlidingJain([][]float64{{1, 2}}, 0) != nil {
		t.Error("zero window")
	}
	if SlidingJain([][]float64{{1, 2}}, 5) != nil {
		t.Error("window larger than series")
	}
	// Ragged input rejected.
	if SlidingJain([][]float64{{1, 2, 3}, {1, 2}}, 1) != nil {
		t.Error("ragged input accepted")
	}
}
