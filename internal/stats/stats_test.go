package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance with n−1: Σ(x−5)² = 32, 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if math.Abs(w.StdErr()-w.StdDev()/math.Sqrt(8)) > 1e-12 {
		t.Error("StdErr inconsistent with StdDev")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	prop := func(a, b []float64) bool {
		var all, left, right Welford
		for _, x := range a {
			clean := math.Mod(x, 1e6)
			if math.IsNaN(clean) {
				clean = 0
			}
			all.Add(clean)
			left.Add(clean)
		}
		for _, x := range b {
			clean := math.Mod(x, 1e6)
			if math.IsNaN(clean) {
				clean = 0
			}
			all.Add(clean)
			right.Add(clean)
		}
		left.Merge(&right)
		if left.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		if math.Abs(left.Mean()-all.Mean()) > 1e-6*scale {
			return false
		}
		vscale := math.Max(1, all.Variance())
		return math.Abs(left.Variance()-all.Variance()) < 1e-6*vscale
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal allocations: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single hog: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty: %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all zero: %v, want 1", got)
	}
}

func TestJainIndexBounds(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Abs(x))
			}
		}
		j := JainIndex(clean)
		if len(clean) == 0 {
			return j == 1
		}
		return j >= 1/float64(len(clean))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedJainIndex(t *testing.T) {
	// Allocations exactly proportional to weights are perfectly fair.
	got, err := WeightedJainIndex([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("proportional: %v, want 1", got)
	}
	// Equal allocations with unequal weights are unfair.
	got, _ = WeightedJainIndex([]float64{1, 1, 1}, []float64{1, 1, 10})
	if got >= 1-1e-6 {
		t.Errorf("disproportional allocations scored %v", got)
	}
	if _, err := WeightedJainIndex([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedJainIndex([]float64{1}, []float64{0}); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q=0: %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q=1: %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median: %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q1: %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean not NaN")
	}
}

func TestThroughputMeter(t *testing.T) {
	m := NewThroughputMeter(0)
	m.Account(8000)
	m.Account(8000)
	now := sim.Time(2 * sim.Millisecond)
	if got := m.Rate(now); math.Abs(got-8e6) > 1 {
		t.Errorf("Rate = %v, want 8e6", got)
	}
	if m.Bits() != 16000 {
		t.Errorf("Bits = %d", m.Bits())
	}
	m.ResetWindow(now)
	if m.Bits() != 0 {
		t.Error("ResetWindow did not zero bits")
	}
	if m.WindowStart() != now {
		t.Error("WindowStart not updated")
	}
	if got := m.Rate(now); got != 0 {
		t.Errorf("Rate over empty window = %v, want 0", got)
	}
	m.Account(1000)
	if got := m.Rate(now.Add(sim.Millisecond)); math.Abs(got-1e6) > 1 {
		t.Errorf("Rate after reset = %v, want 1e6", got)
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	if _, _, ok := ts.Last(); ok {
		t.Error("empty Last returned ok")
	}
	for i := 0; i < 10; i++ {
		ts.Append(sim.Time(i), float64(i*i))
	}
	if ts.Len() != 10 {
		t.Errorf("Len = %d", ts.Len())
	}
	at, v, ok := ts.Last()
	if !ok || at != 9 || v != 81 {
		t.Errorf("Last = (%v, %v, %v)", at, v, ok)
	}
	// MeanAfter excludes earlier samples.
	if got := ts.MeanAfter(8); got != (64+81)/2.0 {
		t.Errorf("MeanAfter = %v", got)
	}
}

func TestTimeSeriesCompaction(t *testing.T) {
	ts := TimeSeries{MaxSize: 8}
	for i := 0; i < 100; i++ {
		ts.Append(sim.Time(i), float64(i))
	}
	if ts.Len() > 16 {
		t.Errorf("series grew to %d despite MaxSize 8", ts.Len())
	}
	// Order must be preserved.
	for i := 1; i < ts.Len(); i++ {
		if ts.Times[i] <= ts.Times[i-1] {
			t.Fatal("compaction broke ordering")
		}
	}
	// Newest sample must survive.
	_, v, _ := ts.Last()
	if v != 99 {
		t.Errorf("last value %v, want 99", v)
	}
}

func TestIdleSlotTracker(t *testing.T) {
	const (
		slot = 9 * sim.Microsecond
		difs = 34 * sim.Microsecond
	)
	k := NewIdleSlotTracker(slot, difs)
	if k.Average() != 0 {
		t.Error("initial average non-zero")
	}
	// DIFS + 18 µs idle = 2 countable slots, then busy.
	k.MediumIdle(0)
	k.MediumBusy(sim.Time(difs + 18*sim.Microsecond))
	if got := k.Average(); math.Abs(got-2) > 1e-9 {
		t.Errorf("Average = %v, want 2", got)
	}
	// Busy again with no intervening idle: contributes 0 idle slots.
	k.MediumBusy(sim.Time(100 * sim.Microsecond))
	if got := k.Average(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Average = %v, want 1 (2 slots over 2 periods)", got)
	}
	// A SIFS-sized gap merges into the ongoing exchange: no new period.
	base := sim.Time(200 * sim.Microsecond)
	k.MediumIdle(base)
	k.MediumBusy(base.Add(16 * sim.Microsecond))
	if got := k.Average(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Average = %v after SIFS merge, want 1", got)
	}
	// Duplicate MediumIdle must not restart the idle run.
	base = sim.Time(400 * sim.Microsecond)
	k.MediumIdle(base)
	k.MediumIdle(base.Add(5 * sim.Microsecond))
	k.MediumBusy(base.Add(difs + 9*sim.Microsecond))
	if got := k.Average(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Average = %v, want 1 (3 slots over 3 periods)", got)
	}
	k.Reset()
	if k.Average() != 0 {
		t.Error("Reset did not zero accumulators")
	}
}

func TestIdleSlotTrackerExactDIFSGap(t *testing.T) {
	k := NewIdleSlotTracker(9*sim.Microsecond, 34*sim.Microsecond)
	k.MediumIdle(0)
	k.MediumBusy(sim.Time(34 * sim.Microsecond)) // exactly DIFS: 0 slots, new period
	if got := k.Average(); got != 0 {
		t.Errorf("Average = %v, want 0", got)
	}
}

func TestIdleSlotTrackerPanicsOnBadSlot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero slot")
		}
	}()
	NewIdleSlotTracker(0, 0)
}

func TestIdleSlotTrackerPanicsOnNegativeDIFS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative DIFS")
		}
	}()
	NewIdleSlotTracker(9*sim.Microsecond, -1)
}
