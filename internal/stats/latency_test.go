package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sim"
)

func TestDurationHistEmpty(t *testing.T) {
	var h DurationHist
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestDurationHistSingleValue(t *testing.T) {
	var h DurationHist
	h.Observe(250 * sim.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 250*sim.Microsecond {
		t.Errorf("mean %v", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != 250*sim.Microsecond {
			t.Errorf("q%.2f = %v, want 250µs (single sample clamps to min==max)", q, got)
		}
	}
}

// Quantile uses rank ⌈q·n⌉: with three samples the median is the second
// order statistic, not the first.
func TestDurationHistQuantileRankCeil(t *testing.T) {
	var h DurationHist
	for _, v := range []sim.Duration{100 * sim.Microsecond, 200 * sim.Microsecond, 400 * sim.Microsecond} {
		h.Observe(v)
	}
	got := h.Quantile(0.5)
	// Rank ⌈1.5⌉ = 2 → the 200 µs sample's bucket (within one log-linear
	// bucket width).
	if got < 150*sim.Microsecond || got > 250*sim.Microsecond {
		t.Errorf("median of {100µs, 200µs, 400µs} = %v, want ≈200µs (rank-2 order statistic)", got)
	}
}

// Quantiles must land within one log-linear bucket (12.5% relative) of
// the exact order statistics for a broad spread of values.
func TestDurationHistQuantileAccuracy(t *testing.T) {
	var h DurationHist
	rng := sim.NewRNG(42)
	var exact []float64
	for i := 0; i < 20000; i++ {
		// Latencies spanning 10 µs .. ~100 ms, roughly log-uniform.
		v := sim.Duration(10e3 * math.Pow(10, 4*rng.Float64()))
		h.Observe(v)
		exact = append(exact, float64(v))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := exact[int(q*float64(len(exact)))-1]
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-want) / want; rel > 0.125+0.01 {
			t.Errorf("q%.2f: hist %v vs exact %v (off %.1f%%)", q, got, want, 100*rel)
		}
	}
}

// Merge must be exact: merging per-shard histograms in any grouping gives
// the same result as observing everything into one histogram.
func TestDurationHistMergeExact(t *testing.T) {
	rng := sim.NewRNG(7)
	var whole DurationHist
	shards := make([]DurationHist, 4)
	for i := 0; i < 10000; i++ {
		v := sim.Duration(rng.Intn(1_000_000_000))
		whole.Observe(v)
		shards[i%len(shards)].Observe(v)
	}
	var merged DurationHist
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged != whole {
		t.Error("merged histogram differs from whole-stream histogram")
	}
	// Merge into empty and from empty.
	var empty, copyOf DurationHist
	copyOf.Merge(&whole)
	if copyOf != whole {
		t.Error("merge into empty is not a copy")
	}
	whole.Merge(&empty)
	if copyOf != whole {
		t.Error("merging an empty histogram changed the receiver")
	}
}

func TestDurationHistNegativeClamps(t *testing.T) {
	var h DurationHist
	h.Observe(-5 * sim.Second)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative observation should clamp to zero: %+v", h)
	}
}

// Bucket mapping sanity: midpoints must be monotonically non-decreasing
// and each value must fall inside its own bucket's range.
func TestDurationHistBucketMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		mid := bucketMid(i)
		if mid < prev {
			t.Fatalf("bucket %d midpoint %d < previous %d", i, mid, prev)
		}
		prev = mid
	}
	for _, v := range []int64{0, 1, 7, 8, 9, 255, 256, 1 << 20, 1<<62 - 1} {
		if got := bucketOf(bucketMid(bucketOf(v))); got != bucketOf(v) {
			t.Errorf("value %d: midpoint leaves its bucket (%d vs %d)", v, got, bucketOf(v))
		}
	}
}
