package stats

import (
	"fmt"

	"repro/internal/sim"
)

// ThroughputMeter counts delivered payload bits and converts them to
// bits/second over arbitrary intervals. The AP owns one global meter plus
// one per station.
type ThroughputMeter struct {
	bits      int64
	start     sim.Time
	lastReset sim.Time
}

// NewThroughputMeter returns a meter whose epoch starts at now.
func NewThroughputMeter(now sim.Time) *ThroughputMeter {
	return &ThroughputMeter{start: now, lastReset: now}
}

// Account adds bits delivered payload bits.
func (m *ThroughputMeter) Account(bits int) { m.bits += int64(bits) }

// Bits returns the bits accumulated since the last window reset.
func (m *ThroughputMeter) Bits() int64 { return m.bits }

// Rate returns the average bits/second since the last window reset.
func (m *ThroughputMeter) Rate(now sim.Time) float64 {
	elapsed := now.Sub(m.lastReset).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.bits) / elapsed
}

// ResetWindow zeroes the counter and starts a new measurement window —
// the per-UPDATE_PERIOD measurement of Algorithms 1 and 2.
func (m *ThroughputMeter) ResetWindow(now sim.Time) {
	m.bits = 0
	m.lastReset = now
}

// WindowStart returns the start of the current window.
func (m *ThroughputMeter) WindowStart() sim.Time { return m.lastReset }

// Reset reinitialises the meter with its epoch at now, equivalent to
// constructing it afresh — the arena-reuse counterpart of
// NewThroughputMeter.
func (m *ThroughputMeter) Reset(now sim.Time) {
	*m = ThroughputMeter{start: now, lastReset: now}
}

// Reset empties the series in place, keeping the sample storage for
// reuse.
func (ts *TimeSeries) Reset(name string) {
	ts.Name = name
	ts.Times = ts.Times[:0]
	ts.Values = ts.Values[:0]
}

// Clone returns a deep copy with storage independent of the receiver —
// what simulator arenas hand out so a Result survives the arena's next
// run. An empty series clones to nil storage, indistinguishable from
// the zero value.
func (ts *TimeSeries) Clone() TimeSeries {
	out := TimeSeries{Name: ts.Name, MaxSize: ts.MaxSize}
	if len(ts.Times) > 0 {
		out.Times = append([]sim.Time(nil), ts.Times...)
		out.Values = append([]float64(nil), ts.Values...)
	}
	return out
}

// TimeSeries records (time, value) samples, e.g. throughput or the control
// variable over a run (Figs. 8–11).
type TimeSeries struct {
	Name    string
	Times   []sim.Time
	Values  []float64
	MaxSize int // 0 means unbounded
}

// Append adds a sample. When MaxSize is positive and reached, the oldest
// half of the series is compacted by dropping every other sample, which
// preserves the envelope of long runs at bounded memory.
func (ts *TimeSeries) Append(t sim.Time, v float64) {
	if ts.MaxSize > 0 && len(ts.Times) >= ts.MaxSize {
		keep := 0
		for i := 0; i < len(ts.Times); i += 2 {
			ts.Times[keep] = ts.Times[i]
			ts.Values[keep] = ts.Values[i]
			keep++
		}
		ts.Times = ts.Times[:keep]
		ts.Values = ts.Values[:keep]
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Last returns the most recent sample, or (0, NaN-free zero) when empty.
func (ts *TimeSeries) Last() (sim.Time, float64, bool) {
	if len(ts.Times) == 0 {
		return 0, 0, false
	}
	i := len(ts.Times) - 1
	return ts.Times[i], ts.Values[i], true
}

// MeanAfter returns the mean of samples with t ≥ from — used to measure
// converged throughput while excluding the adaptation transient.
func (ts *TimeSeries) MeanAfter(from sim.Time) float64 {
	var w Welford
	for i, t := range ts.Times {
		if t >= from {
			w.Add(ts.Values[i])
		}
	}
	return w.Mean()
}

// IdleSlotTracker measures the average number of idle backoff slots
// between consecutive transmissions as seen by an observer of the medium —
// the statistic IdleSense regulates and Table III reports.
//
// It follows the 802.11 sensing convention: an idle gap shorter than DIFS
// (e.g. the SIFS before an ACK) is part of the ongoing frame exchange, not
// a contention opportunity, so such gaps merge into one busy period; for
// longer gaps the first DIFS is mandatory overhead and only the remainder
// counts as idle slots.
type IdleSlotTracker struct {
	slot sim.Duration
	difs sim.Duration

	idleSince   sim.Time
	idleOpen    bool
	idleSlots   float64
	busyPeriods int64
}

// NewIdleSlotTracker returns a tracker for the given slot and DIFS
// durations.
func NewIdleSlotTracker(slot, difs sim.Duration) *IdleSlotTracker {
	if slot <= 0 {
		panic(fmt.Sprintf("stats: non-positive slot %v", slot))
	}
	if difs < 0 {
		panic(fmt.Sprintf("stats: negative DIFS %v", difs))
	}
	return &IdleSlotTracker{slot: slot, difs: difs}
}

// MediumIdle records that the medium became idle at t.
func (k *IdleSlotTracker) MediumIdle(t sim.Time) {
	if !k.idleOpen {
		k.idleOpen = true
		k.idleSince = t
	}
}

// MediumBusy records that a transmission started at t. Gaps of at least
// DIFS close the previous busy period, crediting (gap − DIFS)/slot idle
// slots; shorter gaps merge into the ongoing exchange.
func (k *IdleSlotTracker) MediumBusy(t sim.Time) {
	if k.idleOpen {
		gap := t.Sub(k.idleSince)
		k.idleOpen = false
		if gap < k.difs {
			return // same frame exchange (e.g. SIFS before an ACK)
		}
		k.idleSlots += float64(gap-k.difs) / float64(k.slot)
	}
	k.busyPeriods++
}

// Average returns mean idle slots per transmission, 0 before any busy
// period has completed.
func (k *IdleSlotTracker) Average() float64 {
	if k.busyPeriods == 0 {
		return 0
	}
	return k.idleSlots / float64(k.busyPeriods)
}

// Reset zeroes the accumulators but keeps the current idle/busy phase.
func (k *IdleSlotTracker) Reset() {
	k.idleSlots = 0
	k.busyPeriods = 0
}

// Rebind fully reinitialises the tracker for new slot/DIFS parameters —
// accumulators, phase and epoch — so a pooled simulator arena can reuse
// it across runs exactly as if freshly constructed.
func (k *IdleSlotTracker) Rebind(slot, difs sim.Duration) {
	if slot <= 0 {
		panic(fmt.Sprintf("stats: non-positive slot %v", slot))
	}
	if difs < 0 {
		panic(fmt.Sprintf("stats: negative DIFS %v", difs))
	}
	*k = IdleSlotTracker{slot: slot, difs: difs}
}
