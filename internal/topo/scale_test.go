package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// denseRef is the historical O(n²) connectivity representation, built
// with the exact loop New used before the grid index. It is the
// reference model for the dense-vs-indexed equivalence property: the
// sparse representation must reproduce every matrix-derived answer bit
// for bit.
type denseRef struct {
	senses  [][]bool
	decodes [][]bool
}

func buildDense(stations []Point, r Radii) *denseRef {
	n := len(stations)
	d := &denseRef{senses: make([][]bool, n), decodes: make([][]bool, n)}
	for i := 0; i < n; i++ {
		d.senses[i] = make([]bool, n)
		d.decodes[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i == j {
				d.senses[i][j] = true
				d.decodes[i][j] = true
				continue
			}
			dist := stations[i].Distance(stations[j])
			d.senses[i][j] = dist <= r.Sensing
			d.decodes[i][j] = dist <= r.Transmission
		}
	}
	return d
}

func (d *denseRef) sensedBy(i int) []int32 {
	out := []int32{}
	for j := range d.senses {
		if j != i && d.senses[j][i] {
			out = append(out, int32(j))
		}
	}
	return out
}

func (d *denseRef) hiddenPairs() [][2]int {
	var pairs [][2]int
	for i := range d.senses {
		for j := i + 1; j < len(d.senses); j++ {
			if !d.senses[i][j] {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}

func (d *denseRef) fullyConnected() bool {
	for i := range d.senses {
		for j := range d.senses[i] {
			if !d.senses[i][j] {
				return false
			}
		}
	}
	return true
}

// equivalent checks every matrix-derived accessor of tp against the
// dense reference.
func equivalent(t *testing.T, tp *Topology, ref *denseRef) bool {
	t.Helper()
	n := tp.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if tp.Senses(i, j) != ref.senses[i][j] {
				t.Logf("Senses(%d,%d) = %v, dense says %v", i, j, tp.Senses(i, j), ref.senses[i][j])
				return false
			}
			if tp.Decodes(i, j) != ref.decodes[i][j] {
				t.Logf("Decodes(%d,%d) = %v, dense says %v", i, j, tp.Decodes(i, j), ref.decodes[i][j])
				return false
			}
		}
		got, want := tp.SensedBy(i), ref.sensedBy(i)
		if len(got) != len(want) {
			t.Logf("SensedBy(%d) = %v, dense says %v", i, got, want)
			return false
		}
		for k := range got {
			if got[k] != want[k] {
				t.Logf("SensedBy(%d) = %v, dense says %v", i, got, want)
				return false
			}
		}
	}
	gotPairs, wantPairs := tp.HiddenPairs(), ref.hiddenPairs()
	if len(gotPairs) != len(wantPairs) {
		t.Logf("HiddenPairs: %d pairs, dense says %d", len(gotPairs), len(wantPairs))
		return false
	}
	for k := range gotPairs {
		if gotPairs[k] != wantPairs[k] {
			t.Logf("HiddenPairs[%d] = %v, dense says %v", k, gotPairs[k], wantPairs[k])
			return false
		}
	}
	if got, want := tp.HiddenPairCount(), int64(len(wantPairs)); got != want {
		t.Logf("HiddenPairCount = %d, dense says %d", got, want)
		return false
	}
	if got, want := tp.FullyConnected(), ref.fullyConnected(); got != want {
		t.Logf("FullyConnected = %v, dense says %v", got, want)
		return false
	}
	return true
}

// TestGridIndexedAdjacencyMatchesDense is the dense-vs-indexed
// equivalence property: on random UniformDisc layouts (the paper's
// hidden-node construction, mixed radii so hidden pairs actually occur)
// every accessor must agree with the historical dense matrices.
func TestGridIndexedAdjacencyMatchesDense(t *testing.T) {
	prop := func(seed int64, nRaw uint8, wide bool) bool {
		n := 1 + int(nRaw)%60
		radius := 16.0
		if wide {
			radius = 20 // beyond-rim draws: more hidden pairs
		}
		rng := sim.NewRNG(seed)
		pts := UniformDisc(n, radius, rng)
		r := PaperRadii()
		return equivalent(t, New(Point{}, pts, r), buildDense(pts, r))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGridIndexedAdjacencyMatchesDenseClusters runs the same equivalence
// on the deterministic TwoClusters family across separations straddling
// the sensing radius (fully connected, boundary, maximally hidden).
func TestGridIndexedAdjacencyMatchesDenseClusters(t *testing.T) {
	for _, sep := range []float64{4, 12, 23.9, 24, 24.1, 30} {
		for _, n := range []int{2, 3, 10, 25} {
			pts := TwoClusters(n, sep)
			r := PaperRadii()
			if !equivalent(t, New(Point{}, pts, r), buildDense(pts, r)) {
				t.Fatalf("n=%d separation=%g: grid-indexed adjacency diverged from dense", n, sep)
			}
		}
	}
}

// TestSensedByZeroAlloc pins the satellite fix: SensedBy serves a view
// into the precomputed neighbour storage, so the per-station setup loop
// in eventsim costs zero allocations per call instead of O(n) each.
func TestSensedByZeroAlloc(t *testing.T) {
	rng := sim.NewRNG(11)
	tp := New(Point{}, UniformDisc(64, 16, rng), PaperRadii())
	tp.SensedBy(0) // materialise the adjacency outside the measurement
	var sink []int32
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < tp.N(); i++ {
			sink = tp.SensedBy(i)
		}
	}); avg != 0 {
		t.Errorf("SensedBy allocates %.2f per full sweep, want 0", avg)
	}
	_ = sink
}

// TestEnsureAdjacencyBudget: a layout whose neighbour lists exceed the
// entry budget must be refused with a diagnosable error before any
// allocation, and an unbounded call must still succeed afterwards.
func TestEnsureAdjacencyBudget(t *testing.T) {
	tp := New(Point{}, CircleEdge(10, 8), PaperRadii()) // 10·9 = 90 entries
	if err := tp.EnsureAdjacency(89); err == nil {
		t.Fatal("EnsureAdjacency accepted a layout over the entry budget")
	}
	if err := tp.EnsureAdjacency(90); err != nil {
		t.Fatalf("EnsureAdjacency rejected a layout exactly at the budget: %v", err)
	}
	if got := len(tp.SensedBy(0)); got != 9 {
		t.Fatalf("SensedBy(0) has %d neighbours after materialisation, want 9", got)
	}
	// Already materialised: any budget now passes.
	if err := tp.EnsureAdjacency(1); err != nil {
		t.Fatalf("EnsureAdjacency re-check failed after materialisation: %v", err)
	}
}

// TestScaleTierTopologies exercises the newly opened regime: topology
// construction at 100k stations must stay O(n·degree) — instant for the
// fully connected circle (bounding-box fast path, no adjacency ever
// materialised) and cheap for a sparse wide-area disc where the grid
// prunes nearly all candidate pairs.
func TestScaleTierTopologies(t *testing.T) {
	const n = 100_000
	// The slotted tier's topology: everyone on a radius-8 circle. The
	// bounding-box diagonal (16√2 < 24) proves full connectivity in O(n).
	conn := New(Point{}, CircleEdge(n, 8), PaperRadii())
	if !conn.FullyConnected() {
		t.Fatal("100k-station radius-8 circle must be fully connected")
	}
	if hp := conn.HiddenPairCount(); hp != 0 {
		t.Fatalf("fully connected circle reports %d hidden pairs", hp)
	}

	// A sparse regime the dense representation could never hold: 100k
	// stations over a 4 km disc (~37 sensed neighbours each on average).
	if testing.Short() {
		return
	}
	rng := sim.NewRNG(5)
	sparse := New(Point{}, UniformDisc(n, 2000, rng), PaperRadii())
	if sparse.FullyConnected() {
		t.Fatal("4 km disc cannot be fully connected")
	}
	if err := sparse.EnsureAdjacency(DefaultAdjacencyBudget); err != nil {
		t.Fatalf("sparse 100k adjacency over budget: %v", err)
	}
	var edges int64
	for i := 0; i < n; i++ {
		edges += int64(len(sparse.SensedBy(i)))
	}
	if edges == 0 {
		t.Fatal("sparse 100k topology has no sensed edges at all")
	}
	wantHidden := int64(n)*int64(n-1)/2 - edges/2
	if got := sparse.HiddenPairCount(); got != wantHidden {
		t.Fatalf("HiddenPairCount = %d, degree sum says %d", got, wantHidden)
	}
	// Spot-check list membership against the distance predicate.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		for _, j32 := range sparse.SensedBy(i) {
			if !sparse.Senses(int(j32), i) {
				t.Fatalf("station %d lists %d but the distance predicate disagrees", i, j32)
			}
		}
	}
}
