package topo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCircleEdgeFullyConnected(t *testing.T) {
	// The paper's "no hidden nodes" configuration: nodes on the edge of a
	// disc of radius 8, transmission 16, sensing 24. Max pairwise distance
	// is the diameter 16 ≤ 24, so no hidden pairs.
	for _, n := range []int{2, 10, 40, 60} {
		tp := New(Point{}, CircleEdge(n, 8), PaperRadii())
		if !tp.FullyConnected() {
			t.Errorf("n=%d: circle edge r=8 should be fully connected", n)
		}
		if got := tp.HiddenPairs(); len(got) != 0 {
			t.Errorf("n=%d: %d hidden pairs, want 0", n, len(got))
		}
		if err := tp.Validate(); err != nil {
			t.Errorf("n=%d: Validate: %v", n, err)
		}
	}
}

func TestCircleEdgeGeometry(t *testing.T) {
	pts := CircleEdge(4, 8)
	for i, p := range pts {
		if d := p.Distance(Point{}); math.Abs(d-8) > 1e-9 {
			t.Errorf("station %d at distance %v from AP, want 8", i, d)
		}
	}
	// Opposite points are a diameter apart.
	if d := pts[0].Distance(pts[2]); math.Abs(d-16) > 1e-9 {
		t.Errorf("diameter = %v, want 16", d)
	}
}

func TestTwoClustersHidden(t *testing.T) {
	// Separation 30 m > 24 m sensing: cross-cluster pairs all hidden, but
	// each node is within 15 m < 16 m of the AP so uplink still works.
	tp := New(Point{}, TwoClusters(10, 30), PaperRadii())
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tp.FullyConnected() {
		t.Fatal("two clusters 30 m apart should contain hidden pairs")
	}
	pairs := tp.HiddenPairs()
	want := 5 * 5 // every cross-cluster pair
	if len(pairs) != want {
		t.Errorf("hidden pairs = %d, want %d", len(pairs), want)
	}
	for _, pr := range pairs {
		// Hidden pairs must be cross-cluster (one even, one odd index).
		if pr[0]%2 == pr[1]%2 {
			t.Errorf("pair %v is same-cluster but reported hidden", pr)
		}
	}
}

func TestSensingSymmetricAndReflexive(t *testing.T) {
	rng := sim.NewRNG(3)
	tp := New(Point{}, UniformDisc(30, 20, rng), PaperRadii())
	for i := 0; i < tp.N(); i++ {
		if !tp.Senses(i, i) || !tp.Decodes(i, i) {
			t.Fatalf("station %d does not sense/decode itself", i)
		}
		for j := 0; j < tp.N(); j++ {
			if tp.Senses(i, j) != tp.Senses(j, i) {
				t.Fatalf("sensing not symmetric for (%d,%d)", i, j)
			}
			if tp.Decodes(i, j) && !tp.Senses(i, j) {
				t.Fatalf("(%d,%d): decodable but not sensed; decode radius must be within sensing radius", i, j)
			}
		}
	}
}

func TestUniformDiscInsideRadius(t *testing.T) {
	prop := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		for _, p := range UniformDisc(50, 16, rng) {
			if p.Distance(Point{}) > 16+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDiscHiddenPairsAppear(t *testing.T) {
	// With radius 20 the paper observes hidden nodes frequently. Over many
	// seeds at N=40 at least one topology must contain hidden pairs.
	found := false
	for seed := int64(0); seed < 10; seed++ {
		rng := sim.NewRNG(seed)
		tp := New(Point{}, UniformDisc(40, 20, rng), Radii{Transmission: 20, Sensing: 24})
		if len(tp.HiddenPairs()) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no hidden pairs in any disc-radius-20 topology across 10 seeds")
	}
}

func TestValidateRejectsOutOfRangeStation(t *testing.T) {
	tp := New(Point{}, []Point{{X: 17}}, PaperRadii())
	if err := tp.Validate(); err == nil {
		t.Error("Validate accepted a station beyond the AP transmission radius")
	}
}

func TestSensedBy(t *testing.T) {
	// Stations 0 and 2 sit 26 m apart (hidden pair); station 1 is within
	// sensing range (≈16.4 m) of both.
	pts := []Point{{X: -13}, {X: 0, Y: 10}, {X: 13}}
	tp := New(Point{}, pts, PaperRadii())
	got := tp.SensedBy(1)
	if len(got) != 2 {
		t.Fatalf("SensedBy(1) = %v, want both neighbours", got)
	}
	if tp.Senses(0, 2) {
		t.Error("stations 0 and 2 are 26 m apart and must be hidden")
	}
}

func TestHiddenPairsMatchesDistance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		pts := UniformDisc(20, 16, rng)
		tp := New(Point{}, pts, PaperRadii())
		count := 0
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if pts[i].Distance(pts[j]) > 24 {
					count++
				}
			}
		}
		return count == len(tp.HiddenPairs())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadRadii(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted non-positive radii")
		}
	}()
	New(Point{}, CircleEdge(3, 8), Radii{})
}

func TestNewCopiesStations(t *testing.T) {
	pts := CircleEdge(3, 8)
	tp := New(Point{}, pts, PaperRadii())
	pts[0] = Point{X: 999}
	if tp.Stations[0].X == 999 {
		t.Error("Topology aliases the caller's slice")
	}
}

// The rim-projection radius is derived from the radii, not a second
// magic constant: changing the decode radius must move the rim with it,
// and for the paper's radii the derived value must reproduce the
// historical 15.999 m literal exactly (goldens depend on the projected
// coordinates bit for bit).
func TestRimDerivedFromRadii(t *testing.T) {
	if rim := PaperRadii().Rim(); rim != 15.999 {
		t.Fatalf("PaperRadii().Rim() = %.17g, want exactly 15.999", rim)
	}
	for _, r := range []Radii{PaperRadii(), {Transmission: 10, Sensing: 30}, {Transmission: 100, Sensing: 120}} {
		rim := r.Rim()
		if !(rim < r.Transmission) {
			t.Errorf("rim %v not inside transmission radius %v", rim, r.Transmission)
		}
		if got, want := r.Transmission-rim, RimInset; math.Abs(got-want) > 1e-12 {
			t.Errorf("rim inset = %v, want %v", got, want)
		}
	}
}

// ClampToRim must leave interior points untouched, bring every exterior
// point to exactly the rim radius (AP-decodable), and be idempotent.
func TestClampToRim(t *testing.T) {
	r := PaperRadii()
	rng := sim.NewRNG(7)
	pts := UniformDisc(64, 2*r.Transmission, rng)
	inside := map[int]Point{}
	for i, p := range pts {
		if p.Distance(Point{}) <= r.Transmission {
			inside[i] = p
		}
	}
	ClampToRim(pts, r)
	for i, p := range pts {
		d := p.Distance(Point{})
		if d > r.Transmission {
			t.Fatalf("point %d at %.6f m still beyond the transmission radius", i, d)
		}
		if orig, ok := inside[i]; ok {
			if p != orig {
				t.Errorf("interior point %d moved: %v -> %v", i, orig, p)
			}
		} else if math.Abs(d-r.Rim()) > 1e-9 {
			t.Errorf("projected point %d at %.9f m, want the rim %.9f m", i, d, r.Rim())
		}
	}
	// Idempotence: a second clamp is a no-op.
	again := append([]Point(nil), pts...)
	ClampToRim(again, r)
	for i := range pts {
		if again[i] != pts[i] {
			t.Errorf("clamp not idempotent at point %d", i)
		}
	}
	// The projected layout must satisfy the AP-connectivity assumption.
	if err := New(Point{}, pts, r).Validate(); err != nil {
		t.Errorf("clamped topology invalid: %v", err)
	}
}
