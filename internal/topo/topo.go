// Package topo models WLAN geometry: node placement around an access point
// and the unit-disc connectivity that determines which stations can sense
// or decode each other's transmissions.
//
// The paper configures ns-3 so that transmissions are decodable within
// 16 m and carrier-sensable within 24 m (Table I). Two stations farther
// than the sensing radius apart are hidden from each other. This package
// reproduces exactly that geometry: connectivity is a pure function of
// pairwise distance and the two radii.
package topo

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/sim"
)

// Point is a 2-D position in metres. The access point sits at the origin
// by convention.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between p and q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Radii groups the two disc radii of the PHY model.
type Radii struct {
	// Transmission is the maximum distance at which a frame can be
	// decoded (16 m for the paper's ns-3 configuration).
	Transmission float64
	// Sensing is the maximum distance at which a transmission raises
	// carrier sense (24 m in the paper).
	Sensing float64
}

// PaperRadii returns the radii used throughout the paper's evaluation.
func PaperRadii() Radii { return Radii{Transmission: 16, Sensing: 24} }

// RimInset is how far inside the transmission radius rim-projected
// stations land. Projection targets Rim() = Transmission − RimInset
// rather than the transmission radius itself so float rounding in the
// scale factor can never push a projected station past the decode
// boundary and break AP connectivity.
const RimInset = 0.001

// Rim returns the radius stations are projected to when a random draw
// places them beyond the transmission radius: just inside it, so every
// projected station keeps AP connectivity (the paper's Fig. 6–7
// construction). For the paper's radii this is exactly 15.999 m.
func (r Radii) Rim() float64 { return r.Transmission - RimInset }

// ClampToRim projects, in place, every point farther from the origin
// (the AP) than the transmission radius onto Rim(). Points inside the
// radius are untouched, so clamping is idempotent.
func ClampToRim(pts []Point, r Radii) {
	rim := r.Rim()
	for i, p := range pts {
		if d := p.Distance(Point{}); d > r.Transmission {
			scale := rim / d
			pts[i] = Point{X: p.X * scale, Y: p.Y * scale}
		}
	}
}

// Topology is an immutable snapshot of station positions plus the derived
// sensing/decoding sets. Station indices run 0..N-1; the access point is a
// separate entity at AP.
//
// Connectivity is a pure function of pairwise distance and the two radii,
// and is represented sparsely: pair queries (Senses, Decodes) are O(1)
// distance predicates, while set queries (SensedBy, degrees, hidden-pair
// counts) are served by a spatial grid index built in New — O(n) — plus
// per-station sorted neighbour lists materialised lazily in
// O(n·avg-degree) time and memory. Nothing ever allocates an n×n matrix,
// which is what lets the scale tier lift station counts to 100k where
// the dense representation capped out at 512.
type Topology struct {
	AP       Point
	Stations []Point
	Radii    Radii

	grid grid // spatial index over Stations, cell size ≥ Radii.Sensing

	// Lazily derived adjacency, guarded by mu so a Topology stays safe
	// for concurrent readers exactly as the dense matrices were.
	mu         sync.Mutex
	senseDeg   []int32 // sensed-neighbour count per station (excludes self)
	senseEdges int64   // sum over senseDeg (each unordered pair counts twice)
	senseOff   []int64 // CSR offsets into senseAdj, len n+1; nil until materialised
	senseAdj   []int32 // ascending neighbour ids per station
}

// DefaultAdjacencyBudget bounds materialised neighbour-list entries
// (int32 ids, so ~512 MB at the cap). The paper's AP-bounded geometry —
// every station within 16 m of the AP, sensing radius 24 m — is nearly
// complete, so explicit adjacency is inherently Θ(n²) there and this
// budget is what keeps a dense large-n request a clean error instead of
// an OOM. Sparse layouts (big worlds, small radii) and the slotted
// fully-connected tier, which never materialises adjacency, scale to
// MaxStations unhindered.
const DefaultAdjacencyBudget = 128 << 20

// New builds a topology and its spatial grid index. It runs in O(n) time
// and memory; connectivity derivations are computed on first use.
func New(ap Point, stations []Point, r Radii) *Topology {
	if r.Transmission <= 0 || r.Sensing <= 0 {
		panic(fmt.Sprintf("topo: non-positive radii %+v", r))
	}
	t := &Topology{
		AP:       ap,
		Stations: append([]Point(nil), stations...),
		Radii:    r,
	}
	t.grid.build(t.Stations, r.Sensing)
	return t
}

// N returns the number of stations (excluding the AP).
func (t *Topology) N() int { return len(t.Stations) }

// Senses reports whether station i performs carrier sense on station j's
// transmissions. A station trivially "senses" itself; it is never hidden
// from itself (the paper assumes t ∈ T_t).
func (t *Topology) Senses(i, j int) bool {
	if i == j {
		_ = t.Stations[i] // keep the historical bounds panic
		return true
	}
	return t.Stations[i].Distance(t.Stations[j]) <= t.Radii.Sensing
}

// Decodes reports whether station i can decode frames sent by station j.
func (t *Topology) Decodes(i, j int) bool {
	if i == j {
		_ = t.Stations[i] // keep the historical bounds panic
		return true
	}
	return t.Stations[i].Distance(t.Stations[j]) <= t.Radii.Transmission
}

// StationHearsAP reports whether station i can decode AP transmissions.
// The paper assumes all stations receive all AP transmissions; this method
// verifies the geometric claim for a concrete layout.
func (t *Topology) StationHearsAP(i int) bool {
	return t.Stations[i].Distance(t.AP) <= t.Radii.Transmission
}

// StationSensesAP reports whether station i senses AP transmissions.
func (t *Topology) StationSensesAP(i int) bool {
	return t.Stations[i].Distance(t.AP) <= t.Radii.Sensing
}

// APDecodes reports whether the AP can decode station i. In the paper all
// stations lie within the transmission radius of the AP.
func (t *Topology) APDecodes(i int) bool {
	return t.Stations[i].Distance(t.AP) <= t.Radii.Transmission
}

// EnsureAdjacency materialises the per-station sensed-neighbour lists if
// they are not already built. maxEntries bounds the total list entries
// (≤ 0 means unbounded): a topology whose sensed-edge count exceeds the
// budget returns an error before allocating, so a dense large-n layout
// degrades into a diagnosable refusal instead of an OOM. Engines that
// need explicit adjacency (eventsim) call this with
// DefaultAdjacencyBudget at configuration time.
func (t *Topology) EnsureAdjacency(maxEntries int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.senseOff != nil {
		return nil
	}
	t.ensureDegreesLocked()
	if maxEntries > 0 && t.senseEdges > maxEntries {
		return fmt.Errorf("topo: neighbour lists for %d stations need %d entries, over the %d-entry budget (the layout is too dense for explicit adjacency at this scale)",
			len(t.Stations), t.senseEdges, maxEntries)
	}
	n := len(t.Stations)
	off := make([]int64, n+1)
	for i, d := range t.senseDeg {
		off[i+1] = off[i] + int64(d)
	}
	adj := make([]int32, t.senseEdges)
	cursor := make([]int64, n)
	// Visiting transmitters j in ascending order and appending j to every
	// sensing neighbour's list fills each list already sorted — the exact
	// ascending order the dense SensedBy scan produced.
	for j := range t.Stations {
		pj := t.Stations[j]
		t.grid.forNear(pj, func(i32 int32) {
			i := int(i32)
			if i != j && t.Stations[i].Distance(pj) <= t.Radii.Sensing {
				adj[off[i]+cursor[i]] = int32(j)
				cursor[i]++
			}
		})
	}
	t.senseOff, t.senseAdj = off, adj
	return nil
}

// ensureDegreesLocked computes per-station sensed degrees via the grid
// index: O(n·avg-degree) time, O(n) memory. Caller holds t.mu.
func (t *Topology) ensureDegreesLocked() {
	if t.senseDeg != nil {
		return
	}
	n := len(t.Stations)
	deg := make([]int32, n)
	edges := int64(0)
	for j := range t.Stations {
		pj := t.Stations[j]
		t.grid.forNear(pj, func(i32 int32) {
			i := int(i32)
			if i != j && t.Stations[i].Distance(pj) <= t.Radii.Sensing {
				deg[i]++
				edges++
			}
		})
	}
	t.senseDeg = deg
	t.senseEdges = edges
}

// SensedBy returns the indices of stations that sense station i
// (excluding i itself), ascending. The slice is a view into the
// topology's shared neighbour storage — callers must treat it as
// read-only — so repeated calls allocate nothing (the alloc guardrail
// pins this). The first call materialises the adjacency without a
// budget; engines that must bound memory call EnsureAdjacency first.
func (t *Topology) SensedBy(i int) []int32 {
	_ = t.EnsureAdjacency(0) // cannot fail unbounded
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.senseAdj[t.senseOff[i]:t.senseOff[i+1]:t.senseOff[i+1]]
}

// HiddenPairs returns all unordered station pairs {i, j} that cannot sense
// each other, in (i ascending, j ascending) order. The count of such pairs
// is the paper's measure of "how hidden" a topology is. Enumeration is
// inherently O(n²) in the worst case; at scale, prefer HiddenPairCount.
func (t *Topology) HiddenPairs() [][2]int {
	if t.allWithinSensing() {
		return nil
	}
	var pairs [][2]int
	for i := 0; i < t.N(); i++ {
		pi := t.Stations[i]
		for j := i + 1; j < t.N(); j++ {
			if !(pi.Distance(t.Stations[j]) <= t.Radii.Sensing) {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}

// HiddenPairCount returns the number of unordered hidden pairs without
// enumerating them: the pair total minus half the sensed-edge count from
// the grid-indexed degree pass. Fully bounded layouts short-circuit to
// zero via the bounding box, so the slotted tier's connected topologies
// answer in O(1) even at 100k stations.
func (t *Topology) HiddenPairCount() int64 {
	n := int64(t.N())
	if n < 2 || t.allWithinSensing() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureDegreesLocked()
	return n*(n-1)/2 - t.senseEdges/2
}

// FullyConnected reports whether every station senses every other station,
// i.e. the network has no hidden pairs.
func (t *Topology) FullyConnected() bool {
	n := t.N()
	if n <= 1 || t.allWithinSensing() {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureDegreesLocked()
	return t.senseEdges == int64(n)*int64(n-1)
}

// allWithinSensing reports whether the station bounding box alone proves
// every pairwise distance is within the sensing radius — the fast path
// that keeps connectivity checks O(n) for the fully-connected layouts
// the slotted engine requires (e.g. the paper's radius-8 circle, whose
// bounding-box diagonal 16√2 ≈ 22.6 m is inside the 24 m radius).
func (t *Topology) allWithinSensing() bool {
	if len(t.Stations) == 0 {
		return true
	}
	return math.Hypot(t.grid.w, t.grid.h) <= t.Radii.Sensing
}

// Validate checks the standing assumptions of the paper's system model:
// every station must be decodable by the AP (uplink works) and must decode
// the AP (ACKs and control broadcasts work). It returns a descriptive error
// for the first violated assumption.
func (t *Topology) Validate() error {
	for i := range t.Stations {
		if !t.APDecodes(i) {
			return fmt.Errorf("topo: station %d at distance %.2f m exceeds AP transmission radius %.2f m",
				i, t.Stations[i].Distance(t.AP), t.Radii.Transmission)
		}
		if !t.StationHearsAP(i) {
			return fmt.Errorf("topo: station %d cannot decode the AP", i)
		}
	}
	return nil
}

// CircleEdge places n stations evenly on the circle of the given radius
// centred on the AP at the origin. With radius 8 and the paper's radii
// every pairwise distance is ≤ 16 < 24, so the network is fully connected.
func CircleEdge(n int, radius float64) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
	}
	return pts
}

// UniformDisc places n stations uniformly at random in the disc of the
// given radius centred on the AP. With radius 16 or 20 and sensing radius
// 24, hidden pairs occur with non-zero probability — the paper's hidden
// node construction.
func UniformDisc(n int, radius float64, rng *sim.RNG) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		// Uniform area density: r = R·sqrt(U).
		r := radius * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		pts[i] = Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	}
	return pts
}

// TwoClusters places two groups of n/2 stations in small clusters on
// opposite sides of the AP, separation apart. With separation larger than
// the sensing radius this yields a deterministic, maximally hidden
// topology: every cross-cluster pair is hidden. Useful for repeatable
// hidden-node tests.
func TwoClusters(n int, separation float64) []Point {
	pts := make([]Point, n)
	half := separation / 2
	for i := 0; i < n; i++ {
		// Spread cluster members slightly so positions are distinct.
		off := 0.1 * float64(i/2)
		if i%2 == 0 {
			pts[i] = Point{X: -half, Y: off}
		} else {
			pts[i] = Point{X: half, Y: off}
		}
	}
	return pts
}
