// Package topo models WLAN geometry: node placement around an access point
// and the unit-disc connectivity that determines which stations can sense
// or decode each other's transmissions.
//
// The paper configures ns-3 so that transmissions are decodable within
// 16 m and carrier-sensable within 24 m (Table I). Two stations farther
// than the sensing radius apart are hidden from each other. This package
// reproduces exactly that geometry: connectivity is a pure function of
// pairwise distance and the two radii.
package topo

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Point is a 2-D position in metres. The access point sits at the origin
// by convention.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between p and q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Radii groups the two disc radii of the PHY model.
type Radii struct {
	// Transmission is the maximum distance at which a frame can be
	// decoded (16 m for the paper's ns-3 configuration).
	Transmission float64
	// Sensing is the maximum distance at which a transmission raises
	// carrier sense (24 m in the paper).
	Sensing float64
}

// PaperRadii returns the radii used throughout the paper's evaluation.
func PaperRadii() Radii { return Radii{Transmission: 16, Sensing: 24} }

// RimInset is how far inside the transmission radius rim-projected
// stations land. Projection targets Rim() = Transmission − RimInset
// rather than the transmission radius itself so float rounding in the
// scale factor can never push a projected station past the decode
// boundary and break AP connectivity.
const RimInset = 0.001

// Rim returns the radius stations are projected to when a random draw
// places them beyond the transmission radius: just inside it, so every
// projected station keeps AP connectivity (the paper's Fig. 6–7
// construction). For the paper's radii this is exactly 15.999 m.
func (r Radii) Rim() float64 { return r.Transmission - RimInset }

// ClampToRim projects, in place, every point farther from the origin
// (the AP) than the transmission radius onto Rim(). Points inside the
// radius are untouched, so clamping is idempotent.
func ClampToRim(pts []Point, r Radii) {
	rim := r.Rim()
	for i, p := range pts {
		if d := p.Distance(Point{}); d > r.Transmission {
			scale := rim / d
			pts[i] = Point{X: p.X * scale, Y: p.Y * scale}
		}
	}
}

// Topology is an immutable snapshot of station positions plus the derived
// sensing/decoding sets. Station indices run 0..N-1; the access point is a
// separate entity at AP.
type Topology struct {
	AP       Point
	Stations []Point
	Radii    Radii

	senses  [][]bool // senses[i][j]: station i senses station j's transmissions
	decodes [][]bool // decodes[i][j]: station i can decode station j
}

// New builds a topology and precomputes the connectivity matrices.
func New(ap Point, stations []Point, r Radii) *Topology {
	if r.Transmission <= 0 || r.Sensing <= 0 {
		panic(fmt.Sprintf("topo: non-positive radii %+v", r))
	}
	t := &Topology{
		AP:       ap,
		Stations: append([]Point(nil), stations...),
		Radii:    r,
	}
	n := len(stations)
	t.senses = make([][]bool, n)
	t.decodes = make([][]bool, n)
	for i := 0; i < n; i++ {
		t.senses[i] = make([]bool, n)
		t.decodes[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i == j {
				// A station trivially "senses" itself; it is never
				// hidden from itself (the paper assumes t ∈ T_t).
				t.senses[i][j] = true
				t.decodes[i][j] = true
				continue
			}
			d := stations[i].Distance(stations[j])
			t.senses[i][j] = d <= r.Sensing
			t.decodes[i][j] = d <= r.Transmission
		}
	}
	return t
}

// N returns the number of stations (excluding the AP).
func (t *Topology) N() int { return len(t.Stations) }

// Senses reports whether station i performs carrier sense on station j's
// transmissions.
func (t *Topology) Senses(i, j int) bool { return t.senses[i][j] }

// Decodes reports whether station i can decode frames sent by station j.
func (t *Topology) Decodes(i, j int) bool { return t.decodes[i][j] }

// StationHearsAP reports whether station i can decode AP transmissions.
// The paper assumes all stations receive all AP transmissions; this method
// verifies the geometric claim for a concrete layout.
func (t *Topology) StationHearsAP(i int) bool {
	return t.Stations[i].Distance(t.AP) <= t.Radii.Transmission
}

// StationSensesAP reports whether station i senses AP transmissions.
func (t *Topology) StationSensesAP(i int) bool {
	return t.Stations[i].Distance(t.AP) <= t.Radii.Sensing
}

// APDecodes reports whether the AP can decode station i. In the paper all
// stations lie within the transmission radius of the AP.
func (t *Topology) APDecodes(i int) bool {
	return t.Stations[i].Distance(t.AP) <= t.Radii.Transmission
}

// SensedBy returns the indices of stations that sense station i
// (excluding i itself).
func (t *Topology) SensedBy(i int) []int {
	var out []int
	for j := range t.Stations {
		if j != i && t.senses[j][i] {
			out = append(out, j)
		}
	}
	return out
}

// HiddenPairs returns all unordered station pairs {i, j} that cannot sense
// each other. The count of such pairs is the paper's measure of "how
// hidden" a topology is.
func (t *Topology) HiddenPairs() [][2]int {
	var pairs [][2]int
	for i := 0; i < t.N(); i++ {
		for j := i + 1; j < t.N(); j++ {
			if !t.senses[i][j] {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}

// FullyConnected reports whether every station senses every other station,
// i.e. the network has no hidden pairs.
func (t *Topology) FullyConnected() bool {
	for i := 0; i < t.N(); i++ {
		for j := 0; j < t.N(); j++ {
			if !t.senses[i][j] {
				return false
			}
		}
	}
	return true
}

// Validate checks the standing assumptions of the paper's system model:
// every station must be decodable by the AP (uplink works) and must decode
// the AP (ACKs and control broadcasts work). It returns a descriptive error
// for the first violated assumption.
func (t *Topology) Validate() error {
	for i := range t.Stations {
		if !t.APDecodes(i) {
			return fmt.Errorf("topo: station %d at distance %.2f m exceeds AP transmission radius %.2f m",
				i, t.Stations[i].Distance(t.AP), t.Radii.Transmission)
		}
		if !t.StationHearsAP(i) {
			return fmt.Errorf("topo: station %d cannot decode the AP", i)
		}
	}
	return nil
}

// CircleEdge places n stations evenly on the circle of the given radius
// centred on the AP at the origin. With radius 8 and the paper's radii
// every pairwise distance is ≤ 16 < 24, so the network is fully connected.
func CircleEdge(n int, radius float64) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)}
	}
	return pts
}

// UniformDisc places n stations uniformly at random in the disc of the
// given radius centred on the AP. With radius 16 or 20 and sensing radius
// 24, hidden pairs occur with non-zero probability — the paper's hidden
// node construction.
func UniformDisc(n int, radius float64, rng *sim.RNG) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		// Uniform area density: r = R·sqrt(U).
		r := radius * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		pts[i] = Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
	}
	return pts
}

// TwoClusters places two groups of n/2 stations in small clusters on
// opposite sides of the AP, separation apart. With separation larger than
// the sensing radius this yields a deterministic, maximally hidden
// topology: every cross-cluster pair is hidden. Useful for repeatable
// hidden-node tests.
func TwoClusters(n int, separation float64) []Point {
	pts := make([]Point, n)
	half := separation / 2
	for i := 0; i < n; i++ {
		// Spread cluster members slightly so positions are distinct.
		off := 0.1 * float64(i/2)
		if i%2 == 0 {
			pts[i] = Point{X: -half, Y: off}
		} else {
			pts[i] = Point{X: half, Y: off}
		}
	}
	return pts
}
