package topo

// Spatial index for the scale tier: a uniform grid over the station
// bounding box with cell size ≥ the sensing radius. Any two stations
// within sensing range of each other then sit in the same or adjacent
// cells, so every adjacency question — neighbour lists, degrees, hidden
// pair counts — scans at most the 3×3 cell block around a station
// instead of all n stations. Building the grid is a counting sort:
// O(n) time, O(n + cells) memory, no n×n anything.
//
// The grid only narrows *candidates*; membership is always decided by
// the same inclusive pairwise-distance predicate the dense matrices
// used, so the derived connectivity is bit-identical to the historical
// representation (the dense-vs-indexed equivalence property test pins
// this).

const (
	// gridMaxDim caps the grid resolution per axis so a geometrically
	// huge custom layout cannot demand an unbounded number of cells;
	// cells then grow beyond the sensing radius, which costs candidate
	// precision but never correctness (the 3×3 scan stays sufficient
	// for any cell size ≥ sensing).
	gridMaxDim = 1024
	// gridCellSlack pads the cell size a hair above the sensing radius
	// so float rounding in the cell-coordinate products can never place
	// two in-range stations more than one cell apart.
	gridCellSlack = 1.000001
)

type grid struct {
	minX, minY float64
	w, h       float64 // bounding-box extents of the station set
	inv        float64 // 1 / cell size
	cols, rows int
	start      []int32 // CSR cell offsets, len cols*rows+1
	items      []int32 // station ids bucketed by cell
}

// build indexes pts with cells of at least the given size (the sensing
// radius, padded by gridCellSlack).
func (g *grid) build(pts []Point, cell float64) {
	n := len(pts)
	g.cols, g.rows = 0, 0
	g.start, g.items = nil, nil
	if n == 0 {
		return
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	g.minX, g.minY = minX, minY
	g.w, g.h = maxX-minX, maxY-minY
	cell *= gridCellSlack
	if c := g.w / gridMaxDim; c > cell {
		cell = c
	}
	if c := g.h / gridMaxDim; c > cell {
		cell = c
	}
	g.inv = 1 / cell
	g.cols = clampDim(int(g.w*g.inv) + 1)
	g.rows = clampDim(int(g.h*g.inv) + 1)

	// Counting sort of stations into cells.
	g.start = make([]int32, g.cols*g.rows+1)
	for _, p := range pts {
		g.start[g.cellIndex(p)+1]++
	}
	for c := 1; c < len(g.start); c++ {
		g.start[c] += g.start[c-1]
	}
	g.items = make([]int32, n)
	cursor := make([]int32, g.cols*g.rows)
	for i, p := range pts {
		c := g.cellIndex(p)
		g.items[g.start[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
}

func clampDim(d int) int {
	if d < 1 {
		return 1
	}
	if d > gridMaxDim {
		return gridMaxDim
	}
	return d
}

// cellCoords maps a point to its (column, row), clamped into range so
// boundary rounding (and non-finite coordinates) can never index out of
// the grid.
func (g *grid) cellCoords(p Point) (int, int) {
	cx := int((p.X - g.minX) * g.inv)
	cy := int((p.Y - g.minY) * g.inv)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

func (g *grid) cellIndex(p Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.cols + cx
}

// cell returns the station ids bucketed in cell (cx, cy).
func (g *grid) cell(cx, cy int) []int32 {
	c := cy*g.cols + cx
	return g.items[g.start[c]:g.start[c+1]]
}

// forNear calls fn(id) for every station bucketed in the 3×3 cell block
// around p — a superset of every station within the sensing radius of p
// (including, when p is a station position, the station itself).
func (g *grid) forNear(p Point, fn func(int32)) {
	cx, cy := g.cellCoords(p)
	y0, y1 := cy-1, cy+1
	if y0 < 0 {
		y0 = 0
	}
	if y1 >= g.rows {
		y1 = g.rows - 1
	}
	x0, x1 := cx-1, cx+1
	if x0 < 0 {
		x0 = 0
	}
	if x1 >= g.cols {
		x1 = g.cols - 1
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, id := range g.cell(x, y) {
				fn(id)
			}
		}
	}
}
