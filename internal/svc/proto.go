package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The wire protocol of the sweep service: small JSON request/response
// pairs over HTTP POST (plus two GET read paths). The shapes are
// deliberately boring — every field is either a number, a string, or a
// raw JSON payload that round-trips byte-exactly through the scenario
// and summary encoders — because the correctness contract downstream
// (byte-identical merged rows) leaves no room for lossy re-encoding.
//
//	POST /v1/lease      LeaseRequest      -> LeaseResponse
//	POST /v1/heartbeat  HeartbeatRequest  -> HeartbeatResponse
//	POST /v1/complete   CompleteRequest   -> CompleteResponse
//	GET  /v1/rows                         -> canonical JSONL prefix
//	GET  /v1/status                       -> StatusResponse
//	GET  /metrics                         -> Prometheus text format
//
// Errors travel as an errorResponse envelope with a machine-readable
// code; the client maps codes back onto the package's typed sentinels.

// LeaseRequest asks the coordinator for a batch of points to simulate.
type LeaseRequest struct {
	// WorkerID identifies the worker in logs and metrics; it does not
	// authenticate (the control plane trusts its network).
	WorkerID string `json:"worker_id"`
	// MaxPoints caps the batch size the worker wants; the coordinator
	// may grant fewer (and caps it at its own MaxBatch).
	MaxPoints int `json:"max_points"`
}

// LeasePoint is one leased unit of work: everything a worker needs to
// simulate the point and complete it idempotently.
type LeasePoint struct {
	// Index is the point's position in grid-expansion order — the
	// merge key of its row.
	Index int `json:"index"`
	// Name is the canonical point name.
	Name string `json:"name"`
	// Key is the point's content-addressed cache key; completions are
	// keyed on it, which is what makes duplicates detectable.
	Key string `json:"key"`
	// Spec is the fully defaulted, validated scenario spec as JSON.
	Spec json.RawMessage `json:"spec"`
}

// LeaseResponse grants a lease (or reports there is nothing to grant).
type LeaseResponse struct {
	// LeaseID names the lease for heartbeats and completions. Empty
	// when no points were granted.
	LeaseID string `json:"lease_id,omitempty"`
	// TTLMS is the lease's time-to-live in milliseconds; a heartbeat
	// resets the clock. A lease not renewed within the TTL expires and
	// its points return to the queue.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Points is the granted batch, in ascending index order.
	Points []LeasePoint `json:"points,omitempty"`
	// Done reports that the campaign is complete: every point is
	// satisfied and the worker can exit.
	Done bool `json:"done"`
	// Failed reports that the coordinator abandoned the campaign (see
	// ErrCampaignFailed); workers should exit rather than poll.
	Failed bool `json:"failed,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse confirms the renewal.
type HeartbeatResponse struct {
	// TTLMS is the renewed time-to-live in milliseconds.
	TTLMS int64 `json:"ttl_ms"`
}

// CompletedPoint reports one simulated point.
type CompletedPoint struct {
	// Index is the point's grid-expansion index.
	Index int `json:"index"`
	// Key must equal the leased point's cache key; it is the
	// idempotency token a duplicate or late completion is judged by.
	Key string `json:"key"`
	// Summary is the aggregate scenario summary as JSON, exactly as
	// the worker's encoder produced it.
	Summary json.RawMessage `json:"summary"`
}

// CompleteRequest submits a batch of finished points. Completions are
// idempotent: re-submitting after a lost response or an expired lease
// is safe, and each point counts once however many times it arrives.
type CompleteRequest struct {
	LeaseID  string           `json:"lease_id"`
	WorkerID string           `json:"worker_id"`
	Points   []CompletedPoint `json:"points"`
}

// CompleteResponse acknowledges a completion batch.
type CompleteResponse struct {
	// Accepted counts points this request newly satisfied.
	Accepted int `json:"accepted"`
	// Duplicates counts points that were already satisfied (late or
	// repeated completions) — acknowledged, not re-recorded.
	Duplicates int `json:"duplicates"`
	// Done reports campaign completion, sparing the worker one more
	// lease round-trip.
	Done bool `json:"done"`
}

// StatusResponse is the coordinator's observable campaign state.
type StatusResponse struct {
	GridName    string `json:"grid_name,omitempty"`
	Fingerprint string `json:"fingerprint"`
	Total       int    `json:"total"`
	Completed   int    `json:"completed"`
	Cached      int    `json:"cached"`
	Quarantined int    `json:"quarantined,omitempty"`
	Pending     int    `json:"pending"`
	Leased      int    `json:"leased"`
	Duplicates  int    `json:"duplicates"`
	Reissued    int    `json:"reissued"`
	RowsEmitted int    `json:"rows_emitted"`
	Draining    bool   `json:"draining"`
	Done        bool   `json:"done"`
	Failed      bool   `json:"failed,omitempty"`
}

// Wire error codes. Each maps 1:1 onto a typed sentinel so errors.Is
// works on both sides of the network.
const (
	codeLeaseExpired = "lease_expired"
	codeUnknownLease = "unknown_lease"
	codeDraining     = "draining"
	// codeBadRequest is terminal and deliberately anonymous on the
	// client: retrying the same bytes cannot succeed, and callers act on
	// the message, not a typed identity.
	//wlanvet:allow deliberately opaque to sentinelFor: bad_request is terminal-by-status; exposing a typed identity would invite clients to branch on a server-validation detail
	codeBadRequest = "bad_request"
	// codeInternal marks coordinator-side failures (for example the
	// cache refusing a write). It is the only retryable code: the
	// request was fine, the coordinator could not honor it yet.
	//wlanvet:allow deliberately opaque to sentinelFor: internal is retryable-by-code, never a typed identity clients branch on; a sentinel here would freeze coordinator internals into the contract
	codeInternal = "internal"
)

// errorResponse is the JSON envelope every non-2xx response carries.
type errorResponse struct {
	Error apiError `json:"error"`
}

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpStatus maps an error code to its transport status.
func httpStatus(code string) int {
	switch code {
	case codeLeaseExpired:
		return http.StatusGone
	case codeUnknownLease:
		return http.StatusNotFound
	case codeDraining:
		return http.StatusServiceUnavailable
	case codeBadRequest:
		return http.StatusBadRequest
	case codeInternal:
		return http.StatusInternalServerError
	default:
		// Unknown codes (a newer coordinator talking to an older
		// worker's vocabulary) degrade to 400: terminal, don't retry.
		return http.StatusBadRequest
	}
}

// sentinelFor maps a wire code back onto the typed sentinel the client
// surfaces. Unknown codes map to a plain error so a newer coordinator
// cannot crash an older worker.
func sentinelFor(code, message string) error {
	switch code {
	case codeLeaseExpired:
		return fmt.Errorf("%w: %s", ErrLeaseExpired, message)
	case codeUnknownLease:
		return fmt.Errorf("%w: %s", ErrUnknownLease, message)
	case codeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, message)
	default:
		return errors.New("svc: " + code + ": " + message)
	}
}

// codeFor maps a coordinator-side error to its wire code. Anything that
// is neither a protocol sentinel nor a rejected request is an internal
// failure, which clients treat as retryable.
func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrLeaseExpired):
		return codeLeaseExpired
	case errors.Is(err, ErrUnknownLease):
		return codeUnknownLease
	case errors.Is(err, ErrDraining):
		return codeDraining
	case errors.Is(err, errBadRequest):
		return codeBadRequest
	default:
		return codeInternal
	}
}
