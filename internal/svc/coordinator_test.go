package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// fakeClock is a hand-advanced clock for driving lease expiry without
// sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// testGrid is a small all-connected sweep over station counts: real
// simulations, tens of milliseconds each.
func testGrid(name string, nodes ...int) *sweep.Grid {
	return &sweep.Grid{
		Name: name,
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(50e6),
		},
		Axes: []sweep.Axis{{Field: sweep.FieldNodes, Values: sweep.Ints(nodes...)}},
	}
}

// simulateLease runs a leased batch exactly like a worker would and
// returns the completion request.
func simulateLease(t *testing.T, r *scenario.Runner, l *LeaseResponse) *CompleteRequest {
	t.Helper()
	specs := make([]*scenario.Spec, len(l.Points))
	for i, lp := range l.Points {
		sp := &scenario.Spec{}
		if err := json.Unmarshal(lp.Spec, sp); err != nil {
			t.Fatalf("unmarshal leased spec %d: %v", lp.Index, err)
		}
		specs[i] = sp
	}
	sums, err := r.RunBatch(context.Background(), specs)
	if err != nil {
		t.Fatalf("simulate leased batch: %v", err)
	}
	req := &CompleteRequest{LeaseID: l.LeaseID, WorkerID: "test-worker", Points: make([]CompletedPoint, len(sums))}
	for i, sum := range sums {
		data, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		req.Points[i] = CompletedPoint{Index: l.Points[i].Index, Key: l.Points[i].Key, Summary: data}
	}
	return req
}

// drainCampaign leases and completes until the coordinator reports
// done, like a single dutiful worker.
func drainCampaign(t *testing.T, c *Coordinator, r *scenario.Runner) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		l, err := c.lease(&LeaseRequest{WorkerID: "test-worker"})
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if l.Done {
			return
		}
		if len(l.Points) == 0 {
			t.Fatal("lease granted no points on an unfinished campaign with no other workers")
		}
		if _, err := c.complete(simulateLease(t, r, l)); err != nil {
			t.Fatalf("complete: %v", err)
		}
	}
	t.Fatal("campaign did not finish in 1000 leases")
}

// TestCoordinatorMergeMatchesSingleMachine is the heart of the
// contract: a campaign driven entirely through the lease/complete wire
// shapes produces the same bytes as sweep.Runner on one machine.
func TestCoordinatorMergeMatchesSingleMachine(t *testing.T) {
	g := testGrid("svc-merge", 2, 3, 4, 5, 6)

	var ref bytes.Buffer
	if _, err := (&sweep.Runner{}).Stream(context.Background(), g, &ref); err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(CoordinatorConfig{Grid: g, MaxBatch: 2, Now: newFakeClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	r := &scenario.Runner{}
	defer r.Close()
	drainCampaign(t, c, r)

	select {
	case <-c.Done():
	default:
		t.Fatal("campaign drained but Done() is not closed")
	}
	if got := c.RowsSnapshot(); !bytes.Equal(got, ref.Bytes()) {
		t.Errorf("merged rows differ from single-machine run:\ncoordinator:\n%s\nsingle-machine:\n%s", got, ref.Bytes())
	}
	st := c.Stats()
	if st.Completed != 5 || st.RowsEmitted != 5 || st.Duplicates != 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestCoordinatorCompletionsAreIdempotent replays a completion batch —
// the lost-response retransmit — and checks it is absorbed, not
// double-counted.
func TestCoordinatorCompletionsAreIdempotent(t *testing.T) {
	g := testGrid("svc-idem", 2, 3)
	c, err := NewCoordinator(CoordinatorConfig{Grid: g, MaxBatch: 2, Now: newFakeClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	r := &scenario.Runner{}
	defer r.Close()
	l, err := c.lease(&LeaseRequest{WorkerID: "w"})
	if err != nil {
		t.Fatal(err)
	}
	req := simulateLease(t, r, l)
	first, err := c.complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Accepted != 2 || first.Duplicates != 0 || !first.Done {
		t.Fatalf("first completion: %+v", first)
	}
	rows := c.RowsSnapshot()
	again, err := c.complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Accepted != 0 || again.Duplicates != 2 {
		t.Fatalf("replayed completion: %+v", again)
	}
	if !bytes.Equal(rows, c.RowsSnapshot()) {
		t.Error("replayed completion changed the output stream")
	}
	if st := c.Stats(); st.Completed != 2 || st.Duplicates != 2 || st.RowsEmitted != 2 {
		t.Errorf("stats after replay: %+v", st)
	}
}

// TestCoordinatorExpiryReissuesAndAbsorbsLateCompletion kills a worker
// by silence: its lease lapses, the points reissue under a fresh lease,
// and when the "dead" worker's completion finally arrives it lands as
// a duplicate (or as the first copy, if it beats the reissued one) —
// either way each row is emitted exactly once.
func TestCoordinatorExpiryReissuesAndAbsorbsLateCompletion(t *testing.T) {
	clock := newFakeClock()
	g := testGrid("svc-reissue", 2, 3)
	c, err := NewCoordinator(CoordinatorConfig{Grid: g, MaxBatch: 1, LeaseTTL: 10 * time.Second, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	r := &scenario.Runner{}
	defer r.Close()

	stale, err := c.lease(&LeaseRequest{WorkerID: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	staleReq := simulateLease(t, r, stale) // simulated, never submitted in time

	clock.Advance(10*time.Second + time.Millisecond)
	if _, err := c.heartbeat(&HeartbeatRequest{LeaseID: stale.LeaseID}); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("heartbeat on lapsed lease: %v, want ErrLeaseExpired", err)
	}

	reissued, err := c.lease(&LeaseRequest{WorkerID: "healthy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reissued.Points) != 1 || reissued.Points[0].Index != stale.Points[0].Index {
		t.Fatalf("expected point %d reissued, got %+v", stale.Points[0].Index, reissued.Points)
	}
	if st := c.Stats(); st.LeasesExpired != 1 || st.Reissued != 1 {
		t.Fatalf("stats after expiry: %+v", st)
	}

	// The healthy worker wins; the dead worker's completion arrives late.
	if _, err := c.complete(simulateLease(t, r, reissued)); err != nil {
		t.Fatal(err)
	}
	late, err := c.complete(staleReq)
	if err != nil {
		t.Fatalf("late completion must be accepted idempotently, got %v", err)
	}
	if late.Accepted != 0 || late.Duplicates != 1 {
		t.Fatalf("late completion: %+v", late)
	}

	// Finish and verify single emission per row.
	drainCampaign(t, c, r)
	if st := c.Stats(); st.RowsEmitted != 2 || st.Completed != 2 {
		t.Errorf("final stats: %+v", st)
	}
}

// TestCoordinatorReissueBudgetFailsCampaign pins the circuit breaker: a
// point that expires out of every lease eventually fails the campaign
// instead of reissuing forever.
func TestCoordinatorReissueBudgetFailsCampaign(t *testing.T) {
	clock := newFakeClock()
	g := testGrid("svc-poison", 2)
	c, err := NewCoordinator(CoordinatorConfig{Grid: g, MaxBatch: 1, MaxReissues: 2, LeaseTTL: time.Second, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if i > 10 {
			t.Fatal("campaign never failed")
		}
		l, err := c.lease(&LeaseRequest{WorkerID: "crashy"})
		if err != nil {
			t.Fatal(err)
		}
		if l.Failed {
			break
		}
		clock.Advance(time.Second + time.Millisecond) // never heartbeat, never complete
	}
	if err := c.Err(); !errors.Is(err, ErrCampaignFailed) {
		t.Fatalf("Err() = %v, want ErrCampaignFailed", err)
	}
	select {
	case <-c.Done():
	default:
		t.Error("failed campaign must close Done()")
	}
}

// TestCoordinatorDrainRefusesLeasesAndPersistsState covers graceful
// shutdown: draining refuses new leases with the typed sentinel, honors
// in-flight completions, and persists the queue snapshot.
func TestCoordinatorDrainRefusesLeasesAndPersistsState(t *testing.T) {
	clock := newFakeClock()
	statePath := filepath.Join(t.TempDir(), "state.json")
	g := testGrid("svc-drain", 2, 3, 4)
	c, err := NewCoordinator(CoordinatorConfig{Grid: g, MaxBatch: 1, LeaseTTL: time.Second, Now: clock.Now, StatePath: statePath})
	if err != nil {
		t.Fatal(err)
	}
	r := &scenario.Runner{}
	defer r.Close()

	inflight, err := c.lease(&LeaseRequest{WorkerID: "w"})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- c.Drain(context.Background()) }()

	// Wait for draining to take effect (status is read-only), then
	// check that new leases are refused while the in-flight one can
	// still complete.
	deadline := time.Now().Add(5 * time.Second)
	for !c.status().Draining {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.lease(&LeaseRequest{WorkerID: "late"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("lease during drain: %v, want ErrDraining", err)
	}
	if resp, err := c.complete(simulateLease(t, r, inflight)); err != nil || resp.Accepted != 1 {
		t.Fatalf("in-flight completion during drain: %+v, %v", resp, err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("drain did not persist state: %v", err)
	}
	var st campaignState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != sweep.GridFingerprint(g) || len(st.Pending) != 2 {
		t.Errorf("persisted state: %+v", st)
	}
}

// TestCoordinatorResumesFromCacheWithoutResimulating restarts a
// campaign over a warm cache: every committed point must be satisfied
// before any lease is granted, and the merged bytes must match the
// first run's exactly.
func TestCoordinatorResumesFromCacheWithoutResimulating(t *testing.T) {
	dir := t.TempDir()
	cache, err := sweep.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := testGrid("svc-resume", 2, 3, 4)
	c1, err := NewCoordinator(CoordinatorConfig{Grid: g, Cache: cache, MaxBatch: 2, Now: newFakeClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	r := &scenario.Runner{}
	defer r.Close()
	drainCampaign(t, c1, r)
	rows := c1.RowsSnapshot()

	cache2, err := sweep.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCoordinator(CoordinatorConfig{Grid: g, Cache: cache2, Now: newFakeClock().Now})
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Cached != 3 || st.Completed != 0 {
		t.Fatalf("resume stats: %+v (want everything cached, nothing simulated)", st)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("fully cached campaign must be done at construction")
	}
	l, err := c2.lease(&LeaseRequest{WorkerID: "w"})
	if err != nil || !l.Done || len(l.Points) != 0 {
		t.Fatalf("lease on finished campaign: %+v, %v", l, err)
	}
	if !bytes.Equal(rows, c2.RowsSnapshot()) {
		t.Error("resumed campaign's rows differ from the original run")
	}
}
