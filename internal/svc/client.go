package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Client is the worker side of the control plane: a small JSON-over-HTTP
// client with jittered exponential backoff and bounded per-attempt
// timeouts. Transport failures and coordinator-internal errors retry;
// protocol answers — even unhappy ones like lease_expired — are returned
// immediately as their typed sentinels, because retrying a answered
// request only re-asks a question the coordinator already settled.
// When the retry budget runs out the last failure is folded into
// ErrCoordinatorUnavailable.
type Client struct {
	// BaseURL is the coordinator's root, e.g. "http://127.0.0.1:8440".
	BaseURL string
	// HTTPClient overrides the transport (chaos tests inject their
	// fallible RoundTripper here). Default http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 6).
	MaxAttempts int
	// BaseBackoff is the first retry delay; each retry doubles it up to
	// MaxBackoff, and every delay is jittered to half-to-full of its
	// nominal value so a restarted fleet does not stampede (defaults
	// 100ms and 3s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each individual request (default 10s).
	AttemptTimeout time.Duration
	// Metrics, when non-nil, counts retries.
	Metrics *WorkerMetrics
	// Logf, when non-nil, receives retry log lines.
	Logf func(format string, args ...any)

	jitterOnce sync.Once
	jitterMu   sync.Mutex
	jitterRand *rand.Rand
}

// jitter maps d to a uniformly random delay in [d/2, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	c.jitterOnce.Do(func() {
		// Seeded off the wall clock: the control plane sits outside the
		// determinism boundary, and distinct workers MUST de-correlate.
		c.jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
	})
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	half := d / 2
	return half + time.Duration(c.jitterRand.Int63n(int64(half)+1))
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 6
}

func (c *Client) backoffBounds() (base, max time.Duration) {
	base, max = c.BaseBackoff, c.MaxBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 3 * time.Second
	}
	return base, max
}

func (c *Client) attemptTimeout() time.Duration {
	if c.AttemptTimeout > 0 {
		return c.AttemptTimeout
	}
	return 10 * time.Second
}

// Lease requests a batch of points.
func (c *Client) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	if c.Metrics != nil {
		c.Metrics.LeaseRequests.Inc()
	}
	resp := &LeaseResponse{}
	if err := c.call(ctx, "/v1/lease", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Heartbeat renews a lease. ErrLeaseExpired or ErrUnknownLease means the
// coordinator no longer counts on this worker for the lease's points.
func (c *Client) Heartbeat(ctx context.Context, req *HeartbeatRequest) (*HeartbeatResponse, error) {
	resp := &HeartbeatResponse{}
	if err := c.call(ctx, "/v1/heartbeat", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Complete submits finished points. Safe to repeat: completions are
// idempotent on the coordinator.
func (c *Client) Complete(ctx context.Context, req *CompleteRequest) (*CompleteResponse, error) {
	resp := &CompleteResponse{}
	if err := c.call(ctx, "/v1/complete", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Status fetches the campaign snapshot.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	resp := &StatusResponse{}
	if err := c.get(ctx, "/v1/status", func(body []byte) error {
		return json.Unmarshal(body, resp)
	}); err != nil {
		return nil, err
	}
	return resp, nil
}

// Rows fetches the canonical JSONL prefix emitted so far (the full
// merged output once Status reports done).
func (c *Client) Rows(ctx context.Context) ([]byte, error) {
	var rows []byte
	err := c.get(ctx, "/v1/rows", func(body []byte) error {
		rows = body
		return nil
	})
	return rows, err
}

// call POSTs one JSON request with the retry policy.
func (c *Client) call(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("svc: marshal %s request: %w", path, err)
	}
	return c.retry(ctx, path, func(actx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(actx, http.MethodPost, strings.TrimRight(c.BaseURL, "/")+path, bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		req.Header.Set("Content-Type", "application/json")
		return c.roundTrip(req, func(respBody []byte) error {
			return json.Unmarshal(respBody, out)
		})
	})
}

// get GETs one path with the retry policy.
func (c *Client) get(ctx context.Context, path string, decode func(body []byte) error) error {
	return c.retry(ctx, path, func(actx context.Context) (bool, error) {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, strings.TrimRight(c.BaseURL, "/")+path, nil)
		if err != nil {
			return false, err
		}
		return c.roundTrip(req, decode)
	})
}

// roundTrip performs one attempt and classifies the outcome:
// (retryable, error). Transport failures and internal (5xx) answers are
// retryable; decoded protocol errors are terminal sentinels.
func (c *Client) roundTrip(req *http.Request, decode func(body []byte) error) (bool, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return true, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := decode(respBody); err != nil {
			return true, fmt.Errorf("svc: undecodable %s response: %w", req.URL.Path, err)
		}
		return false, nil
	}
	var envelope errorResponse
	if err := json.Unmarshal(respBody, &envelope); err != nil || envelope.Error.Code == "" {
		return true, fmt.Errorf("svc: %s answered HTTP %d without an error envelope", req.URL.Path, resp.StatusCode)
	}
	serr := sentinelFor(envelope.Error.Code, envelope.Error.Message)
	// internal is the one retryable code: the request was well-formed,
	// the coordinator could not honor it yet.
	return envelope.Error.Code == codeInternal, serr
}

// retry drives attempt with jittered exponential backoff until it
// succeeds, returns a terminal error, or the budget runs out.
func (c *Client) retry(ctx context.Context, path string, attempt func(ctx context.Context) (bool, error)) error {
	base, max := c.backoffBounds()
	backoff := base
	var lastErr error
	attempts := c.maxAttempts()
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if c.Metrics != nil {
				c.Metrics.Retries.Inc()
			}
			delay := c.jitter(backoff)
			if c.Logf != nil {
				c.Logf("wlansvc: %s failed (%v), retry %d/%d in %s", path, lastErr, i, attempts-1, delay.Round(time.Millisecond))
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			if backoff *= 2; backoff > max {
				backoff = max
			}
		}
		actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
		retryable, err := attempt(actx)
		cancel()
		if err == nil {
			return nil
		}
		if !retryable {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		lastErr = err
	}
	return fmt.Errorf("%w: %s failed after %d attempts: %w", ErrCoordinatorUnavailable, path, attempts, lastErr)
}
