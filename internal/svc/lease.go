package svc

import (
	"fmt"
	"time"
)

// LeaseState is one node of the lease lifecycle:
//
//	granted ──heartbeat──▶ (renewed, still Active)
//	   │ ttl lapses                │ complete
//	   ▼                           ▼
//	Expired ──points reissued─▶ (a NEW lease)      Completed
//
// A lease only ever moves forward: Active → Expired or Active →
// Completed, never back. Reissue does not resurrect an expired lease —
// the reclaimed points are granted under a fresh lease ID — so a late
// completion is always attributable to the exact grant it came from,
// and the idempotency decision is made per point (by cache key), never
// per lease.
type LeaseState int

const (
	// LeaseActive is a granted lease inside its TTL.
	LeaseActive LeaseState = iota
	// LeaseExpired is a lease whose TTL lapsed before completion; its
	// points have returned to the queue.
	LeaseExpired
	// LeaseCompleted is a lease whose worker submitted its results.
	LeaseCompleted
)

// String renders the state for logs and test failures.
func (s LeaseState) String() string {
	switch s {
	case LeaseActive:
		return "active"
	case LeaseExpired:
		return "expired"
	case LeaseCompleted:
		return "completed"
	}
	return fmt.Sprintf("LeaseState(%d)", int(s))
}

// lease is one grant of points to one worker.
type lease struct {
	id       string
	worker   string
	points   []int // grid-expansion indexes, ascending
	state    LeaseState
	deadline time.Time
	renewals int
}

// leaseTable owns every lease of a campaign and implements the state
// machine above. It is not goroutine-safe; the coordinator serialises
// access under its own mutex. Time is always passed in explicitly so
// the transitions are a pure function of (table, operation, now) —
// which is what makes the FSM table-testable without sleeping.
type leaseTable struct {
	ttl    time.Duration
	seq    int
	leases map[string]*lease
}

func newLeaseTable(ttl time.Duration) *leaseTable {
	return &leaseTable{ttl: ttl, leases: map[string]*lease{}}
}

// grant issues a new Active lease over points with a fresh deadline.
func (lt *leaseTable) grant(worker string, points []int, now time.Time) *lease {
	lt.seq++
	l := &lease{
		id:       fmt.Sprintf("lease-%d", lt.seq),
		worker:   worker,
		points:   points,
		state:    LeaseActive,
		deadline: now.Add(lt.ttl),
	}
	lt.leases[l.id] = l
	return l
}

// heartbeat renews an Active lease's deadline. An expired or completed
// lease reports ErrLeaseExpired — the worker's signal that the
// coordinator no longer counts on it for these points — and an unknown
// ID reports ErrUnknownLease.
func (lt *leaseTable) heartbeat(id string, now time.Time) (*lease, error) {
	l, ok := lt.leases[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownLease, id)
	}
	switch l.state {
	case LeaseExpired:
		return nil, fmt.Errorf("%w: %s expired at %s", ErrLeaseExpired, id, l.deadline.Format(time.RFC3339))
	case LeaseCompleted:
		return nil, fmt.Errorf("%w: %s already completed", ErrLeaseExpired, id)
	}
	l.deadline = now.Add(lt.ttl)
	l.renewals++
	return l, nil
}

// complete transitions an Active lease to Completed and reports
// whether it was still active. Expired and unknown leases return
// wasActive=false without an error: completion is judged per point,
// and the lease record (if any) stays in its terminal state.
func (lt *leaseTable) complete(id string) (l *lease, wasActive bool) {
	l, ok := lt.leases[id]
	if !ok || l.state != LeaseActive {
		return l, false
	}
	l.state = LeaseCompleted
	return l, true
}

// expire transitions every Active lease whose deadline has passed to
// Expired and returns them (callers reclaim their points). now exactly
// at the deadline does not expire: a worker that renews every TTL is
// never raced by its own heartbeat interval.
func (lt *leaseTable) expire(now time.Time) []*lease {
	var out []*lease
	for _, l := range lt.leases {
		if l.state == LeaseActive && now.After(l.deadline) {
			l.state = LeaseExpired
			out = append(out, l)
		}
	}
	return out
}

// activeCount counts leases currently in flight.
func (lt *leaseTable) activeCount() int {
	n := 0
	for _, l := range lt.leases {
		if l.state == LeaseActive {
			n++
		}
	}
	return n
}

// activeWorkers counts distinct workers holding an active lease.
func (lt *leaseTable) activeWorkers() int {
	seen := map[string]bool{}
	for _, l := range lt.leases {
		if l.state == LeaseActive {
			seen[l.worker] = true
		}
	}
	return len(seen)
}
