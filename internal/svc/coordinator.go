// Package svc is the fault-tolerant scale-out layer over the sweep
// engine: a coordinator daemon that owns a campaign (one sweep grid),
// leases batches of points to workers over a small HTTP JSON control
// plane, and streams the merged rows in canonical order — byte-identical
// to a single-machine run — with the content-addressed cache as the only
// durable truth.
//
// The correctness contract is deliberately asymmetric: workers are
// assumed to crash, stall, retransmit and disappear, and none of that
// may change a single output byte. Three mechanisms carry the contract:
//
//   - Leases with TTLs. A worker renews its lease by heartbeat; a lease
//     not renewed within the TTL expires and its unfinished points go
//     back to the queue for reissue. A dead worker therefore delays a
//     campaign by at most one TTL per batch, never wedges it.
//
//   - Idempotent completions keyed on cache keys. Lease reissue means
//     the same point can legitimately complete twice (the original
//     worker was slow, not dead — or its completion response was lost
//     and it retransmitted). The first completion wins; every later one
//     is acknowledged and dropped. Because the key is the content
//     address of the point's spec, "the same point" is decided by
//     physics, not by lease bookkeeping.
//
//   - The cache as the only durable truth. Every accepted completion is
//     written to the content-addressed cache before it is recorded as
//     done, and on startup the coordinator satisfies every point it can
//     from the cache before leasing anything. Killing the coordinator
//     and restarting it with the same manifest and cache directory is
//     therefore a complete recovery story: committed points are never
//     re-simulated, uncommitted ones are simply leased again.
//
// Wall clocks, timers and network I/O are all legitimate here — the
// package sits outside the simulator's determinism boundary (see
// analysis.SimExempt) because nothing in it touches physics: it moves
// opaque, already-deterministic results around.
package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// CoordinatorConfig configures a campaign coordinator.
type CoordinatorConfig struct {
	// Grid is the campaign manifest. Required.
	Grid *sweep.Grid
	// Cache, when non-nil, is the content-addressed result store: it is
	// consulted for every point at startup (resume) and written before
	// any completion is acknowledged. Strongly recommended — without it
	// a coordinator crash loses all progress.
	Cache *sweep.Cache
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default 15s).
	LeaseTTL time.Duration
	// MaxBatch caps points per lease (default 8).
	MaxBatch int
	// MaxReissues bounds how often one point may be reclaimed from
	// expired leases before the coordinator declares the campaign
	// failed — the circuit breaker for inputs that kill every worker
	// that touches them (default 50).
	MaxReissues int
	// Out, when non-nil, receives the canonical JSONL rows as their
	// contiguous prefix completes (the same bytes /v1/rows serves).
	Out io.Writer
	// Metrics, when non-nil, receives live lease/worker/point gauges.
	Metrics *Metrics
	// StatePath, when non-empty, is where Drain persists the queue
	// snapshot for post-mortem inspection. Resume correctness never
	// depends on it — the cache is the durable truth — but the stamp
	// records what a drained coordinator still owed.
	StatePath string
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Now overrides the clock in tests (default time.Now).
	Now func() time.Time
}

// Coordinator owns one campaign: the expanded points, the lease table,
// the completion record and the canonical output stream.
type Coordinator struct {
	cfg         CoordinatorConfig
	fingerprint string
	points      []*sweep.Point
	specJSON    [][]byte // pre-marshaled lease payload per point

	mu         sync.Mutex
	done       []bool
	sums       []*scenario.Summary
	leasedBy   []string // active lease ID per point ("" = not leased)
	reissues   []int    // lease reissue count per point
	leasedEver []bool   // whether the point was ever part of any lease
	pending    []int    // queued point indexes, ascending
	leases     *leaseTable
	cursor     int          // emit cursor: rows [0, cursor) are out
	rows       bytes.Buffer // canonical JSONL prefix
	stats      CampaignStats
	draining   bool
	failure    error
	doneCh     chan struct{}
	doneOnce   sync.Once
}

// CampaignStats is a snapshot of campaign progress.
type CampaignStats struct {
	// Total is the expanded grid size.
	Total int `json:"total"`
	// Completed counts points satisfied by worker completions — the
	// campaign's "simulated" figure.
	Completed int `json:"completed"`
	// Cached counts points satisfied from the cache at startup.
	Cached int `json:"cached"`
	// Quarantined counts corrupt cache entries moved aside at startup.
	Quarantined int `json:"quarantined,omitempty"`
	// Duplicates counts completions acknowledged but already recorded.
	Duplicates int `json:"duplicates"`
	// LeasesGranted and LeasesExpired count lease-table transitions.
	LeasesGranted int `json:"leases_granted"`
	LeasesExpired int `json:"leases_expired"`
	// Reissued counts points reclaimed from expired leases.
	Reissued int `json:"reissued"`
	// RowsEmitted counts canonical rows released in order.
	RowsEmitted int `json:"rows_emitted"`
}

// Satisfied is how many points are done, however they got there.
func (st CampaignStats) Satisfied() int { return st.Completed + st.Cached }

// String renders the one-line campaign report. The "N simulated"
// phrasing matches the sweep CLI's — CI greps it to prove cache hits.
func (st CampaignStats) String() string {
	s := fmt.Sprintf("%d/%d points (%d simulated, %d cached)",
		st.Satisfied(), st.Total, st.Completed, st.Cached)
	if st.Quarantined > 0 {
		s += fmt.Sprintf(", %d quarantined", st.Quarantined)
	}
	if st.Reissued > 0 {
		s += fmt.Sprintf(", %d reissued", st.Reissued)
	}
	return s
}

// SweepStats maps the campaign onto the sweep layer's Stats shape (for
// the meta sidecar: Simulated = worker completions).
func (st CampaignStats) SweepStats() sweep.Stats {
	return sweep.Stats{
		Total:       st.Total,
		Owned:       st.Total,
		Simulated:   st.Completed,
		Cached:      st.Cached,
		Quarantined: st.Quarantined,
	}
}

// NewCoordinator expands the manifest, replays the cache, and returns a
// coordinator ready to serve. Points already in the cache are recorded
// as done — and their contiguous prefix emitted — before any lease can
// be granted, which is the "zero re-simulation of committed points"
// half of the fault model.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Grid == nil {
		return nil, fmt.Errorf("svc: coordinator needs a grid manifest")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxReissues <= 0 {
		cfg.MaxReissues = 50
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	pts, err := sweep.Expand(cfg.Grid)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		fingerprint: sweep.GridFingerprint(cfg.Grid),
		points:      pts,
		specJSON:    make([][]byte, len(pts)),
		done:        make([]bool, len(pts)),
		sums:        make([]*scenario.Summary, len(pts)),
		leasedBy:    make([]string, len(pts)),
		reissues:    make([]int, len(pts)),
		leasedEver:  make([]bool, len(pts)),
		leases:      newLeaseTable(cfg.LeaseTTL),
		doneCh:      make(chan struct{}),
	}
	c.stats.Total = len(pts)
	for i, pt := range pts {
		data, err := json.Marshal(&pt.Spec)
		if err != nil {
			return nil, fmt.Errorf("svc: marshal point %d spec: %w", i, err)
		}
		c.specJSON[i] = data
	}

	// Cache replay: the resume path. Every hit is a point no worker
	// will ever see; every quarantine is counted and re-queued.
	q0 := 0
	if cfg.Cache != nil {
		q0 = cfg.Cache.Quarantined()
	}
	for i, pt := range pts {
		if cfg.Cache != nil {
			if sum, ok := cfg.Cache.Get(pt.Key); ok {
				sum.Name = pt.Name
				c.done[i] = true
				c.sums[i] = sum
				c.stats.Cached++
				continue
			}
		}
		c.pending = append(c.pending, i)
	}
	if cfg.Cache != nil {
		c.stats.Quarantined = cfg.Cache.Quarantined() - q0
		if c.metrics() != nil {
			c.metrics().PointsCached.Add(uint64(c.stats.Cached))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.advanceLocked(); err != nil {
		return nil, err
	}
	c.updateGaugesLocked()
	c.checkDoneLocked()
	return c, nil
}

func (c *Coordinator) metrics() *Metrics { return c.cfg.Metrics }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// advanceLocked emits the canonical rows of the contiguous done prefix
// into the in-memory stream and, when configured, the Out writer.
func (c *Coordinator) advanceLocked() error {
	for c.cursor < len(c.points) && c.done[c.cursor] {
		pr := &sweep.PointResult{Point: c.points[c.cursor], Summary: c.sums[c.cursor]}
		if err := sweep.WriteRow(&c.rows, pr); err != nil {
			return err
		}
		if c.cfg.Out != nil {
			if err := sweep.WriteRow(c.cfg.Out, pr); err != nil {
				return err
			}
		}
		c.cursor++
		c.stats.RowsEmitted++
		if m := c.metrics(); m != nil {
			m.RowsEmitted.Inc()
		}
	}
	return nil
}

func (c *Coordinator) updateGaugesLocked() {
	if m := c.metrics(); m != nil {
		m.LeasesActive.Set(int64(c.leases.activeCount()))
		m.WorkersActive.Set(int64(c.leases.activeWorkers()))
		m.PointsPending.Set(int64(len(c.pending)))
	}
}

// checkDoneLocked closes the done channel once every point is
// satisfied (or the campaign has failed).
func (c *Coordinator) checkDoneLocked() {
	if c.failure != nil || c.stats.Satisfied() == c.stats.Total {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
}

// Done is closed when the campaign completes or fails; inspect Err.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Err reports why the campaign stopped: nil while running or after a
// clean finish, ErrCampaignFailed (wrapped) after the reissue circuit
// breaker tripped.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// Stats returns a progress snapshot.
func (c *Coordinator) Stats() CampaignStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RowsSnapshot returns a copy of the canonical JSONL prefix emitted so
// far (the full merged output once the campaign is done).
func (c *Coordinator) RowsSnapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.rows.Bytes()...)
}

// requeueLocked returns a point to the pending queue in ascending
// order, so lease grants keep feeding the emit cursor's prefix first.
func (c *Coordinator) requeueLocked(idx int) {
	at := sort.SearchInts(c.pending, idx)
	c.pending = append(c.pending, 0)
	copy(c.pending[at+1:], c.pending[at:])
	c.pending[at] = idx
}

// expireLocked transitions lapsed leases and reclaims their unfinished
// points. One point exceeding the reissue budget fails the campaign.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, l := range c.leases.expire(now) {
		c.stats.LeasesExpired++
		if m := c.metrics(); m != nil {
			m.LeasesExpired.Inc()
		}
		reclaimed := 0
		for _, idx := range l.points {
			if c.done[idx] || c.leasedBy[idx] != l.id {
				continue
			}
			c.leasedBy[idx] = ""
			c.requeueLocked(idx)
			c.reissues[idx]++
			c.stats.Reissued++
			reclaimed++
			if m := c.metrics(); m != nil {
				m.PointsReissued.Inc()
			}
			if c.reissues[idx] > c.cfg.MaxReissues && c.failure == nil {
				c.failure = fmt.Errorf("%w: point %d (%s) reissued %d times without completing",
					ErrCampaignFailed, idx, c.points[idx].Name, c.reissues[idx])
				c.logf("wlansvc: %v", c.failure)
				c.checkDoneLocked()
			}
		}
		c.logf("wlansvc: lease %s (worker %s) expired, %d point(s) requeued", l.id, l.worker, reclaimed)
	}
	c.updateGaugesLocked()
}

// Run drives lease expiry until the campaign completes, fails, or ctx
// is cancelled. The HTTP handlers also expire lazily on every request,
// so Run is about liveness when no worker is talking — a fully
// partitioned fleet still expires, reissues and (eventually) trips the
// circuit breaker.
func (c *Coordinator) Run(ctx context.Context) error {
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.doneCh:
			return c.Err()
		case now := <-t.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// Drain performs a graceful shutdown: refuse new leases, keep serving
// heartbeats and completions until every in-flight lease completes or
// expires (bounded by ctx), then persist the queue snapshot. The
// campaign can resume later from the cache alone.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.logf("wlansvc: draining: refusing new leases")
	for {
		c.mu.Lock()
		c.expireLocked(c.cfg.Now())
		active := c.leases.activeCount()
		c.mu.Unlock()
		if active == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return c.persistState()
}

// campaignState is the drained-queue snapshot. It is a post-mortem
// record, not a recovery input: resume replays the cache, which is the
// only durable truth.
type campaignState struct {
	Fingerprint string        `json:"fingerprint"`
	Stats       CampaignStats `json:"stats"`
	Pending     []int         `json:"pending"`
	DrainedAt   string        `json:"drained_at"`
}

func (c *Coordinator) persistState() error {
	if c.cfg.StatePath == "" {
		return nil
	}
	c.mu.Lock()
	st := campaignState{
		Fingerprint: c.fingerprint,
		Stats:       c.stats,
		Pending:     append([]int(nil), c.pending...),
		DrainedAt:   c.cfg.Now().UTC().Format(time.RFC3339),
	}
	c.mu.Unlock()
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return fmt.Errorf("svc: marshal state: %w", err)
	}
	if err := os.WriteFile(c.cfg.StatePath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("svc: persist state: %w", err)
	}
	c.logf("wlansvc: queue state persisted to %s (%d pending)", c.cfg.StatePath, len(st.Pending))
	return nil
}

// lease grants a batch of pending points.
func (c *Coordinator) lease(req *LeaseRequest) (*LeaseResponse, error) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if c.failure != nil {
		return &LeaseResponse{Failed: true}, nil
	}
	if c.stats.Satisfied() == c.stats.Total {
		return &LeaseResponse{Done: true}, nil
	}
	if c.draining {
		return nil, fmt.Errorf("%w: no new leases", ErrDraining)
	}
	n := req.MaxPoints
	if n <= 0 || n > c.cfg.MaxBatch {
		n = c.cfg.MaxBatch
	}
	if n > len(c.pending) {
		n = len(c.pending)
	}
	if n == 0 {
		// Everything unfinished is leased out; the worker polls again.
		return &LeaseResponse{}, nil
	}
	batch := append([]int(nil), c.pending[:n]...)
	c.pending = c.pending[n:]
	l := c.leases.grant(req.WorkerID, batch, now)
	c.stats.LeasesGranted++
	resp := &LeaseResponse{
		LeaseID: l.id,
		TTLMS:   c.cfg.LeaseTTL.Milliseconds(),
		Points:  make([]LeasePoint, 0, len(batch)),
	}
	for _, idx := range batch {
		c.leasedBy[idx] = l.id
		c.leasedEver[idx] = true
		resp.Points = append(resp.Points, LeasePoint{
			Index: idx,
			Name:  c.points[idx].Name,
			Key:   c.points[idx].Key,
			Spec:  c.specJSON[idx],
		})
	}
	if m := c.metrics(); m != nil {
		m.LeasesGranted.Inc()
	}
	c.logf("wlansvc: lease %s granted to worker %s (%d points)", l.id, req.WorkerID, len(batch))
	c.updateGaugesLocked()
	return resp, nil
}

// heartbeat renews a lease.
func (c *Coordinator) heartbeat(req *HeartbeatRequest) (*HeartbeatResponse, error) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	if _, err := c.leases.heartbeat(req.LeaseID, now); err != nil {
		return nil, err
	}
	return &HeartbeatResponse{TTLMS: c.cfg.LeaseTTL.Milliseconds()}, nil
}

// complete records a batch of finished points idempotently: the cache
// is written before the point is marked done, a duplicate (late
// completion after reissue, or a retransmit after a lost response) is
// acknowledged without being re-recorded, and a key mismatch — a
// completion that does not describe the point it names — is rejected
// outright.
func (c *Coordinator) complete(req *CompleteRequest) (*CompleteResponse, error) {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	resp := &CompleteResponse{}
	for _, cp := range req.Points {
		if cp.Index < 0 || cp.Index >= len(c.points) {
			return nil, fmt.Errorf("%w: completion for point %d outside the %d-point campaign", errBadRequest, cp.Index, len(c.points))
		}
		pt := c.points[cp.Index]
		if cp.Key != pt.Key {
			return nil, fmt.Errorf("%w: completion key %.12s does not address point %d (%.12s): stale manifest or corrupted result", errBadRequest, cp.Key, cp.Index, pt.Key)
		}
		if c.done[cp.Index] {
			resp.Duplicates++
			c.stats.Duplicates++
			if m := c.metrics(); m != nil {
				m.DuplicateCompletions.Inc()
			}
			continue
		}
		sum := &scenario.Summary{}
		if err := json.Unmarshal(cp.Summary, sum); err != nil {
			return nil, fmt.Errorf("%w: point %d summary: %v", errBadRequest, cp.Index, err)
		}
		sum.Name = pt.Name
		if c.cfg.Cache != nil {
			if err := c.cfg.Cache.Put(pt.Key, &pt.Spec, sum); err != nil {
				// Durability first: if the truth store refuses the
				// result, the point is NOT done. The worker's retry (or
				// a reissue) will try again.
				return nil, err
			}
		}
		c.done[cp.Index] = true
		c.sums[cp.Index] = sum
		if c.leasedBy[cp.Index] != "" {
			c.leasedBy[cp.Index] = ""
		} else {
			// The point was not under an active lease: this completion
			// raced a reissue out of the pending queue. Pull it back so
			// it cannot be leased again.
			if at := sort.SearchInts(c.pending, cp.Index); at < len(c.pending) && c.pending[at] == cp.Index {
				c.pending = append(c.pending[:at], c.pending[at+1:]...)
			}
		}
		c.stats.Completed++
		resp.Accepted++
		if m := c.metrics(); m != nil {
			m.PointsCompleted.Inc()
		}
	}
	// Transition the lease; any of its points the request did not cover
	// go back to the queue rather than dangling until TTL expiry.
	if l, wasActive := c.leases.complete(req.LeaseID); wasActive {
		for _, idx := range l.points {
			if !c.done[idx] && c.leasedBy[idx] == l.id {
				c.leasedBy[idx] = ""
				c.requeueLocked(idx)
			}
		}
	}
	if err := c.advanceLocked(); err != nil {
		return nil, err
	}
	c.logf("wlansvc: lease %s (worker %s): %d completion(s) accepted, %d duplicate(s)",
		req.LeaseID, req.WorkerID, resp.Accepted, resp.Duplicates)
	c.updateGaugesLocked()
	c.checkDoneLocked()
	resp.Done = c.stats.Satisfied() == c.stats.Total
	return resp, nil
}

// status snapshots the campaign for /v1/status.
func (c *Coordinator) status() *StatusResponse {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(now)
	return &StatusResponse{
		GridName:    c.cfg.Grid.Name,
		Fingerprint: c.fingerprint,
		Total:       c.stats.Total,
		Completed:   c.stats.Completed,
		Cached:      c.stats.Cached,
		Quarantined: c.stats.Quarantined,
		Pending:     len(c.pending),
		Leased:      c.leases.activeCount(),
		Duplicates:  c.stats.Duplicates,
		Reissued:    c.stats.Reissued,
		RowsEmitted: c.stats.RowsEmitted,
		Draining:    c.draining,
		Done:        c.stats.Satisfied() == c.stats.Total,
		Failed:      c.failure != nil,
	}
}

// Handler returns the coordinator's HTTP control plane mux (the /v1/*
// endpoints). Mount a metrics registry's Handler beside it for a
// /metrics endpoint — see cmd/wlansvc.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.lease(&req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.heartbeat(&req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeInto(w, r, &req) {
			return
		}
		resp, err := c.complete(&req)
		writeResult(w, resp, err)
	})
	mux.HandleFunc("GET /v1/rows", func(w http.ResponseWriter, r *http.Request) {
		st := c.status()
		rows := c.RowsSnapshot()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Wlansvc-Rows", fmt.Sprint(st.RowsEmitted))
		w.Header().Set("X-Wlansvc-Done", fmt.Sprint(st.Done))
		w.Write(rows)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeResult(w, c.status(), nil)
	})
	return mux
}

// maxBodyBytes bounds control-plane request bodies: the largest
// legitimate payload is a completion batch of summaries, far under it.
const maxBodyBytes = 32 << 20

// decodeInto reads one JSON request body; a false return means the
// error response is already written.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		writeError(w, fmt.Errorf("%w: body: %v", errBadRequest, err))
		return false
	}
	return true
}

func writeResult(w http.ResponseWriter, v any, err error) {
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := codeFor(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(code))
	json.NewEncoder(w).Encode(&errorResponse{Error: apiError{Code: code, Message: err.Error()}})
}
