package svc

import (
	"errors"
	"testing"
	"time"
)

// TestLeaseFSM walks the lease state machine through every legal (and
// illegal) transition as a table: grant → heartbeat-renew → expire →
// reissue under a fresh lease → late completion of the stale lease.
// Time is a plain value threaded through each step, so the table runs
// in microseconds and the boundary cases (renewal exactly at the old
// deadline, expiry exactly at the TTL) are exact, not sleep-raced.
func TestLeaseFSM(t *testing.T) {
	const ttl = 10 * time.Second
	base := time.Unix(1_700_000_000, 0)

	// Each step advances the clock by dt, applies op, and checks the
	// outcome. lease selects the op's target by grant order (1-based);
	// id overrides it for unknown-lease probes.
	type step struct {
		name        string
		dt          time.Duration
		op          string // grant | heartbeat | complete | expire
		lease       int
		id          string
		wantErr     error
		wantState   LeaseState
		wantActive  bool // complete: reported wasActive
		wantExpired int  // expire: leases transitioned this call
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "granted lease expires one tick past its TTL, not at it",
			steps: []step{
				{name: "grant", op: "grant", lease: 1, wantState: LeaseActive},
				{name: "at deadline", dt: ttl, op: "expire", wantExpired: 0},
				{name: "past deadline", dt: time.Nanosecond, op: "expire", wantExpired: 1},
				{name: "expired stays expired", op: "expire", wantExpired: 0},
			},
		},
		{
			name: "heartbeat renews the deadline",
			steps: []step{
				{name: "grant", op: "grant", lease: 1, wantState: LeaseActive},
				{name: "renew before deadline", dt: ttl * 2 / 3, op: "heartbeat", lease: 1, wantState: LeaseActive},
				{name: "old deadline passes harmlessly", dt: ttl * 2 / 3, op: "expire", wantExpired: 0},
				{name: "renewed deadline lapses", dt: ttl, op: "expire", wantExpired: 1},
			},
		},
		{
			name: "expired and completed leases reject heartbeats with ErrLeaseExpired",
			steps: []step{
				{name: "grant first", op: "grant", lease: 1},
				{name: "grant second", op: "grant", lease: 2},
				{name: "complete second", op: "complete", lease: 2, wantActive: true, wantState: LeaseCompleted},
				{name: "first lapses", dt: ttl + time.Millisecond, op: "expire", wantExpired: 1},
				{name: "heartbeat expired", op: "heartbeat", lease: 1, wantErr: ErrLeaseExpired},
				{name: "heartbeat completed", op: "heartbeat", lease: 2, wantErr: ErrLeaseExpired},
			},
		},
		{
			name: "unknown lease IDs are distinguishable from expired ones",
			steps: []step{
				{name: "heartbeat nothing", op: "heartbeat", id: "lease-99", wantErr: ErrUnknownLease},
			},
		},
		{
			name: "completion in time beats the deadline",
			steps: []step{
				{name: "grant", op: "grant", lease: 1},
				{name: "complete", dt: ttl / 2, op: "complete", lease: 1, wantActive: true, wantState: LeaseCompleted},
				{name: "deadline passes, nothing to expire", dt: ttl, op: "expire", wantExpired: 0},
			},
		},
		{
			name: "reissue is a fresh lease; the stale lease's completion reports inactive",
			steps: []step{
				{name: "grant original", op: "grant", lease: 1},
				{name: "original lapses", dt: ttl + time.Millisecond, op: "expire", wantExpired: 1},
				{name: "reissue as new lease", op: "grant", lease: 2, wantState: LeaseActive},
				{name: "late complete of original", op: "complete", lease: 1, wantActive: false, wantState: LeaseExpired},
				{name: "late complete again (retransmit)", op: "complete", lease: 1, wantActive: false, wantState: LeaseExpired},
				{name: "new lease completes normally", op: "complete", lease: 2, wantActive: true, wantState: LeaseCompleted},
				{name: "completing twice is inert", op: "complete", lease: 2, wantActive: false, wantState: LeaseCompleted},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lt := newLeaseTable(ttl)
			now := base
			var granted []*lease
			for _, s := range tc.steps {
				now = now.Add(s.dt)
				target := s.id
				if target == "" && s.lease > 0 && s.lease <= len(granted) {
					target = granted[s.lease-1].id
				}
				switch s.op {
				case "grant":
					l := lt.grant("w1", []int{len(granted)}, now)
					granted = append(granted, l)
					if l.state != s.wantState {
						t.Fatalf("%s: state %v, want %v", s.name, l.state, s.wantState)
					}
				case "heartbeat":
					_, err := lt.heartbeat(target, now)
					if !errors.Is(err, s.wantErr) {
						t.Fatalf("%s: err %v, want %v", s.name, err, s.wantErr)
					}
				case "complete":
					l, active := lt.complete(target)
					if active != s.wantActive {
						t.Fatalf("%s: wasActive %v, want %v", s.name, active, s.wantActive)
					}
					if l != nil && l.state != s.wantState {
						t.Fatalf("%s: state %v, want %v", s.name, l.state, s.wantState)
					}
				case "expire":
					got := lt.expire(now)
					if len(got) != s.wantExpired {
						t.Fatalf("%s: expired %d lease(s), want %d", s.name, len(got), s.wantExpired)
					}
				default:
					t.Fatalf("%s: unknown op %q", s.name, s.op)
				}
			}
		})
	}
}

// TestLeaseStateString pins the log rendering of every state.
func TestLeaseStateString(t *testing.T) {
	for want, s := range map[string]LeaseState{
		"active": LeaseActive, "expired": LeaseExpired, "completed": LeaseCompleted,
	} {
		if got := s.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(s), got, want)
		}
	}
	if got := LeaseState(7).String(); got != "LeaseState(7)" {
		t.Errorf("out-of-range state rendered %q", got)
	}
}
