package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// stubTripper answers every request with 200 OK without a network.
type stubTripper struct{ calls int }

func (s *stubTripper) RoundTrip(*http.Request) (*http.Response, error) {
	s.calls++
	rec := httptest.NewRecorder()
	rec.WriteString("ok")
	return rec.Result(), nil
}

// schedule replays n round trips and records which ones faulted.
func schedule(t *testing.T, tr *Transport, n int) []bool {
	t.Helper()
	out := make([]bool, n)
	for i := range out {
		req := httptest.NewRequest(http.MethodGet, "http://example/x", nil)
		resp, err := tr.RoundTrip(req)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: fault is not ErrInjected: %v", i, err)
			}
			out[i] = true
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return out
}

// TestTransportScheduleIsSeededDeterministic pins the property chaos
// tests lean on: the same seed yields the same fault schedule for the
// same request sequence.
func TestTransportScheduleIsSeededDeterministic(t *testing.T) {
	mk := func(seed int64) *Transport {
		tr := NewTransport(seed, &stubTripper{})
		tr.DropRequestProb = 0.3
		tr.DropResponseProb = 0.2
		return tr
	}
	a := schedule(t, mk(99), 200)
	b := schedule(t, mk(99), 200)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Error("0 faults over 200 calls at p≈0.44: the schedule never fired")
	}
	c := schedule(t, mk(100), 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical 200-call schedule")
	}
}

// TestTransportDropResponseStillReachesServer pins the semantics that
// make drop-response the idempotency-path trigger: the server processes
// the request even though the client never sees the answer.
func TestTransportDropResponseStillReachesServer(t *testing.T) {
	stub := &stubTripper{}
	tr := NewTransport(1, stub)
	tr.DropResponseProb = 1.0
	req := httptest.NewRequest(http.MethodPost, "http://example/v1/complete", nil)
	if _, err := tr.RoundTrip(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("RoundTrip: %v, want injected fault", err)
	}
	if stub.calls != 1 {
		t.Errorf("server saw %d calls, want 1 (drop-response happens after processing)", stub.calls)
	}
	if tr.DroppedResponses() != 1 || tr.DroppedRequests() != 0 {
		t.Errorf("counters: %d responses, %d requests dropped", tr.DroppedResponses(), tr.DroppedRequests())
	}
}

// TestTransportPartitionBlocksUntilHealed pins the partition switch:
// nothing crosses a split, requests flow again after healing, and the
// server never sees partitioned calls.
func TestTransportPartitionBlocksUntilHealed(t *testing.T) {
	stub := &stubTripper{}
	tr := NewTransport(1, stub)
	tr.Partition(true)
	req := httptest.NewRequest(http.MethodGet, "http://example/v1/status", nil)
	for i := 0; i < 3; i++ {
		if _, err := tr.RoundTrip(req); !errors.Is(err, ErrInjected) {
			t.Fatalf("partitioned RoundTrip %d: %v", i, err)
		}
	}
	if stub.calls != 0 {
		t.Errorf("server saw %d calls across the partition", stub.calls)
	}
	tr.Partition(false)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("healed RoundTrip: %v", err)
	}
	resp.Body.Close()
	if stub.calls != 1 || tr.PartitionedCalls() != 3 {
		t.Errorf("after heal: server calls %d (want 1), partitioned calls %d (want 3)", stub.calls, tr.PartitionedCalls())
	}
}
