// Package chaos is the fault-injection layer the sweep service's
// robustness claims are tested against. It wraps an http.RoundTripper
// with seeded, reproducible failure decisions:
//
//   - drop-request: the request fails before it reaches the server —
//     the classic connection error. The server never sees it.
//   - drop-response: the server processes the request fully, but the
//     client sees a transport error instead of the answer. This is the
//     nastier fault — it forces the client to retransmit something that
//     already happened, which is precisely what the coordinator's
//     idempotent completion path exists to absorb.
//   - partition: a switch that fails every request until healed,
//     modelling a network split between one worker and the coordinator.
//
// Decisions come from a private seeded PRNG, so a given seed yields the
// same fault schedule for the same request sequence — chaos tests are
// reproducible, not flaky.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
)

// ErrInjected is the root of every fault this package injects;
// errors.Is(err, chaos.ErrInjected) distinguishes scheduled faults from
// real ones in test assertions.
var ErrInjected = errors.New("chaos: injected fault")

// Transport is a fallible http.RoundTripper.
type Transport struct {
	// Base performs the real round trips (http.DefaultTransport when
	// nil).
	Base http.RoundTripper
	// DropRequestProb is the probability a request fails before being
	// sent; DropResponseProb the probability a successfully processed
	// response is discarded on the way back.
	DropRequestProb  float64
	DropResponseProb float64

	mu  sync.Mutex
	rng *rand.Rand

	partitioned atomic.Bool

	// Fault counters, for asserting a schedule actually fired.
	droppedRequests  atomic.Int64
	droppedResponses atomic.Int64
	partitionedCalls atomic.Int64
}

// NewTransport returns a fallible transport with a seeded fault
// schedule over base.
func NewTransport(seed int64, base http.RoundTripper) *Transport {
	return &Transport{Base: base, rng: rand.New(rand.NewSource(seed))}
}

// Partition opens (true) or heals (false) the simulated network split.
func (t *Transport) Partition(split bool) { t.partitioned.Store(split) }

// DroppedRequests reports requests failed before reaching the server.
func (t *Transport) DroppedRequests() int { return int(t.droppedRequests.Load()) }

// DroppedResponses reports responses discarded after the server
// processed the request.
func (t *Transport) DroppedResponses() int { return int(t.droppedResponses.Load()) }

// PartitionedCalls reports requests refused while partitioned.
func (t *Transport) PartitionedCalls() int { return int(t.partitionedCalls.Load()) }

// roll draws one uniform [0,1) variate from the seeded schedule.
func (t *Transport) roll() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64()
}

// RoundTrip implements http.RoundTripper with the fault schedule
// applied around the base transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.partitioned.Load() {
		t.partitionedCalls.Add(1)
		return nil, fmt.Errorf("%w: partitioned: %s %s unreachable", ErrInjected, req.Method, req.URL.Path)
	}
	if t.DropRequestProb > 0 && t.roll() < t.DropRequestProb {
		t.droppedRequests.Add(1)
		return nil, fmt.Errorf("%w: request dropped: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.DropResponseProb > 0 && t.roll() < t.DropResponseProb {
		// The server has fully processed the request; make sure the
		// body is consumed so the connection can be reused, then lose
		// the answer.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.droppedResponses.Add(1)
		return nil, fmt.Errorf("%w: response dropped: %s %s", ErrInjected, req.Method, req.URL.Path)
	}
	return resp, nil
}
