package svc

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fastClient is a test client with sub-millisecond backoff.
func fastClient(url string) *Client {
	return &Client{
		BaseURL:        url,
		MaxAttempts:    3,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		AttemptTimeout: time.Second,
	}
}

// TestClientRetriesInternalThenSucceeds pins the retry policy's happy
// recovery: internal (5xx) answers are retried and the eventual success
// is returned, with each retry counted.
func TestClientRetriesInternalThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			writeError(w, errors.New("cache briefly unwritable"))
			return
		}
		json.NewEncoder(w).Encode(&HeartbeatResponse{TTLMS: 1234})
	}))
	defer srv.Close()
	cl := fastClient(srv.URL)
	cl.Metrics = NewWorkerMetrics(metrics.NewRegistry())
	resp, err := cl.Heartbeat(context.Background(), &HeartbeatRequest{LeaseID: "lease-1"})
	if err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if resp.TTLMS != 1234 || calls.Load() != 3 {
		t.Errorf("resp %+v after %d calls", resp, calls.Load())
	}
	if got := cl.Metrics.Retries.Value(); got != 2 {
		t.Errorf("retries counted %d, want 2", got)
	}
}

// TestClientProtocolErrorsAreTerminal pins that an answered request is
// never retried: each wire code surfaces immediately as its sentinel
// after exactly one attempt.
func TestClientProtocolErrorsAreTerminal(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{codeLeaseExpired, ErrLeaseExpired},
		{codeUnknownLease, ErrUnknownLease},
		{codeDraining, ErrDraining},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(httpStatus(tc.code))
				json.NewEncoder(w).Encode(&errorResponse{Error: apiError{Code: tc.code, Message: "no"}})
			}))
			defer srv.Close()
			_, err := fastClient(srv.URL).Heartbeat(context.Background(), &HeartbeatRequest{LeaseID: "x"})
			if !errors.Is(err, tc.want) {
				t.Errorf("err %v, want %v", err, tc.want)
			}
			if calls.Load() != 1 {
				t.Errorf("%d attempts on a terminal answer, want 1", calls.Load())
			}
		})
	}
}

// TestClientExhaustionIsCoordinatorUnavailable pins the budget's end:
// a coordinator that never answers folds into
// ErrCoordinatorUnavailable wrapping the last transport failure.
func TestClientExhaustionIsCoordinatorUnavailable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing is listening anymore
	_, err := fastClient(srv.URL).Lease(context.Background(), &LeaseRequest{WorkerID: "w"})
	if !errors.Is(err, ErrCoordinatorUnavailable) {
		t.Fatalf("err %v, want ErrCoordinatorUnavailable", err)
	}
}

// TestClientCancellationBeatsTheBudget pins that a cancelled context
// aborts the retry loop promptly instead of draining the attempt
// budget.
func TestClientCancellationBeatsTheBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cl := fastClient(srv.URL)
	cl.MaxAttempts = 1000
	cl.BaseBackoff = time.Hour // would hang if the budget were drained
	start := time.Now()
	_, err := cl.Lease(ctx, &LeaseRequest{WorkerID: "w"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancelled call did not return promptly")
	}
}
