package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/scenario"
)

// errWorkerKilled marks a worker stopped by Kill — the chaos harness's
// crash switch. A killed worker never completes its in-flight lease and
// never heartbeats again, which is exactly what a SIGKILLed process
// looks like from the coordinator's side.
//
//wlanvet:allow process-local sentinel: Kill terminates the worker loop in-process; it never crosses the wire, so it has no code in the error envelope
var errWorkerKilled = errors.New("svc: worker killed")

// WorkerConfig configures a sweep worker.
type WorkerConfig struct {
	// Client is the control-plane connection. Required.
	Client *Client
	// ID names the worker in logs and coordinator metrics.
	ID string
	// Runner executes leased specs; when nil the worker owns a private
	// scenario.Runner with Parallelism.
	Runner *scenario.Runner
	// Parallelism sizes the private runner (ignored when Runner is
	// set; 0 = GOMAXPROCS).
	Parallelism int
	// MaxBatch is the lease size the worker asks for (the coordinator
	// may cap it; 0 = coordinator's default).
	MaxBatch int
	// PollInterval is how long to wait when the queue is empty but the
	// campaign is not done — everything unfinished is leased to someone
	// else, so the worker politely re-asks (default 200ms).
	PollInterval time.Duration
	// Metrics, when non-nil, counts simulated points and retries.
	Metrics *WorkerMetrics
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Worker is the lease → simulate → complete loop. It heartbeats each
// lease at a third of its TTL, abandons a batch the moment the
// coordinator reports the lease expired (the points are someone else's
// now), and submits completions even when they will arrive late —
// the coordinator's idempotency layer absorbs the overlap.
type Worker struct {
	cfg        WorkerConfig
	runner     *scenario.Runner
	ownsRunner bool

	killOnce sync.Once
	kill     chan struct{}
}

// NewWorker validates cfg and returns a runnable worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("svc: worker needs a client")
	}
	if cfg.ID == "" {
		cfg.ID = "worker"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	w := &Worker{cfg: cfg, runner: cfg.Runner, kill: make(chan struct{})}
	if w.runner == nil {
		w.runner = &scenario.Runner{Parallelism: cfg.Parallelism}
		w.ownsRunner = true
	}
	return w, nil
}

// Kill crash-stops the worker: heartbeats cease, the in-flight batch is
// dropped on the floor, and Run returns errWorkerKilled. Unlike context
// cancellation it models failure, not shutdown — nothing is flushed.
func (w *Worker) Kill() {
	w.killOnce.Do(func() { close(w.kill) })
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run pulls leases until the campaign completes, fails, or the
// coordinator drains, returning nil on every graceful outcome. A
// context cancellation or retry-budget exhaustion surfaces as an error.
func (w *Worker) Run(ctx context.Context) error {
	if w.ownsRunner {
		defer w.runner.Close()
	}
	// The kill switch folds into the context so in-flight simulation
	// and retry sleeps abort with the worker.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-w.kill:
			cancel()
		case <-ctx.Done():
		}
	}()
	for {
		if err := w.checkAlive(ctx); err != nil {
			return err
		}
		resp, err := w.cfg.Client.Lease(ctx, &LeaseRequest{WorkerID: w.cfg.ID, MaxPoints: w.cfg.MaxBatch})
		switch {
		case errors.Is(err, ErrDraining):
			w.logf("wlansvc: worker %s: coordinator draining, exiting", w.cfg.ID)
			return nil
		case err != nil:
			return w.aliveErr(err)
		case resp.Failed:
			return fmt.Errorf("%w: coordinator abandoned the campaign", ErrCampaignFailed)
		case resp.Done:
			w.logf("wlansvc: worker %s: campaign done", w.cfg.ID)
			return nil
		case len(resp.Points) == 0:
			select {
			case <-ctx.Done():
				return w.aliveErr(ctx.Err())
			case <-time.After(w.cfg.PollInterval):
			}
			continue
		}
		done, err := w.processLease(ctx, resp)
		if err != nil {
			return w.aliveErr(err)
		}
		if done {
			w.logf("wlansvc: worker %s: campaign done", w.cfg.ID)
			return nil
		}
	}
}

// checkAlive maps the kill switch onto errWorkerKilled.
func (w *Worker) checkAlive(ctx context.Context) error {
	select {
	case <-w.kill:
		return errWorkerKilled
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// aliveErr rewrites a cancellation caused by Kill as errWorkerKilled.
func (w *Worker) aliveErr(err error) error {
	select {
	case <-w.kill:
		return errWorkerKilled
	default:
		return err
	}
}

// processLease simulates one leased batch under heartbeat cover and
// submits the completions. It reports whether the campaign finished.
func (w *Worker) processLease(ctx context.Context, l *LeaseResponse) (done bool, err error) {
	// Heartbeat at a third of the TTL: two renewals can be lost before
	// the lease lapses. If the coordinator answers a heartbeat with
	// lease_expired, the batch is abandoned — its points are already
	// back in the queue, likely under someone else's lease.
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	expired := make(chan struct{})
	interval := time.Duration(l.TTLMS) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				select {
				case <-w.kill:
					// Dead workers don't heartbeat: renewing the lease
					// after Kill would keep the coordinator waiting on
					// a worker that will never complete.
					return
				default:
				}
				if _, err := w.cfg.Client.Heartbeat(hbCtx, &HeartbeatRequest{LeaseID: l.LeaseID}); err != nil {
					if errors.Is(err, ErrLeaseExpired) || errors.Is(err, ErrUnknownLease) {
						close(expired)
						return
					}
					// Unreachable after retries: keep simulating — the
					// completion itself may still land in time, and is
					// idempotent if it does not.
					w.logf("wlansvc: worker %s: heartbeat for %s failed: %v", w.cfg.ID, l.LeaseID, err)
				}
			}
		}
	}()

	simCtx, simCancel := context.WithCancel(ctx)
	defer simCancel()
	go func() {
		select {
		case <-expired:
			simCancel()
		case <-simCtx.Done():
		}
	}()

	specs := make([]*scenario.Spec, len(l.Points))
	for i, lp := range l.Points {
		sp := &scenario.Spec{}
		if err := json.Unmarshal(lp.Spec, sp); err != nil {
			return false, fmt.Errorf("svc: worker %s: lease %s point %d spec: %w", w.cfg.ID, l.LeaseID, lp.Index, err)
		}
		specs[i] = sp
	}
	sums, err := w.runner.RunBatch(simCtx, specs)
	if err != nil {
		select {
		case <-expired:
			// The lease lapsed under us; the work is abandoned, not
			// failed. Go ask for a fresh lease.
			w.logf("wlansvc: worker %s: lease %s expired mid-batch, abandoning %d point(s)", w.cfg.ID, l.LeaseID, len(l.Points))
			return false, nil
		default:
			return false, err
		}
	}
	hbCancel()
	// The kill switch is checked synchronously before submitting: a
	// crashed process cannot report work it finished an instant before
	// dying, and neither may a Killed worker — the context-cancel path
	// alone leaves a goroutine-scheduling window where a fast batch
	// could slip its completion out after death.
	if err := w.checkAlive(ctx); err != nil {
		return false, err
	}
	if w.cfg.Metrics != nil {
		w.cfg.Metrics.PointsSimulated.Add(uint64(len(sums)))
	}

	req := &CompleteRequest{LeaseID: l.LeaseID, WorkerID: w.cfg.ID, Points: make([]CompletedPoint, len(sums))}
	for i, sum := range sums {
		data, err := json.Marshal(sum)
		if err != nil {
			return false, fmt.Errorf("svc: worker %s: marshal summary for point %d: %w", w.cfg.ID, l.Points[i].Index, err)
		}
		req.Points[i] = CompletedPoint{Index: l.Points[i].Index, Key: l.Points[i].Key, Summary: data}
	}
	resp, err := w.cfg.Client.Complete(ctx, req)
	if err != nil {
		return false, err
	}
	if resp.Duplicates > 0 {
		w.logf("wlansvc: worker %s: lease %s: %d completion(s) were duplicates (lease was reissued)", w.cfg.ID, l.LeaseID, resp.Duplicates)
	}
	return resp.Done, nil
}
