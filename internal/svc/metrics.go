package svc

import "repro/internal/metrics"

// Metrics is the coordinator's instrumentation: lease and worker
// gauges plus point-satisfaction counters, registered on an
// internal/metrics Registry and served from the coordinator's own
// /metrics endpoint. Like every metric set in the repository it is a
// pure observer — the campaign's merged rows are byte-identical with
// or without it.
type Metrics struct {
	// LeasesActive gauges leases currently in flight.
	LeasesActive *metrics.Gauge
	// WorkersActive gauges distinct workers holding an active lease.
	WorkersActive *metrics.Gauge
	// PointsPending gauges queued points not yet leased or satisfied.
	PointsPending *metrics.Gauge
	// LeasesGranted counts leases issued over the campaign's lifetime.
	LeasesGranted *metrics.Counter
	// LeasesExpired counts leases that lapsed without completing.
	LeasesExpired *metrics.Counter
	// PointsReissued counts points reclaimed from expired leases and
	// returned to the queue (one point can be reissued repeatedly).
	PointsReissued *metrics.Counter
	// PointsCompleted counts points newly satisfied by a worker
	// completion — the distributed analogue of points_simulated.
	PointsCompleted *metrics.Counter
	// PointsCached counts points satisfied from the content-addressed
	// cache at campaign start (resume hits).
	PointsCached *metrics.Counter
	// DuplicateCompletions counts late or repeated completions that
	// were acknowledged but not re-recorded — each one is a lease
	// reissue or retransmit the idempotency layer absorbed.
	DuplicateCompletions *metrics.Counter
	// RowsEmitted counts canonical rows released to the output stream.
	RowsEmitted *metrics.Counter
}

// NewMetrics registers the coordinator metric set on reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		LeasesActive: reg.Gauge("wlansvc_leases_active",
			"Point leases currently held by workers."),
		WorkersActive: reg.Gauge("wlansvc_workers_active",
			"Distinct workers holding at least one active lease."),
		PointsPending: reg.Gauge("wlansvc_points_pending",
			"Campaign points queued, not yet leased or satisfied."),
		LeasesGranted: reg.Counter("wlansvc_leases_granted_total",
			"Point leases granted to workers."),
		LeasesExpired: reg.Counter("wlansvc_leases_expired_total",
			"Leases that expired before their worker completed them."),
		PointsReissued: reg.Counter("wlansvc_points_reissued_total",
			"Points reclaimed from expired leases and requeued."),
		PointsCompleted: reg.Counter("wlansvc_points_completed_total",
			"Points newly satisfied by worker completions."),
		PointsCached: reg.Counter("wlansvc_points_cached_total",
			"Points satisfied from the content-addressed cache at startup."),
		DuplicateCompletions: reg.Counter("wlansvc_duplicate_completions_total",
			"Late or repeated point completions absorbed idempotently."),
		RowsEmitted: reg.Counter("wlansvc_rows_emitted_total",
			"Canonical result rows released to the output stream."),
	}
}

// WorkerMetrics is the worker-side instrumentation, registered on the
// worker process's own Registry.
type WorkerMetrics struct {
	// PointsSimulated counts points this worker simulated to
	// completion (whether or not the coordinator recorded them first).
	PointsSimulated *metrics.Counter
	// Retries counts control-plane requests that needed at least one
	// retry before an answer arrived.
	Retries *metrics.Counter
	// LeaseRequests counts lease round-trips.
	LeaseRequests *metrics.Counter
}

// NewWorkerMetrics registers the worker metric set on reg.
func NewWorkerMetrics(reg *metrics.Registry) *WorkerMetrics {
	return &WorkerMetrics{
		PointsSimulated: reg.Counter("wlansvc_worker_points_simulated_total",
			"Sweep points this worker simulated to completion."),
		Retries: reg.Counter("wlansvc_worker_retries_total",
			"Control-plane requests retried after a transport failure."),
		LeaseRequests: reg.Counter("wlansvc_worker_lease_requests_total",
			"Lease requests sent to the coordinator."),
	}
}
