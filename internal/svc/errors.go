package svc

import "errors"

// Typed sentinel errors of the control plane. The coordinator returns
// them through the HTTP error envelope (see proto.go) and the client
// reconstructs them from the wire code, so a worker three machines away
// branches with errors.Is exactly like an in-process caller. The wlan
// facade re-wraps ErrLeaseExpired and ErrCoordinatorUnavailable onto
// its public sentinel surface.
var (
	// ErrLeaseExpired marks operations on a lease whose TTL lapsed (or
	// that already completed): the coordinator has reclaimed the lease's
	// points and may have reissued them. Completions are NOT subject to
	// it — a late completion after reissue is accepted idempotently —
	// only heartbeats and other lease-keyed operations are.
	ErrLeaseExpired = errors.New("svc: lease expired")
	// ErrUnknownLease marks operations naming a lease ID the
	// coordinator never granted (or has forgotten after a restart —
	// workers recover by requesting a fresh lease).
	ErrUnknownLease = errors.New("svc: unknown lease")
	// ErrDraining marks lease requests refused because the coordinator
	// is shutting down gracefully: in-flight leases may still complete,
	// but no new work leaves the queue.
	ErrDraining = errors.New("svc: coordinator draining")
	// ErrCoordinatorUnavailable marks client calls that exhausted their
	// retry budget without an answer: the coordinator is unreachable,
	// partitioned away, or persistently failing. It wraps the last
	// transport error.
	//wlanvet:allow client-side sentinel: it wraps retry exhaustion at the caller; the coordinator never emits it, so it has no wire code by design
	ErrCoordinatorUnavailable = errors.New("svc: coordinator unavailable")
	// ErrCampaignFailed marks a campaign the coordinator gave up on: a
	// point exceeded MaxReissues lease reissues without ever
	// completing, which means some input poisons every worker that
	// touches it (or the fleet cannot hold a lease for one TTL).
	//wlanvet:allow travels as the LeaseResponse.Failed flag, not the error envelope; the client reconstructs it from the flag so drained workers exit cleanly
	ErrCampaignFailed = errors.New("svc: campaign failed")
)

// errBadRequest marks requests the coordinator rejects as malformed or
// self-contradictory (wire code bad_request, terminal at the client —
// retrying the same bytes cannot succeed).
var errBadRequest = errors.New("svc: bad request")
