package svc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/svc/chaos"
	"repro/internal/sweep"
)

// onFirstGrant runs fn synchronously the first time a /v1/lease
// response actually grants points — before the response reaches the
// worker. Applying the fault inside the round trip (rather than from a
// watching goroutine) makes the schedule exact: the coordinator has
// granted the lease, the worker has not yet seen it, and whatever fn
// breaks is broken before a single leased point can complete. ch closes
// at the same instant so the test can sequence later phases.
type onFirstGrant struct {
	base http.RoundTripper
	fn   func()
	once sync.Once
	ch   chan struct{}
}

func (t *onFirstGrant) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err == nil && req.URL.Path == "/v1/lease" {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		if bytes.Contains(body, []byte(`"lease_id"`)) {
			t.once.Do(func() {
				t.fn()
				close(t.ch)
			})
		}
	}
	return resp, err
}

// dropFirstComplete discards exactly one fully processed /v1/complete
// response: the coordinator has recorded the points, the worker sees a
// transport error and retransmits — the scripted trigger for the
// idempotency path, guaranteed to fire once per test run.
type dropFirstComplete struct {
	base    http.RoundTripper
	dropped atomic.Bool
}

func (d *dropFirstComplete) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if req.URL.Path == "/v1/complete" && d.dropped.CompareAndSwap(false, true) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("e2e: scripted drop of processed completion")
	}
	return resp, err
}

// TestChaosCampaignMergesByteIdentical is the end-to-end fault drill:
// four workers attack a 24-point campaign over real HTTP — one steady,
// one with a seeded fallible transport plus a scripted lost-completion,
// one crash-killed while holding a lease, one network-partitioned while
// holding a lease — and the merged output must be byte-identical to a
// single-machine run, with zero re-simulation of cache-committed
// points.
func TestChaosCampaignMergesByteIdentical(t *testing.T) {
	g := &sweep.Grid{
		Name: "svc-chaos-e2e",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(50e6),
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldNodes, Values: sweep.Ints(2, 3, 4, 5)},
			{Field: sweep.FieldSeed, Values: sweep.Ints(1, 2, 3, 4, 5, 6)},
		},
	}

	// Single-machine reference bytes.
	var ref bytes.Buffer
	if _, err := (&sweep.Runner{}).Stream(context.Background(), g, &ref); err != nil {
		t.Fatal(err)
	}

	// Pre-warm a scattered subset of the cache: these points are
	// committed, and the fault model says no failure schedule may ever
	// cause them to be simulated again.
	pts, err := sweep.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warm := []int{0, 7, 13, 20}
	warmRunner := &scenario.Runner{}
	for _, idx := range warm {
		sum, err := warmRunner.Run(context.Background(), &pts[idx].Spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := cache.Put(pts[idx].Key, &pts[idx].Spec, sum); err != nil {
			t.Fatal(err)
		}
	}
	warmRunner.Close()

	c, err := NewCoordinator(CoordinatorConfig{
		Grid:     g,
		Cache:    cache,
		LeaseTTL: 600 * time.Millisecond,
		MaxBatch: 6,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go c.Run(ctx)

	newClient := func(rt http.RoundTripper) *Client {
		return &Client{
			BaseURL:        srv.URL,
			HTTPClient:     &http.Client{Transport: rt},
			MaxAttempts:    8,
			BaseBackoff:    5 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
			AttemptTimeout: 5 * time.Second,
			Logf:           t.Logf,
		}
	}
	newWorkerM := func(id string, cl *Client, batch, par int, wm *WorkerMetrics) *Worker {
		w, err := NewWorker(WorkerConfig{
			Client: cl, ID: id, MaxBatch: batch, Parallelism: par,
			PollInterval: 20 * time.Millisecond, Logf: t.Logf, Metrics: wm,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	newWorker := func(id string, cl *Client, batch, par int) *Worker {
		return newWorkerM(id, cl, batch, par, nil)
	}
	run := func(w *Worker) chan error {
		ch := make(chan error, 1)
		go func() { ch <- w.Run(ctx) }()
		return ch
	}

	// Phase 1: the doomed and the islanded worker each take a lease
	// while nothing competes; each fault is applied inside the round
	// trip of the granting lease response, so both workers
	// deterministically die holding unfinished work.
	var doomed *Worker
	doomedSig := &onFirstGrant{base: http.DefaultTransport, ch: make(chan struct{}), fn: func() {
		t.Logf("e2e: killing doomed worker (lease granted, not yet seen)")
		doomed.Kill() // SIGKILL semantics: no flush, no goodbye
	}}
	doomed = newWorker("doomed", newClient(doomedSig), 6, 1)
	doomedCh := run(doomed)

	islandChaos := chaos.NewTransport(7, http.DefaultTransport)
	islandSig := &onFirstGrant{base: islandChaos, ch: make(chan struct{}), fn: func() {
		t.Logf("e2e: partitioning islanded worker (lease granted, not yet seen)")
		islandChaos.Partition(true) // network split, never healed
	}}
	islandCl := newClient(islandSig)
	islandCl.MaxAttempts = 3 // fail fast once partitioned
	island := newWorker("islanded", islandCl, 4, 1)
	islandCh := run(island)

	waitSignal := func(name string, ch chan struct{}) {
		select {
		case <-ch:
		case <-time.After(20 * time.Second):
			t.Fatalf("worker %s never received a lease", name)
		}
	}
	waitSignal("doomed", doomedSig.ch)
	waitSignal("islanded", islandSig.ch)

	// Phase 2: a steady worker and a fault-injected worker finish the
	// campaign, reclaiming the dead workers' points after TTL expiry.
	// They share one metric set so the total simulated count is exact
	// whatever the two negotiate between themselves.
	wm := NewWorkerMetrics(metrics.NewRegistry())
	steadyCl := newClient(http.DefaultTransport)
	steadyCl.Metrics = wm
	steady := newWorkerM("steady", steadyCl, 3, 2, wm)
	steadyCh := run(steady)

	flakyChaos := chaos.NewTransport(42, http.DefaultTransport)
	flakyChaos.DropRequestProb = 0.1
	flakyChaos.DropResponseProb = 0.1
	flaky := newWorkerM("flaky", newClient(&dropFirstComplete{base: flakyChaos}), 3, 2, wm)
	flakyCh := run(flaky)

	select {
	case <-c.Done():
	case <-ctx.Done():
		t.Fatalf("campaign did not finish: %+v", c.Stats())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}

	// Every worker exits the way its failure mode predicts.
	if err := <-steadyCh; err != nil {
		t.Errorf("steady worker: %v", err)
	}
	if err := <-flakyCh; err != nil {
		t.Errorf("flaky worker: %v", err)
	}
	if err := <-doomedCh; !errors.Is(err, errWorkerKilled) {
		t.Errorf("doomed worker returned %v, want errWorkerKilled", err)
	}
	if err := <-islandCh; err == nil {
		t.Error("islanded worker finished cleanly despite the partition")
	} else if !errors.Is(err, ErrCoordinatorUnavailable) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("islanded worker returned %v, want ErrCoordinatorUnavailable", err)
	}

	// The tentpole claim: bytes identical to the single-machine run.
	if got := c.RowsSnapshot(); !bytes.Equal(got, ref.Bytes()) {
		t.Errorf("chaos campaign rows differ from single-machine run (%d vs %d bytes)", len(got), ref.Len())
	}

	st := c.Stats()
	if st.Cached != len(warm) {
		t.Errorf("Cached = %d, want %d", st.Cached, len(warm))
	}
	if st.Completed != len(pts)-len(warm) {
		t.Errorf("Completed = %d, want %d (every uncommitted point exactly once)", st.Completed, len(pts)-len(warm))
	}
	if st.RowsEmitted != len(pts) {
		t.Errorf("RowsEmitted = %d, want %d", st.RowsEmitted, len(pts))
	}
	// Zero re-simulation of committed points: they were never leased.
	for _, idx := range warm {
		if c.leasedEver[idx] {
			t.Errorf("cache-committed point %d was leased to a worker", idx)
		}
	}
	// The failure schedule really fired: both dead workers' leases
	// expired and their points were reissued; the scripted lost
	// completion forced at least one idempotent duplicate.
	if st.LeasesExpired < 2 {
		t.Errorf("LeasesExpired = %d, want >= 2 (killed + partitioned)", st.LeasesExpired)
	}
	if st.Reissued < 2 {
		t.Errorf("Reissued = %d, want >= 2", st.Reissued)
	}
	if st.Duplicates < 1 {
		t.Errorf("Duplicates = %d, want >= 1 (scripted lost completion)", st.Duplicates)
	}
	// The survivors simulated every uncommitted point at least once
	// (reissue races can add extra runs, never fewer).
	if got := wm.PointsSimulated.Value(); got < uint64(len(pts)-len(warm)) {
		t.Errorf("surviving workers simulated %d points, want >= %d", got, len(pts)-len(warm))
	}
	if flakyChaos.DroppedRequests()+flakyChaos.DroppedResponses() == 0 {
		t.Error("seeded chaos transport injected no faults over the whole campaign")
	}
}
