// Package metrics is the repository's observability substrate: a tiny
// registry of atomically updated counters and gauges rendered in the
// Prometheus text exposition format. It exists so a long-running sweep
// or (eventually) the sweep service can be watched like infrastructure
// — scrape an HTTP endpoint, plot cache hit rate and events/sec — while
// the simulation hot paths pay exactly one predictable atomic add per
// observation and zero allocations.
//
// Instrumentation is strictly an observer: nothing in this package
// feeds back into simulation state, so a metrics-enabled run is
// bit-identical to a metrics-off run (a contract the sweep tests pin).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative n subtracts).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric is one registered series: a name, help text, Prometheus type
// and a sample function evaluated at render time.
type metric struct {
	name, help, typ string
	sample          func() string
}

// Registry holds a set of named metrics and renders them. Registration
// happens at setup time (panicking on duplicate names, a programming
// error); observation and rendering are safe concurrently.
type Registry struct {
	mu sync.Mutex
	ms map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ms: map[string]*metric{}}
}

func (r *Registry) register(name, help, typ string, sample func() string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ms[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.ms[name] = &metric{name: name, help: help, typ: typ, sample: sample}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func() string {
		return strconv.FormatUint(c.Value(), 10)
	})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func() string {
		return strconv.FormatInt(g.Value(), 10)
	})
	return g
}

// GaugeFunc registers a gauge whose value is computed at render time —
// the shape for derived signals like cache hit rate or events/sec. fn
// must be safe to call concurrently; non-finite values render as 0.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func() string {
		v := fn()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	})
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, sorted by name so the output is
// deterministic for a given set of values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.ms))
	for name := range r.ms {
		names = append(names, name)
	}
	ms := make([]*metric, len(names))
	sort.Strings(names)
	for i, name := range names {
		ms[i] = r.ms[name]
	}
	r.mu.Unlock()
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.name, m.help, m.name, m.typ, m.name, m.sample()); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the rendered registry — the
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
