package metrics

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeOps(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g.Set(7)
	g.Add(5)
	g.Dec()
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
}

// TestWritePrometheus pins the exposition format: HELP/TYPE preamble,
// one sample line per metric, sorted by name.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz_gauge", "last by name").Set(-3)
	r.Counter("aa_total", "first by name").Add(5)
	r.GaugeFunc("mm_rate", "derived", func() float64 { return 0.25 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP aa_total first by name\n# TYPE aa_total counter\naa_total 5\n" +
		"# HELP mm_rate derived\n# TYPE mm_rate gauge\nmm_rate 0.25\n" +
		"# HELP zz_gauge last by name\n# TYPE zz_gauge gauge\nzz_gauge -3\n"
	if sb.String() != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// Non-finite derived values must render as 0, not break the scrape.
func TestGaugeFuncNonFinite(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("bad", "div by zero", func() float64 { return math.NaN() })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\nbad 0\n") {
		t.Fatalf("NaN not rendered as 0:\n%s", sb.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "")
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hits_total 3\n") {
		t.Fatalf("body missing sample:\n%s", body)
	}
}

// Concurrent observation while rendering must be race-free (run under
// -race in CI).
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spins_total", "")
	g := r.Gauge("level", "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Dec()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
}
