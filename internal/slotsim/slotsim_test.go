package slotsim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func pPolicies(n int, p float64) []mac.Policy {
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewPPersistent(1, p)
	}
	return ps
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Policies: []mac.Policy{nil}}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(Config{Policies: pPolicies(2, 0.1), UpdatePeriod: -1}); err == nil {
		t.Error("negative update period accepted")
	}
}

func TestMatchesAnalyticModel(t *testing.T) {
	m := model.PPersistent{PHY: model.PaperPHY()}
	for _, tc := range []struct {
		n int
		p float64
	}{
		{10, 0.02}, {20, 0.01}, {40, 0.007}, {20, 0.1},
	} {
		s, err := New(Config{Policies: pPolicies(tc.n, tc.p), Seed: int64(tc.n)})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(30 * sim.Second)
		attempt := make([]float64, tc.n)
		for i := range attempt {
			attempt[i] = tc.p
		}
		want := m.SystemThroughputAt(attempt)
		if rel := math.Abs(res.Throughput-want) / want; rel > 0.04 {
			t.Errorf("N=%d p=%v: slotted %.3f Mbps vs model %.3f Mbps (rel %.3f)",
				tc.n, tc.p, res.ThroughputMbps(), want/1e6, rel)
		}
	}
}

func TestIdleSlotsMatchModel(t *testing.T) {
	n, p := 20, 0.02
	s, err := New(Config{Policies: pPolicies(n, p), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(30 * sim.Second)
	pi := math.Pow(1-p, float64(n))
	want := pi / (1 - pi)
	if math.Abs(res.IdleSlotsPerTx-want)/want > 0.05 {
		t.Errorf("idle slots per tx %.3f, want %.3f", res.IdleSlotsPerTx, want)
	}
}

func TestAgreesWithEventSimFullyConnected(t *testing.T) {
	// The ablation the DESIGN.md promises: on connected topologies the
	// two engines must tell the same story for identical policies.
	for _, tc := range []struct {
		n int
		p float64
	}{
		{10, 0.03}, {30, 0.01},
	} {
		slot, err := New(Config{Policies: pPolicies(tc.n, tc.p), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rs := slot.Run(20 * sim.Second)
		ev, err := eventsim.New(eventsim.Config{
			Topology: topo.New(topo.Point{}, topo.CircleEdge(tc.n, 8), topo.PaperRadii()),
			Policies: pPolicies(tc.n, tc.p),
			Seed:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		re := ev.Run(20 * sim.Second)
		if rel := math.Abs(rs.Throughput-re.Throughput) / re.Throughput; rel > 0.05 {
			t.Errorf("N=%d p=%v: slotted %.3f vs event %.3f Mbps (rel %.3f)",
				tc.n, tc.p, rs.ThroughputMbps(), re.ThroughputMbps(), rel)
		}
		if rel := math.Abs(rs.IdleSlotsPerTx-re.APIdleSlots) / re.APIdleSlots; rel > 0.1 {
			t.Errorf("N=%d p=%v: idle slots slotted %.3f vs event %.3f",
				tc.n, tc.p, rs.IdleSlotsPerTx, re.APIdleSlots)
		}
	}
}

func TestDCFAgreesWithEventSim(t *testing.T) {
	mkPolicies := func(n int) []mac.Policy {
		ps := make([]mac.Policy, n)
		for i := range ps {
			ps[i] = mac.NewStandardDCF(8, 1024)
		}
		return ps
	}
	n := 20
	slot, err := New(Config{Policies: mkPolicies(n), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rs := slot.Run(20 * sim.Second)
	ev, err := eventsim.New(eventsim.Config{
		Topology: topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies: mkPolicies(n),
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	re := ev.Run(20 * sim.Second)
	if rel := math.Abs(rs.Throughput-re.Throughput) / re.Throughput; rel > 0.06 {
		t.Errorf("DCF slotted %.3f vs event %.3f Mbps (rel %.3f)",
			rs.ThroughputMbps(), re.ThroughputMbps(), rel)
	}
}

func TestWTOPConvergesInSlotSim(t *testing.T) {
	// Full closed loop: wTOP controller + p-persistent stations in the
	// slotted engine must approach the analytic optimum.
	n := 20
	phy := model.PaperPHY()
	ctl := core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewPPersistent(1, 0.1)
	}
	s, err := New(Config{Policies: ps, Controller: ctl, Seed: 9, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(120 * sim.Second)
	mdl := model.PPersistent{PHY: phy}
	opt := mdl.MaxThroughput(model.UnitWeights(n))
	converged := res.ThroughputSeries.MeanAfter(sim.Time(60 * sim.Second))
	if converged < 0.9*opt {
		t.Errorf("wTOP converged to %.2f Mbps < 90%% of optimum %.2f Mbps (pval %.4f, p* %.4f)",
			converged/1e6, opt/1e6, ctl.PVal(), mdl.OptimalP(model.UnitWeights(n)))
	}
}

func TestTORAConvergesInSlotSim(t *testing.T) {
	n := 20
	phy := model.PaperPHY()
	back := model.PaperBackoff()
	ctl := core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate})
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
	}
	s, err := New(Config{Policies: ps, Controller: ctl, Seed: 10, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(120 * sim.Second)
	rr := model.RandomReset{PHY: phy, Backoff: back, N: n}
	_, _, best := rr.OptimalJP(0.05)
	converged := res.ThroughputSeries.MeanAfter(sim.Time(60 * sim.Second))
	if converged < 0.88*best {
		t.Errorf("TORA converged to %.2f Mbps < 88%% of best RandomReset %.2f Mbps (j=%d p0=%.3f)",
			converged/1e6, best/1e6, ctl.J(), ctl.P0Val())
	}
}

func TestIdleSenseRegulatesIdleSlots(t *testing.T) {
	// IdleSense stations must drive the observed idle-slot average close
	// to the 3.1 target in a connected network.
	n := 20
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewIdleSense(mac.IdleSenseConfig{})
	}
	s, err := New(Config{Policies: ps, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(60 * sim.Second)
	if math.Abs(res.IdleSlotsPerTx-3.1) > 0.8 {
		t.Errorf("IdleSense idle slots %.3f, want ≈ 3.1", res.IdleSlotsPerTx)
	}
	// And its throughput should be near-optimal in the connected case
	// (Fig. 3: IdleSense ≈ wTOP ≈ TORA without hidden nodes).
	opt := model.PPersistent{PHY: model.PaperPHY()}.MaxThroughput(model.UnitWeights(n))
	if res.Throughput < 0.9*opt {
		t.Errorf("IdleSense throughput %.2f Mbps < 90%% of optimum %.2f", res.ThroughputMbps(), opt/1e6)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) *Result {
		s, err := New(Config{Policies: pPolicies(10, 0.02), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(5 * sim.Second)
	}
	a, b := run(42), run(42)
	if a.Throughput != b.Throughput || a.Successes != b.Successes {
		t.Error("same seed diverged")
	}
}

// A run advanced in increments must be bit-identical to one advanced in
// a single call — the property that lets callers (the wlan facade) poll
// cancellation between chunks. IdleSense exercises the idle-run
// observer whose counter must survive a chunk boundary landing mid
// idle run; the Poisson case exercises arrival admission across
// boundaries.
func TestRunIncrementalMatchesOneShot(t *testing.T) {
	build := func() []Config {
		n := 10
		idle := make([]mac.Policy, n)
		for i := range idle {
			idle[i] = mac.NewIdleSense(mac.IdleSenseConfig{})
		}
		poisson := make([]traffic.Spec, n)
		for i := range poisson {
			poisson[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 150}
		}
		return []Config{
			{Policies: idle, Seed: 5},
			{Policies: pPolicies(n, 0.05), Seed: 5, Arrivals: poisson},
		}
	}
	const total = 2 * sim.Second
	for ci := range build() {
		one, err := New(build()[ci])
		if err != nil {
			t.Fatal(err)
		}
		whole := one.Run(total)

		chunked, err := New(build()[ci])
		if err != nil {
			t.Fatal(err)
		}
		var got *Result
		// Deliberately ragged chunk ends, none aligned with slots or
		// controller windows.
		for at := sim.Duration(0); at < total; at += 177 * sim.Millisecond {
			got = chunked.Run(at)
		}
		got = chunked.Run(total)

		if !reflect.DeepEqual(whole, got) {
			t.Errorf("config %d: incremental run diverged from one-shot:\n%+v\nvs\n%+v", ci, whole, got)
		}
	}
}
