package slotsim_test

// Bit-identity fingerprints for the slotted engine, mirroring
// internal/eventsim's battery: every feature the engine supports —
// window and memoryless policies, both controllers, Poisson arrivals,
// Bianchi-regime station counts — hashed over the canonical Result
// encoding and pinned by a committed fixture. Any refactor of the slot
// loop (bucketed backoff tracking, arena reuse) must reproduce these
// bytes exactly.
//
// Regenerate ONLY on an intentional behaviour change:
//
//	go test ./internal/slotsim -run TestEngineFingerprints -update

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/slotsim"
	"repro/internal/traffic"
)

var updateFingerprints = flag.Bool("update", false, "regenerate the engine fingerprint fixtures")

type fingerprintCase struct {
	name  string
	seeds []int64
	dur   sim.Duration
	build func(seed int64) slotsim.Config
}

func (fc *fingerprintCase) run(t *testing.T, seed int64) *slotsim.Result {
	t.Helper()
	s := mustSim(t, fc.build(seed))
	return s.Run(fc.dur)
}

func (fc *fingerprintCase) runReset(t *testing.T, seed int64, arena **slotsim.Simulator) *slotsim.Result {
	t.Helper()
	cfg := fc.build(seed)
	if *arena == nil {
		*arena = mustSim(t, cfg)
	} else if err := (*arena).Reset(cfg); err != nil {
		t.Fatal(err)
	}
	return (*arena).Run(fc.dur)
}

func policySet(scheme string, n int, phy model.PHY) ([]mac.Policy, core.Controller) {
	policies := make([]mac.Policy, n)
	var controller core.Controller
	switch scheme {
	case "dcf":
		for i := range policies {
			policies[i] = mac.NewStandardDCF(16, 1024)
		}
	case "pp":
		for i := range policies {
			policies[i] = mac.NewPPersistent(1, 0.02)
		}
	case "idlesense":
		for i := range policies {
			policies[i] = mac.NewIdleSense(mac.IdleSenseConfig{})
		}
	case "wtop":
		for i := range policies {
			policies[i] = mac.NewPPersistent(1, 0.1)
		}
		controller = core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	case "tora":
		back := model.PaperBackoff()
		for i := range policies {
			policies[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
		}
		controller = core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate})
	default:
		panic("unknown scheme " + scheme)
	}
	return policies, controller
}

func mustSim(t *testing.T, cfg slotsim.Config) *slotsim.Simulator {
	t.Helper()
	s, err := slotsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fingerprintCases() []fingerprintCase {
	phy := model.PaperPHY()
	simple := func(scheme string, n int) func(int64) slotsim.Config {
		return func(seed int64) slotsim.Config {
			policies, controller := policySet(scheme, n, phy)
			return slotsim.Config{Policies: policies, Controller: controller, Seed: seed}
		}
	}
	return []fingerprintCase{
		{name: "dcf-8", seeds: []int64{1, 2}, dur: 2 * sim.Second, build: simple("dcf", 8)},
		{name: "dcf-64-bianchi", seeds: []int64{3, 4}, dur: 2 * sim.Second, build: simple("dcf", 64)},
		{name: "pp-20", seeds: []int64{5, 6}, dur: 2 * sim.Second, build: simple("pp", 20)},
		{name: "idlesense-16", seeds: []int64{7, 8}, dur: 2 * sim.Second, build: simple("idlesense", 16)},
		{name: "wtop-12", seeds: []int64{9, 10}, dur: 2 * sim.Second, build: simple("wtop", 12)},
		{name: "tora-12", seeds: []int64{11, 12}, dur: 2 * sim.Second, build: simple("tora", 12)},
		{
			// Attempt probability low enough that mean geometric
			// backoffs (~1/p = 5000 slots) exceed the backoff tracker's
			// ring horizon (4096): pins the overflow insert/remove/
			// migration path with engine-level bit-identity.
			name: "pp-sparse-overflow", seeds: []int64{17, 18}, dur: 2 * sim.Second,
			build: func(seed int64) slotsim.Config {
				policies := make([]mac.Policy, 8)
				for i := range policies {
					policies[i] = mac.NewPPersistent(1, 2e-4)
				}
				return slotsim.Config{Policies: policies, Seed: seed}
			},
		},
		{
			name: "poisson-dcf", seeds: []int64{13, 14}, dur: 2 * sim.Second,
			build: func(seed int64) slotsim.Config {
				policies, _ := policySet("dcf", 10, phy)
				arrivals := make([]traffic.Spec, 10)
				for i := range arrivals {
					arrivals[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 150, QueueCap: 16}
				}
				return slotsim.Config{Policies: policies, Arrivals: arrivals, Seed: seed}
			},
		},
		{
			name: "poisson-mixed-pp", seeds: []int64{15, 16}, dur: 2 * sim.Second,
			build: func(seed int64) slotsim.Config {
				policies, _ := policySet("pp", 12, phy)
				arrivals := make([]traffic.Spec, 12)
				for i := range arrivals {
					if i%3 == 0 {
						arrivals[i] = traffic.Spec{Kind: traffic.Saturated}
					} else {
						arrivals[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 300, QueueCap: 8}
					}
				}
				return slotsim.Config{Policies: policies, Arrivals: arrivals, Seed: seed}
			},
		},
	}
}

// TestResetMatchesNew drives one slotted arena through the whole
// battery back to back — switching station counts, schemes and traffic
// models between runs — and requires each Result to match the fresh
// construction byte for byte. Results are compared (marshalled) before
// the next Reset, which reuses their storage.
func TestResetMatchesNew(t *testing.T) {
	var arena *slotsim.Simulator
	for _, fc := range fingerprintCases() {
		for _, seed := range fc.seeds {
			freshSHA, _ := fingerprint(fc.run(t, seed))
			reusedSHA, _ := fingerprint(fc.runReset(t, seed, &arena))
			if freshSHA != reusedSHA {
				t.Errorf("%s seed %d: Reset diverges from New: %s vs %s",
					fc.name, seed, reusedSHA, freshSHA)
			}
		}
	}
}

func fingerprint(res *slotsim.Result) (string, int64) {
	data, err := json.Marshal(res)
	if err != nil {
		panic(err)
	}
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:]), res.Successes
}

type fingerprintRecord struct {
	Name      string `json:"name"`
	Seed      int64  `json:"seed"`
	SHA256    string `json:"sha256"`
	Successes int64  `json:"successes"`
}

const fingerprintFixture = "testdata/fingerprints.json"

// TestEngineFingerprints pins the slotted engine's exact output across
// the battery; see the package comment for the regeneration policy.
func TestEngineFingerprints(t *testing.T) {
	var got []fingerprintRecord
	for _, fc := range fingerprintCases() {
		for _, seed := range fc.seeds {
			res := fc.run(t, seed)
			sha, succ := fingerprint(res)
			got = append(got, fingerprintRecord{Name: fc.name, Seed: seed, SHA256: sha, Successes: succ})
		}
	}
	if *updateFingerprints {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(fingerprintFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fingerprintFixture, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d fingerprints", fingerprintFixture, len(got))
		return
	}
	data, err := os.ReadFile(fingerprintFixture)
	if err != nil {
		t.Fatalf("missing fingerprint fixture (run with -update to create): %v", err)
	}
	var want []fingerprintRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d fingerprints, battery produced %d (run with -update after adding cases)", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s seed %d: engine output drifted:\n  got  %+v\n  want %+v",
				got[i].Name, got[i].Seed, got[i], want[i])
		}
	}
}
