package slotsim

import (
	"testing"
	"testing/quick"

	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestTimeConservationExact(t *testing.T) {
	// The slotted engine's clock must decompose exactly into
	// idle·σ + successes·Ts + collisions·Tc — no time is created or
	// destroyed by the renewal bookkeeping.
	phy := model.PaperPHY()
	for _, tc := range []struct {
		n int
		p float64
	}{
		{1, 0.5}, {5, 0.1}, {20, 0.02}, {40, 0.2},
	} {
		s, err := New(Config{Policies: pPolicies(tc.n, tc.p), Seed: int64(tc.n), PHY: phy})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(5 * sim.Second)
		accounted := sim.Duration(res.IdleSlots)*phy.Slot +
			sim.Duration(res.Successes)*phy.Ts() +
			sim.Duration(res.Collisions)*phy.Tc()
		if accounted != res.Duration {
			t.Errorf("N=%d p=%v: accounted %v ≠ duration %v", tc.n, tc.p, accounted, res.Duration)
		}
	}
}

func TestTimeConservationProperty(t *testing.T) {
	phy := model.PaperPHY()
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		n := 1 + int(nRaw%30)
		p := 0.005 + float64(pRaw)/255*0.4
		s, err := New(Config{Policies: pPolicies(n, p), Seed: seed, PHY: phy})
		if err != nil {
			return false
		}
		res := s.Run(500 * sim.Millisecond)
		accounted := sim.Duration(res.IdleSlots)*phy.Slot +
			sim.Duration(res.Successes)*phy.Ts() +
			sim.Duration(res.Collisions)*phy.Tc()
		return accounted == res.Duration
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPerStationBitsSumToTotal(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%20)
		s, err := New(Config{Policies: pPolicies(n, 0.05), Seed: seed})
		if err != nil {
			return false
		}
		res := s.Run(sim.Second)
		var bits int64
		for _, b := range res.PerStation {
			bits += b
		}
		return bits == res.Successes*int64(model.PaperPHY().Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedPolicyPopulation(t *testing.T) {
	// The engine must drive heterogeneous policy populations; a fixed-p*
	// station among DCF stations should gain share, not crash anything.
	n := 10
	phy := model.PaperPHY()
	star := model.PPersistent{PHY: phy}.OptimalP(model.UnitWeights(n))
	policies := make([]mac.Policy, n)
	for i := range policies {
		if i == 0 {
			policies[i] = mac.NewPPersistent(1, star*3) // aggressive
		} else {
			policies[i] = mac.NewStandardDCF(8, 1024)
		}
	}
	s, err := New(Config{Policies: policies, Seed: 4, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(10 * sim.Second)
	if res.PerStation[0] <= res.PerStation[1] {
		t.Errorf("aggressive station 0 (%d bits) did not out-deliver DCF station (%d bits)",
			res.PerStation[0], res.PerStation[1])
	}
}

func TestSlowDecreaseBeatsDCFConnected(t *testing.T) {
	// The related-work claim for [15]: slow decrease improves on standard
	// DCF in a crowded connected network but stays below the optimum.
	n := 30
	phy := model.PaperPHY()
	run := func(mk func() mac.Policy) float64 {
		policies := make([]mac.Policy, n)
		for i := range policies {
			policies[i] = mk()
		}
		s, err := New(Config{Policies: policies, Seed: 8, PHY: phy})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(20 * sim.Second).Throughput
	}
	dcf := run(func() mac.Policy { return mac.NewStandardDCF(8, 1024) })
	slow := run(func() mac.Policy { return mac.NewSlowDecrease(8, 1024, 0.5) })
	opt := model.PPersistent{PHY: phy}.MaxThroughput(model.UnitWeights(n))
	if slow <= dcf {
		t.Errorf("SlowDecrease %.2f Mbps not above DCF %.2f Mbps", slow/1e6, dcf/1e6)
	}
	if slow >= opt {
		t.Errorf("SlowDecrease %.2f Mbps implausibly above the optimum %.2f Mbps", slow/1e6, opt/1e6)
	}
}

func TestEstimateNNearOptimalConnected(t *testing.T) {
	// EstimateN embodies the model-based approach: in the connected
	// network its closed-form tuning should land within a few percent of
	// the optimum (the paper's premise — these schemes only break when
	// the model does).
	n := 30
	phy := model.PaperPHY()
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewEstimateN(phy.TcSlots(), 10)
	}
	s, err := New(Config{Policies: policies, Seed: 12, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(30 * sim.Second)
	opt := model.PPersistent{PHY: phy}.MaxThroughput(model.UnitWeights(n))
	if res.Throughput < 0.95*opt {
		t.Errorf("EstimateN %.2f Mbps < 95%% of optimum %.2f Mbps", res.ThroughputMbps(), opt/1e6)
	}
}
