package slotsim

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveTracker is the reference model: a plain map of relative
// counters, decremented on advance — the semantics the pre-tracker
// scanning loop implemented directly.
type naiveTracker struct {
	counters map[int]int
}

func (n *naiveTracker) insert(id, c int) { n.counters[id] = c }
func (n *naiveTracker) remove(id int)    { delete(n.counters, id) }
func (n *naiveTracker) advance(jump int) {
	for id := range n.counters {
		n.counters[id] -= jump
	}
}
func (n *naiveTracker) expired() []int {
	var out []int
	for id, c := range n.counters {
		if c == 0 {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
func (n *naiveTracker) min() int {
	best := int(^uint(0) >> 1)
	for _, c := range n.counters {
		if c < best {
			best = c
		}
	}
	return best
}

// TestBackoffTrackerDifferential drives the calendar-queue tracker and
// the naive counter model through tens of thousands of randomized
// operations — inserts spanning the ring AND the overflow horizon,
// removals (hitting the overflow swap-delete and the lazy min cache),
// expiry harvesting and large advances (hitting overflow→ring
// migration) — and requires identical attacker sets and minimum
// counters throughout. This is the committed guardrail for the
// overflow machinery, which the engine fingerprints (realistic p, small
// counters) barely reach.
func TestBackoffTrackerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr backoffTracker
	const n = 48
	tr.reset(n)
	model := &naiveTracker{counters: map[int]int{}}
	relative := func(id int) int64 { return int64(model.counters[id]) }

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert an untracked station
			id := rng.Intn(n)
			if _, ok := model.counters[id]; ok {
				continue
			}
			var c int
			switch rng.Intn(3) {
			case 0:
				c = rng.Intn(64) // dense ring traffic
			case 1:
				c = rng.Intn(trackerSpan) // whole ring
			default:
				c = trackerSpan + rng.Intn(3*trackerSpan) // overflow
			}
			tr.insert(id, c)
			model.insert(id, c)
		case op < 6: // remove a tracked station
			var ids []int
			for id := range model.counters {
				ids = append(ids, id)
			}
			if len(ids) == 0 {
				continue
			}
			sort.Ints(ids)
			id := ids[rng.Intn(len(ids))]
			tr.remove(id, relative(id))
			model.remove(id)
		case op < 8: // harvest expired
			got := tr.takeExpired(nil)
			sort.Ints(got)
			want := model.expired()
			if !equalInts(got, want) {
				t.Fatalf("step %d: expired %v, want %v", step, got, want)
			}
			for _, id := range want {
				model.remove(id)
			}
		default: // advance by up to the minimum
			m := tr.minCounter()
			if wm := model.min(); m != wm {
				t.Fatalf("step %d: minCounter %d, want %d", step, m, wm)
			}
			if m == 0 || m == int(^uint(0)>>1) {
				continue
			}
			jump := 1 + rng.Intn(m)
			tr.advance(jump)
			model.advance(jump)
		}
	}
	// Final agreement over everything still tracked.
	if m, wm := tr.minCounter(), model.min(); m != wm {
		t.Fatalf("final minCounter %d, want %d", m, wm)
	}
}

// TestMinCounterLargeOverflowExpiry pins the int64 overflow-delta
// arithmetic: a clamped geometric tail can park an expiry billions of
// slots out, and the delta to it must survive minCounter without being
// truncated through int (it wrapped negative on 32-bit platforms before
// the fix, stalling the idle jump). The relative delta is also exercised
// past 2³¹ against a ring entry, which must still win the comparison.
func TestMinCounterLargeOverflowExpiry(t *testing.T) {
	var tr backoffTracker
	tr.reset(4)

	// Overflow-only: the delta IS the answer, even when it exceeds 2³¹.
	const far = int64(1) << 33
	maxInt := int(^uint(0) >> 1)
	farCounter := far
	if farCounter > int64(maxInt) {
		farCounter = int64(maxInt) // 32-bit: insert clamps at the API edge
	}
	tr.insert(0, int(farCounter))
	if got := int64(tr.minCounter()); got != farCounter {
		t.Fatalf("minCounter = %d, want the far overflow delta %d", got, farCounter)
	}

	// A ring entry must beat the far overflow expiry; a negative or
	// wrapped overflow delta would steal the minimum.
	tr.insert(1, 100)
	if got := tr.minCounter(); got != 100 {
		t.Fatalf("minCounter = %d with ring entry 100 + far overflow, want 100", got)
	}

	// After advancing past the ring entry's expiry, the harvested
	// minimum must fall back to the (still huge) overflow delta.
	tr.advance(100)
	tr.takeExpired(nil)
	if got := int64(tr.minCounter()); got != farCounter-100 {
		t.Fatalf("minCounter = %d after advance, want %d", got, farCounter-100)
	}

	// Empty tracker still reports maxInt.
	tr.remove(0, farCounter-100)
	if got := tr.minCounter(); got != maxInt {
		t.Fatalf("minCounter = %d on empty tracker, want maxInt", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
