package slotsim

import (
	"math"
	"testing"

	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
)

// TestBianchiAgreementLargeN validates the newly opened scale tier — no
// goldens exist above the paper's few hundred stations — against the
// closed forms in internal/model/bianchi.go. Three regime choices make
// the comparison meaningful at this scale:
//
// Windows scale with the population. With the paper's fixed 8–1024
// window a 100k-station slot would see ~200 simultaneous attackers and
// a success probability near e⁻²⁰⁰, so any fixed-small-window
// comparison degenerates to 0 ≈ 0. Each case instead keeps the
// aggregate attempt rate of order one: 4k and 16k run doubling windows
// (CWmin = n/4, three stages), exercising the genuine coupled fixed
// point τ = τ(c); 100k runs a single fixed window W = n (M = 0), where
// the closed-form attempt rate is exact and the residual isolates the
// engine's slot accounting. Window (non-memoryless) policies also keep
// the busy-period resume pass empty, which is what makes a 100k run
// take seconds instead of minutes.
//
// The yardstick is FrozenThroughput, not plain Bianchi. The engine
// implements true 802.11 freeze/resume (a busy period consumes no
// backoff decrement for waiting stations), while Bianchi's chain spends
// one counter tick per busy period. The paper's memoryless policies
// cannot tell the two apart — which is why the divergence stayed
// invisible below the old 512-station cap — but population-scaled
// windows span many busy periods and the clocks drift ~4% apart
// (asserted below so the gap stays documented, not forgotten).
//
// Warm-up is discarded. Every station starts at stage 0 with a fresh
// uniform draw, so the attempt process needs ~CWmax slots — which now
// scales with n — to mix into its stationary law; throughput is
// measured on a second Run segment after an equal warm segment.
//
// Tolerance: 1.5%. Measured steady-state disagreement against the
// frozen form is ≤ 0.4% across the three cases; the remainder is
// sampling noise (≳ 50k measured successes per case, ≲ 0.5%) plus the
// model's ignored O(1/CW) zero-redraw chains. The small-n fixed-point
// regime is covered separately by eventsim's
// TestBianchiFixedPointThroughput.
func TestBianchiAgreementLargeN(t *testing.T) {
	cases := []struct {
		n             int
		cwMin, stages int
		warm, measure sim.Duration
	}{
		// Mixing time ≈ CWmax slots; warm covers it several times over.
		{4096, 1024, 3, 60 * sim.Second, 60 * sim.Second},
		{16384, 4096, 3, 120 * sim.Second, 120 * sim.Second},
		{100_000, 100_000, 0, 150 * sim.Second, 150 * sim.Second},
	}
	for _, tc := range cases {
		if testing.Short() && tc.n > 4096 {
			// The 100k tier alone allocates ~0.5 GB of per-station RNG
			// state; the full (non-short) suite still covers it.
			continue
		}
		cwMax := tc.cwMin << uint(tc.stages)
		policies := make([]mac.Policy, tc.n)
		for i := range policies {
			policies[i] = mac.NewStandardDCF(tc.cwMin, cwMax)
		}
		s, err := New(Config{Policies: policies, Seed: int64(tc.n)})
		if err != nil {
			t.Fatal(err)
		}
		warmRes := s.Run(tc.warm)
		var warmBits int64
		for _, b := range warmRes.PerStation {
			warmBits += b
		}
		warmDur, warmSucc := warmRes.Duration, warmRes.Successes
		res := s.Run(tc.warm + tc.measure) // absolute end: continues the same run
		var totalBits int64
		for _, b := range res.PerStation {
			totalBits += b
		}
		got := float64(totalBits-warmBits) / (res.Duration - warmDur).Seconds()
		d := model.DCF{
			PHY:     model.PaperPHY(),
			Backoff: model.BackoffParams{CWMin: tc.cwMin, M: tc.stages},
			N:       tc.n,
		}
		want := d.FrozenThroughput()
		rel := math.Abs(got-want) / want
		t.Logf("n=%d CW=[%d,%d]: slotsim %.3f Mbps vs frozen %.3f Mbps (rel %.4f, %d measured successes)",
			tc.n, tc.cwMin, cwMax, got/1e6, want/1e6, rel, res.Successes-warmSucc)
		if rel > 0.015 {
			t.Errorf("n=%d: slotsim %.3f Mbps vs frozen closed form %.3f Mbps, relative error %.4f > 0.015",
				tc.n, got/1e6, want/1e6, rel)
		}
		// The freezing-vs-Bianchi semantic gap: plain Bianchi overshoots
		// the engine by a few percent in this regime. Assert it stays a
		// gap — if the two ever agree here, either the engine's resume
		// semantics or the model transform changed silently.
		bianchi := d.Throughput()
		if gap := (bianchi - got) / bianchi; gap < 0.01 || gap > 0.10 {
			t.Errorf("n=%d: Bianchi-vs-engine gap %.4f outside the documented (0.01, 0.10) band", tc.n, gap)
		}
	}
}
