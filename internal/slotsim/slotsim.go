// Package slotsim is a slot-synchronous simulator of saturated CSMA/CA in
// a *fully connected* network — the world Bianchi's renewal analysis
// lives in. Every station shares one global slot clock: a slot is idle
// (σ), a success (Ts) or a collision (Tc) depending on how many stations'
// backoff counters expire together.
//
// It exists for two reasons: cross-validating the event-driven engine
// (both must agree on connected topologies — an ablation the test suite
// enforces) and running large parameter sweeps quickly (it advances one
// busy period per step instead of simulating the air byte by byte).
// It cannot represent hidden nodes: that is eventsim's job.
package slotsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Config assembles a slotted run.
type Config struct {
	// PHY supplies timing (zero value: model.PaperPHY()).
	PHY model.PHY
	// Policies holds one contention policy per station.
	Policies []mac.Policy
	// Controller optionally runs at the AP, exactly as in eventsim.
	Controller core.Controller
	// UpdatePeriod is the controller window (default 250 ms).
	UpdatePeriod sim.Duration
	// Seed drives all randomness.
	Seed int64
	// Arrivals describes each station's packet arrival process, in
	// station-index order. Nil means saturated everywhere (bit-identical
	// to pre-Arrivals behaviour). The slotted abstraction supports
	// Saturated and Poisson sources; OnOff bursts need the continuous
	// clock of eventsim and are rejected here. Arrivals land on the slot
	// grid: a packet arriving mid-slot joins contention at the next slot
	// boundary, the slotted counterpart of eventsim's continuous-time
	// admission.
	Arrivals []traffic.Spec
}

// Result summarises a slotted run.
type Result struct {
	// Duration is the simulated time consumed.
	Duration sim.Duration
	// Throughput is delivered payload bits per second.
	Throughput float64
	// PerStation is each station's delivered payload bits.
	PerStation []int64
	// Successes/Collisions count busy periods by outcome (a collision
	// period involving any number of stations counts once).
	Successes, Collisions int64
	// IdleSlots is the total count of idle slots.
	IdleSlots int64
	// IdleSlotsPerTx is the mean idle-slot run before a busy period.
	IdleSlotsPerTx float64
	// ControlSeries tracks the controller variable per window.
	ControlSeries stats.TimeSeries
	// ThroughputSeries tracks windowed throughput.
	ThroughputSeries stats.TimeSeries
	// PacketsArrived and PacketsDropped count offered packets and
	// queue-overflow losses across unsaturated stations (zero in the
	// saturated regime).
	PacketsArrived, PacketsDropped int64
}

// ThroughputMbps returns the run throughput in Mbit/s.
func (r *Result) ThroughputMbps() float64 { return r.Throughput / 1e6 }

// Simulator is the slot-synchronous engine.
type Simulator struct {
	cfg      Config
	rng      *sim.RNG
	stations []slotStation
	now      sim.Time

	windowBits  int64
	windowStart sim.Time
	nextWindow  sim.Time
	control     frame.Control

	// attackerIdx is the per-slot scratch of expired counters, hoisted
	// here so repeated Run calls stay allocation-free.
	attackerIdx []int

	// unsat is true when any station has a finite-load source; the
	// saturated hot loop skips every arrival check when false.
	unsat bool

	res Result
}

type slotStation struct {
	policy  mac.Policy
	rng     *sim.RNG
	counter int
	bits    int64

	// Unsaturated-source state: the arrival spec, its dedicated RNG
	// substream, the (continuous) instant of the next arrival, and the
	// current queue length. A station contends only while backlogged.
	arr    traffic.Spec
	arrRNG *sim.RNG
	next   sim.Time
	qlen   int
}

// backlogged reports whether the station has a frame to contend for.
func (st *slotStation) backlogged() bool {
	return !st.arr.Unsaturated() || st.qlen > 0
}

// New validates cfg and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("slotsim: no policies")
	}
	for i, p := range cfg.Policies {
		if p == nil {
			return nil, fmt.Errorf("slotsim: policy %d is nil", i)
		}
	}
	if cfg.PHY == (model.PHY{}) {
		cfg.PHY = model.PaperPHY()
	}
	if err := cfg.PHY.Validate(); err != nil {
		return nil, err
	}
	if cfg.UpdatePeriod == 0 {
		cfg.UpdatePeriod = 250 * sim.Millisecond
	}
	if cfg.UpdatePeriod < 0 {
		return nil, fmt.Errorf("slotsim: negative UpdatePeriod")
	}
	if cfg.Arrivals != nil {
		if len(cfg.Arrivals) != len(cfg.Policies) {
			return nil, fmt.Errorf("slotsim: %d arrival specs for %d stations", len(cfg.Arrivals), len(cfg.Policies))
		}
		for i, a := range cfg.Arrivals {
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("slotsim: station %d: %w", i, err)
			}
			if a.Kind == traffic.OnOff {
				return nil, fmt.Errorf("slotsim: station %d: onoff arrivals need the continuous clock of eventsim", i)
			}
		}
	}
	s := &Simulator{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}
	s.stations = make([]slotStation, len(cfg.Policies))
	for i := range s.stations {
		st := &s.stations[i]
		st.policy = cfg.Policies[i]
		st.rng = s.rng.Split(int64(i))
		st.counter = st.policy.NextBackoff(st.rng)
	}
	if cfg.Arrivals != nil {
		for i := range s.stations {
			if cfg.Arrivals[i].Unsaturated() {
				s.unsat = true
				break
			}
		}
		// Arrival substreams are split only when an unsaturated source
		// exists, so all-saturated configs stay bit-identical to a
		// nil-Arrivals run (same root-RNG consumption).
		if s.unsat {
			n := len(s.stations)
			for i := range s.stations {
				st := &s.stations[i]
				st.arr = cfg.Arrivals[i]
				st.arrRNG = s.rng.Split(int64(n + i))
				if st.arr.Unsaturated() {
					st.next = sim.Time(st.arr.NextInterArrival(st.arrRNG))
				}
			}
		}
	}
	s.res.PerStation = make([]int64, len(cfg.Policies))
	s.nextWindow = sim.Time(cfg.UpdatePeriod)
	if cfg.Controller != nil {
		s.control = cfg.Controller.Control()
	}
	return s, nil
}

// Run advances the simulation until at least the given simulated duration
// has elapsed and returns the results.
func (s *Simulator) Run(duration sim.Duration) *Result {
	end := sim.Time(duration)
	idleRun := int64(0)
	for s.now.Before(end) {
		if s.unsat {
			s.admitArrivals()
		}
		// Collect backlogged stations whose counters expired; track the
		// minimum surviving counter so idle runs can be fast-forwarded in
		// one step instead of one slot at a time.
		s.attackerIdx = s.attackerIdx[:0]
		minCounter := int(^uint(0) >> 1)
		for i := range s.stations {
			if !s.stations[i].backlogged() {
				continue
			}
			c := s.stations[i].counter
			if c == 0 {
				s.attackerIdx = append(s.attackerIdx, i)
			} else if c < minCounter {
				minCounter = c
			}
		}
		attackers := len(s.attackerIdx)
		switch {
		case attackers == 0:
			// All backlogged counters are ≥ 1: the next minCounter slots
			// are idle by construction. Jump them at once, capped at the
			// next controller-window boundary so the windowed series
			// closes at exactly the same instants as the per-slot walk.
			jump := minCounter
			if boundary := int((s.nextWindow.Sub(s.now) + s.cfg.PHY.Slot - 1) / s.cfg.PHY.Slot); boundary >= 1 && boundary < jump {
				jump = boundary
			}
			// Cap at the run end too: the per-slot walk stops at the
			// first slot boundary ≥ end, and Duration must match it.
			if endSlots := int((end.Sub(s.now) + s.cfg.PHY.Slot - 1) / s.cfg.PHY.Slot); endSlots >= 1 && endSlots < jump {
				jump = endSlots
			}
			// An arrival can make an idle station backlogged mid-run;
			// stop the jump at the first upcoming arrival's slot boundary
			// so its backoff starts on time.
			if s.unsat {
				if slots := s.slotsUntilArrival(); slots >= 1 && slots < jump {
					jump = slots
				}
			}
			s.res.IdleSlots += int64(jump)
			idleRun += int64(jump)
			s.now = s.now.Add(sim.Duration(jump) * s.cfg.PHY.Slot)
			for i := range s.stations {
				if s.stations[i].backlogged() {
					s.stations[i].counter -= jump
				}
			}
		case attackers == 1:
			winner := s.attackerIdx[0]
			st := &s.stations[winner]
			s.observe(idleRun)
			idleRun = 0
			s.now = s.now.Add(s.cfg.PHY.Ts())
			s.res.Successes++
			payload := int64(s.cfg.PHY.Payload)
			st.bits += payload
			s.res.PerStation[winner] += payload
			s.windowBits += payload
			if st.arr.Unsaturated() {
				st.qlen--
			}
			st.policy.OnSuccess(st.rng)
			s.broadcast()
			s.redraw(winner)
			s.resume(s.attackerIdx)
		default:
			s.observe(idleRun)
			idleRun = 0
			s.now = s.now.Add(s.cfg.PHY.Tc())
			s.res.Collisions++
			// Each station must be drawn exactly once per busy period:
			// attackers through the failure path, the rest through
			// resume. A naive "redraw then resume anything non-zero"
			// double-draws attackers whose fresh counter came up ≥ 1,
			// inflating their attempt probability from p to p+(1−p)p.
			for _, i := range s.attackerIdx {
				st := &s.stations[i]
				st.policy.OnFailure(st.rng)
				s.redraw(i)
			}
			s.resume(s.attackerIdx)
		}
		s.maybeCloseWindow()
	}
	s.res.Duration = s.now.Sub(0)
	if secs := s.now.Seconds(); secs > 0 {
		total := int64(0)
		for i := range s.res.PerStation {
			total += s.res.PerStation[i]
		}
		s.res.Throughput = float64(total) / secs
	}
	busy := s.res.Successes + s.res.Collisions
	if busy > 0 {
		s.res.IdleSlotsPerTx = float64(s.res.IdleSlots) / float64(busy)
	}
	return &s.res
}

// observe feeds medium-observing policies (IdleSense) the idle run that
// preceded the busy period just starting.
func (s *Simulator) observe(idleRun int64) {
	for i := range s.stations {
		if obs, ok := s.stations[i].policy.(mac.MediumObserver); ok {
			obs.ObserveTransmission(float64(idleRun))
		}
	}
}

// redraw draws a fresh backoff for station i after an attempt.
func (s *Simulator) redraw(i int) {
	st := &s.stations[i]
	st.counter = st.policy.NextBackoff(st.rng)
}

// resume applies post-busy-period counter semantics to the stations that
// did not attempt in the closing busy period: memoryless policies redraw,
// window policies keep their frozen residual. attackers lists the
// stations that transmitted (already redrawn by their outcome paths).
func (s *Simulator) resume(attackers []int) {
	k := 0 // attackers is sorted ascending by construction
	for i := range s.stations {
		if k < len(attackers) && attackers[k] == i {
			k++
			continue
		}
		st := &s.stations[i]
		if !st.backlogged() {
			continue // no frame, no counter to maintain
		}
		if m, ok := st.policy.(mac.Memoryless); ok && m.BackoffMemoryless() {
			st.counter = st.policy.NextBackoff(st.rng)
		}
	}
}

// admitArrivals moves every arrival with timestamp ≤ now into its
// station's queue, drawing the counter when the station becomes
// backlogged. Drops are counted against a full queue.
func (s *Simulator) admitArrivals() {
	for i := range s.stations {
		st := &s.stations[i]
		if !st.arr.Unsaturated() {
			continue
		}
		for !st.next.After(s.now) {
			s.res.PacketsArrived++
			if st.qlen >= st.arr.EffectiveQueueCap() {
				s.res.PacketsDropped++
			} else {
				st.qlen++
				if st.qlen == 1 {
					// A fresh head-of-line frame draws a fresh backoff
					// from the policy's current state.
					st.counter = st.policy.NextBackoff(st.rng)
				}
			}
			st.next = st.next.Add(st.arr.NextInterArrival(st.arrRNG))
		}
	}
}

// slotsUntilArrival returns the number of whole slots from now until the
// earliest pending arrival among unsaturated stations (minimum 1).
func (s *Simulator) slotsUntilArrival() int {
	earliest := sim.Time(int64(^uint64(0) >> 1))
	found := false
	for i := range s.stations {
		st := &s.stations[i]
		if st.arr.Unsaturated() && st.next.Before(earliest) {
			earliest = st.next
			found = true
		}
	}
	if !found {
		return 0
	}
	slots := int((earliest.Sub(s.now) + s.cfg.PHY.Slot - 1) / s.cfg.PHY.Slot)
	if slots < 1 {
		slots = 1
	}
	return slots
}

// broadcast delivers the AP control block to every station.
func (s *Simulator) broadcast() {
	if s.cfg.Controller == nil {
		return
	}
	for i := range s.stations {
		s.stations[i].policy.OnControl(s.control)
	}
}

// maybeCloseWindow runs the controller when the UPDATE_PERIOD boundary
// has been crossed.
func (s *Simulator) maybeCloseWindow() {
	if s.now.Before(s.nextWindow) {
		return
	}
	elapsed := s.now.Sub(s.windowStart).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(s.windowBits) / elapsed
	}
	s.res.ThroughputSeries.Append(s.now, rate)
	if s.cfg.Controller != nil {
		s.cfg.Controller.OnWindowEnd(rate)
		s.control = s.cfg.Controller.Control()
		v := s.control.P
		if s.control.Scheme == frame.ControlTORA {
			v = s.control.P0
		}
		s.res.ControlSeries.Append(s.now, v)
		// Deliver the fresh control block immediately — the slotted
		// abstraction of the AP's PIFS-priority beacon (eventsim models
		// the beacon airtime explicitly). Without this, a collision
		// collapse leaves no ACKs to carry the recovery values.
		s.broadcast()
	}
	s.windowBits = 0
	s.windowStart = s.now
	s.nextWindow = s.now.Add(s.cfg.UpdatePeriod)
}
