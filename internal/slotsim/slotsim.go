// Package slotsim is a slot-synchronous simulator of saturated CSMA/CA in
// a *fully connected* network — the world Bianchi's renewal analysis
// lives in. Every station shares one global slot clock: a slot is idle
// (σ), a success (Ts) or a collision (Tc) depending on how many stations'
// backoff counters expire together.
//
// It exists for two reasons: cross-validating the event-driven engine
// (both must agree on connected topologies — an ablation the test suite
// enforces) and running large parameter sweeps quickly (it advances one
// busy period per step instead of simulating the air byte by byte).
// It cannot represent hidden nodes: that is eventsim's job.
package slotsim

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Config assembles a slotted run.
type Config struct {
	// PHY supplies timing (zero value: model.PaperPHY()).
	PHY model.PHY
	// Policies holds one contention policy per station.
	Policies []mac.Policy
	// Controller optionally runs at the AP, exactly as in eventsim.
	Controller core.Controller
	// UpdatePeriod is the controller window (default 250 ms).
	UpdatePeriod sim.Duration
	// Seed drives all randomness.
	Seed int64
	// Arrivals describes each station's packet arrival process, in
	// station-index order. Nil means saturated everywhere (bit-identical
	// to pre-Arrivals behaviour). The slotted abstraction supports
	// Saturated and Poisson sources; OnOff bursts need the continuous
	// clock of eventsim and are rejected here. Arrivals land on the slot
	// grid: a packet arriving mid-slot joins contention at the next slot
	// boundary, the slotted counterpart of eventsim's continuous-time
	// admission.
	Arrivals []traffic.Spec
}

// Result summarises a slotted run.
type Result struct {
	// Duration is the simulated time consumed.
	Duration sim.Duration
	// Throughput is delivered payload bits per second.
	Throughput float64
	// PerStation is each station's delivered payload bits.
	PerStation []int64
	// Successes/Collisions count busy periods by outcome (a collision
	// period involving any number of stations counts once).
	Successes, Collisions int64
	// IdleSlots is the total count of idle slots.
	IdleSlots int64
	// IdleSlotsPerTx is the mean idle-slot run before a busy period.
	IdleSlotsPerTx float64
	// ControlSeries tracks the controller variable per window.
	ControlSeries stats.TimeSeries
	// ThroughputSeries tracks windowed throughput.
	ThroughputSeries stats.TimeSeries
	// PacketsArrived and PacketsDropped count offered packets and
	// queue-overflow losses across unsaturated stations (zero in the
	// saturated regime).
	PacketsArrived, PacketsDropped int64
}

// ThroughputMbps returns the run throughput in Mbit/s.
func (r *Result) ThroughputMbps() float64 { return r.Throughput / 1e6 }

// Simulator is the slot-synchronous engine.
type Simulator struct {
	cfg      Config
	rng      *sim.RNG
	stations []slotStation
	now      sim.Time

	windowBits  int64
	windowStart sim.Time
	nextWindow  sim.Time
	control     frame.Control

	// attackerIdx is the per-slot scratch of expired counters, hoisted
	// here so repeated Run calls stay allocation-free.
	attackerIdx []int

	// idleRun counts idle slots since the last busy period. It lives on
	// the simulator — not as a Run local — so a run advanced in
	// increments (Run(t1); Run(t2)) observes exactly the idle runs of a
	// single Run(t2) call even when an increment boundary lands mid
	// idle run; incremental stepping is what lets callers poll
	// cancellation between chunks.
	idleRun int64

	// unsat is true when any station has a finite-load source; the
	// saturated hot loop skips every arrival check when false.
	unsat bool

	// tracker holds every backlogged station keyed by absolute backoff
	// expiry (see backoff.go): expired-counter collection and the
	// minimum-counter idle jump are bucket operations instead of O(N)
	// scans, and advancing the clock is a base bump instead of a
	// decrement of every counter.
	tracker backoffTracker

	// The per-busy-period and per-iteration passes never scan all N
	// stations: each pass walks a flat index array (the SoA idiom the
	// calendar queue's bitmap established) listing exactly the stations
	// it concerns, all fixed at init and ascending. memorylessIdx holds
	// the policies that redraw at every busy-period boundary (the resume
	// pass is free for DCF), observerIdx the MediumObserver policies
	// (IdleSense), and unsatIdx the finite-load sources (arrival
	// admission skips saturated stations, which at the 100k tier is
	// almost everyone).
	memorylessIdx []int32
	observerIdx   []int32
	unsatIdx      []int32

	res Result
}

type slotStation struct {
	policy mac.Policy
	// observer and memoryless cache the policy's optional-interface
	// shape (fixed per run).
	observer   mac.MediumObserver
	memoryless bool
	rng        *sim.RNG
	counter    int
	// expiry is the absolute slot index at which counter reaches zero,
	// valid while the station is tracked (backlogged).
	expiry int64
	bits   int64

	// Unsaturated-source state: the arrival spec, its dedicated RNG
	// substream, the (continuous) instant of the next arrival, and the
	// current queue length. A station contends only while backlogged.
	arr    traffic.Spec
	arrRNG *sim.RNG
	next   sim.Time
	qlen   int
}

// backlogged reports whether the station has a frame to contend for.
func (st *slotStation) backlogged() bool {
	return !st.arr.Unsaturated() || st.qlen > 0
}

// withDefaults validates the configuration and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if len(c.Policies) == 0 {
		return c, fmt.Errorf("slotsim: no policies")
	}
	for i, p := range c.Policies {
		if p == nil {
			return c, fmt.Errorf("slotsim: policy %d is nil", i)
		}
	}
	if c.PHY == (model.PHY{}) {
		c.PHY = model.PaperPHY()
	}
	if err := c.PHY.Validate(); err != nil {
		return c, err
	}
	if c.UpdatePeriod == 0 {
		c.UpdatePeriod = 250 * sim.Millisecond
	}
	if c.UpdatePeriod < 0 {
		return c, fmt.Errorf("slotsim: negative UpdatePeriod")
	}
	if c.Arrivals != nil {
		if len(c.Arrivals) != len(c.Policies) {
			return c, fmt.Errorf("slotsim: %d arrival specs for %d stations", len(c.Arrivals), len(c.Policies))
		}
		for i, a := range c.Arrivals {
			if err := a.Validate(); err != nil {
				return c, fmt.Errorf("slotsim: station %d: %w", i, err)
			}
			if a.Kind == traffic.OnOff {
				return c, fmt.Errorf("slotsim: station %d: onoff arrivals need the continuous clock of eventsim", i)
			}
		}
	}
	return c, nil
}

// New validates cfg and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Simulator{}
	s.init(cfg)
	return s, nil
}

// Reset reinitialises the simulator in place for a fresh run of cfg,
// reusing the warmed arenas — station storage, RNG state arrays, result
// slices and scratch buffers — so a pooled simulator replays runs
// without per-run allocation. Bit-identical to a fresh New(cfg);
// TestResetMatchesNew pins it. Reset reuses the Result's storage, so a
// *Result returned by an earlier Run is invalidated: callers that keep
// results across runs must copy what they need first.
func (s *Simulator) Reset(cfg Config) error {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	s.init(cfg)
	return nil
}

// init builds run state for a validated cfg on top of s's arenas. The
// wholesale struct assignment returns every non-arena field to its zero
// value; arenas are carried explicitly.
func (s *Simulator) init(cfg Config) {
	root := s.rng
	if root == nil {
		root = sim.NewRNG(cfg.Seed)
	} else {
		root.Reseed(cfg.Seed)
	}
	stations := s.stations
	per := s.res.PerStation
	tracker := s.tracker
	tracker.reset(len(cfg.Policies))
	memIdx := s.memorylessIdx[:0]
	obsIdx := s.observerIdx[:0]
	unsatIdx := s.unsatIdx[:0]
	// Series storage is deliberately NOT reused: Result marshals nil and
	// empty slices differently, and a reused-but-empty series would make
	// a Reset run's encoding observably differ from a fresh New run. The
	// few per-window appends are noise next to the RNG/station arenas.
	*s = Simulator{cfg: cfg, rng: root, attackerIdx: s.attackerIdx[:0], tracker: tracker}
	n := len(cfg.Policies)
	if cap(stations) < n {
		stations = make([]slotStation, n)
	} else {
		stations = stations[:n]
	}
	for i := range stations {
		st := &stations[i]
		rng, arrRNG := st.rng, st.arrRNG
		*st = slotStation{policy: cfg.Policies[i], arrRNG: arrRNG}
		st.observer, _ = st.policy.(mac.MediumObserver)
		if m, ok := st.policy.(mac.Memoryless); ok {
			st.memoryless = m.BackoffMemoryless()
		}
		if st.observer != nil {
			obsIdx = append(obsIdx, int32(i))
		}
		if st.memoryless {
			memIdx = append(memIdx, int32(i))
		}
		if rng == nil {
			rng = root.Split(int64(i))
		} else {
			root.SplitInto(int64(i), rng)
		}
		st.rng = rng
		st.counter = st.policy.NextBackoff(st.rng)
	}
	s.stations = stations
	s.memorylessIdx = memIdx
	s.observerIdx = obsIdx
	if cfg.Arrivals != nil {
		for i := range s.stations {
			if cfg.Arrivals[i].Unsaturated() {
				s.unsat = true
				break
			}
		}
		// Arrival substreams are split only when an unsaturated source
		// exists, so all-saturated configs stay bit-identical to a
		// nil-Arrivals run (same root-RNG consumption).
		if s.unsat {
			for i := range s.stations {
				st := &s.stations[i]
				st.arr = cfg.Arrivals[i]
				if st.arrRNG == nil {
					st.arrRNG = root.Split(int64(n + i))
				} else {
					root.SplitInto(int64(n+i), st.arrRNG)
				}
				if st.arr.Unsaturated() {
					st.next = sim.Time(st.arr.NextInterArrival(st.arrRNG))
					unsatIdx = append(unsatIdx, int32(i))
				}
			}
		}
	}
	s.unsatIdx = unsatIdx
	if cap(per) < n {
		per = make([]int64, n)
	} else {
		per = per[:n]
		for i := range per {
			per[i] = 0
		}
	}
	s.res.PerStation = per
	// Register every backlogged station's initial counter with the
	// tracker (saturated stations always; unsaturated ones join when
	// their first packet arrives).
	for i := range s.stations {
		if s.stations[i].backlogged() {
			s.track(i, s.stations[i].counter)
		}
	}
	s.nextWindow = sim.Time(cfg.UpdatePeriod)
	if cfg.Controller != nil {
		s.control = cfg.Controller.Control()
	}
}

// Run advances the simulation until at least the given simulated duration
// has elapsed and returns the results.
func (s *Simulator) Run(duration sim.Duration) *Result {
	end := sim.Time(duration)
	for s.now.Before(end) {
		if s.unsat {
			s.admitArrivals()
		}
		// Backlogged stations whose counters expired sit in the
		// tracker's base bucket — no per-station scan. Bucket order is
		// arbitrary, so restore the ascending order the draw paths rely
		// on.
		s.attackerIdx = s.tracker.takeExpired(s.attackerIdx[:0])
		attackers := len(s.attackerIdx)
		if attackers > 1 {
			sort.Ints(s.attackerIdx)
		}
		switch {
		case attackers == 0:
			// All backlogged counters are ≥ 1: the next minCounter slots
			// are idle by construction. Jump them at once, capped at the
			// next controller-window boundary so the windowed series
			// closes at exactly the same instants as the per-slot walk.
			jump := s.tracker.minCounter()
			//wlanvet:allow bounded: the window boundary is within one run and spec validation caps durations far below 2³¹ slots
			if boundary := int((s.nextWindow.Sub(s.now) + s.cfg.PHY.Slot - 1) / s.cfg.PHY.Slot); boundary >= 1 && boundary < jump {
				jump = boundary
			}
			// Cap at the run end too: the per-slot walk stops at the
			// first slot boundary ≥ end, and Duration must match it.
			//wlanvet:allow bounded: the run end is within one run and spec validation caps durations far below 2³¹ slots
			if endSlots := int((end.Sub(s.now) + s.cfg.PHY.Slot - 1) / s.cfg.PHY.Slot); endSlots >= 1 && endSlots < jump {
				jump = endSlots
			}
			// An arrival can make an idle station backlogged mid-run;
			// stop the jump at the first upcoming arrival's slot boundary
			// so its backoff starts on time.
			if s.unsat {
				if slots := s.slotsUntilArrival(); slots >= 1 && slots < jump {
					jump = slots
				}
			}
			s.res.IdleSlots += int64(jump)
			s.idleRun += int64(jump)
			s.now = s.now.Add(sim.Duration(jump) * s.cfg.PHY.Slot)
			s.tracker.advance(jump)
		case attackers == 1:
			winner := s.attackerIdx[0]
			st := &s.stations[winner]
			s.observe(s.idleRun)
			s.idleRun = 0
			s.now = s.now.Add(s.cfg.PHY.Ts())
			s.res.Successes++
			payload := int64(s.cfg.PHY.Payload)
			st.bits += payload
			s.res.PerStation[winner] += payload
			s.windowBits += payload
			if st.arr.Unsaturated() {
				st.qlen--
			}
			st.policy.OnSuccess(st.rng)
			s.broadcast()
			s.redraw(winner)
			s.resume(s.attackerIdx)
		default:
			s.observe(s.idleRun)
			s.idleRun = 0
			s.now = s.now.Add(s.cfg.PHY.Tc())
			s.res.Collisions++
			// Each station must be drawn exactly once per busy period:
			// attackers through the failure path, the rest through
			// resume. A naive "redraw then resume anything non-zero"
			// double-draws attackers whose fresh counter came up ≥ 1,
			// inflating their attempt probability from p to p+(1−p)p.
			for _, i := range s.attackerIdx {
				st := &s.stations[i]
				st.policy.OnFailure(st.rng)
				s.redraw(i)
			}
			s.resume(s.attackerIdx)
		}
		s.maybeCloseWindow()
	}
	s.res.Duration = s.now.Sub(0)
	if secs := s.now.Seconds(); secs > 0 {
		total := int64(0)
		for i := range s.res.PerStation {
			total += s.res.PerStation[i]
		}
		s.res.Throughput = float64(total) / secs
	}
	busy := s.res.Successes + s.res.Collisions
	if busy > 0 {
		s.res.IdleSlotsPerTx = float64(s.res.IdleSlots) / float64(busy)
	}
	return &s.res
}

// track registers station i's freshly drawn counter with the tracker.
//
//wlanvet:hotpath
func (s *Simulator) track(i, counter int) {
	st := &s.stations[i]
	st.counter = counter
	st.expiry = s.tracker.base + int64(counter)
	s.tracker.insert(i, counter)
}

// untrack removes station i from the tracker.
//
//wlanvet:hotpath
func (s *Simulator) untrack(i int) {
	st := &s.stations[i]
	s.tracker.remove(i, st.expiry-s.tracker.base)
}

// observe feeds medium-observing policies (IdleSense) the idle run that
// preceded the busy period just starting. The pass walks only the
// observing stations (ascending, the same call order as the full scan it
// replaces) and costs nothing when no policy observes the medium.
//
//wlanvet:hotpath
func (s *Simulator) observe(idleRun int64) {
	for _, i := range s.observerIdx {
		s.stations[i].observer.ObserveTransmission(float64(idleRun))
	}
}

// redraw draws a fresh backoff for station i after an attempt (i has
// been taken out of the tracker with the expired bucket) and re-tracks
// it while it remains backlogged. The draw is consumed regardless — the
// pre-tracker code drew unconditionally, and every draw is pinned.
//
//wlanvet:hotpath
func (s *Simulator) redraw(i int) {
	st := &s.stations[i]
	c := st.policy.NextBackoff(st.rng)
	if st.backlogged() {
		s.track(i, c)
	} else {
		st.counter = c
	}
}

// resume applies post-busy-period counter semantics to the stations that
// did not attempt in the closing busy period: memoryless policies redraw
// (and move buckets), window policies keep their frozen residual — and
// their tracker position — untouched, making this pass free for DCF.
// attackers lists the stations that transmitted (already redrawn by
// their outcome paths), sorted ascending.
//
//wlanvet:hotpath
func (s *Simulator) resume(attackers []int) {
	k := 0
	for _, i32 := range s.memorylessIdx {
		i := int(i32)
		for k < len(attackers) && attackers[k] < i {
			k++
		}
		if k < len(attackers) && attackers[k] == i {
			k++
			continue
		}
		st := &s.stations[i]
		if !st.backlogged() {
			continue // no frame, no counter to maintain
		}
		s.untrack(i)
		s.track(i, st.policy.NextBackoff(st.rng))
	}
}

// admitArrivals moves every arrival with timestamp ≤ now into its
// station's queue, drawing the counter when the station becomes
// backlogged. Drops are counted against a full queue. Only the
// unsaturated stations are visited (ascending — the admission order the
// full scan produced), so a mostly saturated large-n population pays
// nothing here.
//
//wlanvet:hotpath
func (s *Simulator) admitArrivals() {
	for _, i32 := range s.unsatIdx {
		i := int(i32)
		st := &s.stations[i]
		for !st.next.After(s.now) {
			s.res.PacketsArrived++
			if st.qlen >= st.arr.EffectiveQueueCap() {
				s.res.PacketsDropped++
			} else {
				st.qlen++
				if st.qlen == 1 {
					// A fresh head-of-line frame draws a fresh backoff
					// from the policy's current state and (re)joins the
					// tracker.
					s.track(i, st.policy.NextBackoff(st.rng))
				}
			}
			st.next = st.next.Add(st.arr.NextInterArrival(st.arrRNG))
		}
	}
}

// slotsUntilArrival returns the number of whole slots from now until the
// earliest pending arrival among unsaturated stations (minimum 1).
//
//wlanvet:hotpath
func (s *Simulator) slotsUntilArrival() int {
	earliest := sim.Time(int64(^uint64(0) >> 1))
	found := false
	for _, i := range s.unsatIdx {
		st := &s.stations[i]
		if st.next.Before(earliest) {
			earliest = st.next
			found = true
		}
	}
	if !found {
		return 0
	}
	// Compare in int64 and clamp on conversion: a low-rate arrival can
	// sit billions of slots out, the delta magnitude that wrapped
	// through int in the PR 7 minCounter bug. Callers cap the jump at
	// window and run-end boundaries anyway.
	d := int64((earliest.Sub(s.now) + s.cfg.PHY.Slot - 1) / s.cfg.PHY.Slot)
	const maxInt = int(^uint(0) >> 1)
	if d > int64(maxInt) {
		d = int64(maxInt)
	}
	//wlanvet:allow guarded: d ≤ maxInt after the clamp above
	slots := int(d)
	if slots < 1 {
		slots = 1
	}
	return slots
}

// broadcast delivers the AP control block to every station.
func (s *Simulator) broadcast() {
	if s.cfg.Controller == nil {
		return
	}
	for i := range s.stations {
		s.stations[i].policy.OnControl(s.control)
	}
}

// maybeCloseWindow runs the controller when the UPDATE_PERIOD boundary
// has been crossed.
func (s *Simulator) maybeCloseWindow() {
	if s.now.Before(s.nextWindow) {
		return
	}
	elapsed := s.now.Sub(s.windowStart).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(s.windowBits) / elapsed
	}
	s.res.ThroughputSeries.Append(s.now, rate)
	if s.cfg.Controller != nil {
		s.cfg.Controller.OnWindowEnd(rate)
		s.control = s.cfg.Controller.Control()
		v := s.control.P
		if s.control.Scheme == frame.ControlTORA {
			v = s.control.P0
		}
		s.res.ControlSeries.Append(s.now, v)
		// Deliver the fresh control block immediately — the slotted
		// abstraction of the AP's PIFS-priority beacon (eventsim models
		// the beacon airtime explicitly). Without this, a collision
		// collapse leaves no ACKs to carry the recovery values.
		s.broadcast()
	}
	s.windowBits = 0
	s.windowStart = s.now
	s.nextWindow = s.now.Add(s.cfg.UpdatePeriod)
}
