package slotsim

import "math/bits"

// backoffTracker is a calendar-queue view of every backlogged station's
// backoff counter: stations sit in ring buckets keyed by their absolute
// expiry slot, an occupancy bitmap finds the next non-empty bucket with
// word scans, and advancing the global slot clock is a base-offset bump
// instead of a decrement of every counter. It replaces the slot loop's
// two O(N)-per-busy-period passes — the expired-counter scan and the
// idle-jump decrement — with O(1) amortised bucket operations, which is
// what keeps large-N Bianchi-regime sweeps from going quadratic-ish.
//
// Buckets are intrusive doubly-linked lists over per-station link
// arrays (a station occupies at most one bucket), so steady-state
// operation allocates nothing — the slot loop's zero-alloc guardrail
// covers the tracker too. Counters at least trackerSpan slots out
// (possible for clamped geometric tails) wait in an overflow list keyed
// by absolute expiry and migrate into the ring as the base approaches.
//
// All positions derive from the same counter bookkeeping as the
// pre-tracker scanning code, so attacker sets and idle-jump lengths —
// and hence every RNG draw — are bit-identical to it (the engine
// fingerprints pin this).
type backoffTracker struct {
	// base is the absolute slot index of ring position baseIdx: a
	// station with absolute expiry e sits in ring bucket
	// (baseIdx + (e - base)) & trackerMask while e - base < trackerSpan.
	base    int64
	baseIdx int

	head     []int32 // per ring slot: first station id, -1 when empty
	next     []int32 // per station: forward link, -1 at tail
	prev     []int32 // per station: back link, -1 at head
	occupied []uint64
	count    int // stations in the ring

	// overflow holds (station, absoluteExpiry) pairs ≥ trackerSpan
	// slots out. overflowPos[id] is the station's index in overflow (-1
	// when ringed), making removal O(1) — without it, a small-p
	// memoryless population living mostly in overflow would turn the
	// per-busy-period resume pass quadratic. overflowMin caches the
	// smallest expiry; overflowMinStale defers its O(len) recomputation
	// to the next minCounter/advance that needs it, so removing a
	// non-minimal entry stays O(1) too.
	overflow         []overflowEntry
	overflowPos      []int32
	overflowMin      int64
	overflowMinStale bool
}

type overflowEntry struct {
	id     int32
	expiry int64
}

const (
	// trackerSpan bounds the ring horizon in slots. It is sized for the
	// scale tier: contention windows there grow with the population
	// (W ≈ n, up to 100k), and a window beyond the ring horizon would
	// park the *whole* population in the overflow list, whose migration
	// pass is O(len) — the quadratic-ish behaviour the ring exists to
	// avoid. At 2¹⁷ slots every counter up to 131k stays in-ring and
	// only unbounded geometric tails overflow. The ring costs 512 KB
	// per arena; reset clears it through the occupancy bitmap, so the
	// paper-scale per-replication cost does not grow with the span.
	trackerSpan = 1 << 17
	trackerMask = trackerSpan - 1
)

// reset empties the tracker and sizes the link arrays for n stations,
// keeping storage.
func (t *backoffTracker) reset(n int) {
	if t.head == nil {
		t.head = make([]int32, trackerSpan)
		for i := range t.head {
			t.head[i] = -1
		}
		t.occupied = make([]uint64, trackerSpan/64)
	} else {
		// The ring is huge and mostly empty; clear only the buckets the
		// occupancy bitmap says are live (link/remove keep the invariant
		// "bit clear ⟹ head = -1"), so arena reset stays O(span/64 +
		// occupied) instead of a full wipe of the span.
		for w, word := range t.occupied {
			if word == 0 {
				continue
			}
			base := w << 6
			for word != 0 {
				t.head[base+bits.TrailingZeros64(word)] = -1
				word &= word - 1
			}
			t.occupied[w] = 0
		}
	}
	if cap(t.next) < n {
		t.next = make([]int32, n)
		t.prev = make([]int32, n)
		t.overflowPos = make([]int32, n)
	} else {
		t.next, t.prev = t.next[:n], t.prev[:n]
		t.overflowPos = t.overflowPos[:n]
	}
	for i := range t.overflowPos {
		t.overflowPos[i] = -1
	}
	t.base, t.baseIdx, t.count = 0, 0, 0
	t.overflow = t.overflow[:0]
	t.overflowMin, t.overflowMinStale = 0, false
}

// insert registers station id with the given relative counter (slots
// until expiry, ≥ 0). The station must not currently be tracked.
//
//wlanvet:hotpath
func (t *backoffTracker) insert(id int, counter int) {
	if counter >= trackerSpan {
		e := t.base + int64(counter)
		if len(t.overflow) == 0 || e < t.overflowMin {
			t.overflowMin = e
		}
		t.overflowPos[id] = int32(len(t.overflow))
		//wlanvet:allow amortised: overflow grows to its high-water mark (rare clamped geometric tails) and reset keeps the capacity
		t.overflow = append(t.overflow, overflowEntry{int32(id), e})
		return
	}
	t.link(id, (t.baseIdx+counter)&trackerMask)
}

// link prepends station id to the ring bucket at slot.
//
//wlanvet:hotpath
func (t *backoffTracker) link(id, slot int) {
	h := t.head[slot]
	t.next[id], t.prev[id] = h, -1
	if h >= 0 {
		t.prev[h] = int32(id)
	}
	t.head[slot] = int32(id)
	t.occupied[slot>>6] |= 1 << (uint(slot) & 63)
	t.count++
}

// remove deletes station id, whose current relative counter is given.
// The id must be present. The counter is taken in int64 — it is an
// expiry delta, and overflow entries sit up to billions of slots out
// (clamped geometric tails), the exact magnitude that wrapped negative
// through int in the PR 7 minCounter bug.
//
//wlanvet:hotpath
func (t *backoffTracker) remove(id int, counter int64) {
	if counter >= trackerSpan {
		i := t.overflowPos[id]
		if i < 0 {
			panic("slotsim: tracker overflow entry missing")
		}
		removed := t.overflow[i]
		last := len(t.overflow) - 1
		t.overflow[i] = t.overflow[last]
		t.overflowPos[t.overflow[i].id] = i
		t.overflow = t.overflow[:last]
		t.overflowPos[id] = -1
		if removed.expiry == t.overflowMin {
			t.overflowMinStale = true
		}
		return
	}
	//wlanvet:allow guarded: counter < trackerSpan (2¹⁷) on this branch, so the conversion cannot truncate
	slot := (t.baseIdx + int(counter)) & trackerMask
	p, n := t.prev[id], t.next[id]
	if p >= 0 {
		t.next[p] = n
	} else {
		t.head[slot] = n
		if n < 0 {
			t.occupied[slot>>6] &^= 1 << (uint(slot) & 63)
		}
	}
	if n >= 0 {
		t.prev[n] = p
	}
	t.count--
}

func (t *backoffTracker) recomputeOverflowMin() {
	t.overflowMinStale = false
	t.overflowMin = 0
	for i, e := range t.overflow {
		if i == 0 || e.expiry < t.overflowMin {
			t.overflowMin = e.expiry
		}
	}
}

// currentOverflowMin returns the smallest overflow expiry, refreshing
// the lazy cache when a removal invalidated it.
func (t *backoffTracker) currentOverflowMin() int64 {
	if t.overflowMinStale {
		t.recomputeOverflowMin()
	}
	return t.overflowMin
}

// takeExpired removes and appends to dst the ids whose counters have
// reached zero (the bucket at the base slot).
//
//wlanvet:hotpath
func (t *backoffTracker) takeExpired(dst []int) []int {
	slot := t.baseIdx
	for id := t.head[slot]; id >= 0; id = t.next[id] {
		//wlanvet:allow amortised: dst is the caller's reused attacker scratch slice, grown once to the population high-water mark
		dst = append(dst, int(id))
		t.count--
	}
	if t.head[slot] >= 0 {
		t.head[slot] = -1
		t.occupied[slot>>6] &^= 1 << (uint(slot) & 63)
	}
	return dst
}

// minCounter returns the smallest relative counter over every tracked
// station, or maxInt when the tracker is empty. Overflow deltas are
// compared in int64: an expiry can sit billions of slots out (clamped
// geometric tails), and truncating the delta through int would wrap
// negative on 32-bit platforms and stall the idle jump. The result is
// clamped to maxInt on conversion; callers cap the jump at the window
// and run-end boundaries anyway.
//
//wlanvet:hotpath
func (t *backoffTracker) minCounter() int {
	const maxInt = int(^uint(0) >> 1)
	best := int64(maxInt)
	if t.count > 0 {
		if d, ok := t.scan(); ok {
			best = int64(d)
		}
	}
	if len(t.overflow) > 0 {
		if d := t.currentOverflowMin() - t.base; d < best {
			best = d
		}
	}
	if best > int64(maxInt) {
		return maxInt
	}
	//wlanvet:allow guarded: best ≤ maxInt after the clamp above — the clamp IS the PR 7 minCounter fix
	return int(best)
}

// scan finds the distance in slots from the base to the first occupied
// ring slot, wrapping around the ring.
//
//wlanvet:hotpath
func (t *backoffTracker) scan() (int, bool) {
	w := t.baseIdx >> 6
	off := uint(t.baseIdx) & 63
	if word := t.occupied[w] >> off << off; word != 0 {
		slot := w<<6 + bits.TrailingZeros64(word)
		return (slot - t.baseIdx + trackerSpan) & trackerMask, true
	}
	n := len(t.occupied)
	for i := 1; i <= n; i++ {
		if word := t.occupied[(w+i)%n]; word != 0 {
			slot := ((w+i)%n)<<6 + bits.TrailingZeros64(word)
			return (slot - t.baseIdx + trackerSpan) & trackerMask, true
		}
	}
	return 0, false
}

// advance moves the clock forward by jump slots (jump must not exceed
// any tracked counter), migrating overflow entries that now fall inside
// the ring horizon.
//
//wlanvet:hotpath
func (t *backoffTracker) advance(jump int) {
	t.base += int64(jump)
	t.baseIdx = (t.baseIdx + jump) & trackerMask
	if len(t.overflow) == 0 || t.currentOverflowMin()-t.base >= trackerSpan {
		return
	}
	kept := t.overflow[:0]
	for _, e := range t.overflow {
		if d := e.expiry - t.base; d < trackerSpan {
			// d ≥ 0 because jump never exceeds the global minimum.
			t.overflowPos[e.id] = -1
			//wlanvet:allow guarded: d < trackerSpan (2¹⁷) on this branch, so the conversion cannot truncate
			t.link(int(e.id), (t.baseIdx+int(d))&trackerMask)
		} else {
			t.overflowPos[e.id] = int32(len(kept))
			//wlanvet:allow amortised: kept compacts in place over t.overflow's own backing array, never growing it
			kept = append(kept, e)
		}
	}
	t.overflow = kept
	t.recomputeOverflowMin()
}
