package slotsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// The slotted engine's inner loop — counter scan, idle fast-forward,
// busy-period accounting, batched backoff redraws — must be
// allocation-free in steady state. The controller window is pushed beyond
// the horizon so series appends (per-window, not per-slot work) stay out
// of the measurement.
func TestSlotLoopZeroAllocSteadyState(t *testing.T) {
	const n = 20
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewPPersistent(1, 0.02)
	}
	s, err := New(Config{Policies: policies, Seed: 9, UpdatePeriod: 1000 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(sim.Second) // warm the scratch slices and prefetch batches
	next := sim.Duration(s.now) + 50*sim.Millisecond
	if avg := testing.AllocsPerRun(50, func() {
		s.Run(next)
		next += 50 * sim.Millisecond
	}); avg != 0 {
		t.Errorf("slot loop allocates %.2f allocs per 50 ms of simulated time, want 0", avg)
	}
	if s.res.Successes == 0 {
		t.Fatal("simulation made no progress")
	}
}

// The unsaturated slot loop adds arrival admission, queue bookkeeping
// and tracker join/leave churn (stations leave on drain, rejoin on the
// next packet); it must be allocation-free in steady state too.
func TestSlotLoopZeroAllocTraffic(t *testing.T) {
	const n = 16
	policies := make([]mac.Policy, n)
	arrivals := make([]traffic.Spec, n)
	for i := range policies {
		policies[i] = mac.NewStandardDCF(16, 1024)
		arrivals[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 250, QueueCap: 16}
	}
	s, err := New(Config{Policies: policies, Arrivals: arrivals, Seed: 11, UpdatePeriod: 1000 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(sim.Second)
	next := sim.Duration(s.now) + 50*sim.Millisecond
	if avg := testing.AllocsPerRun(50, func() {
		s.Run(next)
		next += 50 * sim.Millisecond
	}); avg != 0 {
		t.Errorf("unsaturated slot loop allocates %.2f allocs per 50 ms, want 0", avg)
	}
	if s.res.PacketsArrived == 0 || s.res.Successes == 0 {
		t.Fatal("traffic simulation made no progress")
	}
}

// The controller-enabled slot loop closes measurement windows and
// broadcasts control updates; series appends grow amortised, so the
// bound is under one allocation per window.
func TestSlotLoopControllerSteadyAllocBound(t *testing.T) {
	const n = 20
	phy := model.PaperPHY()
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewPPersistent(1, 0.1)
	}
	s, err := New(Config{
		Policies:   policies,
		Controller: core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate}),
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(4 * sim.Second)
	next := sim.Duration(s.now) + 250*sim.Millisecond
	if avg := testing.AllocsPerRun(20, func() {
		s.Run(next)
		next += 250 * sim.Millisecond
	}); avg > 1 {
		t.Errorf("controller slot loop allocates %.2f allocs per window, want ≤ 1", avg)
	}
	if s.res.Successes == 0 {
		t.Fatal("controller simulation made no progress")
	}
}
