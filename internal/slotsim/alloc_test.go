package slotsim

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/sim"
)

// The slotted engine's inner loop — counter scan, idle fast-forward,
// busy-period accounting, batched backoff redraws — must be
// allocation-free in steady state. The controller window is pushed beyond
// the horizon so series appends (per-window, not per-slot work) stay out
// of the measurement.
func TestSlotLoopZeroAllocSteadyState(t *testing.T) {
	const n = 20
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewPPersistent(1, 0.02)
	}
	s, err := New(Config{Policies: policies, Seed: 9, UpdatePeriod: 1000 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(sim.Second) // warm the scratch slices and prefetch batches
	next := sim.Duration(s.now) + 50*sim.Millisecond
	if avg := testing.AllocsPerRun(50, func() {
		s.Run(next)
		next += 50 * sim.Millisecond
	}); avg != 0 {
		t.Errorf("slot loop allocates %.2f allocs per 50 ms of simulated time, want 0", avg)
	}
	if s.res.Successes == 0 {
		t.Fatal("simulation made no progress")
	}
}
