// Package sweep is the declarative parameter-grid layer over scenario
// specs: a Grid names a base Spec plus axes (station counts, scheme,
// arrival rate, frame-error rate, RTS/CTS, topology parameters, ...),
// and the package expands the cross-product into concrete scenario
// specs with canonical names, executes them through the scenario
// runner's single fan-out path, streams one JSONL result row per
// point, and backs execution with a content-addressed on-disk cache so
// re-runs and resumed runs skip completed points. A grid can be
// partitioned into deterministic shards (point index mod shard count)
// whose merged outputs are byte-identical to an unsharded run — the
// substrate for splitting large studies across CI machines.
package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/scenario"
)

// ErrInvalidGrid is wrapped by every grid decode/expansion validation
// failure (per-point scenario failures additionally wrap
// scenario.ErrInvalidSpec), so facade layers can classify input errors
// with errors.Is instead of string matching.
var ErrInvalidGrid = errors.New("invalid sweep grid")

// wrapInvalidGrid marks err as an ErrInvalidGrid failure without double
// wrapping.
func wrapInvalidGrid(err error) error {
	if err == nil || errors.Is(err, ErrInvalidGrid) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrInvalidGrid, err)
}

// Grid is the on-disk sweep format: a base scenario plus axes whose
// cross-product defines the points. The base need not validate on its
// own (axes may supply required dimensions like the station count);
// every expanded point must.
type Grid struct {
	// Name prefixes every point's canonical name.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Base is the scenario every point starts from.
	Base scenario.Spec `json:"base"`
	// Axes are applied in order; the last axis varies fastest.
	Axes []Axis `json:"axes"`
}

// Axis is one swept dimension: a field name from the Field* constants
// and the values it takes.
type Axis struct {
	Field  string            `json:"field"`
	Values []json.RawMessage `json:"values"`
}

// Axis field names. Each sets one dimension of the expanded spec.
const (
	FieldNodes          = "nodes"            // topology.n (int)
	FieldScheme         = "scheme"           // channel-access scheme (string)
	FieldRate           = "rate"             // arrival rate of every traffic entry (float, pkts/s)
	FieldFrameErrorRate = "frame_error_rate" // i.i.d. data-frame loss (float)
	FieldRTSCTS         = "rtscts"           // RTS/CTS exchange (bool)
	FieldTopology       = "topology"         // topology.kind (string)
	FieldRadius         = "radius"           // topology.radius (float, metres)
	FieldSeparation     = "separation"       // topology.separation (float, metres)
	FieldDuration       = "duration"         // simulated time per replication (duration)
	FieldSeeds          = "seeds"            // replications per point (int)
	FieldSeed           = "seed"             // base seed (int)
	FieldUpdatePeriod   = "update_period"    // controller window Δ (duration)
)

// Expansion ceilings. Grids come from files, so every dimension that
// controls memory or CPU is bounded rather than trusted.
const (
	// MaxAxes bounds the grid dimensionality.
	MaxAxes = 8
	// MaxAxisValues bounds the values per axis.
	MaxAxisValues = 4096
	// MaxPoints bounds the expanded cross-product.
	MaxPoints = 100_000
	// maxGridBytes bounds the accepted file size.
	maxGridBytes = 4 << 20
)

// valueKind is the JSON type an axis field accepts.
type valueKind int

const (
	intKind valueKind = iota
	floatKind
	boolKind
	stringKind
	durationKind
)

// fieldDef couples an axis field's value type with its spec setter.
type fieldDef struct {
	kind  valueKind
	apply func(sp *scenario.Spec, v any) error
}

// fieldDefs is the closed set of sweepable fields. Validation happens
// later, in Spec.withDefaults via Expand, so setters only assign.
var fieldDefs = map[string]fieldDef{
	FieldNodes: {intKind, func(sp *scenario.Spec, v any) error {
		//wlanvet:allow bounded: Spec.withDefaults validation rejects node counts outside [1, MaxStations] before any simulation runs
		sp.Topology.N = int(v.(int64))
		return nil
	}},
	FieldScheme: {stringKind, func(sp *scenario.Spec, v any) error {
		sp.Scheme = v.(string)
		return nil
	}},
	FieldRate: {floatKind, func(sp *scenario.Spec, v any) error {
		if len(sp.Traffic) == 0 {
			return fmt.Errorf("a %q axis needs a traffic model in the base scenario", FieldRate)
		}
		for i := range sp.Traffic {
			sp.Traffic[i].Rate = v.(float64)
		}
		return nil
	}},
	FieldFrameErrorRate: {floatKind, func(sp *scenario.Spec, v any) error {
		sp.FrameErrorRate = v.(float64)
		return nil
	}},
	FieldRTSCTS: {boolKind, func(sp *scenario.Spec, v any) error {
		sp.RTSCTS = v.(bool)
		return nil
	}},
	FieldTopology: {stringKind, func(sp *scenario.Spec, v any) error {
		sp.Topology.Kind = v.(string)
		return nil
	}},
	FieldRadius: {floatKind, func(sp *scenario.Spec, v any) error {
		sp.Topology.Radius = v.(float64)
		return nil
	}},
	FieldSeparation: {floatKind, func(sp *scenario.Spec, v any) error {
		sp.Topology.Separation = v.(float64)
		return nil
	}},
	FieldDuration: {durationKind, func(sp *scenario.Spec, v any) error {
		sp.Duration = v.(scenario.Duration)
		return nil
	}},
	FieldSeeds: {intKind, func(sp *scenario.Spec, v any) error {
		//wlanvet:allow bounded: Spec.withDefaults validation rejects non-positive or absurd seed counts before any simulation runs
		sp.Seeds = int(v.(int64))
		return nil
	}},
	FieldSeed: {intKind, func(sp *scenario.Spec, v any) error {
		sp.Seed = v.(int64)
		return nil
	}},
	FieldUpdatePeriod: {durationKind, func(sp *scenario.Spec, v any) error {
		sp.UpdatePeriod = v.(scenario.Duration)
		return nil
	}},
}

// Ints builds axis values from Go ints (programmatic grids).
func Ints(vs ...int) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(strconv.Itoa(v))
	}
	return out
}

// Floats builds axis values from Go floats.
func Floats(vs ...float64) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return out
}

// Strings builds axis values from Go strings.
func Strings(vs ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, _ := json.Marshal(v)
		out[i] = b
	}
	return out
}

// Bools builds axis values from Go bools.
func Bools(vs ...bool) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		out[i] = json.RawMessage(strconv.FormatBool(v))
	}
	return out
}

// Durations builds axis values from Go durations.
func Durations(vs ...time.Duration) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, _ := json.Marshal(v.String())
		out[i] = b
	}
	return out
}

// fieldNames lists the sweepable axis fields in sorted order, statically
// rather than by ranging fieldDefs: the list feeds user-facing error
// text, which must not depend on map iteration order.
// TestFieldsMatchDefs pins it against the fieldDefs keys.
var fieldNames = []string{
	FieldDuration,
	FieldFrameErrorRate,
	FieldNodes,
	FieldRadius,
	FieldRate,
	FieldRTSCTS,
	FieldScheme,
	FieldSeed,
	FieldSeeds,
	FieldSeparation,
	FieldTopology,
	FieldUpdatePeriod,
}

// Fields returns the sweepable axis field names, sorted.
func Fields() []string {
	return slices.Clone(fieldNames)
}

// decodeValue parses one axis value as the field's type. Ints must be
// exact JSON integers; floats must be finite.
func decodeValue(kind valueKind, raw json.RawMessage) (any, error) {
	switch kind {
	case intKind:
		var n int64
		if err := strictValue(raw, &n); err != nil {
			return nil, fmt.Errorf("want an integer, got %s", raw)
		}
		return n, nil
	case floatKind:
		var f float64
		if err := strictValue(raw, &f); err != nil {
			return nil, fmt.Errorf("want a number, got %s", raw)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("non-finite number %s", raw)
		}
		return f, nil
	case boolKind:
		var b bool
		if err := strictValue(raw, &b); err != nil {
			return nil, fmt.Errorf("want true or false, got %s", raw)
		}
		return b, nil
	case stringKind:
		var s string
		if err := strictValue(raw, &s); err != nil {
			return nil, fmt.Errorf("want a string, got %s", raw)
		}
		return s, nil
	case durationKind:
		var d scenario.Duration
		if err := strictValue(raw, &d); err != nil {
			return nil, fmt.Errorf("want a duration, got %s", raw)
		}
		return d, nil
	}
	return nil, fmt.Errorf("unknown value kind %d", kind)
}

// strictValue unmarshals one JSON value rejecting trailing garbage.
func strictValue(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data")
	}
	return nil
}

// renderValue is the canonical token of an axis value, used in point
// names and duplicate detection. The rendering is deterministic: Go's
// shortest round-trip float formatting and Go duration strings.
func renderValue(v any) string {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case string:
		return x
	case scenario.Duration:
		return time.Duration(x).String()
	}
	return fmt.Sprintf("%v", v)
}

// AxisValue is one resolved (field, value) coordinate of a point.
type AxisValue struct {
	Field string
	Value any
}

// Point is one expanded grid cell: a fully defaulted, validated
// scenario spec plus its coordinates and cache key.
type Point struct {
	// Index is the point's position in expansion order (first axis
	// slowest) — the sharding and merge key.
	Index int
	// Name is the canonical point name, e.g. "grid/scheme=802.11,nodes=20".
	Name string
	// Axes are the point's coordinates in axis order.
	Axes []AxisValue
	// Spec is the concrete scenario (defaults applied).
	Spec scenario.Spec
	// Key is the content hash of (Spec sans name, engine version) —
	// the cache address of this point's summary.
	Key string
}

// Decode parses and validates a sweep grid file. Unknown fields are
// rejected; the expansion itself is validated by Expand. Failures wrap
// ErrInvalidGrid.
func Decode(data []byte) (*Grid, error) {
	if len(data) > maxGridBytes {
		return nil, wrapInvalidGrid(fmt.Errorf("sweep: file is %d bytes, limit %d", len(data), maxGridBytes))
	}
	g := &Grid{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(g); err != nil {
		return nil, wrapInvalidGrid(fmt.Errorf("sweep: bad grid: %w", err))
	}
	if dec.More() {
		return nil, wrapInvalidGrid(fmt.Errorf("sweep: trailing data after the grid object"))
	}
	return g, nil
}

// Expand realises the grid's cross-product in deterministic order (the
// last axis varies fastest) and validates every point. The returned
// specs have all scenario defaults applied, so two grids that describe
// the same physics expand to identical specs — and identical cache
// keys — regardless of which defaults they spell out. Validation
// failures wrap ErrInvalidGrid.
func Expand(g *Grid) ([]*Point, error) {
	pts, err := expand(g)
	if err != nil {
		return nil, wrapInvalidGrid(err)
	}
	return pts, nil
}

func expand(g *Grid) ([]*Point, error) {
	if len(g.Axes) > MaxAxes {
		return nil, fmt.Errorf("sweep: %d axes exceed the limit %d", len(g.Axes), MaxAxes)
	}
	type axis struct {
		field  string
		def    fieldDef
		values []any
		tokens []string
	}
	axes := make([]axis, len(g.Axes))
	seenField := map[string]bool{}
	total := 1
	for i, a := range g.Axes {
		def, ok := fieldDefs[a.Field]
		if !ok {
			return nil, fmt.Errorf("sweep: axis %d: unknown field %q (want one of %s)",
				i, a.Field, strings.Join(Fields(), ", "))
		}
		if seenField[a.Field] {
			return nil, fmt.Errorf("sweep: duplicate axis field %q", a.Field)
		}
		seenField[a.Field] = true
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", a.Field)
		}
		if len(a.Values) > MaxAxisValues {
			return nil, fmt.Errorf("sweep: axis %q has %d values, limit %d", a.Field, len(a.Values), MaxAxisValues)
		}
		ax := axis{field: a.Field, def: def}
		seenValue := map[string]bool{}
		for j, raw := range a.Values {
			v, err := decodeValue(def.kind, raw)
			if err != nil {
				return nil, fmt.Errorf("sweep: axis %q value %d: %w", a.Field, j, err)
			}
			tok := renderValue(v)
			if seenValue[tok] {
				return nil, fmt.Errorf("sweep: axis %q repeats value %s", a.Field, tok)
			}
			seenValue[tok] = true
			ax.values = append(ax.values, v)
			ax.tokens = append(ax.tokens, tok)
		}
		axes[i] = ax
		if total > MaxPoints/len(ax.values) {
			return nil, fmt.Errorf("sweep: grid exceeds %d points", MaxPoints)
		}
		total *= len(ax.values)
	}

	pts := make([]*Point, 0, total)
	idx := make([]int, len(axes))
	for pi := 0; pi < total; pi++ {
		sp := cloneSpec(&g.Base)
		pt := &Point{Index: pi}
		var tokens []string
		for ai := range axes {
			v := axes[ai].values[idx[ai]]
			if err := axes[ai].def.apply(&sp, v); err != nil {
				return nil, fmt.Errorf("sweep: axis %q: %w", axes[ai].field, err)
			}
			pt.Axes = append(pt.Axes, AxisValue{Field: axes[ai].field, Value: v})
			tokens = append(tokens, axes[ai].field+"="+axes[ai].tokens[idx[ai]])
		}
		pt.Name = strings.Join(tokens, ",")
		if g.Name != "" {
			pt.Name = g.Name + "/" + pt.Name
		}
		if pt.Name == "" {
			pt.Name = "point"
		}
		sp.Name = pt.Name
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %s: %w", pt.Name, err)
		}
		pt.Spec = sp
		pt.Key = SpecKey(&sp)
		pts = append(pts, pt)
		for ai := len(axes) - 1; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(axes[ai].values) {
				break
			}
			idx[ai] = 0
		}
	}
	return pts, nil
}

// cloneSpec deep-copies a spec so per-point mutations (traffic rate,
// churn, warmup) cannot alias the base or other points.
func cloneSpec(sp *scenario.Spec) scenario.Spec {
	q := *sp
	if sp.Warmup != nil {
		w := *sp.Warmup
		q.Warmup = &w
	}
	q.Weights = slices.Clone(sp.Weights)
	q.Traffic = slices.Clone(sp.Traffic)
	q.Churn = slices.Clone(sp.Churn)
	q.Topology.Points = slices.Clone(sp.Topology.Points)
	return q
}
