package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Meta is the sidecar stamp of one sweep run: which engine produced
// the rows, a content hash of the grid that defined them, and how the
// run went. It deliberately lives NEXT TO the JSONL output (in a
// separate <out>.meta.json file), never inside it: the rows themselves
// must stay a pure function of (grid, engine version) so shard merges
// and golden diffs remain byte-identical, while wall time and
// timestamps are facts about one particular execution.
type Meta struct {
	// EngineVersion is the cache-key engine version the run used.
	EngineVersion string `json:"engine_version"`
	// GridName is the grid's declared name, if any.
	GridName string `json:"grid_name,omitempty"`
	// ConfigHash is GridFingerprint of the executed grid: runs over the
	// same physics share it, whatever file or shard produced them.
	ConfigHash string `json:"config_hash"`
	// Shard is the "i/N" partition this run executed ("" = unsharded).
	Shard string `json:"shard,omitempty"`
	// Points is the run's satisfaction breakdown.
	Points Stats `json:"points"`
	// StartedAt is the wall-clock start in RFC 3339 with milliseconds.
	StartedAt string `json:"started_at"`
	// WallMS is the run's wall-clock duration in milliseconds.
	WallMS int64 `json:"wall_ms"`
}

// NewMeta assembles the stamp for a finished run.
func NewMeta(g *Grid, sh Shard, st Stats, started time.Time, wall time.Duration) *Meta {
	m := &Meta{
		EngineVersion: EngineVersion,
		GridName:      g.Name,
		ConfigHash:    GridFingerprint(g),
		Points:        st,
		StartedAt:     started.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		WallMS:        wall.Milliseconds(),
	}
	if sh.Count > 0 {
		m.Shard = fmt.Sprintf("%d/%d", sh.Index, sh.Count)
	}
	return m
}

// WriteFile writes the stamp as indented JSON.
func (m *Meta) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal meta: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("sweep: write meta: %w", err)
	}
	return nil
}

// MetaPath is the canonical sidecar location for a JSONL output file.
func MetaPath(outPath string) string { return outPath + ".meta.json" }

// GridFingerprint is the content address of a whole grid: a SHA-256
// over the engine version and the grid's canonical JSON (name and
// description cleared, mirroring the per-point cache keys), so two
// sweeps that describe the same physics produce the same fingerprint
// regardless of labelling.
func GridFingerprint(g *Grid) string {
	c := *g
	c.Name = ""
	c.Description = ""
	data, err := json.Marshal(&c)
	if err != nil {
		// Grid is a closed struct of marshalable fields; failure is a
		// programming error, not an input error.
		panic(fmt.Sprintf("sweep: marshal grid: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(EngineVersion))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}
