package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func validSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	sp := &scenario.Spec{
		Name:     "cache-spec",
		Topology: scenario.TopologySpec{Kind: scenario.TopoConnected, N: 4},
		Duration: scenario.Duration(100e6),
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestCachePutGetRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := validSpec(t)
	key := SpecKey(sp)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	sum := &scenario.Summary{Name: "original", Scheme: sp.Scheme, Stations: 4, Replications: 1,
		Duration: sp.Duration, Warmup: *sp.Warmup}
	sum.ThroughputMbps.Mean = 12.5
	if err := c.Put(key, sp, sum); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.ThroughputMbps.Mean != 12.5 || got.Stations != 4 {
		t.Errorf("round trip mangled summary: %+v", got)
	}
}

func TestCacheQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := validSpec(t)
	key := SpecKey(sp)
	if err := c.Put(key, sp, &scenario.Summary{}); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry as a killed pre-atomic writer might have.
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"engine": "wlansim-`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry served as a hit")
	}
	if got := c.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still at its address: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, key[:2], key+".corrupt")); err != nil {
		t.Errorf("quarantined bytes not preserved: %v", err)
	}
	// The freed address accepts a fresh result.
	if err := c.Put(key, sp, &scenario.Summary{Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if sum, ok := c.Get(key); !ok || sum.Name != "fresh" {
		t.Errorf("re-simulated entry not served: ok=%v sum=%+v", ok, sum)
	}
}

// TestRunQuarantinesTruncatedEntryMidCampaign is the regression test
// for silent cache-corruption skips: a warm campaign whose cache loses
// one entry to truncation must quarantine it, count it in Stats, and
// re-simulate the point — with output bytes identical to the cold run.
func TestRunQuarantinesTruncatedEntryMidCampaign(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := &Grid{
		Name: "quarantine",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(100e6),
		},
		Axes: []Axis{{Field: FieldNodes, Values: Ints(2, 3, 4)}},
	}
	var cold bytes.Buffer
	st, err := (&Runner{Cache: c}).Stream(context.Background(), g, &cold)
	if err != nil {
		t.Fatal(err)
	}
	if st.Simulated != 3 || st.Quarantined != 0 {
		t.Fatalf("cold run stats: %+v", st)
	}
	// Truncate the middle point's entry between runs.
	pts, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, pts[1].Key[:2], pts[1].Key+".json")
	if err := os.WriteFile(victim, []byte(`{"engine":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var warm bytes.Buffer
	st, err = (&Runner{Cache: c}).Stream(context.Background(), g, &warm)
	if err != nil {
		t.Fatal(err)
	}
	if st.Simulated != 1 || st.Cached != 2 || st.Quarantined != 1 {
		t.Errorf("post-corruption stats: %+v", st)
	}
	if !strings.Contains(st.String(), "1 quarantined") {
		t.Errorf("stats line %q does not report the quarantine", st)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Error("re-simulated output drifted from the cold run")
	}
	if _, err := os.Stat(victim + ".corrupt"); err == nil {
		t.Error("quarantine used <key>.json.corrupt, want <key>.corrupt")
	}
	if _, err := os.Stat(filepath.Join(dir, pts[1].Key[:2], pts[1].Key+".corrupt")); err != nil {
		t.Errorf("quarantined entry missing: %v", err)
	}
}

func TestCacheMissesOnEngineVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := validSpec(t)
	key := SpecKey(sp)
	if err := c.Put(key, sp, &scenario.Summary{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), EngineVersion, "wlansim-engine/0", 1)
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("stale-engine entry served as a hit")
	}
}

func TestSpecKeyIgnoresNameAndDescription(t *testing.T) {
	a := validSpec(t)
	b := validSpec(t)
	b.Name = "entirely-different"
	b.Description = "docs"
	if SpecKey(a) != SpecKey(b) {
		t.Error("name/description changed the cache key")
	}
	c := validSpec(t)
	c.Seed = 2
	if SpecKey(a) == SpecKey(c) {
		t.Error("different seeds share a cache key")
	}
}

func TestOpenCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenCache(""); err == nil {
		t.Error("empty cache dir accepted")
	}
}
