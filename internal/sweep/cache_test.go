package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func validSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	sp := &scenario.Spec{
		Name:     "cache-spec",
		Topology: scenario.TopologySpec{Kind: scenario.TopoConnected, N: 4},
		Duration: scenario.Duration(100e6),
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestCachePutGetRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := validSpec(t)
	key := specKey(sp)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	sum := &scenario.Summary{Name: "original", Scheme: sp.Scheme, Stations: 4, Replications: 1,
		Duration: sp.Duration, Warmup: *sp.Warmup}
	sum.ThroughputMbps.Mean = 12.5
	if err := c.Put(key, sp, sum); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.ThroughputMbps.Mean != 12.5 || got.Stations != 4 {
		t.Errorf("round trip mangled summary: %+v", got)
	}
}

func TestCacheMissesOnCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := validSpec(t)
	key := specKey(sp)
	if err := c.Put(key, sp, &scenario.Summary{}); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry as a killed pre-atomic writer might have.
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"engine": "wlansim-`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry served as a hit")
	}
}

func TestCacheMissesOnEngineVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := validSpec(t)
	key := specKey(sp)
	if err := c.Put(key, sp, &scenario.Summary{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), EngineVersion, "wlansim-engine/0", 1)
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("stale-engine entry served as a hit")
	}
}

func TestSpecKeyIgnoresNameAndDescription(t *testing.T) {
	a := validSpec(t)
	b := validSpec(t)
	b.Name = "entirely-different"
	b.Description = "docs"
	if specKey(a) != specKey(b) {
		t.Error("name/description changed the cache key")
	}
	c := validSpec(t)
	c.Seed = 2
	if specKey(a) == specKey(c) {
		t.Error("different seeds share a cache key")
	}
}

func TestOpenCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenCache(""); err == nil {
		t.Error("empty cache dir accepted")
	}
}
