package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/scenario"
)

// Shard selects a deterministic partition of the expanded grid: point
// i belongs to shard i % Count. The zero value means "the whole grid".
// Shards of the same grid are disjoint and complete, so their merged
// outputs reproduce an unsharded run byte for byte.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the CLI form "i/N" (0 ≤ i < N). The whole string
// must be consumed: a typo like "0/2.5" errors rather than silently
// running shard 0/2.
func ParseShard(s string) (Shard, error) {
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form i/N", s)
	}
	i, errI := strconv.Atoi(is)
	n, errN := strconv.Atoi(ns)
	if errI != nil || errN != nil {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form i/N", s)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

func (sh Shard) validate() error {
	if sh.Index == 0 && sh.Count == 0 {
		return nil
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("sweep: shard %d/%d out of range", sh.Index, sh.Count)
	}
	return nil
}

func (sh Shard) owns(i int) bool {
	if sh.Count <= 1 {
		return true
	}
	return i%sh.Count == sh.Index
}

// Stats counts how a run's points were satisfied. The JSON tags are
// the sidecar meta encoding (see Meta).
type Stats struct {
	// Total is the full expanded grid size.
	Total int `json:"total"`
	// Owned is how many points fell in this run's shard.
	Owned int `json:"owned"`
	// Simulated points ran through the scenario runner this run.
	Simulated int `json:"simulated"`
	// Cached points were served from the cache without simulating.
	Cached int `json:"cached"`
	// Quarantined counts corrupt cache entries this run moved aside
	// (to <key>.corrupt) and re-simulated instead of trusting.
	Quarantined int `json:"quarantined,omitempty"`
}

// String renders the one-line report the CLI prints (CI greps it to
// prove cache hits, so keep the "N simulated" phrasing stable).
func (st Stats) String() string {
	s := fmt.Sprintf("%d/%d points (%d simulated, %d cached)",
		st.Owned, st.Total, st.Simulated, st.Cached)
	if st.Quarantined > 0 {
		s += fmt.Sprintf(", %d quarantined", st.Quarantined)
	}
	return s
}

// PointResult pairs a point with its aggregate summary.
type PointResult struct {
	*Point
	Summary *scenario.Summary
}

// Row is the JSONL record streamed per point. Its byte encoding is
// deterministic (sorted map keys, shortest round-trip floats), which
// is what makes shard merges and golden diffs exact.
type Row struct {
	Index   int               `json:"index"`
	Name    string            `json:"name"`
	Axes    map[string]any    `json:"axes"`
	Key     string            `json:"key"`
	Summary *scenario.Summary `json:"summary"`
}

// Runner executes sweep grids.
type Runner struct {
	// Parallelism bounds concurrent replications (0 = GOMAXPROCS).
	// Ignored when Scenarios supplies an external pool.
	Parallelism int
	// Cache, when non-nil, is consulted before and written after every
	// point.
	Cache *Cache
	// Shard restricts execution to one partition (zero = all points).
	Shard Shard
	// Scenarios, when non-nil, is the scenario runner (persistent
	// worker pool) every point fans out through — the hook that lets a
	// long-lived facade (wlan.Lab) share one pool across many sweeps.
	// Nil runs each sweep on a private pool that is closed when the
	// sweep ends. The Runner never closes an external pool.
	Scenarios *scenario.Runner
	// Metrics, when non-nil, receives live point-satisfaction counters.
	// Observation never affects execution or output bytes.
	Metrics *Metrics
}

// Run executes the grid and returns the shard's results in point
// order, plus the run statistics.
func (r *Runner) Run(ctx context.Context, g *Grid) ([]*PointResult, Stats, error) {
	var out []*PointResult
	st, err := r.run(ctx, g, func(pr *PointResult) error {
		out = append(out, pr)
		return nil
	}, nil)
	return out, st, err
}

// Each executes the grid and invokes emit once per owned point, in
// point order. A non-nil emit error aborts the sweep (remaining points
// drain unsimulated) and is returned. Cancelling ctx aborts at
// replication granularity and returns ctx.Err(); because emission is
// strictly in point order, the contiguous prefix of completed points is
// still emitted, while completed points buffered behind an unfinished
// one are discarded with the rest.
func (r *Runner) Each(ctx context.Context, g *Grid, emit func(*PointResult) error) (Stats, error) {
	return r.run(ctx, g, emit, nil)
}

// Stream executes the grid and writes one JSONL row per owned point,
// in point order, to w. Rows are buffered and flushed at cache-commit
// boundaries — each time a contiguous run of completed points is
// emitted — so an interrupted run leaves whole rows behind without
// paying one small write syscall per point.
func (r *Runner) Stream(ctx context.Context, g *Grid, w io.Writer) (Stats, error) {
	bw := bufio.NewWriter(w)
	st, err := r.run(ctx, g, func(pr *PointResult) error {
		return WriteRow(bw, pr)
	}, bw.Flush)
	if err != nil {
		bw.Flush()
		return st, err
	}
	return st, bw.Flush()
}

// WriteRow encodes one point result as its canonical JSONL row. The
// byte encoding is the deterministic one Row promises, so any emitter
// that writes completed points in index order through WriteRow — the
// in-process Runner and the distributed coordinator alike — produces
// identical streams.
func WriteRow(w io.Writer, pr *PointResult) error {
	axes := make(map[string]any, len(pr.Axes))
	for _, av := range pr.Axes {
		v := av.Value
		if d, ok := v.(scenario.Duration); ok {
			v = renderValue(d) // durations as strings, like everywhere else
		}
		axes[av.Field] = v
	}
	data, err := json.Marshal(&Row{
		Index:   pr.Index,
		Name:    pr.Name,
		Axes:    axes,
		Key:     pr.Key,
		Summary: pr.Summary,
	})
	if err != nil {
		return fmt.Errorf("sweep: marshal row: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// run is the pipelined execution core: expand, filter to the shard,
// serve cache hits, and feed every remaining point's replications into
// one shared scenario worker pool (the repository's single fan-out
// path). Points complete out of order — small points no longer
// serialise behind chunk barriers — but rows are emitted strictly in
// point order: a completion cursor buffers out-of-order summaries and
// drains every contiguous completed prefix, persisting each fresh
// result to the cache the moment it lands. flush, when non-nil, runs
// after each drained prefix — the cache-commit boundary — so streamed
// output survives interruption in whole rows without a write syscall
// per point.
func (r *Runner) run(ctx context.Context, g *Grid, emit func(*PointResult) error, flush func() error) (Stats, error) {
	st, err := r.runPoints(ctx, g, emit, flush)
	// Owned points a failed run never satisfied — the erroring point
	// plus everything drained behind it — are counted as failed, so the
	// metric totals always obey Owned = Simulated + Cached + Failed.
	if err != nil && r.Metrics != nil {
		if unsat := st.Owned - st.Simulated - st.Cached; unsat > 0 {
			r.Metrics.PointsFailed.Add(uint64(unsat))
		}
	}
	return st, err
}

func (r *Runner) runPoints(ctx context.Context, g *Grid, emit func(*PointResult) error, flush func() error) (Stats, error) {
	var st Stats
	// Observe cancellation up front so an already-cancelled context
	// reports ctx.Err() whatever the cache temperature: without this, a
	// fully cached grid would succeed (the cache pass never simulates,
	// so the pool never sees ctx) while the same cold grid would fail.
	if err := ctx.Err(); err != nil {
		return st, err
	}
	if err := r.Shard.validate(); err != nil {
		return st, err
	}
	pts, err := Expand(g)
	if err != nil {
		return st, err
	}
	st.Total = len(pts)
	var owned []*Point
	for _, pt := range pts {
		if r.Shard.owns(pt.Index) {
			owned = append(owned, pt)
		}
	}
	st.Owned = len(owned)
	if r.Metrics != nil {
		r.Metrics.PointsOwned.Add(uint64(st.Owned))
	}

	// Emission cursor: rows leave strictly in point order; summaries
	// landing out of order wait in sums until the prefix completes.
	// Flushing is decoupled from emission so the warm cached path still
	// batches writes: flushDirty runs at cache-commit boundaries (after
	// each simulated completion's drain and after the cache pass), never
	// per cached row.
	sums := make([]*scenario.Summary, len(owned))
	cursor := 0
	dirty := false
	advance := func() error {
		for cursor < len(owned) && sums[cursor] != nil {
			pt := owned[cursor]
			sum := sums[cursor]
			sums[cursor] = nil // release the buffered summary
			if err := emit(&PointResult{Point: pt, Summary: sum}); err != nil {
				return err
			}
			if r.Metrics != nil {
				r.Metrics.RowsEmitted.Inc()
			}
			cursor++
			dirty = true
		}
		return nil
	}
	flushDirty := func() error {
		if !dirty || flush == nil {
			return nil
		}
		dirty = false
		return flush()
	}

	// Cache pass: satisfied points get their summary up front; misses
	// go to the pool. The contiguous cached prefix is drained as it is
	// discovered, so a warm re-run or resume streams rows with O(1)
	// buffered summaries; only cache hits stuck behind an in-flight
	// simulated point buffer, which the in-order job hand-out bounds by
	// the pool's completion skew.
	var missIdx []int
	var missSpecs []*scenario.Spec
	q0 := 0
	if r.Cache != nil {
		q0 = r.Cache.Quarantined()
	}
	for i, pt := range owned {
		if r.Cache != nil {
			if sum, ok := r.Cache.Get(pt.Key); ok {
				// The cached name is whatever sweep stored it first;
				// report under this grid's canonical point name.
				sum.Name = pt.Name
				sums[i] = sum
				st.Cached++
				if r.Metrics != nil {
					r.Metrics.PointsCached.Inc()
				}
				// While no miss precedes it, the hit is part of the
				// contiguous prefix: emit immediately so a warm re-run
				// streams with O(1) buffered summaries (flushed once
				// after the pass).
				if len(missIdx) == 0 {
					if err := advance(); err != nil {
						return st, err
					}
				}
				continue
			}
		}
		missIdx = append(missIdx, i)
		missSpecs = append(missSpecs, &owned[i].Spec)
	}
	if r.Cache != nil {
		st.Quarantined = r.Cache.Quarantined() - q0
	}
	if err := flushDirty(); err != nil {
		return st, err
	}

	if len(missSpecs) > 0 {
		sr := r.Scenarios
		if sr == nil {
			private := &scenario.Runner{Parallelism: r.Parallelism}
			defer private.Close()
			sr = private
		}
		// Cache-put, emit and flush failures abort the batch through the
		// callback's error: the pool drains the remaining points
		// unsimulated instead of burning CPU on results nobody will
		// read.
		runErr := sr.RunBatchFunc(ctx, missSpecs, func(k int, sum *scenario.Summary) error {
			i := missIdx[k]
			if r.Cache != nil {
				if err := r.Cache.Put(owned[i].Key, &owned[i].Spec, sum); err != nil {
					return err
				}
			}
			sums[i] = sum
			st.Simulated++
			if r.Metrics != nil {
				r.Metrics.PointsSimulated.Inc()
			}
			if err := advance(); err != nil {
				return err
			}
			return flushDirty()
		})
		if runErr != nil {
			return st, runErr
		}
	}
	// Drain the tail (all-cached grids, or cached points after the last
	// simulated one).
	return st, advance()
}

// Merge combines shard JSONL outputs into the byte-exact unsharded
// stream: rows are reordered by point index, verified to form exactly
// the contiguous range 0..n-1, and written without re-encoding. It
// returns the merged row count.
func Merge(w io.Writer, shards ...io.Reader) (int, error) {
	type rec struct {
		index int
		line  []byte
	}
	var rows []rec
	seen := map[int]bool{}
	for si, sh := range shards {
		sc := bufio.NewScanner(sh)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			if len(line) == 0 {
				continue
			}
			var probe struct {
				Index *int `json:"index"`
			}
			if err := json.Unmarshal(line, &probe); err != nil || probe.Index == nil {
				return 0, fmt.Errorf("sweep: shard %d: not a sweep row: %.80s", si, line)
			}
			if seen[*probe.Index] {
				return 0, fmt.Errorf("sweep: duplicate point index %d across shards", *probe.Index)
			}
			seen[*probe.Index] = true
			rows = append(rows, rec{*probe.Index, line})
		}
		if err := sc.Err(); err != nil {
			return 0, fmt.Errorf("sweep: shard %d: %w", si, err)
		}
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("sweep: no rows to merge")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].index < rows[j].index })
	for i, r := range rows {
		if r.index != i {
			return 0, fmt.Errorf("sweep: shards are incomplete: missing point index %d", i)
		}
	}
	bw := bufio.NewWriter(w)
	for _, r := range rows {
		bw.Write(r.line)
		bw.WriteByte('\n')
	}
	return len(rows), bw.Flush()
}
