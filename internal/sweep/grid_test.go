package sweep

import (
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

func mustDecode(t *testing.T, data string) *Grid {
	t.Helper()
	g, err := Decode([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const demoGrid = `{
  "name": "demo",
  "base": {"topology": {"kind": "connected"}, "duration": "500ms", "seeds": 1},
  "axes": [
    {"field": "scheme", "values": ["802.11", "TORA-CSMA"]},
    {"field": "nodes", "values": [3, 6]}
  ]
}`

func TestExpandOrderAndNames(t *testing.T) {
	pts, err := Expand(mustDecode(t, demoGrid))
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"demo/scheme=802.11,nodes=3",
		"demo/scheme=802.11,nodes=6",
		"demo/scheme=TORA-CSMA,nodes=3",
		"demo/scheme=TORA-CSMA,nodes=6",
	}
	if len(pts) != len(wantNames) {
		t.Fatalf("expanded to %d points, want %d", len(pts), len(wantNames))
	}
	for i, pt := range pts {
		if pt.Index != i {
			t.Errorf("point %d has index %d", i, pt.Index)
		}
		if pt.Name != wantNames[i] {
			t.Errorf("point %d name %q, want %q", i, pt.Name, wantNames[i])
		}
		if pt.Spec.Name != pt.Name {
			t.Errorf("spec name %q != point name %q", pt.Spec.Name, pt.Name)
		}
		if pt.Key == "" || len(pt.Key) != 64 {
			t.Errorf("point %d key %q not a sha256 hex digest", i, pt.Key)
		}
	}
	// The last axis varies fastest; specs carry the applied values with
	// scenario defaults filled in.
	if pts[1].Spec.Topology.N != 6 || pts[1].Spec.Scheme != "802.11" {
		t.Errorf("point 1 spec: %+v", pts[1].Spec)
	}
	if pts[2].Spec.Scheme != "TORA-CSMA" || pts[2].Spec.Topology.N != 3 {
		t.Errorf("point 2 spec: %+v", pts[2].Spec)
	}
	if pts[0].Spec.Warmup == nil || *pts[0].Spec.Warmup != scenario.Duration(250*time.Millisecond) {
		t.Errorf("defaults not applied to expanded spec: %+v", pts[0].Spec)
	}
}

// Two grids that describe the same physics — one spelling defaults out,
// one relying on them — must expand to identical cache keys, or the
// cache would re-simulate equivalent points.
func TestKeysIgnoreNamesAndSpelledOutDefaults(t *testing.T) {
	a := mustDecode(t, `{
	  "name": "first",
	  "base": {"topology": {"kind": "connected"}, "duration": "500ms"},
	  "axes": [{"field": "nodes", "values": [4]}]
	}`)
	b := mustDecode(t, `{
	  "name": "second-entirely-different-name",
	  "base": {"topology": {"kind": "connected", "radius": 8}, "duration": "500ms",
	           "scheme": "802.11", "seeds": 1, "seed": 1, "warmup": "250ms"},
	  "axes": [{"field": "nodes", "values": [4]}]
	}`)
	pa, err := Expand(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Expand(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa[0].Key != pb[0].Key {
		t.Errorf("equivalent points hash differently:\n%s\n%s", pa[0].Key, pb[0].Key)
	}
	c := mustDecode(t, `{
	  "base": {"topology": {"kind": "connected"}, "duration": "501ms"},
	  "axes": [{"field": "nodes", "values": [4]}]
	}`)
	pc, err := Expand(c)
	if err != nil {
		t.Fatal(err)
	}
	if pc[0].Key == pa[0].Key {
		t.Error("different durations share a cache key")
	}
}

// The rate axis must not alias the base spec's traffic slice across
// points.
func TestExpandDoesNotAliasBase(t *testing.T) {
	g := mustDecode(t, `{
	  "base": {"topology": {"kind": "connected", "n": 3}, "duration": "500ms",
	           "traffic": [{"model": "poisson", "rate": 10}]},
	  "axes": [{"field": "rate", "values": [50, 100]}]
	}`)
	pts, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Spec.Traffic[0].Rate != 50 || pts[1].Spec.Traffic[0].Rate != 100 {
		t.Errorf("rates not applied per point: %v / %v", pts[0].Spec.Traffic[0].Rate, pts[1].Spec.Traffic[0].Rate)
	}
	if g.Base.Traffic[0].Rate != 10 {
		t.Errorf("base traffic mutated to rate %v", g.Base.Traffic[0].Rate)
	}
}

func TestExpandAllFieldKinds(t *testing.T) {
	g := mustDecode(t, `{
	  "base": {"topology": {"kind": "connected", "n": 4},
	           "traffic": [{"model": "poisson", "rate": 10}]},
	  "axes": [
	    {"field": "duration", "values": ["500ms", 1]},
	    {"field": "frame_error_rate", "values": [0, 0.1]},
	    {"field": "rtscts", "values": [false, true]},
	    {"field": "seeds", "values": [1, 2]},
	    {"field": "seed", "values": [1, 7]},
	    {"field": "update_period", "values": ["250ms", "100ms"]}
	  ]
	}`)
	pts, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 64 {
		t.Fatalf("expanded to %d points, want 64", len(pts))
	}
	last := pts[63].Spec
	if time.Duration(last.Duration) != time.Second || last.FrameErrorRate != 0.1 ||
		!last.RTSCTS || last.Seeds != 2 || last.Seed != 7 ||
		time.Duration(last.UpdatePeriod) != 100*time.Millisecond {
		t.Errorf("last point spec: %+v", last)
	}
	if !strings.Contains(pts[0].Name, "duration=500ms") || !strings.Contains(pts[63].Name, "duration=1s") {
		t.Errorf("duration tokens not canonical: %q / %q", pts[0].Name, pts[63].Name)
	}
}

func TestExpandTopologyAxes(t *testing.T) {
	g := mustDecode(t, `{
	  "base": {"duration": "500ms"},
	  "axes": [
	    {"field": "topology", "values": ["connected", "disc"]},
	    {"field": "nodes", "values": [5]}
	  ]
	}`)
	pts, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	// Family defaults apply per point: connected → 8 m circle, disc →
	// 16 m disc.
	if pts[0].Spec.Topology.Radius != 8 || pts[1].Spec.Topology.Radius != 16 {
		t.Errorf("family default radii not applied: %v / %v",
			pts[0].Spec.Topology.Radius, pts[1].Spec.Topology.Radius)
	}
	g2 := mustDecode(t, `{
	  "base": {"topology": {"kind": "disc"}, "duration": "500ms"},
	  "axes": [
	    {"field": "radius", "values": [16, 20]},
	    {"field": "nodes", "values": [5]}
	  ]
	}`)
	pts2, err := Expand(g2)
	if err != nil {
		t.Fatal(err)
	}
	if pts2[0].Spec.Topology.Radius != 16 || pts2[1].Spec.Topology.Radius != 20 {
		t.Errorf("radius axis not applied: %+v / %+v", pts2[0].Spec.Topology, pts2[1].Spec.Topology)
	}
}

func TestDecodeAndExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"unknown grid field", `{"bogus": 1, "base": {}, "axes": []}`},
		{"trailing data", demoGrid + `{"x": 1}`},
		{"unknown axis field", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "warp", "values": [1]}]}`},
		{"duplicate axis field", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "nodes", "values": [3]}, {"field": "nodes", "values": [4]}]}`},
		{"empty axis", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "nodes", "values": []}]}`},
		{"duplicate value", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "nodes", "values": [3, 3]}]}`},
		{"wrong value type", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "nodes", "values": ["three"]}]}`},
		{"float for int field", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "nodes", "values": [3.5]}]}`},
		{"non-finite float", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "frame_error_rate", "values": ["NaN"]}]}`},
		{"rate without traffic", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "rate", "values": [10]}]}`},
		{"invalid point", `{"base": {"topology": {"kind": "connected"}},
		  "axes": [{"field": "nodes", "values": [0]}]}`},
		{"bad scheme value", `{"base": {"topology": {"kind": "connected", "n": 3}},
		  "axes": [{"field": "scheme", "values": ["CSMA/CD"]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := Decode([]byte(tc.data))
			if err != nil {
				return // rejected at decode — fine
			}
			if _, err := Expand(g); err == nil {
				t.Errorf("accepted: %s", tc.data)
			}
		})
	}
}

func TestExpandBoundsPoints(t *testing.T) {
	// 400 × 300 > MaxPoints must be rejected before expanding.
	seeds := make([]int, 400)
	reps := make([]int, 300)
	for i := range seeds {
		seeds[i] = i + 1
	}
	for i := range reps {
		reps[i] = i + 1
	}
	g := &Grid{
		Base: scenario.Spec{Topology: scenario.TopologySpec{Kind: scenario.TopoConnected, N: 3}},
		Axes: []Axis{
			{Field: FieldSeed, Values: Ints(seeds...)},
			{Field: FieldSeeds, Values: Ints(reps...)},
		},
	}
	if _, err := Expand(g); err == nil || !strings.Contains(err.Error(), "points") {
		t.Errorf("oversized grid accepted: %v", err)
	}
}

func TestValueHelpersRoundTrip(t *testing.T) {
	g := &Grid{
		Name: "h",
		Base: scenario.Spec{Topology: scenario.TopologySpec{Kind: scenario.TopoConnected}},
		Axes: []Axis{
			{Field: FieldNodes, Values: Ints(3, 6)},
			{Field: FieldScheme, Values: Strings("802.11")},
			{Field: FieldFrameErrorRate, Values: Floats(0, 0.25)},
			{Field: FieldRTSCTS, Values: Bools(false, true)},
			{Field: FieldDuration, Values: Durations(500 * time.Millisecond)},
		},
	}
	pts, err := Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("%d points, want 8", len(pts))
	}
	want := "h/nodes=3,scheme=802.11,frame_error_rate=0,rtscts=false,duration=500ms"
	if pts[0].Name != want {
		t.Errorf("name %q, want %q", pts[0].Name, want)
	}
}

// TestFieldsMatchDefs pins the static sorted fieldNames list against
// the fieldDefs map: adding a sweepable field to one without the other
// fails here, and the sorted order is what user-facing error text
// depends on.
func TestFieldsMatchDefs(t *testing.T) {
	fields := Fields()
	if !slices.IsSorted(fields) {
		t.Errorf("Fields() not sorted: %v", fields)
	}
	defs := make([]string, 0, len(fieldDefs))
	for f := range fieldDefs {
		defs = append(defs, f)
	}
	slices.Sort(defs)
	if !slices.Equal(fields, defs) {
		t.Errorf("Fields() = %v,\nfieldDefs keys = %v", fields, defs)
	}
}

// TestUnknownFieldErrorTextDeterministic pins the exact unknown-field
// message: the field list must be sorted, never map-iteration order, so
// scripts and CI logs diffing against it stay stable across runs.
func TestUnknownFieldErrorTextDeterministic(t *testing.T) {
	const data = `{"base": {"topology": {"kind": "connected", "n": 3}},
	  "axes": [{"field": "warp", "values": [1]}]}`
	want := `invalid sweep grid: sweep: axis 0: unknown field "warp" (want one of ` +
		"duration, frame_error_rate, nodes, radius, rate, rtscts, " +
		"scheme, seed, seeds, separation, topology, update_period)"
	for i := 0; i < 10; i++ {
		g, err := Decode([]byte(data))
		if err != nil {
			t.Fatal(err)
		}
		_, err = Expand(g)
		if err == nil {
			t.Fatal("unknown field accepted")
		}
		if err.Error() != want {
			t.Fatalf("error text:\n got %q\nwant %q", err, want)
		}
	}
}
