package sweep

import "repro/internal/metrics"

// Metrics is the sweep runner's optional instrumentation: live point
// satisfaction counters registered on a shared metrics.Registry. Like
// scenario.Metrics it is a pure observer — a metrics-enabled sweep's
// JSONL output is byte-identical to a metrics-off run (pinned by
// TestMetricsDoNotChangeOutput) — and its final totals equal the
// returned Stats exactly: Owned = Simulated + Cached + Failed for
// every finished or aborted run.
type Metrics struct {
	// PointsOwned counts points owned by this process's shard(s),
	// accumulated per run at expansion time.
	PointsOwned *metrics.Counter
	// PointsSimulated counts points satisfied by simulation.
	PointsSimulated *metrics.Counter
	// PointsCached counts points served from the result cache.
	PointsCached *metrics.Counter
	// PointsFailed counts owned points left unsatisfied when a run
	// aborts: the failing point plus everything drained behind it.
	PointsFailed *metrics.Counter
	// RowsEmitted counts rows handed to the consumer (JSONL rows in
	// streaming mode).
	RowsEmitted *metrics.Counter
}

// NewMetrics registers the sweep metric set on reg. The cache hit rate
// — cached / (cached + simulated) — is derived at scrape time.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		PointsOwned: reg.Counter("wlansim_sweep_points_owned_total",
			"Sweep points owned by this process's shard(s)."),
		PointsSimulated: reg.Counter("wlansim_sweep_points_simulated_total",
			"Sweep points satisfied by simulation."),
		PointsCached: reg.Counter("wlansim_sweep_points_cached_total",
			"Sweep points served from the result cache."),
		PointsFailed: reg.Counter("wlansim_sweep_points_failed_total",
			"Sweep points left unsatisfied by an aborted run."),
		RowsEmitted: reg.Counter("wlansim_sweep_rows_emitted_total",
			"Sweep result rows emitted to the consumer."),
	}
	reg.GaugeFunc("wlansim_sweep_cache_hit_rate",
		"Fraction of satisfied sweep points served from the cache (0..1).",
		func() float64 {
			//wlanvet:allow render-time observer: the hit-rate GaugeFunc runs at scrape time, never inside the sweep loop
			hit := m.PointsCached.Value()
			//wlanvet:allow render-time observer: the hit-rate GaugeFunc runs at scrape time, never inside the sweep loop
			total := hit + m.PointsSimulated.Value()
			if total == 0 {
				return 0
			}
			return float64(hit) / float64(total)
		})
	return m
}
