package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/scenario"
)

// EngineVersion participates in every cache key. Bump it whenever the
// simulation engines or summary semantics change behaviour, so stale
// results can never be replayed as current ones. The cache itself needs
// no migration: entries under an old version simply stop being
// addressed and can be evicted by deleting the cache directory.
const EngineVersion = "wlansim-engine/3"

// SpecKey is the content address of a point: a SHA-256 over the
// canonical JSON of the defaulted spec — with the name and description
// cleared, so two sweeps that describe the same physics share entries —
// plus the engine version. Call only on validated specs. It is exported
// for the sweep service (internal/svc), whose lease/complete protocol
// is keyed on exactly these addresses so completions stay idempotent
// across lease reissues.
func SpecKey(sp *scenario.Spec) string {
	c := cloneSpec(sp)
	c.Name = ""
	c.Description = ""
	data, err := json.Marshal(&c)
	if err != nil {
		// Spec is a closed struct of marshalable fields; failure here is
		// a programming error, not an input error.
		panic(fmt.Sprintf("sweep: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(EngineVersion))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the on-disk format of one completed point.
type cacheEntry struct {
	Engine  string            `json:"engine"`
	Spec    *scenario.Spec    `json:"spec"`
	Summary *scenario.Summary `json:"summary"`
}

// Cache is a content-addressed store of completed point summaries.
// Entries live under <dir>/<key[:2]>/<key>.json; writes are atomic
// (temp file + rename), so concurrent shards may share one directory.
// Eviction is manual and always safe: delete any entry, or the whole
// directory, and the points are simply re-simulated.
//
// A corrupt or truncated entry (disk-level damage, or a write from a
// tool predating atomic puts) is never trusted and never silently
// skipped: Get quarantines it — renames it to <key>.corrupt so the
// evidence survives for inspection and the address reads as a miss —
// counts it (Quarantined), and the point is re-simulated.
type Cache struct {
	dir string

	mu          sync.Mutex
	quarantined int
}

// OpenCache creates (if needed) and opens a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached summary for a key, or false on a miss. A
// missing entry, or one written under a different engine version, is a
// clean miss; a corrupt or truncated entry is quarantined (renamed to
// <key>.corrupt, counted in Quarantined) and then reads as a miss, so
// the point re-simulates instead of the damage being skipped silently.
func (c *Cache) Get(key string) (*scenario.Summary, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Summary == nil {
		c.quarantine(key)
		return nil, false
	}
	if e.Engine != EngineVersion {
		// A well-formed entry for another engine version is stale, not
		// damaged: leave it for whoever still addresses that version.
		return nil, false
	}
	return e.Summary, true
}

// quarantine moves a damaged entry aside so its address frees up for a
// fresh simulation while the bytes stay inspectable. Rename failures
// (e.g. a concurrent shard already quarantined it) still count the
// sighting: the caller observed corruption either way.
func (c *Cache) quarantine(key string) {
	os.Rename(c.path(key), filepath.Join(c.dir, key[:2], key+".corrupt"))
	c.mu.Lock()
	c.quarantined++
	c.mu.Unlock()
}

// Quarantined returns how many corrupt entries this Cache handle has
// quarantined since it was opened.
func (c *Cache) Quarantined() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// Put stores a completed point. The spec rides along for debuggability
// (a cache entry is self-describing), but only the key addresses it.
func (c *Cache) Put(key string, sp *scenario.Spec, sum *scenario.Summary) error {
	data, err := json.MarshalIndent(&cacheEntry{Engine: EngineVersion, Spec: sp, Summary: sum}, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal cache entry: %w", err)
	}
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	return nil
}
