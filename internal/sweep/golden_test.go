package sweep

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the golden sweep fixtures")

const (
	sweepsDir      = "../../examples/sweeps"
	sweepGoldenDir = "../../examples/sweeps/golden"
)

// Every checked-in example sweep must reproduce its committed JSONL
// byte for byte — the same contract CI enforces through the CLI with a
// two-shard run, a merge, and a warm-cache re-run. Run with -update
// after an intentional behaviour change to regenerate the fixtures.
func TestSmokeSweepGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(sweepsDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no sweep grids under %s", sweepsDir)
	}
	for _, p := range paths {
		name := filepath.Base(p)
		name = name[:len(name)-len(".json")]
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			st, err := (&Runner{}).Stream(context.Background(), g, &got)
			if err != nil {
				t.Fatal(err)
			}
			if st.Simulated != st.Owned || st.Owned != st.Total {
				t.Errorf("uncached run stats: %+v", st)
			}

			goldenPath := filepath.Join(sweepGoldenDir, name+".jsonl")
			if *update {
				if err := os.MkdirAll(sweepGoldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", goldenPath)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("sweep output drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					goldenPath, got.Bytes(), want)
			}
		})
	}
}
