package sweep

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// acceptanceGrid is a ≥100-point sweep of fast (100 ms, 1 seed) runs:
// 4 schemes × 5 node counts × 3 frame-error rates × 2 RTS/CTS = 120.
func acceptanceGrid() *Grid {
	return &Grid{
		Name: "acceptance",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(100e6),
			Seeds:    1,
		},
		Axes: []Axis{
			{Field: FieldScheme, Values: Strings("802.11", "IdleSense", "wTOP-CSMA", "TORA-CSMA")},
			{Field: FieldNodes, Values: Ints(2, 3, 4, 5, 6)},
			{Field: FieldFrameErrorRate, Values: Floats(0, 0.05, 0.1)},
			{Field: FieldRTSCTS, Values: Bools(false, true)},
		},
	}
}

// The PR's acceptance property: a ≥100-point sweep run as 2 shards and
// merged is byte-identical to the unsharded single-run output, and an
// immediate re-run simulates 0 points (all cache hits).
func TestShardMergeByteIdenticalAndCacheResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 120 simulations")
	}
	g := acceptanceGrid()

	fullCache, err := OpenCache(filepath.Join(t.TempDir(), "full"))
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	r := &Runner{Cache: fullCache}
	st, err := r.Stream(context.Background(), g, &full)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 120 || st.Owned != 120 || st.Simulated != 120 || st.Cached != 0 {
		t.Fatalf("unsharded stats: %+v", st)
	}

	// Two shards sharing one cache directory, as CI machines would.
	shardCache, err := OpenCache(filepath.Join(t.TempDir(), "shared"))
	if err != nil {
		t.Fatal(err)
	}
	var s0, s1 bytes.Buffer
	r0 := &Runner{Cache: shardCache, Shard: Shard{0, 2}}
	st0, err := r0.Stream(context.Background(), g, &s0)
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Runner{Cache: shardCache, Shard: Shard{1, 2}}
	st1, err := r1.Stream(context.Background(), g, &s1)
	if err != nil {
		t.Fatal(err)
	}
	if st0.Owned+st1.Owned != 120 || st0.Owned != 60 {
		t.Fatalf("shard ownership: %+v / %+v", st0, st1)
	}

	var merged bytes.Buffer
	n, err := Merge(&merged, &s0, &s1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 120 {
		t.Fatalf("merged %d rows, want 120", n)
	}
	if !bytes.Equal(full.Bytes(), merged.Bytes()) {
		t.Error("merged shard output differs from the unsharded run")
	}

	// Immediate re-run against the warm cache: zero simulations, same
	// bytes.
	var rerun bytes.Buffer
	st2, err := (&Runner{Cache: fullCache}).Stream(context.Background(), g, &rerun)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Simulated != 0 || st2.Cached != 120 {
		t.Fatalf("re-run stats: %+v (want 0 simulated, 120 cached)", st2)
	}
	if !bytes.Equal(full.Bytes(), rerun.Bytes()) {
		t.Error("cached re-run output differs from the fresh run")
	}

	// Resume: a third cache warmed by shard 0 only re-simulates shard
	// 1's points.
	var resume bytes.Buffer
	st3, err := (&Runner{Cache: shardCache}).Stream(context.Background(), g, &resume)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Simulated != 0 || st3.Cached != 120 {
		t.Fatalf("post-shard full run stats: %+v", st3)
	}
	if !bytes.Equal(full.Bytes(), resume.Bytes()) {
		t.Error("resumed run output differs")
	}
}

func TestRunWithoutCache(t *testing.T) {
	g := &Grid{
		Name: "plain",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(100e6),
		},
		Axes: []Axis{{Field: FieldNodes, Values: Ints(2, 3)}},
	}
	results, st, err := (&Runner{}).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || st.Simulated != 2 || st.Cached != 0 {
		t.Fatalf("results %d, stats %+v", len(results), st)
	}
	for _, pr := range results {
		if pr.Summary == nil || pr.Summary.Name != pr.Name {
			t.Errorf("summary missing or misnamed for %s", pr.Name)
		}
		if pr.Summary.ThroughputMbps.Mean <= 0 {
			t.Errorf("%s made no progress", pr.Name)
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"0/2": {0, 2},
		"3/4": {3, 4},
	}
	for s, want := range good {
		sh, err := ParseShard(s)
		if err != nil || sh != want {
			t.Errorf("ParseShard(%q) = %+v, %v", s, sh, err)
		}
	}
	for _, s := range []string{"", "1", "2/2", "-1/2", "1/0", "a/b", "1/2/3", "0/2.5", "0/2x", "1/2 9", " 0/2"} {
		if _, err := ParseShard(s); err == nil {
			t.Errorf("ParseShard(%q) accepted", s)
		}
	}
}

func TestMergeRejectsBadShards(t *testing.T) {
	row := func(i int) string {
		return `{"index":` + strings.TrimSpace(string(rune('0'+i))) + `,"name":"x"}` + "\n"
	}
	cases := []struct {
		name   string
		shards []string
	}{
		{"duplicate index", []string{row(0) + row(1), row(1)}},
		{"gap", []string{row(0) + row(2)}},
		{"not starting at zero", []string{row(1) + row(2)}},
		{"garbage line", []string{"not json\n"}},
		{"missing index key", []string{`{"name":"x"}` + "\n"}},
		{"empty", []string{""}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inputs := make([]io.Reader, len(tc.shards))
			for i, s := range tc.shards {
				inputs[i] = strings.NewReader(s)
			}
			var out bytes.Buffer
			if _, err := Merge(&out, inputs...); err == nil {
				t.Errorf("merge accepted %q", tc.shards)
			}
		})
	}
}

func TestMergeSingleShardRoundTrip(t *testing.T) {
	in := `{"index":0,"name":"a"}` + "\n" + `{"index":1,"name":"b"}` + "\n"
	var out bytes.Buffer
	n, err := Merge(&out, strings.NewReader(in))
	if err != nil || n != 2 {
		t.Fatalf("merge: n=%d err=%v", n, err)
	}
	if out.String() != in {
		t.Errorf("merge altered bytes:\n%q\nvs\n%q", out.String(), in)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Total: 10, Owned: 5, Simulated: 2, Cached: 3}.String()
	if !strings.Contains(s, "2 simulated") || !strings.Contains(s, "3 cached") || !strings.Contains(s, "5/10") {
		t.Errorf("stats string %q", s)
	}
}

// A cancelled context reports ctx.Err() whatever the cache temperature:
// the warm-cache path (which never touches the worker pool) must agree
// with the cold path.
func TestRunCancelledContextConsistentAcrossCache(t *testing.T) {
	g := &Grid{
		Name: "cancel-cache",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(100e6),
			Seeds:    1,
		},
		Axes: []Axis{{Field: FieldNodes, Values: Ints(2, 3)}},
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warmup := &Runner{Cache: cache}
	if _, _, err := warmup.Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := (&Runner{Cache: cache}).Run(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("warm cache under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := (&Runner{}).Run(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("cold run under cancelled ctx: err = %v, want context.Canceled", err)
	}
}
