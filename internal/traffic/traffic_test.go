package traffic

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"saturated zero value", Spec{}, true},
		{"saturated ignores garbage", Spec{Kind: Saturated, Rate: -1}, true},
		{"poisson", Spec{Kind: Poisson, Rate: 100}, true},
		{"poisson zero rate", Spec{Kind: Poisson}, false},
		{"poisson negative rate", Spec{Kind: Poisson, Rate: -5}, false},
		{"poisson NaN rate", Spec{Kind: Poisson, Rate: math.NaN()}, false},
		{"poisson inf rate", Spec{Kind: Poisson, Rate: math.Inf(1)}, false},
		{"poisson absurd rate", Spec{Kind: Poisson, Rate: 1e12}, false},
		{"poisson subnormal rate", Spec{Kind: Poisson, Rate: 1e-300}, false},
		{"poisson below min rate", Spec{Kind: Poisson, Rate: 1e-9}, false},
		{"negative queue cap", Spec{Kind: Poisson, Rate: 1, QueueCap: -1}, false},
		{"huge queue cap", Spec{Kind: Poisson, Rate: 1, QueueCap: MaxQueueCap + 1}, false},
		{"onoff", Spec{Kind: OnOff, Rate: 50, OnMean: sim.Second, OffMean: sim.Second}, true},
		{"onoff missing phases", Spec{Kind: OnOff, Rate: 50}, false},
		{"onoff nanosecond phases", Spec{Kind: OnOff, Rate: 50, OnMean: sim.Nanosecond, OffMean: sim.Nanosecond}, false},
		{"onoff week-long phases", Spec{Kind: OnOff, Rate: 50, OnMean: 40 * 24 * 3600 * sim.Second, OffMean: sim.Second}, false},
		{"unknown kind", Spec{Kind: Kind(42), Rate: 1}, false},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Saturated, Poisson, OnOff} {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := KindFromString("bursty"); err == nil {
		t.Error("KindFromString accepted an unknown model name")
	}
	if k, err := KindFromString(""); err != nil || k != Saturated {
		t.Errorf("empty model name should default to saturated, got %v, %v", k, err)
	}
}

// Empirical check of the Poisson sampler at a fixed seed: exponential
// inter-arrivals must have mean ≈ 1/λ and squared coefficient of
// variation ≈ 1 (variance ≈ mean²). With 50 000 draws the standard error
// of the mean is ~0.45% and of the variance ~1.3%, so 5%/10% tolerances
// leave wide deterministic margins.
func TestPoissonInterArrivalMoments(t *testing.T) {
	const (
		rate  = 1000.0 // packets/second → mean gap 1 ms
		draws = 50000
	)
	spec := Spec{Kind: Poisson, Rate: rate}
	rng := sim.NewRNG(12345)
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		g := spec.NextInterArrival(rng).Seconds()
		if g <= 0 {
			t.Fatalf("draw %d: non-positive gap %v", i, g)
		}
		sum += g
		sumSq += g * g
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	wantMean := 1 / rate
	if rel := math.Abs(mean-wantMean) / wantMean; rel > 0.05 {
		t.Errorf("empirical mean %.6g vs %.6g (off by %.2f%%)", mean, wantMean, 100*rel)
	}
	wantVar := wantMean * wantMean
	if rel := math.Abs(variance-wantVar) / wantVar; rel > 0.10 {
		t.Errorf("empirical variance %.6g vs %.6g (off by %.2f%%)", variance, wantVar, 100*rel)
	}
}

// The OnOff phase sampler must honour each phase's own mean, and the
// long-run MeanRate must equal the duty-cycle-weighted rate.
func TestOnOffPhaseMoments(t *testing.T) {
	spec := Spec{
		Kind:    OnOff,
		Rate:    400,
		OnMean:  100 * sim.Millisecond,
		OffMean: 300 * sim.Millisecond,
	}
	rng := sim.NewRNG(99)
	const draws = 20000
	var on, off float64
	for i := 0; i < draws; i++ {
		on += spec.NextPhase(true, rng).Seconds()
		off += spec.NextPhase(false, rng).Seconds()
	}
	if rel := math.Abs(on/draws-0.1) / 0.1; rel > 0.05 {
		t.Errorf("On phase mean %.4f s, want 0.1 s (off by %.2f%%)", on/draws, 100*rel)
	}
	if rel := math.Abs(off/draws-0.3) / 0.3; rel > 0.05 {
		t.Errorf("Off phase mean %.4f s, want 0.3 s (off by %.2f%%)", off/draws, 100*rel)
	}
	if got, want := spec.MeanRate(), 400*0.1/0.4; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanRate() = %v, want %v", got, want)
	}
}

// Determinism: the same seed must reproduce the same gap sequence.
func TestSamplerDeterminism(t *testing.T) {
	spec := Spec{Kind: Poisson, Rate: 250}
	a, b := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 1000; i++ {
		if ga, gb := spec.NextInterArrival(a), spec.NextInterArrival(b); ga != gb {
			t.Fatalf("draw %d: %v != %v", i, ga, gb)
		}
	}
}
