// Package traffic models packet arrival processes for the simulators.
//
// The paper's evaluation is saturated-senders-only: every station always
// has a frame queued, so the MAC never idles for lack of work. Real WLANs
// spend most of their life below saturation, where per-packet queueing
// delay — not just aggregate throughput — is the metric that matters.
// This package describes the offered load of one station as a small,
// JSON-encodable value shared by the event-driven engine (eventsim), the
// slotted engine (slotsim) and the scenario subsystem:
//
//   - Saturated: the paper's model, an infinite backlog.
//   - Poisson: memoryless arrivals at a fixed mean rate — the classic
//     unsaturated reference model.
//   - OnOff: an interrupted Poisson process alternating exponential On
//     (arrivals at Rate) and Off (silence) phases — bursty sources whose
//     instantaneous load far exceeds their mean.
//
// Specs are pure descriptions; the engines own the RNG streams that
// realise them, so a spec can be shared between replications.
package traffic

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Kind enumerates the supported arrival processes.
type Kind uint8

const (
	// Saturated is an infinite backlog: a fresh packet is available the
	// instant the previous one is delivered. The zero value, so engines
	// default to the paper's regime.
	Saturated Kind = iota
	// Poisson delivers packets with exponential inter-arrival gaps of
	// mean 1/Rate.
	Poisson
	// OnOff is an interrupted Poisson process: exponential On phases
	// (mean OnMean) with Poisson(Rate) arrivals alternate with silent
	// exponential Off phases (mean OffMean).
	OnOff
)

// String names the kind as it appears in scenario JSON.
func (k Kind) String() string {
	switch k {
	case Saturated:
		return "saturated"
	case Poisson:
		return "poisson"
	case OnOff:
		return "onoff"
	default:
		return fmt.Sprintf("traffic.Kind(%d)", k)
	}
}

// KindFromString parses a scenario-JSON model name.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "", "saturated":
		return Saturated, nil
	case "poisson":
		return Poisson, nil
	case "onoff":
		return OnOff, nil
	default:
		return 0, fmt.Errorf("traffic: unknown arrival model %q (want saturated, poisson or onoff)", s)
	}
}

// Bounds keeping hostile specs from degenerating into denial-of-service
// configurations: a fuzzing or user-supplied rate must not be able to
// schedule events faster than the engine can retire them, and queue caps
// must not pre-allocate unbounded memory.
const (
	// MaxRate is the largest accepted mean arrival rate, packets/second.
	// One arrival per 100 ns is already far beyond any 802.11 airtime.
	MaxRate = 1e7
	// MinRate is the smallest accepted rate: one packet per ~11.6 days.
	// Tiny positive rates must be bounded too — the inter-arrival
	// computation Exp()/rate would overflow float64 for subnormal rates
	// and the overflow clamp would invert "almost never" into a 1 ns
	// flood.
	MinRate = 1e-6
	// MaxQueueCap bounds the per-station queue capacity.
	MaxQueueCap = 1 << 20
	// DefaultQueueCap is the backlog bound applied when a spec leaves
	// QueueCap at 0. A 65 536-packet backlog is already minutes of
	// queueing delay — far beyond any meaningful latency measurement —
	// while keeping a validated-but-overloaded source from growing an
	// unbounded timestamp queue (8 B/packet) until OOM.
	DefaultQueueCap = 1 << 16
	// MinPhaseMean bounds OnOff phase lengths from below: shorter mean
	// phases schedule phase-flip events faster than any frame exchange,
	// turning a validated spec into an event-flood denial of service.
	MinPhaseMean = sim.Millisecond
	// MaxPhaseMean keeps phase draws well inside duration arithmetic.
	MaxPhaseMean = 24 * 3600 * sim.Second
)

// Spec describes one station's packet arrival process.
type Spec struct {
	// Kind selects the process; the zero value is Saturated.
	Kind Kind
	// Rate is the mean packet arrival rate in packets/second while the
	// source is emitting (always, for Poisson; during On phases, for
	// OnOff). Ignored by Saturated.
	Rate float64
	// OnMean and OffMean are the mean exponential phase durations of the
	// OnOff process. Ignored by the other kinds.
	OnMean, OffMean sim.Duration
	// QueueCap bounds the station queue in packets; arrivals beyond it
	// are counted as drops. 0 applies DefaultQueueCap — the backlog is
	// always finite. Ignored by Saturated (whose backlog is conceptually
	// infinite but occupies no memory).
	QueueCap int
}

// EffectiveQueueCap returns the backlog bound the engines enforce:
// QueueCap when set, DefaultQueueCap otherwise.
func (s Spec) EffectiveQueueCap() int {
	if s.QueueCap > 0 {
		return s.QueueCap
	}
	return DefaultQueueCap
}

// Unsaturated reports whether the spec describes a finite-load source.
func (s Spec) Unsaturated() bool { return s.Kind != Saturated }

// Validate reports the first nonsensical parameter, if any.
func (s Spec) Validate() error {
	switch s.Kind {
	case Saturated:
		return nil
	case Poisson, OnOff:
	default:
		return fmt.Errorf("traffic: unknown kind %d", s.Kind)
	}
	if math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) || s.Rate <= 0 {
		return fmt.Errorf("traffic: %s rate %v must be a positive finite packets/second", s.Kind, s.Rate)
	}
	if s.Rate > MaxRate || s.Rate < MinRate {
		return fmt.Errorf("traffic: %s rate %v outside [%v, %v] packets/second", s.Kind, s.Rate, float64(MinRate), float64(MaxRate))
	}
	if s.QueueCap < 0 || s.QueueCap > MaxQueueCap {
		return fmt.Errorf("traffic: queue capacity %d outside [0, %d]", s.QueueCap, MaxQueueCap)
	}
	if s.Kind == OnOff {
		if s.OnMean < MinPhaseMean || s.OnMean > MaxPhaseMean ||
			s.OffMean < MinPhaseMean || s.OffMean > MaxPhaseMean {
			return fmt.Errorf("traffic: onoff phase means (on %v, off %v) outside [%v, %v]",
				s.OnMean, s.OffMean, MinPhaseMean, MaxPhaseMean)
		}
	}
	return nil
}

// MeanRate returns the long-run mean arrival rate in packets/second:
// Rate for Poisson, the duty-cycle-weighted rate for OnOff, +Inf for
// Saturated.
func (s Spec) MeanRate() float64 {
	switch s.Kind {
	case Poisson:
		return s.Rate
	case OnOff:
		on := s.OnMean.Seconds()
		return s.Rate * on / (on + s.OffMean.Seconds())
	default:
		return math.Inf(1)
	}
}

// NextInterArrival draws the gap to the next packet while the source is
// emitting: Exponential(Rate), clamped to at least one nanosecond so a
// pathological draw cannot stall simulated time.
func (s Spec) NextInterArrival(rng *sim.RNG) sim.Duration {
	return expDuration(rng, s.Rate)
}

// NextPhase draws the duration of the phase the OnOff source just
// entered (on == true for an On phase).
func (s Spec) NextPhase(on bool, rng *sim.RNG) sim.Duration {
	mean := s.OffMean
	if on {
		mean = s.OnMean
	}
	return expDuration(rng, 1/mean.Seconds())
}

// expDuration draws Exponential(rate) as a simulated duration clamped to
// [1 ns, ~31.7 years]: the lower clamp keeps simulated time advancing,
// the upper keeps the int64 conversion exact even for the smallest
// validated rates (where float overflow would otherwise wrap negative
// and masquerade as the 1 ns floor).
func expDuration(rng *sim.RNG, rate float64) sim.Duration {
	secs := rng.Exp() / rate
	if !(secs < 1e9) { // also catches NaN/Inf
		secs = 1e9
	}
	d := sim.Duration(secs * float64(sim.Second))
	if d < sim.Nanosecond {
		d = sim.Nanosecond
	}
	return d
}
