package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	times := []Time{500, 100, 300, 200, 400}
	for _, at := range times {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.Run()
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if s.Now() != 500 {
		t.Errorf("clock = %v, want 500", s.Now())
	}
}

func TestSchedulerFIFOForEqualTimestamps(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		s.At(1000, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; equal-timestamp events must fire FIFO", i, v)
		}
	}
}

func TestSchedulerAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
	})
	s.Run()
	if at != 150 {
		t.Errorf("nested After fired at %v, want 150", at)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling again must be a no-op, including on the zero Ref.
	e.Cancel()
	var zero Ref
	zero.Cancel()
	if zero.Active() || zero.Cancelled() {
		t.Error("zero Ref reports Active or Cancelled")
	}
}

// A Ref held past its event's lifetime must expire rather than act on the
// recycled event: cancelling a stale handle may not kill whatever event
// now occupies the pooled slot.
func TestSchedulerStaleRefCannotCancelRecycledEvent(t *testing.T) {
	s := NewScheduler()
	fired := 0
	stale := s.At(10, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("first event fired %d times, want 1", fired)
	}
	if stale.Active() {
		t.Error("Ref still active after its event fired")
	}
	// The pool is LIFO, so this At reuses the event stale points at.
	next := s.At(20, func() { fired++ })
	stale.Cancel()
	if !next.Active() {
		t.Fatal("stale Cancel killed the recycled event")
	}
	if stale.At() != 0 {
		t.Errorf("stale At() = %v, want 0", stale.At())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired %d events, want 2 (stale Cancel must be a no-op)", fired)
	}
}

// Events must return to the free list after firing or after a cancelled
// entry is collected, so steady-state scheduling reuses a bounded pool.
func TestSchedulerPoolRecycles(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 100; i++ {
		r := s.At(Time(i), func() {})
		if i%3 == 0 {
			r.Cancel()
		}
	}
	s.Run()
	if got := s.PoolSize(); got != 100 {
		t.Errorf("pool holds %d events after drain, want 100", got)
	}
	for i := 0; i < 100; i++ {
		s.At(s.Now().Add(1), func() {})
	}
	if got := s.PoolSize(); got != 0 {
		t.Errorf("pool holds %d events while 100 are pending, want 0", got)
	}
	s.Run()
}

func TestSchedulerCancelFromEarlierEvent(t *testing.T) {
	s := NewScheduler()
	fired := false
	later := s.At(20, func() { fired = true })
	s.At(10, func() { later.Cancel() })
	s.Run()
	if fired {
		t.Error("event cancelled by an earlier event still fired")
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("fired %d events before halt, want 3", count)
	}
	s.Run() // resume
	if count != 10 {
		t.Fatalf("fired %d events total after resume, want 10", count)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25 {
		t.Errorf("clock = %v, want 25 after RunUntil(25)", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events after second RunUntil, want 4", len(fired))
	}
	if s.Now() != 100 {
		t.Errorf("clock = %v, want 100", s.Now())
	}
}

// A cancelled event inside the window must not let RunUntil fire a live
// event beyond it: the bound is decided on the earliest LIVE event.
func TestSchedulerRunUntilSkipsDeadMinimum(t *testing.T) {
	s := NewScheduler()
	r := s.At(10, func() { t.Error("cancelled event fired") })
	fired := false
	s.At(20, func() { fired = true })
	r.Cancel()
	s.RunUntil(15)
	if fired {
		t.Error("RunUntil(15) fired the event at 20")
	}
	if s.Now() != 15 {
		t.Errorf("clock = %v, want 15", s.Now())
	}
	s.RunUntil(25)
	if !fired {
		t.Error("event at 20 never fired")
	}
}

func TestSchedulerPanicsOnPastEvent(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestSchedulerPanicsOnNegativeDelay(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("After with negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

// Property: for any sequence of insertion timestamps, pops are sorted and
// stable within equal timestamps.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		s := NewScheduler()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, v := range raw {
			at := Time(v % 64) // force many timestamp collisions
			i := i
			s.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving random cancellations never breaks ordering and
// cancelled events never fire.
func TestSchedulerCancelProperty(t *testing.T) {
	prop := func(raw []uint16, cancelMask []bool) bool {
		s := NewScheduler()
		events := make([]Ref, len(raw))
		firedCancelled := false
		var last Time = -1
		for i, v := range raw {
			at := Time(v % 32)
			i := i
			events[i] = s.At(at, func() {
				if i < len(cancelMask) && cancelMask[i] {
					firedCancelled = true
				}
				if at < last {
					firedCancelled = true // reuse flag as failure signal
				}
				last = at
			})
		}
		for i, e := range events {
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel()
			}
		}
		s.Run()
		return !firedCancelled
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapStress(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewScheduler()
	const n = 5000
	var fired int
	var last Time = -1
	var insert func(depth int)
	insert = func(depth int) {
		if depth == 0 {
			return
		}
		at := s.Now().Add(Duration(r.Intn(1000)))
		s.At(at, func() {
			if s.Now() < last {
				t.Errorf("time went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
			fired++
			if fired < n {
				insert(depth)
			}
		})
	}
	for i := 0; i < 8; i++ {
		insert(1)
	}
	s.Run()
	if fired < n {
		t.Fatalf("fired %d events, want ≥ %d", fired, n)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(9 * Microsecond)
	if t1 != Time(9000) {
		t.Errorf("Add: got %d, want 9000", t1)
	}
	if d := t1.Sub(t0); d != 9*Microsecond {
		t.Errorf("Sub: got %v, want 9µs", d)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Error("Before comparisons wrong")
	}
	if !t1.After(t0) || t0.After(t1) {
		t.Error("After comparisons wrong")
	}
	if s := Time(1500 * Millisecond).Seconds(); s != 1.5 {
		t.Errorf("Seconds: got %v, want 1.5", s)
	}
	if got := Time(Second).String(); got != "1.000000s" {
		t.Errorf("String: got %q", got)
	}
}
