package sim

import "math/rand"

// lfgSource reimplements math/rand's additive lagged-Fibonacci
// generator bit for bit, with one difference: Seed's Lehmer warm-up
// uses a branch-light Mersenne-prime reduction instead of the stdlib's
// Schrage division, which makes reseeding several times cheaper.
// Simulator arenas reseed one generator per station per replication, so
// on sweep workloads of thousands of short runs Seed is a profile-level
// hot spot (≈20% of a 120-point sweep before this source existed).
//
// Draw-for-draw equivalence with math/rand is the load-bearing
// property: every committed golden (scenario summaries, sweep JSONL,
// engine fingerprints) encodes streams produced by rand.NewSource.
// TestLFGMatchesStdlib pins the equivalence across seeds and draw
// kinds; the engine fingerprints pin it end to end.
const (
	lfgLen = 607
	lfgTap = 273
	lfgA   = 48271
	lfgM   = 1<<31 - 1
)

// lfgCooked mirrors math/rand's unexported rng_cooked additive
// constants. The stdlib does not expose them, so they are recovered
// once at init by seeding a throwaway stdlib source and inverting the
// recurrence: each of the first 607 outputs is a wrap-around sum of two
// state words, written back in a fixed order, so the seeded state is
// solvable in two passes; XOR with the (re-computable) Lehmer warm-up
// chain then yields the constants. If a future Go release ever changed
// the generator, TestLFGMatchesStdlib would fail loudly.
var lfgCooked [lfgLen]uint64

func init() {
	src := rand.NewSource(1).(rand.Source64)
	var out [lfgLen]uint64
	for i := range out {
		out[i] = src.Uint64()
	}
	var vec [lfgLen]uint64
	// Steps 273..606: the tap slot (606-k) was overwritten at step
	// k-273, so the freshly read feed slot is the only unknown.
	for k := lfgTap; k < lfgLen; k++ {
		feed := ((333-k)%lfgLen + lfgLen) % lfgLen
		vec[feed] = out[k] - out[k-lfgTap]
	}
	// Steps 0..272: the tap slot 606-k is original state recovered
	// above; the feed slot 333-k is the remaining unknown.
	for k := 0; k < lfgTap; k++ {
		vec[333-k] = out[k] - vec[606-k]
	}
	// XOR out the seed-1 warm-up chain to leave the constants.
	x := lfgSeedStart(1)
	for i := 0; i < lfgLen; i++ {
		var u uint64
		x = lfgSeedrand(x)
		u = uint64(x) << 40
		x = lfgSeedrand(x)
		u ^= uint64(x) << 20
		x = lfgSeedrand(x)
		u ^= uint64(x)
		lfgCooked[i] = vec[i] ^ u
	}
}

// lfgSeedrand advances the Lehmer warm-up chain: x·48271 mod (2³¹−1),
// reduced by Mersenne folding instead of division. Identical residues
// to the stdlib's Schrage form for every x in [0, 2³¹−1).
func lfgSeedrand(x uint32) uint32 {
	p := uint64(x) * lfgA
	//wlanvet:allow deliberate mod-2³¹−1 Mersenne folding; residues are pinned draw-for-draw against math/rand by TestLFGMatchesStdlib
	v := uint32(p&lfgM) + uint32(p>>31)
	if v >= lfgM {
		v -= lfgM
	}
	return v
}

// lfgSeedStart applies Seed's seed normalisation and 20-step warm-up,
// returning the chain value from which state words are drawn.
func lfgSeedStart(seed int64) uint32 {
	s := seed % lfgM
	if s < 0 {
		s += lfgM
	}
	if s == 0 {
		s = 89482311
	}
	//wlanvet:allow deliberate truncation: math/rand's rngSource.Seed folds the seed mod 2³¹−1 the same way
	x := uint32(s)
	for i := 0; i < 20; i++ {
		x = lfgSeedrand(x)
	}
	return x
}

// lfgSource is the generator state. It implements rand.Source64.
type lfgSource struct {
	vec       [lfgLen]uint64
	tap, feed int
}

// Seed reinitialises the state exactly as math/rand's rngSource.Seed
// would, via the fast warm-up chain.
func (r *lfgSource) Seed(seed int64) {
	r.tap, r.feed = 0, lfgLen-lfgTap
	x := lfgSeedStart(seed)
	for i := 0; i < lfgLen; i++ {
		var u uint64
		x = lfgSeedrand(x)
		u = uint64(x) << 40
		x = lfgSeedrand(x)
		u ^= uint64(x) << 20
		x = lfgSeedrand(x)
		u ^= uint64(x)
		r.vec[i] = u ^ lfgCooked[i]
	}
}

// Uint64 returns the next value of the additive recurrence.
func (r *lfgSource) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += lfgLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += lfgLen
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return x
}

// Int63 returns the low 63 bits, as the stdlib source does.
func (r *lfgSource) Int63() int64 {
	return int64(r.Uint64() & (1<<63 - 1))
}
