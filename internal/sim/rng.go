package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the variate helpers the MAC layer needs. Every
// simulation owns one RNG seeded explicitly, so runs are reproducible and
// independent runs can use distinct seeds.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed. The underlying source is
// the repository's fast-seeding reimplementation of math/rand's
// generator (see lfg.go); its draw sequence is bit-identical to
// rand.New(rand.NewSource(seed)).
func NewRNG(seed int64) *RNG {
	src := &lfgSource{}
	src.Seed(seed)
	return &RNG{r: rand.New(src)}
}

// Reseed reinitialises the generator in place, producing exactly the
// stream NewRNG(seed) would — but reusing the internal source's state
// arrays, which are the dominant per-simulator allocation. Pooled
// simulator arenas reseed instead of reallocating.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// splitSeed derives the child seed for a sub-stream, consuming one draw
// from the parent. SplitMix-style avalanche of (draw, stream).
func (g *RNG) splitSeed(stream int64) int64 {
	z := uint64(g.r.Int63()) ^ (uint64(stream) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Split derives an independent generator for a sub-component. The stream
// index keeps components (e.g. per-node backoff draws) decoupled so that
// adding a node does not perturb the draws of existing nodes.
func (g *RNG) Split(stream int64) *RNG {
	return NewRNG(g.splitSeed(stream))
}

// SplitInto reseeds dst with the stream Split would have created,
// consuming the identical parent draw — the reallocation-free variant
// for simulator arenas. dst must not be nil.
func (g *RNG) SplitInto(stream int64, dst *RNG) {
	dst.Reseed(g.splitSeed(stream))
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Bernoulli reports true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return g.r.Float64() < p
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials: P(k) = p·(1−p)^k for k = 0, 1, 2, …
//
// This is exactly the "attempt with probability p in each slot" contention
// window of p-persistent CSMA: a node draws Geometric(p) idle slots to wait
// before its next attempt.
func (g *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32 // effectively never; callers clamp p away from 0
	}
	return GeometricFromUniform(g.r.Float64(), p)
}

// GeometricFromUniform maps one uniform draw u ∈ [0,1) to a Geometric(p)
// variate by inverse transform: k = floor(ln(1-u) / ln(1-p)). 1-u is
// uniform on (0,1], so the argument of log is never zero. It consumes
// exactly the one uniform it is given, so feeding it draws from a
// FloatBatch yields the identical variate sequence as calling Geometric
// on the underlying RNG directly.
func GeometricFromUniform(u, p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	return GeometricFromUniformLogQ(u, math.Log1p(-p))
}

// GeometricFromUniformLogQ is GeometricFromUniform with the constant
// denominator ln(1-p) precomputed by the caller — the backoff draw runs
// once per station per busy period, and recomputing a log for a
// parameter that changes only on controller updates is measurable in
// sweep profiles. logQ must equal math.Log1p(-p) exactly (cache the
// value, never a reciprocal: a multiply would round differently and
// change draws). logQ must be finite and negative, i.e. p ∈ (0, 1).
func GeometricFromUniformLogQ(u, logQ float64) int {
	k := math.Floor(math.Log1p(-u) / logQ)
	if k < 0 {
		return 0
	}
	if k > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(k)
}

// floatBatchSize is the FloatBatch prefetch block. 64 draws keep the
// buffer inside one page and amortise the per-call overhead of the
// underlying generator without holding a meaningful stake of the stream.
const floatBatchSize = 64

// FloatBatch prefetches uniform draws from an RNG in blocks, amortising
// the per-draw call overhead on hot paths that consume one uniform per
// decision (the backoff draw of p-persistent CSMA). Draws are delivered
// in exactly the order the RNG would have produced them one at a time, so
// a consumer that owns its RNG stream gets bit-identical variates whether
// or not it batches. The zero value is empty and must be Bound before use.
type FloatBatch struct {
	rng  *RNG
	i, n int
	buf  [floatBatchSize]float64
}

// Bind attaches the batch to rng, discarding any prefetched draws from a
// previously bound generator. Binding the already-bound generator is a
// cheap no-op, so callers may Bind defensively on every draw.
func (b *FloatBatch) Bind(rng *RNG) {
	if b.rng != rng {
		b.rng = rng
		b.i, b.n = 0, 0
	}
}

// Next returns the next uniform draw in [0,1), refilling the prefetch
// buffer from the bound RNG when it runs dry.
func (b *FloatBatch) Next() float64 {
	if b.i == b.n {
		r := b.rng.r
		for i := range b.buf {
			b.buf[i] = r.Float64()
		}
		b.i, b.n = 0, len(b.buf)
	}
	u := b.buf[b.i]
	b.i++
	return u
}

// UniformWindow returns a uniform draw from [0, cw-1], the standard 802.11
// backoff draw for contention window cw. cw must be ≥ 1.
func (g *RNG) UniformWindow(cw int) int {
	if cw <= 1 {
		return 0
	}
	return g.r.Intn(cw)
}

// Shuffle pseudo-randomly permutes n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// NormFloat64 returns a standard normal draw (used by tests to synthesise
// noisy throughput observations).
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exp returns an exponentially distributed draw with rate 1 (mean 1).
// Scale by 1/λ for rate λ — the inter-arrival gap of a Poisson process.
func (g *RNG) Exp() float64 { return g.r.ExpFloat64() }
