package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the variate helpers the MAC layer needs. Every
// simulation owns one RNG seeded explicitly, so runs are reproducible and
// independent runs can use distinct seeds.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent generator for a sub-component. The stream
// index keeps components (e.g. per-node backoff draws) decoupled so that
// adding a node does not perturb the draws of existing nodes.
func (g *RNG) Split(stream int64) *RNG {
	// SplitMix-style avalanche of (seed drawn from parent, stream).
	z := uint64(g.r.Int63()) ^ (uint64(stream) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Bernoulli reports true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return g.r.Float64() < p
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials: P(k) = p·(1−p)^k for k = 0, 1, 2, …
//
// This is exactly the "attempt with probability p in each slot" contention
// window of p-persistent CSMA: a node draws Geometric(p) idle slots to wait
// before its next attempt.
func (g *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32 // effectively never; callers clamp p away from 0
	}
	u := g.r.Float64()
	// Inverse transform: k = floor(ln(1-u) / ln(1-p)). 1-u is uniform on
	// (0,1], so the argument of log is never zero.
	k := math.Floor(math.Log1p(-u) / math.Log1p(-p))
	if k < 0 {
		return 0
	}
	if k > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(k)
}

// UniformWindow returns a uniform draw from [0, cw-1], the standard 802.11
// backoff draw for contention window cw. cw must be ≥ 1.
func (g *RNG) UniformWindow(cw int) int {
	if cw <= 1 {
		return 0
	}
	return g.r.Intn(cw)
}

// Shuffle pseudo-randomly permutes n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// NormFloat64 returns a standard normal draw (used by tests to synthesise
// noisy throughput observations).
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }
