package sim

// Event is a scheduled callback. The callback receives the scheduler so it
// can schedule follow-up events.
type Event struct {
	at   Time
	seq  uint64 // FIFO tie-breaker for equal timestamps
	fn   func()
	dead bool // set by Cancel; popped events with dead=true are dropped

	index int // position in the heap, maintained by eventHeap
}

// At returns the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel marks the event so it will not fire. Cancelling an already-fired
// or already-cancelled event is a no-op. Cancellation is lazy: the entry
// stays in the heap and is discarded when popped.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e != nil && e.dead }

// eventHeap is a binary min-heap ordered by (at, seq). It implements the
// operations of container/heap directly to avoid interface boxing on the
// hot path.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *eventHeap) push(e *Event) {
	e.index = len(h.items)
	h.items = append(h.items, e)
	h.up(e.index)
}

func (h *eventHeap) pop() *Event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.swap(0, n-1)
	h.items[n-1] = nil // let the GC reclaim the event
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h *eventHeap) peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
