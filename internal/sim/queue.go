package sim

// Event is a pooled scheduler entry. Events are owned by the Scheduler's
// free list and recycled after they fire or their cancellation is
// collected, so callers never hold *Event directly — they hold a Ref,
// which carries the generation stamp that makes use-after-recycle safe.
type Event struct {
	at  Time
	seq uint64 // FIFO tie-breaker for equal timestamps

	// Exactly one of fn/afn is set. afn carries an explicit argument so
	// hot-path callers can schedule without allocating a closure per
	// event (a func value plus a pointer boxed in an interface is
	// allocation-free; a capturing closure is not).
	fn  func()
	afn func(any)
	arg any

	dead  bool   // set via Ref.Cancel; popped dead events are recycled
	gen   uint32 // incremented on every recycle; Refs must match to act
	index int    // position in the heap, maintained by eventHeap
}

// Ref is a generation-checked handle to a scheduled event. The zero Ref
// is inert: Cancel is a no-op and Active reports false. A Ref outlives
// its event harmlessly — once the event fires or its cancelled slot is
// recycled, the generation stamp no longer matches and every method
// treats the Ref as expired.
type Ref struct {
	e   *Event
	gen uint32
}

// Active reports whether the event is still pending: scheduled, not
// fired, not cancelled.
func (r Ref) Active() bool { return r.e != nil && r.e.gen == r.gen && !r.e.dead }

// Cancel marks the event so it will not fire. Cancelling an expired Ref
// (fired, recycled, or zero) is a no-op — the generation check guarantees
// a stale handle can never kill an unrelated recycled event. Cancellation
// is lazy: the entry stays in the heap and is recycled when popped.
//
//wlanvet:hotpath
func (r Ref) Cancel() {
	if r.e != nil && r.e.gen == r.gen {
		r.e.dead = true
	}
}

// Cancelled reports whether the event was cancelled and its heap slot has
// not yet been collected. Expired Refs report false.
func (r Ref) Cancelled() bool { return r.e != nil && r.e.gen == r.gen && r.e.dead }

// At returns the instant the event is scheduled for, or 0 if the Ref has
// expired. Callers that need the distinction should check Active first.
func (r Ref) At() Time {
	if r.e != nil && r.e.gen == r.gen {
		return r.e.at
	}
	return 0
}

// eventHeap is a four-ary min-heap ordered by (at, seq). Four-ary halves
// the tree depth of a binary heap, so sift-down touches half as many
// cache lines per pop; the extra sibling comparisons are cheap because
// all four children share at most two cache lines. It implements the
// container/heap operations directly to avoid interface boxing on the
// hot path.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

//wlanvet:hotpath
func (h *eventHeap) push(e *Event) {
	e.index = len(h.items)
	//wlanvet:allow amortised: the backing array grows to the pending-event high-water mark, then every push reuses capacity
	h.items = append(h.items, e)
	h.up(e.index)
}

//wlanvet:hotpath
func (h *eventHeap) pop() *Event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	h.swap(0, n-1)
	h.items[n-1] = nil // drop the reference; the scheduler pools the event
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h *eventHeap) peek() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

//wlanvet:hotpath
func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) >> 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

//wlanvet:hotpath
func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		first := i<<2 + 1
		if first >= n {
			return
		}
		smallest := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
