package sim

import "fmt"

// Scheduler is the discrete-event loop: a clock plus a priority queue of
// events. The zero value is ready to use with the clock at time zero.
//
// The scheduler recycles Event objects through an internal free list, so
// steady-state scheduling performs no heap allocations: After/At reuse a
// pooled event, and Step returns it to the pool once the callback has been
// dispatched. Callers interact with events only through generation-checked
// Refs (see Ref), which makes holding a handle past the event's lifetime
// safe. See DESIGN.md for the pooling and generation scheme.
//
// Scheduler is not safe for concurrent use; a simulation is a single
// logical thread of control. Run simulations in parallel by creating one
// Scheduler per goroutine.
type Scheduler struct {
	now  Time
	heap eventHeap
	// next is a one-event fast slot holding the global minimum pending
	// event (by (at, seq)), or nil. Discrete-event hot loops schedule
	// the imminent event constantly — a frame's completion, the SIFS
	// chain to its ACK — and the slot absorbs those push-then-pop-next
	// cycles without touching the heap. The invariant "next precedes
	// every heap entry" is maintained on every enqueue, so dispatch
	// order is exactly the heap-only order.
	next   *Event
	seq    uint64
	fired  uint64
	halted bool
	free   []*Event // recycled events, LIFO for cache warmth

	// afterDispatch, when set, runs after every dispatched callback —
	// the hook lazy-wakeup engines use to re-establish their candidate
	// minimum exactly once per event, however many state transitions
	// the callback performed (see eventsim's rearm).
	afterDispatch func()
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events in the queue, including lazily
// cancelled ones that have not yet been discarded.
func (s *Scheduler) Pending() int {
	n := s.heap.Len()
	if s.next != nil {
		n++
	}
	return n
}

// before reports whether a fires before b under the (at, seq) order.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// enqueue inserts a pending event, keeping the fast slot the global
// minimum.
//
//wlanvet:hotpath
func (s *Scheduler) enqueue(e *Event) {
	switch {
	case s.next == nil:
		if top := s.heap.peek(); top == nil || before(e, top) {
			s.next = e
			return
		}
	case before(e, s.next):
		s.heap.push(s.next)
		s.next = e
		return
	}
	s.heap.push(e)
}

// dequeue removes and returns the earliest pending event, or nil.
//
//wlanvet:hotpath
func (s *Scheduler) dequeue() *Event {
	if e := s.next; e != nil {
		s.next = nil
		return e
	}
	return s.heap.pop()
}

// peekMin returns the earliest pending event without removing it.
//
//wlanvet:hotpath
func (s *Scheduler) peekMin() *Event {
	if s.next != nil {
		return s.next
	}
	return s.heap.peek()
}

// peekLive returns the earliest live pending event, discarding
// cancelled ones from the front of the queue. RunUntil must bound on a
// live event: a cancelled minimum inside the window followed by a live
// event beyond it would otherwise make Step fire past the bound.
//
//wlanvet:hotpath
func (s *Scheduler) peekLive() *Event {
	for {
		e := s.peekMin()
		if e == nil || !e.dead {
			return e
		}
		s.release(s.dequeue())
	}
}

// PoolSize returns the number of recycled events currently in the free
// list. Exposed for allocation-regression tests.
func (s *Scheduler) PoolSize() int { return len(s.free) }

// alloc takes an event from the free list, falling back to the heap
// only while the pool is still warming up.
//
//wlanvet:hotpath
func (s *Scheduler) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &Event{}
}

// release recycles a popped event. Bumping the generation expires every
// outstanding Ref before the event can be reused.
//
//wlanvet:hotpath
func (s *Scheduler) release(e *Event) {
	e.gen++
	e.fn, e.afn, e.arg = nil, nil, nil
	e.dead = false
	//wlanvet:allow amortised: the free list grows to the live-event high-water mark during warm-up, then every append reuses capacity
	s.free = append(s.free, e)
}

// schedule is the common entry behind At/AtArg: pool an event, stamp
// it, enqueue it.
//
//wlanvet:hotpath
func (s *Scheduler) schedule(t Time, fn func(), afn func(any), arg any) Ref {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.at, e.seq = t, s.seq
	e.fn, e.afn, e.arg = fn, afn, arg
	s.seq++
	s.enqueue(e)
	return Ref{e: e, gen: e.gen}
}

// At schedules fn to run at instant t. Scheduling in the past panics: a
// causality violation is always a programming error in the caller.
//
//wlanvet:hotpath
func (s *Scheduler) At(t Time, fn func()) Ref {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
//
//wlanvet:hotpath
func (s *Scheduler) After(d Duration, fn func()) Ref {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// AtArg schedules fn(arg) to run at instant t. Unlike At, this form is
// allocation-free when fn is a pre-bound function value and arg is a
// pointer: neither boxes a fresh closure. Hot paths (per-frame, per-slot
// timers) should prefer it.
//
//wlanvet:hotpath
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) Ref {
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time.
//
//wlanvet:hotpath
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) Ref {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.AtArg(s.now.Add(d), fn, arg)
}

// TakeSeq consumes and returns the next event sequence number without
// scheduling anything. It exists for lazy-wakeup schemes (see
// eventsim's contention arming): a caller can reserve the FIFO
// tie-break position an event *would* have received if scheduled now,
// defer the actual heap insertion, and later submit the event through
// AtArgSeq with its reserved position — so replacing eager scheduling
// with lazy scheduling cannot reorder same-instant ties.
//
//wlanvet:hotpath
func (s *Scheduler) TakeSeq() uint64 {
	seq := s.seq
	s.seq++
	return seq
}

// AtArgSeq schedules fn(arg) at instant t with an explicit sequence
// number previously reserved via TakeSeq. Same-instant events fire in
// ascending sequence order, so the event behaves exactly as if it had
// been scheduled at reservation time. The caller must not submit the
// same reservation to more than one live event.
//
//wlanvet:hotpath
func (s *Scheduler) AtArgSeq(t Time, seq uint64, fn func(any), arg any) Ref {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.at, e.seq = t, seq
	e.fn, e.afn, e.arg = nil, fn, arg
	s.enqueue(e)
	return Ref{e: e, gen: e.gen}
}

// Reset returns the scheduler to its initial state — clock at zero,
// empty queue, sequence and fired counters at zero — while keeping the
// event free list, so a reused scheduler schedules without re-warming
// its pool. Pending events are recycled; their generation bump expires
// any outstanding Refs. A reset scheduler is indistinguishable from a
// fresh one to every caller except PoolSize.
func (s *Scheduler) Reset() {
	for {
		e := s.dequeue()
		if e == nil {
			break
		}
		s.release(e)
	}
	s.now, s.seq, s.fired, s.halted = 0, 0, 0, false
}

// Halt stops the event loop after the currently executing event returns.
// Remaining events stay queued; Run and RunUntil may be called again to
// resume.
func (s *Scheduler) Halt() { s.halted = true }

// SetAfterDispatch installs fn to run after every dispatched event
// callback (nil uninstalls). The hook may schedule events; it must not
// call Step/Run itself. Reset leaves the hook installed — it is
// configuration, not run state.
func (s *Scheduler) SetAfterDispatch(fn func()) { s.afterDispatch = fn }

// Step executes the single next live event and returns true, or returns
// false when the queue holds no live events.
//
//wlanvet:hotpath
func (s *Scheduler) Step() bool {
	for {
		e := s.dequeue()
		if e == nil {
			return false
		}
		if e.dead {
			s.release(e)
			continue
		}
		s.now = e.at
		s.fired++
		// Copy the dispatch fields and recycle before invoking, so the
		// callback's own scheduling can reuse this very event.
		fn, afn, arg := e.fn, e.afn, e.arg
		s.release(e)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		if s.afterDispatch != nil {
			s.afterDispatch()
		}
		return true
	}
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ end, then advances the clock
// to exactly end. Events scheduled after end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		e := s.peekLive()
		if e == nil || e.at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}
