package sim

import "fmt"

// Scheduler is the discrete-event loop: a clock plus a priority queue of
// events. The zero value is ready to use with the clock at time zero.
//
// The scheduler recycles Event objects through an internal free list, so
// steady-state scheduling performs no heap allocations: After/At reuse a
// pooled event, and Step returns it to the pool once the callback has been
// dispatched. Callers interact with events only through generation-checked
// Refs (see Ref), which makes holding a handle past the event's lifetime
// safe. See DESIGN.md for the pooling and generation scheme.
//
// Scheduler is not safe for concurrent use; a simulation is a single
// logical thread of control. Run simulations in parallel by creating one
// Scheduler per goroutine.
type Scheduler struct {
	now    Time
	heap   eventHeap
	seq    uint64
	fired  uint64
	halted bool
	free   []*Event // recycled events, LIFO for cache warmth
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events in the queue, including lazily
// cancelled ones that have not yet been discarded.
func (s *Scheduler) Pending() int { return s.heap.Len() }

// PoolSize returns the number of recycled events currently in the free
// list. Exposed for allocation-regression tests.
func (s *Scheduler) PoolSize() int { return len(s.free) }

func (s *Scheduler) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &Event{}
}

// release recycles a popped event. Bumping the generation expires every
// outstanding Ref before the event can be reused.
func (s *Scheduler) release(e *Event) {
	e.gen++
	e.fn, e.afn, e.arg = nil, nil, nil
	e.dead = false
	s.free = append(s.free, e)
}

func (s *Scheduler) schedule(t Time, fn func(), afn func(any), arg any) Ref {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.at, e.seq = t, s.seq
	e.fn, e.afn, e.arg = fn, afn, arg
	s.seq++
	s.heap.push(e)
	return Ref{e: e, gen: e.gen}
}

// At schedules fn to run at instant t. Scheduling in the past panics: a
// causality violation is always a programming error in the caller.
func (s *Scheduler) At(t Time, fn func()) Ref {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) Ref {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// AtArg schedules fn(arg) to run at instant t. Unlike At, this form is
// allocation-free when fn is a pre-bound function value and arg is a
// pointer: neither boxes a fresh closure. Hot paths (per-frame, per-slot
// timers) should prefer it.
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) Ref {
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) Ref {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.AtArg(s.now.Add(d), fn, arg)
}

// Halt stops the event loop after the currently executing event returns.
// Remaining events stay queued; Run and RunUntil may be called again to
// resume.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single next live event and returns true, or returns
// false when the queue holds no live events.
func (s *Scheduler) Step() bool {
	for {
		e := s.heap.pop()
		if e == nil {
			return false
		}
		if e.dead {
			s.release(e)
			continue
		}
		s.now = e.at
		s.fired++
		// Copy the dispatch fields and recycle before invoking, so the
		// callback's own scheduling can reuse this very event.
		fn, afn, arg := e.fn, e.afn, e.arg
		s.release(e)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ end, then advances the clock
// to exactly end. Events scheduled after end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		e := s.heap.peek()
		if e == nil || e.at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}
