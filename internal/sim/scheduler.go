package sim

import "fmt"

// Scheduler is the discrete-event loop: a clock plus a priority queue of
// events. The zero value is ready to use with the clock at time zero.
//
// Scheduler is not safe for concurrent use; a simulation is a single
// logical thread of control. Run simulations in parallel by creating one
// Scheduler per goroutine.
type Scheduler struct {
	now    Time
	heap   eventHeap
	seq    uint64
	fired  uint64
	halted bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events in the queue, including lazily
// cancelled ones that have not yet been discarded.
func (s *Scheduler) Pending() int { return s.heap.Len() }

// At schedules fn to run at instant t. Scheduling in the past panics: a
// causality violation is always a programming error in the caller.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	s.heap.push(e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Halt stops the event loop after the currently executing event returns.
// Remaining events stay queued; Run and RunUntil may be called again to
// resume.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single next live event and returns true, or returns
// false when the queue holds no live events.
func (s *Scheduler) Step() bool {
	for {
		e := s.heap.pop()
		if e == nil {
			return false
		}
		if e.dead {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with timestamps ≤ end, then advances the clock
// to exactly end. Events scheduled after end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		e := s.heap.peek()
		if e == nil || e.at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}
