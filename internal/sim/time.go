// Package sim provides a small discrete-event simulation kernel used by the
// WLAN simulators in this repository.
//
// The kernel is deliberately minimal: a monotonic nanosecond clock, a binary
// heap of timestamped events with deterministic FIFO ordering for equal
// timestamps, lazy cancellation through event handles, and reproducible
// random-variate helpers. Everything above it (MAC state machines, channel
// models) lives in the higher-level packages.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated point in time, measured in nanoseconds from the start
// of the run. It is a distinct type from time.Duration to keep "instant" and
// "duration" arithmetic honest at compile time.
type Time int64

// Duration is a simulated span of time in nanoseconds.
type Duration = time.Duration

// Common durations used by the WLAN timing model.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant s.
func (t Time) Sub(s Time) Duration { return Duration(t - s) }

// Before reports whether t precedes s.
func (t Time) Before(s Time) bool { return t < s }

// After reports whether t follows s.
func (t Time) After(s Time) bool { return t > s }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the instant with microsecond precision, e.g. "1.250000s".
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}
