package sim

import "testing"

// The scheduler's contract is zero steady-state allocations: once the
// event pool has warmed up, After/AtArg reuse recycled events and Step
// returns them. These guardrails pin that property so a regression shows
// up as a test failure, not a slow creep in GC pressure.

func TestSchedulerAfterStepZeroAlloc(t *testing.T) {
	s := NewScheduler()
	var tick func()
	tick = func() { s.After(100, tick) }
	for i := 0; i < 64; i++ {
		s.After(Duration(i+1), tick)
	}
	// Warm up: grow the heap slice, the free list, and the pool.
	for i := 0; i < 1024; i++ {
		s.Step()
	}
	if avg := testing.AllocsPerRun(1000, func() { s.Step() }); avg != 0 {
		t.Errorf("After/Step steady state allocates %.2f allocs/op, want 0", avg)
	}
}

func TestSchedulerAfterArgStepZeroAlloc(t *testing.T) {
	s := NewScheduler()
	type payload struct{ n int }
	arg := &payload{}
	var tick func(any)
	tick = func(a any) {
		a.(*payload).n++
		s.AfterArg(100, tick, a)
	}
	for i := 0; i < 64; i++ {
		s.AfterArg(Duration(i+1), tick, arg)
	}
	for i := 0; i < 1024; i++ {
		s.Step()
	}
	if avg := testing.AllocsPerRun(1000, func() { s.Step() }); avg != 0 {
		t.Errorf("AfterArg/Step steady state allocates %.2f allocs/op, want 0", avg)
	}
	if arg.n == 0 {
		t.Fatal("callback never ran")
	}
}

func TestSchedulerCancelZeroAlloc(t *testing.T) {
	s := NewScheduler()
	noop := func() {}
	for i := 0; i < 256; i++ {
		s.After(Duration(i+1), noop)
	}
	for s.Step() {
	}
	if avg := testing.AllocsPerRun(1000, func() {
		r := s.After(10, noop)
		r.Cancel()
		s.Step()
	}); avg != 0 {
		t.Errorf("schedule+cancel+collect allocates %.2f allocs/op, want 0", avg)
	}
}
