package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometricMean(t *testing.T) {
	// E[Geometric(p)] = (1-p)/p. Check within sampling tolerance.
	for _, p := range []float64{0.05, 0.1, 0.3, 0.5, 0.9} {
		g := NewRNG(42)
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(g.Geometric(p))
		}
		mean := sum / n
		want := (1 - p) / p
		se := math.Sqrt((1-p)/(p*p)) / math.Sqrt(n) // std error of the mean
		if math.Abs(mean-want) > 6*se+1e-9 {
			t.Errorf("p=%v: mean %v, want %v ± %v", p, mean, want, 6*se)
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	g := NewRNG(1)
	if got := g.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
	if got := g.Geometric(1.5); got != 0 {
		t.Errorf("Geometric(1.5) = %d, want 0", got)
	}
	if got := g.Geometric(0); got != math.MaxInt32 {
		t.Errorf("Geometric(0) = %d, want MaxInt32", got)
	}
	if got := g.Geometric(-0.1); got != math.MaxInt32 {
		t.Errorf("Geometric(-0.1) = %d, want MaxInt32", got)
	}
}

func TestGeometricZeroProbabilityOfNegative(t *testing.T) {
	prop := func(seed int64, praw uint8) bool {
		p := 0.01 + 0.98*float64(praw)/255
		g := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if g.Geometric(p) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulli(t *testing.T) {
	g := NewRNG(5)
	if g.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !g.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) frequency %v", frac)
	}
}

func TestUniformWindow(t *testing.T) {
	g := NewRNG(9)
	if got := g.UniformWindow(1); got != 0 {
		t.Errorf("UniformWindow(1) = %d, want 0", got)
	}
	if got := g.UniformWindow(0); got != 0 {
		t.Errorf("UniformWindow(0) = %d, want 0", got)
	}
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := g.UniformWindow(8)
		if v < 0 || v > 7 {
			t.Fatalf("UniformWindow(8) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("UniformWindow(8) hit %d distinct values, want 8", len(seen))
	}
}

func TestRNGReproducible(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(77)
	a := g.Split(1)
	g2 := NewRNG(77)
	b := g2.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 16 {
		t.Errorf("streams for different indices look correlated: %d/64 equal draws", same)
	}
}

// Batching must be invisible: a FloatBatch delivers the exact uniform
// stream of the underlying generator, just prefetched in blocks.
func TestFloatBatchDeliversRNGStream(t *testing.T) {
	direct := NewRNG(99)
	batched := NewRNG(99)
	var b FloatBatch
	b.Bind(batched)
	for i := 0; i < 3*floatBatchSize+7; i++ {
		if got, want := b.Next(), direct.Float64(); got != want {
			t.Fatalf("draw %d: batched %v ≠ direct %v", i, got, want)
		}
	}
}

// Geometric draws through a batch must be bit-identical to unbatched
// Geometric calls — the property that lets PPersistent batch without
// perturbing simulation results.
func TestGeometricFromUniformMatchesGeometric(t *testing.T) {
	for _, p := range []float64{0.001, 0.02, 0.3, 0.999} {
		direct := NewRNG(5)
		batched := NewRNG(5)
		var b FloatBatch
		b.Bind(batched)
		for i := 0; i < 2*floatBatchSize; i++ {
			if got, want := GeometricFromUniform(b.Next(), p), direct.Geometric(p); got != want {
				t.Fatalf("p=%v draw %d: batched %d ≠ direct %d", p, i, got, want)
			}
		}
	}
}

func TestGeometricFromUniformEdgeCases(t *testing.T) {
	if got := GeometricFromUniform(0.5, 1); got != 0 {
		t.Errorf("p=1: got %d, want 0", got)
	}
	if got := GeometricFromUniform(0.5, 1.5); got != 0 {
		t.Errorf("p>1: got %d, want 0", got)
	}
	if got := GeometricFromUniform(0.5, 0); got != 1<<31-1 {
		t.Errorf("p=0: got %d, want MaxInt32", got)
	}
	if got := GeometricFromUniform(0, 0.5); got != 0 {
		t.Errorf("u=0: got %d, want 0", got)
	}
}

// Rebinding a batch to a different generator must discard the stale
// prefetch; rebinding the same generator must keep it.
func TestFloatBatchRebind(t *testing.T) {
	var b FloatBatch
	first := NewRNG(1)
	b.Bind(first)
	b.Next()
	b.Bind(first) // no-op
	if b.i == 0 && b.n == 0 {
		t.Fatal("rebinding the same RNG discarded the prefetch")
	}
	second := NewRNG(2)
	b.Bind(second)
	want := NewRNG(2)
	if got := b.Next(); got != want.Float64() {
		t.Errorf("after rebind, first draw %v does not start second's stream", got)
	}
}
