package sim

import (
	"math/rand"
	"testing"
)

// The fast-seeding source must be draw-for-draw identical to the
// stdlib generator: every committed golden in the repository encodes
// math/rand streams. Cover the raw source, the distribution methods the
// MAC layer consumes, and reseeding (the arena path).
func TestLFGMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 89482311, 1 << 31, -(1 << 40), 7_777_777_777}
	for _, seed := range seeds {
		std := rand.NewSource(seed).(rand.Source64)
		fast := &lfgSource{}
		fast.Seed(seed)
		for i := 0; i < 2000; i++ {
			if a, b := std.Uint64(), fast.Uint64(); a != b {
				t.Fatalf("seed %d draw %d: stdlib %d, lfg %d", seed, i, a, b)
			}
		}
	}
}

func TestLFGMatchesStdlibDistributions(t *testing.T) {
	for _, seed := range []int64{3, 99, -5} {
		std := rand.New(rand.NewSource(seed))
		fast := NewRNG(seed)
		for i := 0; i < 1000; i++ {
			switch i % 5 {
			case 0:
				if a, b := std.Float64(), fast.Float64(); a != b {
					t.Fatalf("seed %d Float64 draw %d: %v vs %v", seed, i, a, b)
				}
			case 1:
				if a, b := std.Intn(1024), fast.Intn(1024); a != b {
					t.Fatalf("seed %d Intn draw %d: %v vs %v", seed, i, a, b)
				}
			case 2:
				if a, b := std.ExpFloat64(), fast.Exp(); a != b {
					t.Fatalf("seed %d Exp draw %d: %v vs %v", seed, i, a, b)
				}
			case 3:
				if a, b := std.NormFloat64(), fast.NormFloat64(); a != b {
					t.Fatalf("seed %d Norm draw %d: %v vs %v", seed, i, a, b)
				}
			case 4:
				if a, b := std.Int63(), fast.Int63(); a != b {
					t.Fatalf("seed %d Int63 draw %d: %v vs %v", seed, i, a, b)
				}
			}
		}
	}
}

// Reseeding must reproduce the fresh-construction stream exactly — the
// arena-reuse contract — including when the generator is mid-stream.
func TestLFGReseedMatchesFresh(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 123; i++ {
		g.Float64() // advance mid-stream
	}
	g.Reseed(77)
	fresh := NewRNG(77)
	for i := 0; i < 2000; i++ {
		if a, b := g.Float64(), fresh.Float64(); a != b {
			t.Fatalf("draw %d after reseed: %v vs %v", i, a, b)
		}
	}
}

// BenchmarkRNGSeed contrasts the stdlib seeding path with the fast
// Mersenne-fold warm-up — the per-replication arena cost.
func BenchmarkRNGSeed(b *testing.B) {
	b.Run("stdlib", func(b *testing.B) {
		src := rand.NewSource(1)
		for i := 0; i < b.N; i++ {
			src.Seed(int64(i))
		}
	})
	b.Run("lfg", func(b *testing.B) {
		src := &lfgSource{}
		for i := 0; i < b.N; i++ {
			src.Seed(int64(i))
		}
	})
}
