package model

import (
	"fmt"
	"math"
)

// Weights is the per-station weight vector W of the weighted-fairness
// formulation. Unit weights reduce the problem to plain throughput
// maximisation.
type Weights []float64

// UnitWeights returns a weight vector of n ones.
func UnitWeights(n int) Weights {
	w := make(Weights, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Validate reports an error if any weight is non-positive.
func (w Weights) Validate() error {
	if len(w) == 0 {
		return fmt.Errorf("model: empty weight vector")
	}
	for i, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: weight[%d] = %v must be positive and finite", i, v)
		}
	}
	return nil
}

// Sum returns Σ w_i.
func (w Weights) Sum() float64 {
	s := 0.0
	for _, v := range w {
		s += v
	}
	return s
}

// AttemptProbability maps the common control variable p to station t's
// attempt probability per Lemma 1: p_t = w·p / (1 + (w−1)·p). For w = 1
// this is the identity; larger weights yield proportionally larger
// attempt rates (and hence throughput shares).
func AttemptProbability(p, weight float64) float64 {
	return weight * p / (1 + (weight-1)*p)
}

// PPersistent evaluates the p-persistent CSMA throughput model of
// Section III for a fixed PHY.
type PPersistent struct {
	PHY PHY
}

// slotProbabilities returns PI = Π(1−p_i) and PT = Σ p_i/(1−p_i) for the
// given per-station attempt probabilities.
func slotProbabilities(attempt []float64) (pi, pt float64) {
	pi = 1.0
	for _, p := range attempt {
		pi *= 1 - p
	}
	for _, p := range attempt {
		pt += p / (1 - p)
	}
	return pi, pt
}

// StationThroughput returns S_t(p), Eq. (2): station t's throughput in
// bits/second when the per-station attempt probabilities are attempt.
func (m PPersistent) StationThroughput(attempt []float64, t int) float64 {
	if t < 0 || t >= len(attempt) {
		panic(fmt.Sprintf("model: station %d out of range", t))
	}
	pi, pt := slotProbabilities(attempt)
	denom := m.slotDenominator(pi, pt)
	if denom <= 0 {
		return 0
	}
	ep := float64(m.PHY.Payload)
	return attempt[t] / (1 - attempt[t]) * ep * pi / denom
}

// SystemThroughputAt returns S(p) = Σ_t S_t(p) for arbitrary per-station
// attempt probabilities.
func (m PPersistent) SystemThroughputAt(attempt []float64) float64 {
	pi, pt := slotProbabilities(attempt)
	denom := m.slotDenominator(pi, pt)
	if denom <= 0 {
		return 0
	}
	ep := float64(m.PHY.Payload)
	return ep * pt * pi / denom
}

// slotDenominator is the expected slot duration in seconds:
// PI·σ + PT·PI·(Ts−Tc) + (1−PI)·Tc  (the denominator of Eqs. (2)–(3)).
func (m PPersistent) slotDenominator(pi, pt float64) float64 {
	sigma := m.PHY.Slot.Seconds()
	ts := m.PHY.Ts().Seconds()
	tc := m.PHY.Tc().Seconds()
	return pi*sigma + pt*pi*(ts-tc) + (1-pi)*tc
}

// SystemThroughput returns S(p, W), Eq. (3): the system throughput when
// every station t uses p_t = AttemptProbability(p, W[t]).
func (m PPersistent) SystemThroughput(p float64, w Weights) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	attempt := make([]float64, len(w))
	for i, wi := range w {
		attempt[i] = AttemptProbability(p, wi)
	}
	return m.SystemThroughputAt(attempt)
}

// F evaluates f(p, W) from the proof of Theorem 2. f shares the sign of
// ∂S/∂p: it is strictly decreasing in p with f(0,W) = 1 > 0 and
// f(1,W) = −(N−1)·T*_c < 0, so its unique root on (0,1) is the optimal
// control value p*.
//
//	f(p,W) = T*_c · (1 − Σ_i p_i − PI) + PI
func (m PPersistent) F(p float64, w Weights) float64 {
	tcStar := m.PHY.TcSlots()
	sum := 0.0
	pi := 1.0
	for _, wi := range w {
		pt := AttemptProbability(p, wi)
		sum += pt
		pi *= 1 - pt
	}
	return tcStar*(1-sum-pi) + pi
}

// OptimalP returns p*, the root of f(p, W) on (0, 1), found by bisection.
// By Theorem 2 the root exists and is unique for any valid weight vector.
func (m PPersistent) OptimalP(w Weights) float64 {
	lo, hi := 1e-9, 1-1e-9
	flo := m.F(lo, w)
	fhi := m.F(hi, w)
	if flo < 0 {
		return lo // degenerate: maximum at the left edge
	}
	if fhi > 0 {
		return hi
	}
	for i := 0; i < 200 && hi-lo > 1e-14; i++ {
		mid := (lo + hi) / 2
		if m.F(mid, w) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ApproxOptimalP returns Bianchi's closed-form approximation of Eq. (8),
// p* ≈ 1/(N·sqrt(T*_c/2)), valid for unit weights.
func (m PPersistent) ApproxOptimalP(n int) float64 {
	return 1 / (float64(n) * math.Sqrt(m.PHY.TcSlots()/2))
}

// MaxThroughput returns S(p*, W), the optimum of Eq. (4).
func (m PPersistent) MaxThroughput(w Weights) float64 {
	return m.SystemThroughput(m.OptimalP(w), w)
}

// IdleSlotsPerTransmission returns E[idle slots between consecutive busy
// slots] = PI/(1−PI) when every station uses the mapped attempt
// probabilities. IdleSense drives this statistic to a fixed target; the
// paper's Table III shows the optimum value varies with the hidden-node
// configuration, which is why a fixed target fails.
func (m PPersistent) IdleSlotsPerTransmission(p float64, w Weights) float64 {
	pi := 1.0
	for _, wi := range w {
		pi *= 1 - AttemptProbability(p, wi)
	}
	if pi >= 1 {
		return math.Inf(1)
	}
	return pi / (1 - pi)
}
