package model

import (
	"math"
	"testing"
	"testing/quick"
)

func paperModel() PPersistent { return PPersistent{PHY: PaperPHY()} }

func TestLemma1WeightedThroughputRatio(t *testing.T) {
	// Lemma 1: p_j = w·p_i/(1+(w−1)p_i) ⇒ S_j = w·S_i, independent of the
	// other stations' attempt probabilities.
	m := paperModel()
	attempt := []float64{0.02, 0.05, 0.01, 0.03}
	for _, w := range []float64{1, 2, 3, 5.5} {
		a := append([]float64(nil), attempt...)
		a[1] = AttemptProbability(a[0], w) // station 1 uses weight-w mapping of station 0's p
		s0 := m.StationThroughput(a, 0)
		s1 := m.StationThroughput(a, 1)
		if s0 <= 0 {
			t.Fatalf("w=%v: S_0 = %v, want positive", w, s0)
		}
		if ratio := s1 / s0; math.Abs(ratio-w) > 1e-9 {
			t.Errorf("w=%v: throughput ratio %v, want %v", w, ratio, w)
		}
	}
}

func TestLemma1RatioIndependentOfOthers(t *testing.T) {
	prop := func(seed uint8) bool {
		m := paperModel()
		p := 0.01 + float64(seed%40)/1000
		w := 1 + float64(seed%5)
		// Two environments with very different third-party attempt rates.
		a1 := []float64{p, AttemptProbability(p, w), 0.001}
		a2 := []float64{p, AttemptProbability(p, w), 0.2}
		r1 := m.StationThroughput(a1, 1) / m.StationThroughput(a1, 0)
		r2 := m.StationThroughput(a2, 1) / m.StationThroughput(a2, 0)
		return math.Abs(r1-w) < 1e-9 && math.Abs(r2-w) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAttemptProbabilityMapping(t *testing.T) {
	if got := AttemptProbability(0.3, 1); got != 0.3 {
		t.Errorf("weight 1 must be identity, got %v", got)
	}
	if got := AttemptProbability(0, 5); got != 0 {
		t.Errorf("p=0 must map to 0, got %v", got)
	}
	if got := AttemptProbability(1, 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("p=1 must map to 1, got %v", got)
	}
	// Monotone increasing in both p and w.
	if AttemptProbability(0.2, 2) <= AttemptProbability(0.1, 2) {
		t.Error("mapping not increasing in p")
	}
	if AttemptProbability(0.2, 3) <= AttemptProbability(0.2, 2) {
		t.Error("mapping not increasing in w")
	}
}

func TestSystemThroughputIsSumOfStations(t *testing.T) {
	m := paperModel()
	attempt := []float64{0.02, 0.03, 0.015, 0.05, 0.01}
	sum := 0.0
	for i := range attempt {
		sum += m.StationThroughput(attempt, i)
	}
	if got := m.SystemThroughputAt(attempt); math.Abs(got-sum)/sum > 1e-9 {
		t.Errorf("SystemThroughputAt = %v, Σ stations = %v", got, sum)
	}
}

func TestTheorem2QuasiConcavity(t *testing.T) {
	// f(p,W) must be strictly decreasing with a single sign change, and
	// S(p,W) must be unimodal: increasing before p*, decreasing after.
	m := paperModel()
	for _, w := range []Weights{UnitWeights(10), UnitWeights(40), {1, 1, 2, 2, 3, 3}} {
		pstar := m.OptimalP(w)
		if pstar <= 0 || pstar >= 1 {
			t.Fatalf("p* = %v out of (0,1)", pstar)
		}
		if f := m.F(pstar, w); math.Abs(f) > 1e-6 {
			t.Errorf("f(p*) = %v, want ≈ 0", f)
		}
		// f decreasing.
		prev := math.Inf(1)
		for p := 0.001; p < 0.9; p += 0.004 {
			f := m.F(p, w)
			if f >= prev {
				t.Fatalf("f not strictly decreasing at p=%v", p)
			}
			prev = f
		}
		// S unimodal around p*.
		sStar := m.SystemThroughput(pstar, w)
		for _, p := range []float64{pstar / 4, pstar / 2, pstar * 2, pstar * 4} {
			if p >= 1 {
				continue
			}
			if s := m.SystemThroughput(p, w); s >= sStar {
				t.Errorf("S(%v) = %v ≥ S(p*) = %v", p, s, sStar)
			}
		}
		grid := []float64{}
		for p := pstar / 8; p < math.Min(0.5, pstar*8); p *= 1.2 {
			grid = append(grid, p)
		}
		rising := true
		for i := 1; i < len(grid); i++ {
			s0 := m.SystemThroughput(grid[i-1], w)
			s1 := m.SystemThroughput(grid[i], w)
			if rising && s1 < s0 {
				rising = false
			} else if !rising && s1 > s0+1e-6 {
				t.Fatalf("S(p,W) is not unimodal: rises again at p=%v", grid[i])
			}
		}
	}
}

func TestFBoundaryValues(t *testing.T) {
	// f(0,W) = 1 and f(1,W) = −(N−1)·T*_c (Theorem 2's proof).
	m := paperModel()
	w := UnitWeights(10)
	if got := m.F(0, w); math.Abs(got-1) > 1e-9 {
		t.Errorf("f(0) = %v, want 1", got)
	}
	want := -float64(len(w)-1) * m.PHY.TcSlots()
	if got := m.F(1, w); math.Abs(got-want) > 1e-6 {
		t.Errorf("f(1) = %v, want %v", got, want)
	}
}

func TestEq8Approximation(t *testing.T) {
	// Bianchi's p* ≈ 1/(N·sqrt(T*_c/2)) should be within a few percent of
	// the exact root for moderate N with unit weights.
	m := paperModel()
	for _, n := range []int{10, 20, 40, 60} {
		exact := m.OptimalP(UnitWeights(n))
		approx := m.ApproxOptimalP(n)
		if rel := math.Abs(exact-approx) / exact; rel > 0.12 {
			t.Errorf("N=%d: exact p*=%v approx=%v rel err %v > 12%%", n, exact, approx, rel)
		}
	}
}

func TestMaxThroughputMagnitude(t *testing.T) {
	// The paper's plots peak around 22 Mbps; with our slightly lighter
	// accounting of ns-3's PHY overheads the optimum lands near 24.5 Mbps.
	// The acceptance band checks the magnitude, not the exact level (see
	// EXPERIMENTS.md).
	m := paperModel()
	for _, n := range []int{10, 20, 40, 60} {
		s := m.MaxThroughput(UnitWeights(n))
		if s < 21e6 || s > 27e6 {
			t.Errorf("N=%d: optimal throughput %v Mbps, want ≈ 22-25", n, s/1e6)
		}
	}
}

func TestOptimalThroughputNearlyFlatInN(t *testing.T) {
	// At the optimum, throughput barely degrades with N (Fig. 3's flat
	// wTOP/TORA curves): S*(60) within 5% of S*(10).
	m := paperModel()
	s10 := m.MaxThroughput(UnitWeights(10))
	s60 := m.MaxThroughput(UnitWeights(60))
	if (s10-s60)/s10 > 0.05 {
		t.Errorf("optimal throughput drops too much: S*(10)=%v S*(60)=%v", s10, s60)
	}
}

func TestWeightedOptimumSharesProportional(t *testing.T) {
	// At any common p, station shares must be proportional to weights
	// (Table II's normalised-throughput column).
	m := paperModel()
	w := Weights{1, 1, 1, 2, 2, 2, 3, 3, 3, 3}
	p := m.OptimalP(w)
	attempt := make([]float64, len(w))
	for i, wi := range w {
		attempt[i] = AttemptProbability(p, wi)
	}
	base := m.StationThroughput(attempt, 0)
	for i, wi := range w {
		si := m.StationThroughput(attempt, i)
		if math.Abs(si/base-wi) > 1e-9 {
			t.Errorf("station %d: normalized share %v, want %v", i, si/base, wi)
		}
	}
}

func TestIdleSlotsPerTransmission(t *testing.T) {
	m := paperModel()
	// At the optimum with unit weights, PI/(1-PI) is a small single-digit
	// number (the IdleSense observation); it must also be decreasing in p.
	w := UnitWeights(40)
	pstar := m.OptimalP(w)
	idle := m.IdleSlotsPerTransmission(pstar, w)
	if idle < 1 || idle > 10 {
		t.Errorf("idle slots per transmission at optimum = %v, want O(1)", idle)
	}
	if m.IdleSlotsPerTransmission(pstar/2, w) <= idle {
		t.Error("idle slots must increase when p decreases")
	}
	if m.IdleSlotsPerTransmission(0, w) != math.Inf(1) {
		t.Error("idle slots at p=0 must be +Inf")
	}
}

func TestWeightsValidate(t *testing.T) {
	if err := (Weights{1, 2}).Validate(); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	for _, w := range []Weights{{}, {0}, {-1}, {math.NaN()}, {math.Inf(1)}} {
		if err := w.Validate(); err == nil {
			t.Errorf("invalid weights %v accepted", w)
		}
	}
	if got := (Weights{1, 2, 3}).Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
}

func TestSystemThroughputEdges(t *testing.T) {
	m := paperModel()
	w := UnitWeights(5)
	if got := m.SystemThroughput(0, w); got != 0 {
		t.Errorf("S(0) = %v, want 0", got)
	}
	if got := m.SystemThroughput(1, w); got != 0 {
		t.Errorf("S(1) = %v, want 0", got)
	}
}

func TestStationThroughputPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range station")
		}
	}()
	paperModel().StationThroughput([]float64{0.1}, 1)
}
