// Package model implements the analytic substrate of the paper: the
// p-persistent throughput function of Eqs. (2)–(3), its quasi-concavity
// witness f(p,W) from Theorem 2, Bianchi's DCF fixed point, and the
// RandomReset attempt-probability fixed point of Eqs. (9)–(11) used in
// Theorem 3. The simulators and experiment harness consume these for
// cross-validation and for the analytic figures (Figs. 2, 12, 13).
package model

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// PHY captures the timing and framing parameters of Table I. All lengths
// are in bits, all durations in simulated time, the rate in bits/second.
type PHY struct {
	// BitRate is the common data transmission rate R (54 Mbps).
	BitRate float64
	// ControlRate is the rate used for ACK frames. 802.11a/g transmits
	// control responses at a basic rate (6 Mbps); the paper's RTS/CTS
	// discussion highlights exactly this control/data rate gap.
	ControlRate float64
	// Payload is the expected packet payload EP in bits (8000).
	Payload int
	// Header is the MAC header length LH in bits (272 for the classic
	// 34-byte 802.11 MAC header + FCS).
	Header int
	// ACKLength is the ACK frame body length LACK in bits (112).
	ACKLength int
	// Preamble is the fixed PHY preamble + PLCP header duration prefixed
	// to every frame (20 µs for OFDM).
	Preamble sim.Duration
	// Slot is the idle slot duration σ (9 µs for OFDM/20 MHz).
	Slot sim.Duration
	// SIFS is the short inter-frame space (16 µs).
	SIFS sim.Duration
	// DIFS is the distributed inter-frame space (34 µs).
	DIFS sim.Duration
}

// PaperPHY returns the parameters of Table I: 54 Mbps OFDM PHY on a 20 MHz
// channel, 8000-bit payloads, 9 µs slots, SIFS 16 µs, DIFS 34 µs, plus the
// standard OFDM PHY overheads (20 µs preamble, 6 Mbps ACKs) that the
// paper's ns-3 stack applies implicitly.
func PaperPHY() PHY {
	return PHY{
		BitRate:     54e6,
		ControlRate: 6e6,
		Payload:     8000,
		Header:      272,
		ACKLength:   112,
		Preamble:    20 * sim.Microsecond,
		Slot:        9 * sim.Microsecond,
		SIFS:        16 * sim.Microsecond,
		DIFS:        34 * sim.Microsecond,
	}
}

// PHY80211b returns the classic 802.11b DSSS parameters of Bianchi's
// 2000 analysis: 1 Mbps channel, 8184-bit payloads, 272-bit MAC header,
// 112-bit ACK, 192 µs PLCP preamble, 20/10/50 µs slot/SIFS/DIFS. Useful
// for cross-validating the fixed-point machinery against the published
// saturation-throughput numbers.
func PHY80211b() PHY {
	return PHY{
		BitRate:     1e6,
		ControlRate: 1e6,
		Payload:     8184,
		Header:      272,
		ACKLength:   112,
		Preamble:    192 * sim.Microsecond,
		Slot:        20 * sim.Microsecond,
		SIFS:        10 * sim.Microsecond,
		DIFS:        50 * sim.Microsecond,
	}
}

// Validate reports the first nonsensical parameter, if any.
func (p PHY) Validate() error {
	switch {
	case p.BitRate <= 0:
		return fmt.Errorf("model: BitRate %v must be positive", p.BitRate)
	case p.ControlRate <= 0:
		return fmt.Errorf("model: ControlRate %v must be positive", p.ControlRate)
	case p.Preamble < 0:
		return fmt.Errorf("model: Preamble %v must be non-negative", p.Preamble)
	case p.Payload <= 0:
		return fmt.Errorf("model: Payload %d must be positive", p.Payload)
	case p.Header < 0:
		return fmt.Errorf("model: Header %d must be non-negative", p.Header)
	case p.ACKLength <= 0:
		return fmt.Errorf("model: ACKLength %d must be positive", p.ACKLength)
	case p.Slot <= 0:
		return fmt.Errorf("model: Slot %v must be positive", p.Slot)
	case p.SIFS <= 0:
		return fmt.Errorf("model: SIFS %v must be positive", p.SIFS)
	case p.DIFS <= 0:
		return fmt.Errorf("model: DIFS %v must be positive", p.DIFS)
	}
	return nil
}

// TxTime returns the airtime of a frame of the given length in bits at
// rate bits/second, including the PHY preamble.
func (p PHY) TxTime(bits int, rate float64) sim.Duration {
	return p.Preamble + sim.Duration(math.Round(float64(bits)/rate*1e9))
}

// DataTxTime returns the airtime of a data frame:
// preamble + (LH + EP)/R.
func (p PHY) DataTxTime() sim.Duration { return p.TxTime(p.Header+p.Payload, p.BitRate) }

// ACKTxTime returns the airtime of an ACK frame at the control rate:
// preamble + LACK/ControlRate.
func (p PHY) ACKTxTime() sim.Duration { return p.TxTime(p.ACKLength, p.ControlRate) }

// Ts returns the duration of a successful transmission slot:
// (LH+EP)/R + SIFS + LACK/R + DIFS (Section III-A).
func (p PHY) Ts() sim.Duration {
	return p.DataTxTime() + p.SIFS + p.ACKTxTime() + p.DIFS
}

// Tc returns the duration of a collided transmission slot:
// (LH+EP)/R + DIFS (Section III-A).
func (p PHY) Tc() sim.Duration {
	return p.DataTxTime() + p.DIFS
}

// TsSlots returns T*_s = Ts/σ, the success duration in slot units.
func (p PHY) TsSlots() float64 { return float64(p.Ts()) / float64(p.Slot) }

// TcSlots returns T*_c = Tc/σ, the collision duration in slot units.
func (p PHY) TcSlots() float64 { return float64(p.Tc()) / float64(p.Slot) }

// RTS/CTS frame body lengths in bits (20-byte RTS, 14-byte CTS).
const (
	RTSLength = 160
	CTSLength = 112
)

// RTSTxTime returns the airtime of an RTS frame at the control rate.
func (p PHY) RTSTxTime() sim.Duration { return p.TxTime(RTSLength, p.ControlRate) }

// CTSTxTime returns the airtime of a CTS frame at the control rate.
func (p PHY) CTSTxTime() sim.Duration { return p.TxTime(CTSLength, p.ControlRate) }

// PIFS is the PCF inter-frame space, SIFS + one slot. It is shorter than
// DIFS, so AP-priority frames (beacons) seize the medium ahead of any
// station's backoff — which is how beacons keep flowing even when the
// contention window has collapsed into wall-to-wall collisions.
func (p PHY) PIFS() sim.Duration { return p.SIFS + p.Slot }

// ACKTimeout is how long a transmitter waits after its data frame ends
// before declaring the transmission failed. The paper (Section II) uses
// exactly DIFS: an ACK always starts SIFS < DIFS after the data frame, so
// by DIFS after the data end its absence is conclusive. This choice makes
// a synchronized collision occupy the medium for Tc = (LH+EP)/R + DIFS,
// matching Eq. (2)'s slot durations.
func (p PHY) ACKTimeout() sim.Duration { return p.DIFS }
