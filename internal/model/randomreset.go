package model

import (
	"fmt"
	"math"
)

// RandomReset evaluates the appendix model of the RandomReset(j; p0)
// exponential-backoff policy: Eqs. (9)–(11), the α_j(c) recursion of
// Lemma 4, and the τ fixed point used throughout Theorem 3.
type RandomReset struct {
	PHY     PHY
	Backoff BackoffParams
	N       int
}

// Alphas returns α_0(c) … α_m(c) via the recursion from Lemma 4:
//
//	α_m(c) = 2^m
//	α_j(c) = (1−c)·2^j + c·α_{j+1}(c)
//
// α_j(c)·CWmin/2 is (proportional to) the expected backoff slots spent per
// service cycle when resetting to stage j; Lemma 4 shows α_j ≤ α_{j+1}.
func (r RandomReset) Alphas(c float64) []float64 {
	m := r.Backoff.M
	alpha := make([]float64, m+1)
	alpha[m] = math.Pow(2, float64(m))
	for j := m - 1; j >= 0; j-- {
		alpha[j] = (1-c)*math.Pow(2, float64(j)) + c*alpha[j+1]
	}
	return alpha
}

// ResetDistribution returns the reset distribution q of RandomReset(j;p0):
// q_j = p0 and q_i = (1−p0)/(m−j) for i ∈ {j+1, …, m} (Definition 4).
func (r RandomReset) ResetDistribution(j int, p0 float64) ([]float64, error) {
	m := r.Backoff.M
	if j < 0 || j > m-1 {
		return nil, fmt.Errorf("model: reset stage j=%d outside {0..%d}", j, m-1)
	}
	if p0 < 0 || p0 > 1 {
		return nil, fmt.Errorf("model: reset probability p0=%v outside [0,1]", p0)
	}
	q := make([]float64, m+1)
	q[j] = p0
	share := (1 - p0) / float64(m-j)
	for i := j + 1; i <= m; i++ {
		q[i] = share
	}
	return q, nil
}

// AttemptGivenCollision returns τ̂_c(q) of Eq. (9): the attempt probability
// of a station using reset distribution q, conditioned on per-attempt
// collision probability c.
//
//	τ̂_c(q) = κ_0 / Σ_j q_j·α_j(c)
func (r RandomReset) AttemptGivenCollision(q []float64, c float64) float64 {
	if len(q) != r.Backoff.M+1 {
		panic(fmt.Sprintf("model: reset distribution has %d entries, want %d", len(q), r.Backoff.M+1))
	}
	alpha := r.Alphas(c)
	den := 0.0
	for j, qj := range q {
		den += qj * alpha[j]
	}
	return r.Backoff.Kappa(0) / den
}

// AttemptGivenCollisionJP returns τ_c(j; p0) of Eq. (11), the special case
// of AttemptGivenCollision for the RandomReset(j;p0) distribution.
func (r RandomReset) AttemptGivenCollisionJP(j int, p0 float64, c float64) (float64, error) {
	q, err := r.ResetDistribution(j, p0)
	if err != nil {
		return 0, err
	}
	return r.AttemptGivenCollision(q, c), nil
}

// FixedPoint solves τ = τ̂_c(q), c = 1 − (1−τ)^(N−1) (Eqs. (9)–(10)) by
// bisection. Uniqueness follows from the monotonicity argument of
// Lemma 2: τ̂ decreases in c while c increases in τ.
func (r RandomReset) FixedPoint(q []float64) (tau, c float64) {
	if r.N < 1 {
		return 0, 0
	}
	if r.N == 1 {
		return r.AttemptGivenCollision(q, 0), 0
	}
	collision := func(tau float64) float64 {
		return 1 - math.Pow(1-tau, float64(r.N-1))
	}
	g := func(tau float64) float64 {
		return tau - r.AttemptGivenCollision(q, collision(tau))
	}
	lo, hi := 1e-12, 1-1e-12
	for i := 0; i < 200 && hi-lo > 1e-15; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	tau = (lo + hi) / 2
	return tau, collision(tau)
}

// FixedPointJP solves the fixed point for RandomReset(j; p0).
func (r RandomReset) FixedPointJP(j int, p0 float64) (tau, c float64, err error) {
	q, err := r.ResetDistribution(j, p0)
	if err != nil {
		return 0, 0, err
	}
	tau, c = r.FixedPoint(q)
	return tau, c, nil
}

// Throughput returns the saturation throughput of N stations running
// RandomReset(j; p0), via the fixed-point attempt probability (the
// analytic curve of Fig. 13).
func (r RandomReset) Throughput(j int, p0 float64) (float64, error) {
	tau, _, err := r.FixedPointJP(j, p0)
	if err != nil {
		return 0, err
	}
	return HomogeneousThroughput(r.PHY, r.N, tau), nil
}

// AttemptRange returns [τ(m−1; 0), τ(0; 1)], the span of attempt
// probabilities reachable by RandomReset policies. By Lemma 6 the fixed
// point of *any* exponential-backoff reset distribution lies inside it.
func (r RandomReset) AttemptRange() (lo, hi float64) {
	tauLo, _, _ := r.FixedPointJP(r.Backoff.M-1, 0)
	tauHi, _, _ := r.FixedPointJP(0, 1)
	return tauLo, tauHi
}

// OptimalJP scans the two-parameter family and returns the (j, p0) pair
// whose fixed point maximises throughput — the target TORA-CSMA converges
// to. The grid step controls the p0 resolution.
func (r RandomReset) OptimalJP(step float64) (bestJ int, bestP0, bestS float64) {
	if step <= 0 {
		step = 0.01
	}
	bestS = -1
	for j := 0; j <= r.Backoff.M-1; j++ {
		for p0 := 0.0; p0 <= 1.0+1e-12; p0 += step {
			s, err := r.Throughput(j, math.Min(p0, 1))
			if err != nil {
				continue
			}
			if s > bestS {
				bestJ, bestP0, bestS = j, math.Min(p0, 1), s
			}
		}
	}
	return bestJ, bestP0, bestS
}
