package model

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: the Lemma 1 weight mapping is a bijection on (0,1) for every
// positive weight, monotone in p, with exact inverse under 1/w.
func TestAttemptProbabilityBijection(t *testing.T) {
	prop := func(praw uint16, wraw uint8) bool {
		p := (float64(praw) + 1) / (math.MaxUint16 + 2) // (0,1)
		w := 0.25 + float64(wraw)/16                    // [0.25, 16)
		q := AttemptProbability(p, w)
		if q <= 0 || q >= 1 {
			return false
		}
		// Applying the inverse weight mapping must return p.
		back := AttemptProbability(q, 1/w)
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a composite mapping by w1 then w2 equals the mapping by
// w1·w2 — weights compose multiplicatively (Lemma 1's group structure).
func TestAttemptProbabilityComposes(t *testing.T) {
	prop := func(praw uint16, w1raw, w2raw uint8) bool {
		p := (float64(praw) + 1) / (math.MaxUint16 + 2)
		w1 := 0.5 + float64(w1raw)/32
		w2 := 0.5 + float64(w2raw)/32
		composed := AttemptProbability(AttemptProbability(p, w1), w2)
		direct := AttemptProbability(p, w1*w2)
		return math.Abs(composed-direct) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: S(p,W) is non-negative and bounded by the channel bit rate
// for any weights and p.
func TestSystemThroughputBounds(t *testing.T) {
	m := paperModel()
	prop := func(praw uint16, seeds [6]uint8) bool {
		p := float64(praw) / math.MaxUint16
		w := make(Weights, len(seeds))
		for i, s := range seeds {
			w[i] = 0.5 + float64(s)/32
		}
		s := m.SystemThroughput(p, w)
		return s >= 0 && s <= m.PHY.BitRate
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the optimal p* decreases as stations are added (more
// contenders need gentler access), and optimal throughput changes by
// only a few percent.
func TestOptimalPMonotoneInN(t *testing.T) {
	m := paperModel()
	prev := 1.0
	for n := 2; n <= 80; n += 6 {
		p := m.OptimalP(UnitWeights(n))
		if p >= prev {
			t.Fatalf("p*(%d) = %v did not decrease (prev %v)", n, p, prev)
		}
		prev = p
	}
}

// Property: N·p* is approximately constant (the classic observation the
// estimate-N schemes rely on).
func TestNTimesPStarNearlyConstant(t *testing.T) {
	m := paperModel()
	base := 10 * m.OptimalP(UnitWeights(10))
	for n := 20; n <= 80; n += 10 {
		v := float64(n) * m.OptimalP(UnitWeights(n))
		if math.Abs(v-base)/base > 0.08 {
			t.Errorf("N·p* drifted: %v at N=%d vs %v at N=10", v, n, base)
		}
	}
}

// Property: scaling all weights by a common factor leaves S(p,W)'s
// optimum unchanged (only relative weights matter).
func TestWeightScaleInvarianceOfOptimum(t *testing.T) {
	m := paperModel()
	w := Weights{1, 2, 3, 1, 2}
	scaled := make(Weights, len(w))
	for i := range w {
		scaled[i] = 10 * w[i]
	}
	// The control variable p is not scale-free, but the achieved optimal
	// throughput must match: both parameterise the same attempt-vector
	// family.
	a := m.MaxThroughput(w)
	b := m.MaxThroughput(scaled)
	if math.Abs(a-b)/a > 1e-6 {
		t.Errorf("optimum changed under weight scaling: %v vs %v", a, b)
	}
}

// Property: the RandomReset fixed point τ always lies in (0, 1) and its
// collision probability in [0, 1) for any valid (j, p0, N).
func TestRandomResetFixedPointRange(t *testing.T) {
	prop := func(jraw, p0raw, nraw uint8) bool {
		rr := paperRR(1 + int(nraw%99))
		j := int(jraw) % rr.Backoff.M
		p0 := float64(p0raw) / 255
		tau, c, err := rr.FixedPointJP(j, p0)
		if err != nil {
			return false
		}
		return tau > 0 && tau < 1 && c >= 0 && c < 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DCF fixed point τ decreases when CWmin doubles — larger
// windows mean gentler access.
func TestDCFTauMonotoneInCWMin(t *testing.T) {
	prop := func(nraw uint8) bool {
		n := 2 + int(nraw%60)
		prev := 1.0
		for _, cw := range []int{4, 8, 16, 32, 64} {
			d := DCF{PHY: PaperPHY(), Backoff: BackoffParams{CWMin: cw, M: 5}, N: n}
			tau, _ := d.FixedPoint()
			if tau >= prev {
				return false
			}
			prev = tau
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
