package model

import (
	"fmt"
	"math"
)

// BackoffParams are the exponential-backoff constants shared by the DCF
// and RandomReset models: CW ∈ {2^i·CWmin : i = 0..M}.
type BackoffParams struct {
	CWMin int
	M     int // number of doubling stages; CWmax = 2^M · CWmin
}

// PaperBackoff returns Table I's CWmin = 8, CWmax = 1024, hence M = 7.
func PaperBackoff() BackoffParams { return BackoffParams{CWMin: 8, M: 7} }

// Validate reports the first invalid parameter.
func (b BackoffParams) Validate() error {
	if b.CWMin < 1 {
		return fmt.Errorf("model: CWMin %d must be ≥ 1", b.CWMin)
	}
	if b.M < 0 {
		return fmt.Errorf("model: M %d must be ≥ 0", b.M)
	}
	return nil
}

// CWMax returns 2^M · CWmin.
func (b BackoffParams) CWMax() int { return b.CWMin << uint(b.M) }

// CW returns the contention window of stage i, clamped to the valid range.
func (b BackoffParams) CW(stage int) int {
	if stage < 0 {
		stage = 0
	}
	if stage > b.M {
		stage = b.M
	}
	return b.CWMin << uint(stage)
}

// Kappa returns κ_i = 2/(2^i·CWmin), the per-slot attempt probability of a
// station parked in backoff stage i under the paper's stage-wise
// p-persistent approximation (Algorithm 2 transmits w.p. 2/CW each slot).
func (b BackoffParams) Kappa(stage int) float64 {
	return 2 / float64(b.CW(stage))
}

// DCF evaluates Bianchi's model of the standard 802.11 exponential
// backoff: on failure the stage increments (capped at M), on success the
// station returns to stage 0 with probability one.
type DCF struct {
	PHY     PHY
	Backoff BackoffParams
	N       int
}

// AttemptGivenCollision returns Bianchi's τ(c) for the standard DCF:
//
//	τ = 2(1−2c) / ((1−2c)(W+1) + c·W·(1−(2c)^M))
//
// where W = CWmin and c is the conditional collision probability.
func (d DCF) AttemptGivenCollision(c float64) float64 {
	w := float64(d.Backoff.CWMin)
	m := float64(d.Backoff.M)
	if c == 0.5 {
		// Removable singularity: evaluate the limit numerically just off
		// the point to keep the expression simple and exact enough.
		c = 0.5 - 1e-12
	}
	num := 2 * (1 - 2*c)
	den := (1-2*c)*(w+1) + c*w*(1-math.Pow(2*c, m))
	return num / den
}

// FixedPoint solves the coupled system τ = τ(c), c = 1 − (1−τ)^(N−1) by
// bisection on τ. The fixed point is unique (Bianchi 2000): τ(c) is
// decreasing in c and c(τ) is increasing in τ.
func (d DCF) FixedPoint() (tau, c float64) {
	if d.N < 1 {
		return 0, 0
	}
	if d.N == 1 {
		return d.AttemptGivenCollision(0), 0
	}
	collision := func(tau float64) float64 {
		return 1 - math.Pow(1-tau, float64(d.N-1))
	}
	// g(τ) = τ − τ(c(τ)) is increasing; find its root.
	g := func(tau float64) float64 {
		return tau - d.AttemptGivenCollision(collision(tau))
	}
	lo, hi := 1e-9, 1-1e-9
	for i := 0; i < 200 && hi-lo > 1e-15; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	tau = (lo + hi) / 2
	return tau, collision(tau)
}

// Throughput returns the saturation throughput in bits/second predicted by
// the fixed point, using the same renewal denominator as Eq. (2) with a
// homogeneous attempt probability.
func (d DCF) Throughput() float64 {
	tau, _ := d.FixedPoint()
	return HomogeneousThroughput(d.PHY, d.N, tau)
}

// FrozenFixedPoint solves the DCF fixed point under true 802.11
// freeze/resume semantics, where a busy period consumes NO backoff
// decrement for the waiting stations — counters tick on idle slots
// only. Bianchi's chain instead spends exactly one counter tick per
// busy period, a simplification that is invisible for memoryless
// (p-persistent) policies but diverges measurably for window policies
// once contention windows grow with the population: a window of W slots
// then spans many busy periods, and the two clocks drift apart.
//
// On the idle-slot clock the frozen process IS Bianchi's chain with
// every per-attempt gap shortened by one (the attempt slot is busy and
// consumes no idle slot), so the per-idle-slot attempt probability is
// the transform
//
//	τ_f = τ(c) / (1 − τ(c))
//
// of the standard τ(c), coupled with c = 1 − (1−τ_f)^(N−1): stations
// collide exactly when their independent renewal processes land on the
// same idle-time. The returned tauIdle is per idle slot, not per
// Bianchi slot. The O(1/CW) correction from zero redraws (a station
// drawing 0 re-attacks without an intervening idle slot) is ignored, so
// the model assumes CWMin ≥ 2.
func (d DCF) FrozenFixedPoint() (tauIdle, c float64) {
	if d.N < 1 {
		return 0, 0
	}
	frozen := func(tauB float64) float64 {
		if tauB >= 0.5 {
			return 1 // τ_f saturates: no idle slots between attempts
		}
		return tauB / (1 - tauB)
	}
	if d.N == 1 {
		return frozen(d.AttemptGivenCollision(0)), 0
	}
	collision := func(tauF float64) float64 {
		return 1 - math.Pow(1-tauF, float64(d.N-1))
	}
	// As in FixedPoint, g(τ_B) = τ_B − τ(c(τ_f(τ_B))) is increasing:
	// τ_B↑ ⇒ τ_f↑ ⇒ c↑ ⇒ τ(c)↓.
	g := func(tauB float64) float64 {
		return tauB - d.AttemptGivenCollision(collision(frozen(tauB)))
	}
	lo, hi := 1e-9, 1-1e-9
	for i := 0; i < 200 && hi-lo > 1e-15; i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	tauIdle = frozen((lo + hi) / 2)
	return tauIdle, collision(tauIdle)
}

// FrozenThroughput returns the saturation throughput under freeze/resume
// semantics. The renewal unit is one idle-time: the busy periods whose
// attackers landed on that idle slot (at most one, chains aside),
// followed by the idle slot itself — so the denominator always carries
// one σ per cycle, unlike the Bernoulli-slot denominator:
//
//	S = P1·EP / (σ + P1·Ts + Pc·Tc)
//
// with P1 = N·τ_f·(1−τ_f)^(N−1) and Pc = 1 − (1−τ_f)^N − P1.
func (d DCF) FrozenThroughput() float64 {
	tauF, _ := d.FrozenFixedPoint()
	n := float64(d.N)
	if d.N <= 0 || tauF <= 0 || tauF >= 1 {
		return 0
	}
	p0 := math.Pow(1-tauF, n)
	p1 := n * tauF * math.Pow(1-tauF, n-1)
	pc := 1 - p0 - p1
	denom := float64(d.PHY.Slot) + p1*float64(d.PHY.Ts()) + pc*float64(d.PHY.Tc())
	return p1 * float64(d.PHY.Payload) / (denom / 1e9)
}

// HomogeneousThroughput evaluates the renewal throughput expression for N
// stations all attempting with probability tau per slot — the common
// yardstick used to convert any fixed-point attempt probability into
// bits/second.
func HomogeneousThroughput(phy PHY, n int, tau float64) float64 {
	if n <= 0 || tau <= 0 || tau >= 1 {
		return 0
	}
	attempt := make([]float64, n)
	for i := range attempt {
		attempt[i] = tau
	}
	return PPersistent{PHY: phy}.SystemThroughputAt(attempt)
}
