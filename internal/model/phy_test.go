package model

import (
	"testing"

	"repro/internal/sim"
)

func TestPaperPHYTimings(t *testing.T) {
	phy := PaperPHY()
	if err := phy.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Data airtime: 20 µs preamble + (272+8000) bits / 54 Mbps ≈ 173.19 µs.
	if got, want := phy.DataTxTime(), sim.Duration(173185); absDur(got-want) > 10 {
		t.Errorf("DataTxTime = %v, want ≈ %v", got, want)
	}
	// ACK airtime: 20 µs preamble + 112 bits / 6 Mbps ≈ 38.67 µs.
	if got, want := phy.ACKTxTime(), sim.Duration(38667); absDur(got-want) > 10 {
		t.Errorf("ACKTxTime = %v, want ≈ %v", got, want)
	}
	// Ts = data + SIFS + ACK + DIFS ≈ 261.9 µs; Tc = data + DIFS ≈ 207.2 µs.
	if got := phy.Ts(); got < 261*sim.Microsecond || got > 263*sim.Microsecond {
		t.Errorf("Ts = %v, want ≈ 261.9µs", got)
	}
	if got := phy.Tc(); got < 206*sim.Microsecond || got > 208*sim.Microsecond {
		t.Errorf("Tc = %v, want ≈ 207.2µs", got)
	}
	// Slot-unit durations: T*_c ≈ 23.0, T*_s ≈ 29.1.
	if got := phy.TcSlots(); got < 22.8 || got > 23.2 {
		t.Errorf("TcSlots = %v, want ≈ 23.0", got)
	}
	if got := phy.TsSlots(); got < 28.9 || got > 29.3 {
		t.Errorf("TsSlots = %v, want ≈ 29.1", got)
	}
	if phy.ACKTimeout() != phy.DIFS {
		t.Errorf("ACKTimeout = %v, want DIFS", phy.ACKTimeout())
	}
}

func absDur(d sim.Duration) sim.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestPHYValidateRejectsBadParams(t *testing.T) {
	good := PaperPHY()
	cases := []func(*PHY){
		func(p *PHY) { p.BitRate = 0 },
		func(p *PHY) { p.ControlRate = 0 },
		func(p *PHY) { p.Preamble = -1 },
		func(p *PHY) { p.Payload = 0 },
		func(p *PHY) { p.Header = -1 },
		func(p *PHY) { p.ACKLength = 0 },
		func(p *PHY) { p.Slot = 0 },
		func(p *PHY) { p.SIFS = 0 },
		func(p *PHY) { p.DIFS = -1 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid PHY", i)
		}
	}
}

func TestTsMinusTcIsSIFSPlusACK(t *testing.T) {
	phy := PaperPHY()
	if got, want := phy.Ts()-phy.Tc(), phy.SIFS+phy.ACKTxTime(); got != want {
		t.Errorf("Ts-Tc = %v, want %v", got, want)
	}
}
