package model

import (
	"math"
	"testing"
)

// Cross-validation against Bianchi (JSAC 2000). His Table/figures report
// normalised saturation throughput near 0.8–0.85 for basic access with
// long (8184-bit) payloads at moderate N, and the maximum normalised
// throughput as nearly independent of N.
func TestBianchi80211bSaturationThroughput(t *testing.T) {
	phy := PHY80211b()
	if err := phy.Validate(); err != nil {
		t.Fatal(err)
	}
	// W=32, m=5: the 802.11b FHSS-style configuration Bianchi plots.
	for _, tc := range []struct {
		n          int
		wantLo, hi float64
	}{
		{5, 0.76, 0.88},
		{10, 0.72, 0.86},
		{20, 0.65, 0.84},
		{50, 0.55, 0.80},
	} {
		d := DCF{PHY: phy, Backoff: BackoffParams{CWMin: 32, M: 5}, N: tc.n}
		s := d.Throughput() / phy.BitRate
		if s < tc.wantLo || s > tc.hi {
			t.Errorf("N=%d: normalised DCF throughput %.4f outside [%v, %v]", tc.n, s, tc.wantLo, tc.hi)
		}
	}
}

func TestBianchi80211bOptimalNearlyFlat(t *testing.T) {
	// Bianchi's key observation (which the paper builds on): the optimal
	// normalised throughput barely depends on N.
	phy := PHY80211b()
	m := PPersistent{PHY: phy}
	s5 := m.MaxThroughput(UnitWeights(5)) / phy.BitRate
	s50 := m.MaxThroughput(UnitWeights(50)) / phy.BitRate
	if s5 < 0.8 || s5 > 0.92 {
		t.Errorf("optimal normalised throughput at N=5: %.4f", s5)
	}
	if math.Abs(s5-s50) > 0.03 {
		t.Errorf("optimum varies too much with N: %.4f vs %.4f", s5, s50)
	}
}

func TestBianchi80211bTauAgainstPublishedScale(t *testing.T) {
	// With W=32, m=5, Bianchi's τ at N=10 is a few percent; the
	// conditional collision probability rises with N.
	d := DCF{PHY: PHY80211b(), Backoff: BackoffParams{CWMin: 32, M: 5}, N: 10}
	tau, c := d.FixedPoint()
	if tau < 0.02 || tau > 0.06 {
		t.Errorf("τ(N=10) = %.4f, expected a few percent", tau)
	}
	if c < 0.2 || c > 0.5 {
		t.Errorf("c(N=10) = %.4f, expected 0.2–0.5", c)
	}
	d50 := DCF{PHY: PHY80211b(), Backoff: BackoffParams{CWMin: 32, M: 5}, N: 50}
	_, c50 := d50.FixedPoint()
	if c50 <= c {
		t.Error("conditional collision probability must rise with N")
	}
}
