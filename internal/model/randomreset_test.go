package model

import (
	"math"
	"testing"
	"testing/quick"
)

func paperRR(n int) RandomReset {
	return RandomReset{PHY: PaperPHY(), Backoff: PaperBackoff(), N: n}
}

func TestBackoffParams(t *testing.T) {
	b := PaperBackoff()
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b.CWMax() != 1024 {
		t.Errorf("CWMax = %d, want 1024", b.CWMax())
	}
	if b.M != 7 {
		t.Errorf("M = %d, want 7 (= log2(1024/8))", b.M)
	}
	if b.CW(0) != 8 || b.CW(3) != 64 || b.CW(7) != 1024 {
		t.Errorf("CW ladder wrong: %d %d %d", b.CW(0), b.CW(3), b.CW(7))
	}
	// Clamping.
	if b.CW(-1) != 8 || b.CW(99) != 1024 {
		t.Error("CW must clamp out-of-range stages")
	}
	if got := b.Kappa(0); got != 0.25 {
		t.Errorf("Kappa(0) = %v, want 2/8", got)
	}
	if err := (BackoffParams{CWMin: 0, M: 1}).Validate(); err == nil {
		t.Error("CWMin=0 accepted")
	}
	if err := (BackoffParams{CWMin: 8, M: -1}).Validate(); err == nil {
		t.Error("M=-1 accepted")
	}
}

func TestLemma4AlphaMonotoneInStage(t *testing.T) {
	// α_0(c) ≤ α_1(c) ≤ … ≤ α_m(c), strict for c < 1.
	r := paperRR(10)
	for _, c := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999} {
		alpha := r.Alphas(c)
		for j := 1; j < len(alpha); j++ {
			if alpha[j-1] >= alpha[j] {
				t.Errorf("c=%v: α_%d=%v ≥ α_%d=%v", c, j-1, alpha[j-1], j, alpha[j])
			}
		}
		// α_j ≥ 2^j (the induction step in Lemma 4's proof).
		for j, a := range alpha {
			if a < math.Pow(2, float64(j))-1e-9 {
				t.Errorf("c=%v: α_%d=%v < 2^%d", c, j, a, j)
			}
		}
	}
	// At c=1 all α_j equal 2^m.
	alpha := r.Alphas(1)
	for j, a := range alpha {
		if math.Abs(a-128) > 1e-9 {
			t.Errorf("c=1: α_%d = %v, want 2^7 = 128", j, a)
		}
	}
}

func TestAlphaClosedFormAgreesWithRecursion(t *testing.T) {
	// α_j(c) = (1−c)·Σ_{i=j}^{m−1} 2^i c^{i−j} + 2^m·c^{m−j}.
	r := paperRR(10)
	for _, c := range []float64{0, 0.25, 0.6, 0.95} {
		alpha := r.Alphas(c)
		m := r.Backoff.M
		for j := 0; j <= m; j++ {
			closed := math.Pow(2, float64(m)) * math.Pow(c, float64(m-j))
			for i := j; i < m; i++ {
				closed += (1 - c) * math.Pow(2, float64(i)) * math.Pow(c, float64(i-j))
			}
			if math.Abs(alpha[j]-closed) > 1e-9*math.Max(1, closed) {
				t.Errorf("c=%v j=%d: recursion %v, closed form %v", c, j, alpha[j], closed)
			}
		}
	}
}

func TestResetDistribution(t *testing.T) {
	r := paperRR(10)
	q, err := r.ResetDistribution(2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 8 {
		t.Fatalf("len(q) = %d, want 8", len(q))
	}
	if q[2] != 0.6 {
		t.Errorf("q[2] = %v, want 0.6", q[2])
	}
	sum := 0.0
	for i, v := range q {
		sum += v
		if i < 2 && v != 0 {
			t.Errorf("q[%d] = %v, want 0 below stage j", i, v)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Σq = %v, want 1", sum)
	}
	share := (1 - 0.6) / 5
	for i := 3; i <= 7; i++ {
		if math.Abs(q[i]-share) > 1e-12 {
			t.Errorf("q[%d] = %v, want %v", i, q[i], share)
		}
	}
	if _, err := r.ResetDistribution(7, 0.5); err == nil {
		t.Error("j = m accepted; Definition 4 requires j ≤ m−1")
	}
	if _, err := r.ResetDistribution(-1, 0.5); err == nil {
		t.Error("j = -1 accepted")
	}
	if _, err := r.ResetDistribution(0, 1.5); err == nil {
		t.Error("p0 = 1.5 accepted")
	}
}

func TestLemma5AttemptMonotoneInP0(t *testing.T) {
	// τ_c(j;p0) strictly increasing in p0 for every c ∈ [0,1); and the
	// fixed-point τ(j;p0) inherits the monotonicity (Lemma 2).
	r := paperRR(10)
	for j := 0; j <= r.Backoff.M-1; j += 3 {
		for _, c := range []float64{0, 0.3, 0.7} {
			prev := -1.0
			for p0 := 0.0; p0 <= 1.0001; p0 += 0.1 {
				tau, err := r.AttemptGivenCollisionJP(j, math.Min(p0, 1), c)
				if err != nil {
					t.Fatal(err)
				}
				if tau <= prev {
					t.Errorf("j=%d c=%v: τ_c not increasing at p0=%v", j, c, p0)
				}
				prev = tau
			}
		}
		prev := -1.0
		for p0 := 0.0; p0 <= 1.0001; p0 += 0.1 {
			tau, _, err := r.FixedPointJP(j, math.Min(p0, 1))
			if err != nil {
				t.Fatal(err)
			}
			if tau <= prev {
				t.Errorf("j=%d: fixed-point τ not increasing at p0=%v", j, p0)
			}
			prev = tau
		}
	}
}

func TestLemma6AttemptRangeContainsAllResets(t *testing.T) {
	// Any reset distribution's fixed point lies in [τ(m−1;0), τ(0;1)].
	r := paperRR(20)
	lo, hi := r.AttemptRange()
	if lo >= hi {
		t.Fatalf("attempt range [%v, %v] degenerate", lo, hi)
	}
	prop := func(raw [8]uint8) bool {
		q := make([]float64, 8)
		sum := 0.0
		for i, v := range raw {
			q[i] = float64(v) + 1 // avoid the all-zero vector
			sum += q[i]
		}
		for i := range q {
			q[i] /= sum
		}
		tau, _ := r.FixedPoint(q)
		return tau >= lo-1e-9 && tau <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma7AdjacentStagesOverlap(t *testing.T) {
	// τ(j+1; 0) ≤ τ(j; 0) ≤ τ(j+1; 1): the (j, p0) family sweeps the range
	// with no gaps, so every reachable attempt probability is achieved.
	r := paperRR(15)
	for j := 0; j <= r.Backoff.M-2; j++ {
		tj0, _, _ := r.FixedPointJP(j, 0)
		tj1p0, _, _ := r.FixedPointJP(j+1, 0)
		tj1p1, _, _ := r.FixedPointJP(j+1, 1)
		if tj1p0 > tj0+1e-9 {
			t.Errorf("j=%d: τ(j+1;0)=%v > τ(j;0)=%v", j, tj1p0, tj0)
		}
		if tj0 > tj1p1+1e-9 {
			t.Errorf("j=%d: τ(j;0)=%v > τ(j+1;1)=%v — gap in coverage", j, tj0, tj1p1)
		}
	}
}

func TestFixedPointConsistency(t *testing.T) {
	// The returned (τ, c) must satisfy both equations simultaneously.
	r := paperRR(25)
	for j := 0; j <= 6; j += 2 {
		for _, p0 := range []float64{0, 0.3, 0.8, 1} {
			tau, c, err := r.FixedPointJP(j, p0)
			if err != nil {
				t.Fatal(err)
			}
			wantC := 1 - math.Pow(1-tau, float64(r.N-1))
			if math.Abs(c-wantC) > 1e-9 {
				t.Errorf("j=%d p0=%v: c=%v, want %v", j, p0, c, wantC)
			}
			back, _ := r.AttemptGivenCollisionJP(j, p0, c)
			if math.Abs(back-tau) > 1e-6 {
				t.Errorf("j=%d p0=%v: τ=%v but τ_c(c)=%v", j, p0, tau, back)
			}
		}
	}
}

func TestFixedPointSingleStation(t *testing.T) {
	r := paperRR(1)
	tau, c, err := r.FixedPointJP(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("c = %v, want 0 for a single station", c)
	}
	// Always resetting to stage 0 with no collisions: τ = κ_0 / α_0(0) = κ_0.
	if want := r.Backoff.Kappa(0); math.Abs(tau-want) > 1e-9 {
		t.Errorf("τ = %v, want κ_0 = %v", tau, want)
	}
}

func TestFig13ShapeThroughputQuasiConcaveInP0(t *testing.T) {
	// For j=0 the analytic throughput-vs-p0 curve must be unimodal
	// (Lemma 8) for both 20 and 40 stations.
	for _, n := range []int{20, 40} {
		r := paperRR(n)
		var prev float64
		rising := true
		first := true
		for p0 := 0.0; p0 <= 1.0001; p0 += 0.02 {
			s, err := r.Throughput(0, math.Min(p0, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !first {
				if rising && s < prev-1e-6 {
					rising = false
				} else if !rising && s > prev+1e-6 {
					t.Fatalf("N=%d: throughput vs p0 not unimodal at p0=%v", n, p0)
				}
			}
			prev, first = s, false
		}
	}
}

func TestOptimalJPApproachesPPersistentOptimum(t *testing.T) {
	// The remark after Theorem 3: for N within [Nl, Nh] the best
	// RandomReset policy should achieve nearly the optimal p-persistent
	// throughput (the exponential family can realize τ ≈ p*).
	for _, n := range []int{10, 40} {
		r := paperRR(n)
		_, _, bestS := r.OptimalJP(0.05)
		star := PPersistent{PHY: r.PHY}.MaxThroughput(UnitWeights(n))
		if bestS < 0.97*star {
			t.Errorf("N=%d: best RandomReset %v Mbps < 97%% of p-persistent optimum %v Mbps",
				n, bestS/1e6, star/1e6)
		}
	}
}

func TestRemarkTORAOptimalAmongAllPolicies(t *testing.T) {
	// Remark after Theorem 3: because exponential-backoff attempt
	// probabilities are confined to [τ(m−1;0), τ(0;1)], TORA-CSMA is
	// optimal among ALL policies exactly when the unconstrained optimum
	// p* falls inside that range; for CWmin = 8, m = 7 the paper states
	// this holds for N from 2 up to ≈140. Verify the claim against our
	// fixed points: p*(N) must lie inside the reachable range across
	// 2..140 and fall outside shortly above.
	phy := PaperPHY()
	m := PPersistent{PHY: phy}
	inRange := func(n int) bool {
		rr := RandomReset{PHY: phy, Backoff: PaperBackoff(), N: n}
		lo, hi := rr.AttemptRange()
		p := m.OptimalP(UnitWeights(n))
		return p >= lo && p <= hi
	}
	for _, n := range []int{2, 5, 10, 20, 40, 80, 120, 135} {
		if !inRange(n) {
			t.Errorf("N=%d: p* outside the exponential-backoff attempt range; remark violated", n)
		}
	}
	// With our PHY constants the bound binds at N ≈ 139 (the paper's
	// slightly lighter T*c puts it at 140); beyond that the range must
	// no longer contain p*.
	if inRange(145) {
		t.Error("N=145: p* still inside the range; expected the bound to bind near 140")
	}
}

func TestHomogeneousThroughputEdges(t *testing.T) {
	phy := PaperPHY()
	if got := HomogeneousThroughput(phy, 0, 0.1); got != 0 {
		t.Errorf("n=0: got %v", got)
	}
	if got := HomogeneousThroughput(phy, 5, 0); got != 0 {
		t.Errorf("tau=0: got %v", got)
	}
	if got := HomogeneousThroughput(phy, 5, 1); got != 0 {
		t.Errorf("tau=1: got %v", got)
	}
}

func TestDCFFixedPoint(t *testing.T) {
	phy := PaperPHY()
	for _, n := range []int{2, 10, 40, 60} {
		d := DCF{PHY: phy, Backoff: PaperBackoff(), N: n}
		tau, c := d.FixedPoint()
		if tau <= 0 || tau >= 1 || c < 0 || c >= 1 {
			t.Fatalf("N=%d: fixed point (τ=%v, c=%v) out of range", n, tau, c)
		}
		// Consistency.
		if want := 1 - math.Pow(1-tau, float64(n-1)); math.Abs(c-want) > 1e-9 {
			t.Errorf("N=%d: c inconsistent", n)
		}
		if want := d.AttemptGivenCollision(c); math.Abs(tau-want) > 1e-6 {
			t.Errorf("N=%d: τ inconsistent: %v vs %v", n, tau, want)
		}
	}
}

func TestDCFTauDecreasesWithN(t *testing.T) {
	phy := PaperPHY()
	prev := 1.0
	for _, n := range []int{2, 5, 10, 20, 40, 80} {
		d := DCF{PHY: phy, Backoff: PaperBackoff(), N: n}
		tau, _ := d.FixedPoint()
		if tau >= prev {
			t.Errorf("N=%d: τ=%v did not decrease (prev %v)", n, tau, prev)
		}
		prev = tau
	}
}

func TestDCFThroughputDegradesWithN(t *testing.T) {
	// Fig. 3's standard-802.11 curve: throughput declines as N grows and
	// sits clearly below the optimum for large N. With CWmin=8, even at
	// N=10 DCF is far below optimal.
	phy := PaperPHY()
	s10 := DCF{PHY: phy, Backoff: PaperBackoff(), N: 10}.Throughput()
	s60 := DCF{PHY: phy, Backoff: PaperBackoff(), N: 60}.Throughput()
	if s60 >= s10 {
		t.Errorf("DCF throughput should degrade: S(10)=%v, S(60)=%v", s10, s60)
	}
	star := PPersistent{PHY: phy}.MaxThroughput(UnitWeights(60))
	if s60 > 0.9*star {
		t.Errorf("DCF at N=60 (%v) unexpectedly close to optimum (%v)", s60, star)
	}
}

func TestDCFSingleStation(t *testing.T) {
	d := DCF{PHY: PaperPHY(), Backoff: PaperBackoff(), N: 1}
	tau, c := d.FixedPoint()
	if c != 0 {
		t.Errorf("c = %v, want 0", c)
	}
	// τ(0) = 2/(W+1) for the standard formula.
	want := 2.0 / float64(PaperBackoff().CWMin+1)
	if math.Abs(tau-want) > 1e-9 {
		t.Errorf("τ = %v, want %v", tau, want)
	}
	dz := DCF{PHY: PaperPHY(), Backoff: PaperBackoff(), N: 0}
	if tau, _ := dz.FixedPoint(); tau != 0 {
		t.Errorf("N=0: τ = %v, want 0", tau)
	}
}

func TestAttemptGivenCollisionPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for wrong-length reset distribution")
		}
	}()
	paperRR(5).AttemptGivenCollision([]float64{1}, 0.1)
}
