package model

import (
	"math"
	"testing"
)

func TestFrozenFixedPointFixedWindow(t *testing.T) {
	// M = 0 kills the collision coupling on the Bianchi side
	// (τ_B = 2/(W+1) regardless of c), so the frozen transform has the
	// closed answer τ_f = τ_B/(1−τ_B) = 2/(W−1) exactly.
	for _, w := range []int{8, 64, 1024, 100_000} {
		d := DCF{PHY: PaperPHY(), Backoff: BackoffParams{CWMin: w, M: 0}, N: 1000}
		tauF, _ := d.FrozenFixedPoint()
		want := 2 / float64(w-1)
		if math.Abs(tauF-want)/want > 1e-9 {
			t.Errorf("W=%d: frozen τ = %.9f, want 2/(W−1) = %.9f", w, tauF, want)
		}
	}
}

func TestFrozenVsBianchiOrdering(t *testing.T) {
	// Freezing shortens every per-attempt gap by one idle slot, so the
	// per-idle-slot attempt rate always exceeds Bianchi's per-slot rate;
	// with the extra σ charged every cycle the frozen throughput sits
	// below plain Bianchi in contended regimes.
	for _, n := range []int{64, 4096, 100_000} {
		d := DCF{PHY: PaperPHY(), Backoff: BackoffParams{CWMin: n, M: 0}, N: n}
		tauF, _ := d.FrozenFixedPoint()
		tauB, _ := d.FixedPoint()
		if tauF <= tauB {
			t.Errorf("n=%d: frozen τ %.3e not above Bianchi τ %.3e", n, tauF, tauB)
		}
		sF, sB := d.FrozenThroughput(), d.Throughput()
		if sF <= 0 || sB <= 0 {
			t.Fatalf("n=%d: non-positive throughput (frozen %.0f, bianchi %.0f)", n, sF, sB)
		}
		if sF >= sB {
			t.Errorf("n=%d: frozen throughput %.0f not below Bianchi %.0f", n, sF, sB)
		}
	}
}

func TestFrozenFixedPointDegenerate(t *testing.T) {
	if tau, c := (DCF{PHY: PaperPHY(), Backoff: PaperBackoff(), N: 0}).FrozenFixedPoint(); tau != 0 || c != 0 {
		t.Errorf("N=0: got τ=%v c=%v, want zeros", tau, c)
	}
	tau, c := (DCF{PHY: PaperPHY(), Backoff: BackoffParams{CWMin: 16, M: 0}, N: 1}).FrozenFixedPoint()
	if c != 0 {
		t.Errorf("N=1: collision probability %v, want 0", c)
	}
	if want := 2.0 / 15; math.Abs(tau-want) > 1e-12 {
		t.Errorf("N=1 W=16: τ_f = %v, want %v", tau, want)
	}
}
