package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/eventsim"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// churnPhases is the node-arrival/departure script of Figs. 8–11: the
// active-station count steps through phases of equal length.
var churnPhases = []int{10, 30, 60, 20, 40}

// churnGrid states the dynamic-N scenario declaratively: the churn
// schedule as a base spec, with the topology family (connected vs the
// 16 m hidden-node disc — the radii are the families' defaults) as the
// swept axis.
func churnGrid(o Options, sch Scheme) *sweep.Grid {
	maxN := 0
	for _, n := range churnPhases {
		if n > maxN {
			maxN = n
		}
	}
	churn := make([]scenario.ChurnStep, len(churnPhases))
	for i, n := range churnPhases {
		churn[i] = scenario.ChurnStep{At: scenario.Duration(o.Duration) * scenario.Duration(i), Active: n}
	}
	return &sweep.Grid{
		Name: "churn-" + string(sch),
		Base: scenario.Spec{
			Scheme:   string(sch),
			Topology: scenario.TopologySpec{N: maxN},
			Churn:    churn,
			Duration: scenario.Duration(o.Duration) * scenario.Duration(len(churnPhases)),
			Seeds:    1,
			Seed:     1,
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldTopology, Values: sweep.Strings(scenario.TopoConnected, scenario.TopoDisc)},
		},
	}
}

// runChurn executes one expanded churn point against the event
// simulator directly: the figure consumes the windowed throughput,
// control and active-station series, which the aggregate scenario
// summary does not carry. The churn step at t=0 becomes the initial
// active count; later steps schedule SetActiveAt.
func runChurn(sp *scenario.Spec) (*eventsim.Result, error) {
	tp, err := scenario.BuildTopology(&sp.Topology, sp.Seed)
	if err != nil {
		return nil, err
	}
	policies, controller, err := scheme.Build(sp.Scheme, nil, tp.N())
	if err != nil {
		return nil, err
	}
	if controller == nil {
		return nil, fmt.Errorf("experiment: churn scenario supports wTOP/TORA, not %q", sp.Scheme)
	}
	cfg := eventsim.Config{
		PHY:        model.PaperPHY(),
		Topology:   tp,
		Policies:   policies,
		Controller: controller,
		Seed:       sp.Seed,
	}
	steps := sp.Churn
	if len(steps) > 0 && steps[0].At == 0 {
		cfg.InitialActive = steps[0].Active
		steps = steps[1:]
	}
	s, err := eventsim.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, step := range steps {
		if err := s.SetActiveAt(sim.Time(step.At), step.Active); err != nil {
			return nil, err
		}
	}
	return s.Run(sim.Duration(sp.Duration)), nil
}

// churnTable renders the throughput/control/active time series of a
// churn run — one table covering both of the paper's paired figures
// (throughput vs. time and control variable vs. time).
func churnTable(ctx context.Context, o Options, id, title string, sch Scheme) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	pts, err := sweep.Expand(churnGrid(o, sch))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Expansion order follows the topology axis: connected then disc.
	connected, err := runChurn(&pts[0].Spec)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hidden, err := runChurn(&pts[1].Spec)
	if err != nil {
		return nil, err
	}
	control := "p"
	if sch == SchemeTORA {
		control = "p0"
	}
	t := &Table{
		ID:    id,
		Title: title,
		Columns: []string{"time (s)", "active nodes",
			"Mbps (no hidden)", control + " (no hidden)",
			"Mbps (hidden)", control + " (hidden)"},
	}
	// The three series share window boundaries; sample every k-th point
	// to keep the table readable.
	nSamples := connected.ThroughputSeries.Len()
	stride := nSamples / 50
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < nSamples; i += stride {
		at := connected.ThroughputSeries.Times[i]
		row := []string{
			fmt.Sprintf("%.1f", at.Seconds()),
			fmt.Sprintf("%.0f", connected.ActiveSeries.Values[i]),
			fmt.Sprintf("%.3f", connected.ThroughputSeries.Values[i]/1e6),
			controlAt(connected, i),
			mbpsAt(hidden, i),
			controlAt(hidden, i),
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("active-node schedule %v, one phase per %v", churnPhases, o.Duration))
	return t, nil
}

func mbpsAt(r *eventsim.Result, i int) string {
	if i >= r.ThroughputSeries.Len() {
		return ""
	}
	return fmt.Sprintf("%.3f", r.ThroughputSeries.Values[i]/1e6)
}

func controlAt(r *eventsim.Result, i int) string {
	if i >= r.ControlSeries.Len() {
		return ""
	}
	return fmt.Sprintf("%.5f", r.ControlSeries.Values[i])
}

// Fig8and9 reproduces Figures 8 and 9: wTOP-CSMA throughput and control
// variable over time as the station count steps.
func Fig8and9(ctx context.Context, o Options) (*Table, error) {
	return churnTable(ctx, o, "fig8",
		"wTOP-CSMA under node churn: throughput (Fig. 8) and p (Fig. 9)",
		SchemeWTOP)
}

// Fig10and11 reproduces Figures 10 and 11: the same scenario for
// TORA-CSMA (throughput and p0).
func Fig10and11(ctx context.Context, o Options) (*Table, error) {
	return churnTable(ctx, o, "fig10",
		"TORA-CSMA under node churn: throughput (Fig. 10) and p0 (Fig. 11)",
		SchemeTORA)
}

// Fig12 reproduces Figure 12: the fixed-point geometry of the
// RandomReset attempt probability — τ_c(0;p0) versus the collision
// response c(τ) for N = 10, m = 5, CWmin = 2. Pure analysis; no
// simulation.
func Fig12(context.Context, Options) (*Table, error) {
	back := model.BackoffParams{CWMin: 2, M: 5}
	rr := model.RandomReset{PHY: model.PaperPHY(), Backoff: back, N: 10}
	t := &Table{
		ID:    "fig12",
		Title: "fixed-point curves τ_c(0;p0) and c = 1-(1-τ)^(N-1), N=10 m=5 CWmin=2",
		Columns: []string{"c", "tau(p0=0.0)", "tau(p0=0.2)", "tau(p0=0.4)",
			"tau(p0=0.6)", "tau(p0=0.8)", "tau from c (inverse)"},
	}
	for c := 0.0; c <= 1.0001; c += 0.05 {
		row := []string{fmt.Sprintf("%.2f", c)}
		for _, p0 := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
			tau, err := rr.AttemptGivenCollisionJP(0, p0, c)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.5f", tau))
		}
		// The "collision response" curve plotted as τ such that
		// c = 1-(1-τ)^(N-1), i.e. τ = 1-(1-c)^(1/(N-1)).
		tau := 1 - pow(1-c, 1.0/9)
		row = append(row, fmt.Sprintf("%.5f", tau))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"fixed points are the intersections of each τ_c column with the inverse-response column",
		"monotone ordering in p0 is Lemma 5")
	return t, nil
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}
