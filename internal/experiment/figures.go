package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/stats"
)

// Fig1 reproduces Figure 1: IdleSense vs. standard 802.11, with and
// without hidden nodes, as the number of stations grows. It is the
// motivating figure — IdleSense wins handily in the connected network and
// collapses once hidden nodes appear.
func Fig1(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	schemes := []Scheme{SchemeIdleSense, SchemeDCF}
	conn, err := runSweep(ctx, o, "fig1-connected", TopoConnected, schemes)
	if err != nil {
		return nil, err
	}
	hid, err := runSweep(ctx, o, "fig1-hidden", TopoDisc16, schemes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig1",
		Title: "IdleSense vs standard 802.11, with and without hidden nodes (Mbps)",
		Columns: []string{"nodes", "IdleSense (no hidden)", "802.11 (no hidden)",
			"802.11 (hidden)", "IdleSense (hidden)"},
	}
	for _, n := range o.Nodes {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", conn[SchemeIdleSense][n]/1e6),
			fmt.Sprintf("%.3f", conn[SchemeDCF][n]/1e6),
			fmt.Sprintf("%.3f", hid[SchemeDCF][n]/1e6),
			fmt.Sprintf("%.3f", hid[SchemeIdleSense][n]/1e6),
		})
	}
	t.Notes = append(t.Notes,
		"hidden topologies: stations uniform in disc radius 16 m, sensing radius 24 m",
		fmt.Sprintf("mean of %d seeds, %v per run", o.Seeds, o.Duration))
	return t, nil
}

// Fig2 reproduces Figure 2: p-persistent throughput vs. log(attempt
// probability) in a fully connected network — the analytic Eq. (3) curve
// cross-checked against the event simulator.
func Fig2(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	mdl := model.PPersistent{PHY: model.PaperPHY()}
	t := &Table{
		ID:    "fig2",
		Title: "p-persistent throughput vs attempt probability, fully connected (Mbps)",
		Columns: []string{"log(p)", "model N=20", "sim N=20",
			"model N=40", "sim N=40"},
	}
	for _, logp := range sweepLogP() {
		p := math.Exp(logp)
		row := []string{fmt.Sprintf("%.2f", logp)}
		for _, n := range []int{20, 40} {
			analytic := mdl.SystemThroughput(p, model.UnitWeights(n))
			simulated, err := fixedPThroughput(ctx, o, TopoConnected, n, p)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", analytic/1e6), fmt.Sprintf("%.3f", simulated/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "log base e; paper plots log10 over [-10,-2] — same bell shape")
	return t, nil
}

// sweepLogP covers the paper's Fig. 2/Fig. 4 x-axis: ln p from ≈ −7 to
// ≈ −1 (p from ~10^-3 to ~0.37).
func sweepLogP() []float64 {
	var out []float64
	for lp := -7.0; lp <= -0.9; lp += 0.5 {
		out = append(out, lp)
	}
	return out
}

// fixedPThroughput measures the event simulator at a fixed attempt
// probability (seed-averaged). Cancellation is observed between seeds.
func fixedPThroughput(ctx context.Context, o Options, kind Topo, n int, p float64) (float64, error) {
	var w stats.Welford
	for seed := 1; seed <= o.Seeds; seed++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		tp := buildTopology(kind, n, int64(seed))
		policies := make([]mac.Policy, n)
		for i := range policies {
			policies[i] = mac.NewPPersistent(1, p)
		}
		s, err := eventsim.New(eventsim.Config{Topology: tp, Policies: policies, Seed: int64(seed)})
		if err != nil {
			panic(err) // construction is deterministic; config bugs only
		}
		res := s.Run(o.Duration / 2) // open-loop: no controller transient
		w.Add(res.Throughput)
	}
	return w.Mean(), nil
}

// Table2 reproduces Table II: wTOP-CSMA weighted fairness with weights
// 1,1,1,2,2,2,3,3,3,3 across ten stations.
func Table2(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	weights := []float64{1, 1, 1, 2, 2, 2, 3, 3, 3, 3}
	phy := model.PaperPHY()
	tp := buildTopology(TopoConnected, len(weights), 1)
	policies := make([]mac.Policy, len(weights))
	for i, w := range weights {
		policies[i] = mac.NewPPersistent(w, 0.1)
	}
	s, err := eventsim.New(eventsim.Config{
		PHY:        phy,
		Topology:   tp,
		Policies:   policies,
		Controller: newWTOP(phy),
		Seed:       1,
	})
	if err != nil {
		return nil, err
	}
	res := s.Run(o.Duration)
	t := &Table{
		ID:      "tab2",
		Title:   "wTOP-CSMA weighted fairness (10 stations)",
		Columns: []string{"node", "weight", "throughput (Mbps)", "normalized (Mbps/weight)"},
	}
	total := 0.0
	for i, st := range res.Stations {
		total += st.Throughput
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.0f", weights[i]),
			fmt.Sprintf("%.5f", st.Throughput/1e6),
			fmt.Sprintf("%.5f", st.Throughput/weights[i]/1e6),
		})
	}
	t.Rows = append(t.Rows, []string{"total", "", fmt.Sprintf("%.4f", total/1e6), ""})
	t.Notes = append(t.Notes,
		fmt.Sprintf("weighted Jain index %.4f", res.WeightedJainIndex()),
		"paper reports ≈22.4 Mbps total with uniform normalized throughput")
	return t, nil
}

// Fig3 reproduces Figure 3: throughput vs. N for all four schemes in the
// fully connected network.
func Fig3(ctx context.Context, o Options) (*Table, error) {
	return sweepTable(ctx, o, "fig3",
		"throughput vs number of stations, fully connected (Mbps)",
		TopoConnected,
		[]Scheme{SchemeTORA, SchemeWTOP, SchemeIdleSense, SchemeDCF})
}

// Fig4 reproduces Figure 4: p-persistent throughput vs. attempt
// probability in hidden-node topologies — the quasi-concavity evidence
// that justifies applying Kiefer–Wolfowitz where no analytic model exists.
func Fig4(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig4",
		Title: "p-persistent throughput vs attempt probability, hidden nodes (Mbps)",
		Columns: []string{"log(p)", "N=20 disc16", "N=40 disc16",
			"N=20 disc20", "N=40 disc20"},
	}
	for _, logp := range sweepLogP() {
		p := math.Exp(logp)
		row := []string{fmt.Sprintf("%.2f", logp)}
		for _, kind := range []Topo{TopoDisc16, TopoDisc20} {
			for _, n := range []int{20, 40} {
				simulated, err := fixedPThroughput(ctx, o, kind, n, p)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.3f", simulated/1e6))
			}
		}
		// Reorder: the column header groups by disc then N; keep as is.
		t.Rows = append(t.Rows, []string{row[0], row[1], row[2], row[3], row[4]})
	}
	t.Notes = append(t.Notes, "each column a fixed random hidden topology family, seed-averaged")
	return t, nil
}

// Fig5 reproduces Figure 5: RandomReset throughput vs. reset probability
// p0 (j = 0) in hidden-node topologies.
func Fig5(ctx context.Context, o Options) (*Table, error) {
	return randomResetSweep(ctx, o, "fig5",
		"RandomReset throughput vs p0 (j=0), hidden nodes (Mbps)",
		[]Topo{TopoDisc16, TopoDisc20})
}

// Fig13 reproduces Figure 13: RandomReset throughput vs. p0 (j = 0) in
// the fully connected network, with the appendix fixed-point model
// alongside the simulation.
func Fig13(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	phy := model.PaperPHY()
	back := model.PaperBackoff()
	t := &Table{
		ID:    "fig13",
		Title: "RandomReset throughput vs p0 (j=0), fully connected (Mbps)",
		Columns: []string{"p0", "model N=20", "sim N=20",
			"model N=40", "sim N=40"},
	}
	for p0 := 0.0; p0 <= 1.0001; p0 += 0.1 {
		p0 := math.Min(p0, 1)
		row := []string{fmt.Sprintf("%.1f", p0)}
		for _, n := range []int{20, 40} {
			rr := model.RandomReset{PHY: phy, Backoff: back, N: n}
			analytic, err := rr.Throughput(0, p0)
			if err != nil {
				return nil, err
			}
			simulated, err := randomResetThroughput(ctx, o, TopoConnected, n, 0, p0)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", analytic/1e6), fmt.Sprintf("%.3f", simulated/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// randomResetSweep renders throughput vs p0 tables for hidden topologies.
func randomResetSweep(ctx context.Context, o Options, id, title string, kinds []Topo) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	t := &Table{ID: id, Title: title, Columns: []string{"p0"}}
	for _, kind := range kinds {
		for _, n := range []int{20, 40} {
			t.Columns = append(t.Columns, fmt.Sprintf("N=%d %s", n, kind))
		}
	}
	for p0 := 0.0; p0 <= 1.0001; p0 += 0.1 {
		p0 := math.Min(p0, 1)
		row := []string{fmt.Sprintf("%.1f", p0)}
		for _, kind := range kinds {
			for _, n := range []int{20, 40} {
				simulated, err := randomResetThroughput(ctx, o, kind, n, 0, p0)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.3f", simulated/1e6))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// randomResetThroughput measures open-loop RandomReset(j;p0) throughput.
// Cancellation is observed between seeds.
func randomResetThroughput(ctx context.Context, o Options, kind Topo, n, j int, p0 float64) (float64, error) {
	back := model.PaperBackoff()
	var w stats.Welford
	for seed := 1; seed <= o.Seeds; seed++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		tp := buildTopology(kind, n, int64(seed))
		policies := make([]mac.Policy, n)
		for i := range policies {
			policies[i] = mac.NewRandomReset(back.CWMin, back.M, j, p0)
		}
		s, err := eventsim.New(eventsim.Config{Topology: tp, Policies: policies, Seed: int64(seed)})
		if err != nil {
			panic(err)
		}
		w.Add(s.Run(o.Duration / 2).Throughput)
	}
	return w.Mean(), nil
}

// Fig6 reproduces Figure 6: throughput vs. N with stations in a 16 m
// disc (hidden nodes present).
func Fig6(ctx context.Context, o Options) (*Table, error) {
	return sweepTable(ctx, o, "fig6",
		"throughput vs number of stations, disc radius 16 m (Mbps)",
		TopoDisc16,
		[]Scheme{SchemeTORA, SchemeWTOP, SchemeDCF, SchemeIdleSense})
}

// Fig7 reproduces Figure 7: throughput vs. N with stations in a 20 m
// disc (more hidden pairs).
func Fig7(ctx context.Context, o Options) (*Table, error) {
	return sweepTable(ctx, o, "fig7",
		"throughput vs number of stations, disc radius 20 m (Mbps)",
		TopoDisc20,
		[]Scheme{SchemeTORA, SchemeWTOP, SchemeDCF, SchemeIdleSense})
}

// Table3 reproduces Table III: average idle slots and throughput for 40
// stations under IdleSense and wTOP-CSMA, without hidden nodes and for
// two hidden-node draws. The punchline: IdleSense pins its idle-slot
// statistic at the 3.1 target everywhere, yet its throughput collapses
// with hidden nodes, while wTOP-CSMA's converged idle-slot level varies
// by configuration — proof that no fixed target can be right.
func Table3(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	const n = 40
	type rowSpec struct {
		label string
		kind  Topo
		seed  int64
	}
	specs := []rowSpec{
		{"without hidden nodes", TopoConnected, 1},
		{"with hidden nodes (case 1)", TopoDisc16, 1},
		{"with hidden nodes (case 2)", TopoDisc20, 2},
	}
	t := &Table{
		ID:    "tab3",
		Title: "average idle slots and throughput, 40 stations",
		Columns: []string{"scenario", "IdleSense idle", "IdleSense Mbps",
			"wTOP idle", "wTOP Mbps"},
	}
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tp := buildTopology(spec.kind, n, spec.seed)
		row := []string{spec.label}
		for _, sch := range []Scheme{SchemeIdleSense, SchemeWTOP} {
			s, err := buildSim(sch, tp, spec.seed)
			if err != nil {
				return nil, err
			}
			res := s.Run(o.Duration)
			row = append(row,
				fmt.Sprintf("%.3f", res.APIdleSlots),
				fmt.Sprintf("%.3f", res.ConvergedThroughput(o.Warmup)/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"idle = mean idle slots per transmission observed at the AP",
		"hidden cases are two independent random topologies, as in the paper")
	return t, nil
}

// newWTOP builds the standard wTOP controller for a PHY.
func newWTOP(phy model.PHY) *core.WTOP {
	return core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
}
