package experiment

import (
	"context"
	"fmt"

	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/stats"
)

// RTSCTSComparison is an extension experiment beyond the paper's figures:
// it quantifies the introduction's RTS/CTS argument. For each station
// count it measures standard 802.11 with and without RTS/CTS, in the
// connected and the hidden (16 m disc) topologies. The expected shape:
// RTS/CTS costs throughput where no hidden nodes exist (fixed 6 Mbps
// control overhead per frame) and wins where they do.
func RTSCTSComparison(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "rtscts",
		Title: "standard 802.11 basic access vs RTS/CTS (Mbps)",
		Columns: []string{"nodes", "basic (no hidden)", "RTS/CTS (no hidden)",
			"basic (hidden)", "RTS/CTS (hidden)"},
	}
	back := model.PaperBackoff()
	measure := func(kind Topo, n int, rtscts bool) (float64, error) {
		var w stats.Welford
		for seed := 1; seed <= o.Seeds; seed++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			tp := buildTopology(kind, n, int64(seed))
			policies := make([]mac.Policy, n)
			for i := range policies {
				policies[i] = mac.NewStandardDCF(back.CWMin, back.CWMax())
			}
			s, err := eventsim.New(eventsim.Config{
				Topology: tp,
				Policies: policies,
				Seed:     int64(seed),
				RTSCTS:   rtscts,
			})
			if err != nil {
				panic(err)
			}
			w.Add(s.Run(o.Duration / 2).Throughput)
		}
		return w.Mean(), nil
	}
	for _, n := range o.Nodes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, cell := range []struct {
			kind   Topo
			rtscts bool
		}{{TopoConnected, false}, {TopoConnected, true}, {TopoDisc16, false}, {TopoDisc16, true}} {
			mbps, err := measure(cell.kind, n, cell.rtscts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", mbps/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: quantifies the RTS/CTS trade-off of Section I",
		"RTS/CTS at the 6 Mbps basic rate, data at 54 Mbps")
	return t, nil
}

// BaselineLadder is a second extension: every contention policy in the
// repository on one connected workload, ordered by throughput — a quick
// regression yardstick for the whole MAC zoo.
func BaselineLadder(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	const n = 30
	phy := model.PaperPHY()
	back := model.PaperBackoff()
	build := map[string]func() mac.Policy{
		"802.11 DCF":   func() mac.Policy { return mac.NewStandardDCF(back.CWMin, back.CWMax()) },
		"SlowDecrease": func() mac.Policy { return mac.NewSlowDecrease(back.CWMin, back.CWMax(), 0.5) },
		"EstimateN":    func() mac.Policy { return mac.NewEstimateN(phy.TcSlots(), 10) },
		"IdleSense":    func() mac.Policy { return mac.NewIdleSense(mac.IdleSenseConfig{}) },
		"optimal fixed p": func() mac.Policy {
			p := model.PPersistent{PHY: phy}.OptimalP(model.UnitWeights(n))
			return mac.NewPPersistent(1, p)
		},
	}
	t := &Table{
		ID:      "ladder",
		Title:   fmt.Sprintf("baseline policies, %d stations, fully connected (Mbps)", n),
		Columns: []string{"policy", "Mbps", "collision rate"},
	}
	names := []string{"802.11 DCF", "SlowDecrease", "EstimateN", "IdleSense", "optimal fixed p"}
	for _, name := range names {
		var w, cr stats.Welford
		for seed := 1; seed <= o.Seeds; seed++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tp := buildTopology(TopoConnected, n, int64(seed))
			policies := make([]mac.Policy, n)
			for i := range policies {
				policies[i] = build[name]()
			}
			s, err := eventsim.New(eventsim.Config{Topology: tp, Policies: policies, Seed: int64(seed)})
			if err != nil {
				return nil, err
			}
			res := s.Run(o.Duration / 2)
			w.Add(res.Throughput)
			cr.Add(res.CollisionRate())
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.3f", w.Mean()/1e6),
			fmt.Sprintf("%.3f", cr.Mean()),
		})
	}
	t.Notes = append(t.Notes, "extension: related-work policies (SlowDecrease [15], EstimateN [2]) included")
	return t, nil
}
