// Package experiment regenerates every table and figure of the paper's
// evaluation. Each runner returns a Table of formatted rows — the same
// rows/series the paper plots — and is exposed through cmd/experiments
// and the repository's benchmark suite.
//
// Absolute throughput levels differ slightly from the paper's ns-3 stack
// (see EXPERIMENTS.md); the reproduced artefacts are the *shapes*: who
// wins, by what factor, and where behaviour changes.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Options scales every experiment. The zero value is unusable; start
// from Quick() or Paper().
type Options struct {
	// Duration is the simulated time per run.
	Duration sim.Duration
	// Warmup is excluded from converged-throughput averages.
	Warmup sim.Duration
	// Seeds is the number of independent repetitions per data point.
	Seeds int
	// Nodes is the station-count sweep for the throughput-vs-N figures.
	Nodes []int
	// Parallelism bounds concurrent simulation runs (0 = GOMAXPROCS).
	Parallelism int
}

// Quick returns laptop-scale options: minutes for the full suite. The
// convergence windows are long enough for the controllers to settle but
// much shorter than the paper's 500 s runs.
func Quick() Options {
	return Options{
		Duration: 40 * sim.Second,
		Warmup:   20 * sim.Second,
		Seeds:    3,
		Nodes:    []int{10, 20, 30, 40, 50, 60},
	}
}

// Paper returns the paper-scale options (20 repetitions, long runs).
// Budget hours, not minutes.
func Paper() Options {
	return Options{
		Duration: 200 * sim.Second,
		Warmup:   100 * sim.Second,
		Seeds:    20,
		Nodes:    []int{10, 20, 30, 40, 50, 60},
	}
}

func (o Options) validate() error {
	if o.Duration <= 0 || o.Warmup < 0 || o.Warmup >= o.Duration {
		return fmt.Errorf("experiment: invalid duration/warmup %v/%v", o.Duration, o.Warmup)
	}
	if o.Seeds < 1 {
		return fmt.Errorf("experiment: seeds %d < 1", o.Seeds)
	}
	if len(o.Nodes) == 0 {
		return fmt.Errorf("experiment: empty node sweep")
	}
	return nil
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Table is a formatted experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (substitutions, reduced durations).
	Notes []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// TSV renders the table as tab-separated values for plotting.
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Scheme identifies a channel-access scheme under test.
type Scheme string

// The schemes the paper compares.
const (
	SchemeDCF       Scheme = "802.11"
	SchemeIdleSense Scheme = "IdleSense"
	SchemeWTOP      Scheme = "wTOP-CSMA"
	SchemeTORA      Scheme = "TORA-CSMA"
)

// Topo identifies the topology families of the evaluation.
type Topo string

// Topology families: connected (circle radius 8) and the two hidden-node
// disc radii of Figs. 6–7.
const (
	TopoConnected Topo = "connected"
	TopoDisc16    Topo = "disc16"
	TopoDisc20    Topo = "disc20"
)

// buildTopology realises a topology family for n stations and a seed.
//
// The paper draws stations uniformly in discs of radius 16 m or 20 m; in
// its ns-3 PHY a station slightly beyond the nominal 16 m decode distance
// still reaches the AP, just poorly. Our unit-disc model is binary, so
// for the 20 m family we project stations drawn beyond 16 m radially onto
// the 16 m circle: every station keeps AP connectivity (the system
// model's standing assumption) while the outer mass concentrates at the
// rim, producing the larger hidden-pair counts that distinguish Fig. 7
// from Fig. 6.
func buildTopology(kind Topo, n int, seed int64) *topo.Topology {
	switch kind {
	case TopoConnected:
		return topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii())
	case TopoDisc16, TopoDisc20:
		radius := 16.0
		if kind == TopoDisc20 {
			radius = 20.0
		}
		rng := sim.NewRNG(seed ^ 0x5eed)
		pts := topo.UniformDisc(n, radius, rng)
		for i, p := range pts {
			// Project just inside the rim so float rounding cannot push
			// a station past the decode radius.
			if d := p.Distance(topo.Point{}); d > 16 {
				scale := 15.999 / d
				pts[i] = topo.Point{X: p.X * scale, Y: p.Y * scale}
			}
		}
		return topo.New(topo.Point{}, pts, topo.PaperRadii())
	default:
		panic(fmt.Sprintf("experiment: unknown topology %q", kind))
	}
}

// buildSim assembles a simulator for one (scheme, topology, seed) cell.
func buildSim(scheme Scheme, tp *topo.Topology, seed int64) (*eventsim.Simulator, error) {
	phy := model.PaperPHY()
	back := model.PaperBackoff()
	n := tp.N()
	policies := make([]mac.Policy, n)
	var controller core.Controller
	switch scheme {
	case SchemeDCF:
		for i := range policies {
			policies[i] = mac.NewStandardDCF(back.CWMin, back.CWMax())
		}
	case SchemeIdleSense:
		for i := range policies {
			policies[i] = mac.NewIdleSense(mac.IdleSenseConfig{})
		}
	case SchemeWTOP:
		for i := range policies {
			policies[i] = mac.NewPPersistent(1, 0.1)
		}
		controller = core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	case SchemeTORA:
		for i := range policies {
			policies[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
		}
		controller = core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate})
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q", scheme)
	}
	return eventsim.New(eventsim.Config{
		PHY:        phy,
		Topology:   tp,
		Policies:   policies,
		Controller: controller,
		Seed:       seed,
	})
}

// cell is one measurement point request.
type cell struct {
	scheme Scheme
	kind   Topo
	n      int
	seed   int64
}

// measure runs one cell and returns converged throughput (bits/s) plus
// the full result for runners that need more.
func measure(o Options, c cell) (float64, *eventsim.Result, error) {
	tp := buildTopology(c.kind, c.n, c.seed)
	s, err := buildSim(c.scheme, tp, c.seed)
	if err != nil {
		return 0, nil, err
	}
	res := s.Run(o.Duration)
	return res.ConvergedThroughput(o.Warmup), res, nil
}

// sweep evaluates mean converged throughput for each (scheme, n) over
// o.Seeds seeds, running cells in parallel.
func sweep(o Options, kind Topo, schemes []Scheme) (map[Scheme]map[int]float64, error) {
	type job struct {
		c   cell
		out *stats.Welford
	}
	acc := make(map[Scheme]map[int]*stats.Welford)
	var jobs []job
	for _, sch := range schemes {
		acc[sch] = make(map[int]*stats.Welford)
		for _, n := range o.Nodes {
			w := &stats.Welford{}
			acc[sch][n] = w
			for seed := 0; seed < o.Seeds; seed++ {
				jobs = append(jobs, job{cell{sch, kind, n, int64(seed + 1)}, w})
			}
		}
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, o.parallelism())
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			got, _, err := measure(o, j.c)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			j.out.Add(got)
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	out := make(map[Scheme]map[int]float64)
	for sch, byN := range acc {
		out[sch] = make(map[int]float64)
		for n, w := range byN {
			out[sch][n] = w.Mean()
		}
	}
	return out, nil
}

// sweepTable renders a sweep as a throughput-vs-N table.
func sweepTable(o Options, id, title string, kind Topo, schemes []Scheme) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	data, err := sweep(o, kind, schemes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: append([]string{"nodes"}, schemeNames(schemes)...),
	}
	nodes := append([]int(nil), o.Nodes...)
	sort.Ints(nodes)
	for _, n := range nodes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sch := range schemes {
			row = append(row, fmt.Sprintf("%.3f", data[sch][n]/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("throughput in Mbps; mean of %d seeds, %v runs, %v warmup",
		o.Seeds, o.Duration, o.Warmup))
	return t, nil
}

func schemeNames(schemes []Scheme) []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = string(s)
	}
	return out
}

// Runner produces one paper artefact.
type Runner func(Options) (*Table, error)

// Registry maps experiment ids to runners. Ids follow the paper's
// numbering (fig1…fig13, tab2, tab3).
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":        Fig1,
		"fig2":        Fig2,
		"tab2":        Table2,
		"fig3":        Fig3,
		"fig4":        Fig4,
		"fig5":        Fig5,
		"fig6":        Fig6,
		"fig7":        Fig7,
		"tab3":        Table3,
		"fig8":        Fig8and9,
		"fig9":        Fig8and9,
		"fig10":       Fig10and11,
		"fig11":       Fig10and11,
		"fig12":       Fig12,
		"fig13":       Fig13,
		"rtscts":      RTSCTSComparison,
		"ladder":      BaselineLadder,
		"convergence": Convergence,
	}
}

// IDs returns the distinct experiment ids in run order. The paper's
// artefacts come first; "rtscts", "ladder" and "convergence" are
// extensions.
func IDs() []string {
	return []string{"fig1", "fig2", "tab2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"tab3", "fig8", "fig10", "fig12", "fig13", "rtscts", "ladder", "convergence"}
}
