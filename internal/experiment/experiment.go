// Package experiment regenerates every table and figure of the paper's
// evaluation. Each runner returns a Table of formatted rows — the same
// rows/series the paper plots — and is exposed through cmd/experiments
// and the repository's benchmark suite.
//
// Absolute throughput levels differ slightly from the paper's ns-3 stack
// (see EXPERIMENTS.md); the reproduced artefacts are the *shapes*: who
// wins, by what factor, and where behaviour changes.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/eventsim"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topo"
)

// Options scales every experiment. The zero value is unusable; start
// from Quick() or Paper().
type Options struct {
	// Duration is the simulated time per run.
	Duration sim.Duration
	// Warmup is excluded from converged-throughput averages.
	Warmup sim.Duration
	// Seeds is the number of independent repetitions per data point.
	Seeds int
	// Nodes is the station-count sweep for the throughput-vs-N figures.
	Nodes []int
	// Parallelism bounds concurrent simulation runs (0 = GOMAXPROCS).
	Parallelism int
	// CacheDir, when set, backs every grid-shaped figure sweep with the
	// content-addressed sweep cache: re-running a figure (or another
	// figure sharing points) skips completed (spec, engine) cells.
	CacheDir string
}

// Quick returns laptop-scale options: minutes for the full suite. The
// convergence windows are long enough for the controllers to settle but
// much shorter than the paper's 500 s runs.
func Quick() Options {
	return Options{
		Duration: 40 * sim.Second,
		Warmup:   20 * sim.Second,
		Seeds:    3,
		Nodes:    []int{10, 20, 30, 40, 50, 60},
	}
}

// Paper returns the paper-scale options (20 repetitions, long runs).
// Budget hours, not minutes.
func Paper() Options {
	return Options{
		Duration: 200 * sim.Second,
		Warmup:   100 * sim.Second,
		Seeds:    20,
		Nodes:    []int{10, 20, 30, 40, 50, 60},
	}
}

// Validate bounds-checks the options. CLIs call this up front — before
// any figure starts simulating — so an override like `-duration 1ns`
// or a hostile seed count fails with one clear message instead of deep
// inside a figure run.
func (o Options) Validate() error { return o.validate() }

func (o Options) validate() error {
	if o.Duration <= 0 || o.Warmup < 0 || o.Warmup >= o.Duration {
		return fmt.Errorf("experiment: invalid duration/warmup %v/%v", o.Duration, o.Warmup)
	}
	// A run shorter than one controller window cannot produce a single
	// windowed sample; figure math (converged means, series analysis)
	// degenerates to NaN long after the engines accepted it.
	if o.Duration < 250*sim.Millisecond {
		return fmt.Errorf("experiment: duration %v below the 250ms controller window", o.Duration)
	}
	if o.Duration > sim.Duration(scenario.MaxDuration) {
		return fmt.Errorf("experiment: duration %v exceeds the %v limit", o.Duration, time.Duration(scenario.MaxDuration))
	}
	if o.Seeds < 1 || o.Seeds > scenario.MaxSeeds {
		return fmt.Errorf("experiment: seeds %d outside [1, %d]", o.Seeds, scenario.MaxSeeds)
	}
	if len(o.Nodes) == 0 {
		return fmt.Errorf("experiment: empty node sweep")
	}
	for _, n := range o.Nodes {
		if n < 1 || n > scenario.MaxStations {
			return fmt.Errorf("experiment: node count %d outside [1, %d]", n, scenario.MaxStations)
		}
	}
	return nil
}

// Table is a formatted experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (substitutions, reduced durations).
	Notes []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// TSV renders the table as tab-separated values for plotting.
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Scheme identifies a channel-access scheme under test.
type Scheme string

// The schemes the paper compares.
const (
	SchemeDCF       Scheme = "802.11"
	SchemeIdleSense Scheme = "IdleSense"
	SchemeWTOP      Scheme = "wTOP-CSMA"
	SchemeTORA      Scheme = "TORA-CSMA"
)

// Topo identifies the topology families of the evaluation.
type Topo string

// Topology families: connected (circle radius 8) and the two hidden-node
// disc radii of Figs. 6–7.
const (
	TopoConnected Topo = "connected"
	TopoDisc16    Topo = "disc16"
	TopoDisc20    Topo = "disc20"
)

// buildTopology realises a topology family for n stations and a seed by
// delegating to scenario.BuildTopology — one copy of the disc draw and
// rim projection, so the figure runners that call this directly and the
// sweeps that go through scenario.Runner stay bit-identical by
// construction. (The disc families pass topology seed 0 so the draw
// derives from the per-repetition seed, matching the paper's convention
// of a fresh placement per repetition.)
func buildTopology(kind Topo, n int, seed int64) *topo.Topology {
	ts, err := topologySpec(kind, n)
	if err != nil {
		panic(err.Error())
	}
	tp, err := scenario.BuildTopology(&ts, seed)
	if err != nil {
		panic(fmt.Sprintf("experiment: %s n=%d: %v", kind, n, err))
	}
	return tp
}

// buildSim assembles a simulator for one (scheme, topology, seed) cell.
// The scheme→policy mapping is scheme.Build — the single such mapping in
// the repository.
func buildSim(sch Scheme, tp *topo.Topology, seed int64) (*eventsim.Simulator, error) {
	policies, controller, err := scheme.Build(string(sch), nil, tp.N())
	if err != nil {
		return nil, err
	}
	return eventsim.New(eventsim.Config{
		PHY:        model.PaperPHY(),
		Topology:   tp,
		Policies:   policies,
		Controller: controller,
		Seed:       seed,
	})
}

// topologySpec translates an experiment topology family to the scenario
// layer's declarative form. Disc families leave the topology seed at 0,
// so every replication redraws its placement from the replication seed —
// the convention of the paper's hidden-node sweeps (and bit-identical to
// the pre-scenario harness, which drew from seed^0x5eed per repetition).
func topologySpec(kind Topo, n int) (scenario.TopologySpec, error) {
	switch kind {
	case TopoConnected:
		return scenario.TopologySpec{Kind: scenario.TopoConnected, N: n, Radius: 8}, nil
	case TopoDisc16:
		return scenario.TopologySpec{Kind: scenario.TopoDisc, N: n, Radius: 16}, nil
	case TopoDisc20:
		return scenario.TopologySpec{Kind: scenario.TopoDisc, N: n, Radius: 20}, nil
	default:
		return scenario.TopologySpec{}, fmt.Errorf("experiment: unknown topology %q", kind)
	}
}

// grid translates (Options, topology family, schemes) into the
// declarative sweep form: a base spec plus scheme × nodes axes. Every
// figure sweep is expressed this way, so the figure pipeline, the
// sweep CLI and sharded CI runs share one expansion, one naming scheme
// and one cache key per (spec, engine) cell.
func grid(o Options, name string, kind Topo, schemes []Scheme) (*sweep.Grid, error) {
	ts, err := topologySpec(kind, 0) // the nodes axis supplies N
	if err != nil {
		return nil, err
	}
	warmup := scenario.Duration(o.Warmup)
	return &sweep.Grid{
		Name: name,
		Base: scenario.Spec{
			Topology: ts,
			Duration: scenario.Duration(o.Duration),
			Warmup:   &warmup,
			Seeds:    o.Seeds,
			Seed:     1, // replication r runs with seed 1+r, as before
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldScheme, Values: sweep.Strings(schemeNames(schemes)...)},
			{Field: sweep.FieldNodes, Values: sweep.Ints(o.Nodes...)},
		},
	}, nil
}

// sweepRunner builds the grid executor for these options.
func (o Options) sweepRunner() (*sweep.Runner, error) {
	r := &sweep.Runner{Parallelism: o.Parallelism}
	if o.CacheDir != "" {
		c, err := sweep.OpenCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
		r.Cache = c
	}
	return r, nil
}

// runSweep evaluates mean converged throughput for each (scheme, n)
// over o.Seeds seeds. The grid expands through internal/sweep and every
// point fans out through scenario.Runner.RunBatch — the repository's
// single simulation fan-out path — with optional result caching.
func runSweep(ctx context.Context, o Options, name string, kind Topo, schemes []Scheme) (map[Scheme]map[int]float64, error) {
	g, err := grid(o, name, kind, schemes)
	if err != nil {
		return nil, err
	}
	r, err := o.sweepRunner()
	if err != nil {
		return nil, err
	}
	results, _, err := r.Run(ctx, g)
	if err != nil {
		return nil, err
	}
	out := make(map[Scheme]map[int]float64)
	for _, pr := range results {
		sch := Scheme(pr.Spec.Scheme)
		if out[sch] == nil {
			out[sch] = make(map[int]float64)
		}
		out[sch][pr.Spec.Topology.N] = pr.Summary.ConvergedMbps.Mean * 1e6
	}
	return out, nil
}

// sweepTable renders a sweep as a throughput-vs-N table.
func sweepTable(ctx context.Context, o Options, id, title string, kind Topo, schemes []Scheme) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	data, err := runSweep(ctx, o, id, kind, schemes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: append([]string{"nodes"}, schemeNames(schemes)...),
	}
	nodes := append([]int(nil), o.Nodes...)
	sort.Ints(nodes)
	for _, n := range nodes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sch := range schemes {
			row = append(row, fmt.Sprintf("%.3f", data[sch][n]/1e6))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("throughput in Mbps; mean of %d seeds, %v runs, %v warmup",
		o.Seeds, o.Duration, o.Warmup))
	return t, nil
}

func schemeNames(schemes []Scheme) []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = string(s)
	}
	return out
}

// Runner produces one paper artefact. Cancelling ctx aborts the run —
// at cell/replication granularity — and returns ctx.Err().
type Runner func(ctx context.Context, o Options) (*Table, error)

// Registry maps experiment ids to runners. Ids follow the paper's
// numbering (fig1…fig13, tab2, tab3).
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":        Fig1,
		"fig2":        Fig2,
		"tab2":        Table2,
		"fig3":        Fig3,
		"fig4":        Fig4,
		"fig5":        Fig5,
		"fig6":        Fig6,
		"fig7":        Fig7,
		"tab3":        Table3,
		"fig8":        Fig8and9,
		"fig9":        Fig8and9,
		"fig10":       Fig10and11,
		"fig11":       Fig10and11,
		"fig12":       Fig12,
		"fig13":       Fig13,
		"rtscts":      RTSCTSComparison,
		"ladder":      BaselineLadder,
		"convergence": Convergence,
	}
}

// IDs returns the distinct experiment ids in run order. The paper's
// artefacts come first; "rtscts", "ladder" and "convergence" are
// extensions.
func IDs() []string {
	return []string{"fig1", "fig2", "tab2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"tab3", "fig8", "fig10", "fig12", "fig13", "rtscts", "ladder", "convergence"}
}
