package experiment

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/sim"
)

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", cell, err)
	}
	return v
}

func TestRTSCTSComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := Options{Duration: 8 * sim.Second, Warmup: 4 * sim.Second, Seeds: 1, Nodes: []int{10, 30}}
	tbl, err := RTSCTSComparison(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		basicConn := parseCell(t, row[1])
		rtsConn := parseCell(t, row[2])
		// Connected: RTS/CTS is pure overhead.
		if rtsConn >= basicConn {
			t.Errorf("nodes %s: RTS/CTS %v ≥ basic %v in connected network", row[0], rtsConn, basicConn)
		}
		// All cells plausible.
		for _, cell := range row[1:] {
			v := parseCell(t, cell)
			if v <= 0 || v > 30 {
				t.Errorf("implausible cell %v", v)
			}
		}
	}
}

func TestBaselineLadderShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := Options{Duration: 8 * sim.Second, Warmup: 4 * sim.Second, Seeds: 1, Nodes: []int{10}}
	tbl, err := BaselineLadder(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	byName := map[string]float64{}
	for _, row := range tbl.Rows {
		byName[row[0]] = parseCell(t, row[1])
	}
	// Ordering facts at N=30: DCF is the weakest; the fixed-optimal-p
	// reference tops the ladder (within noise EstimateN may tie it).
	if byName["802.11 DCF"] >= byName["optimal fixed p"] {
		t.Errorf("DCF %v not below fixed-p* %v", byName["802.11 DCF"], byName["optimal fixed p"])
	}
	if byName["SlowDecrease"] <= byName["802.11 DCF"] {
		t.Errorf("SlowDecrease %v not above DCF %v", byName["SlowDecrease"], byName["802.11 DCF"])
	}
}
