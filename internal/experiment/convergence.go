package experiment

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Convergence is an extension experiment quantifying Section VI-D: how
// fast do wTOP-CSMA and TORA-CSMA reach (and hold) 90% of the analytic
// optimum in a fully connected network, as a function of N? It reports
// the first in-band time, the steady-state mean, efficiency against the
// optimum, and the steady-state standard deviation (TORA's flatter
// maxima should show as a smaller σ — the paper's Fig. 2 vs. Fig. 13
// argument).
//
// The (nodes × scheme) cells are enumerated through the declarative
// sweep grid — the same expansion, ordering and naming as every figure
// sweep — but each cell executes directly against the event simulator
// because the analysis consumes the windowed throughput series, which
// the aggregate scenario summary deliberately does not carry.
func Convergence(ctx context.Context, o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	phy := model.PaperPHY()
	mdl := model.PPersistent{PHY: phy}
	warmup := scenario.Duration(o.Warmup)
	g := &sweep.Grid{
		Name: "convergence",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected, Radius: 8},
			Duration: scenario.Duration(o.Duration),
			Warmup:   &warmup,
			Seeds:    o.Seeds,
			Seed:     1,
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldNodes, Values: sweep.Ints(o.Nodes...)},
			{Field: sweep.FieldScheme, Values: sweep.Strings(string(SchemeWTOP), string(SchemeTORA))},
		},
	}
	pts, err := sweep.Expand(g)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "convergence",
		Title: "time to reach and hold 90% of the analytic optimum (connected)",
		Columns: []string{"nodes", "scheme", "converged", "t90 (s)",
			"steady Mbps", "efficiency", "steady σ (Mbps)"},
	}
	for _, pt := range pts {
		n := pt.Spec.Topology.N
		sch := Scheme(pt.Spec.Scheme)
		target := mdl.MaxThroughput(model.UnitWeights(n))
		var t90, eff, steady, sigma stats.Welford
		converged := 0
		for r := 0; r < pt.Spec.Seeds; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seed := pt.Spec.Seed + int64(r)
			tp, err := scenario.BuildTopology(&pt.Spec.Topology, seed)
			if err != nil {
				return nil, err
			}
			s, err := buildSim(sch, tp, seed)
			if err != nil {
				return nil, err
			}
			res := s.Run(o.Duration)
			rep := stats.AnalyzeConvergence(&res.ThroughputSeries, target, stats.ConvergenceOptions{})
			if rep.Converged {
				converged++
				t90.Add(rep.TimeToWithin.Seconds())
			}
			eff.Add(rep.Efficiency)
			steady.Add(rep.SteadyMean)
			sigma.Add(rep.SteadyStdDev)
		}
		t90Cell := "-"
		if t90.N() > 0 {
			t90Cell = fmt.Sprintf("%.1f", t90.Mean())
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			string(sch),
			fmt.Sprintf("%d/%d", converged, pt.Spec.Seeds),
			t90Cell,
			fmt.Sprintf("%.3f", steady.Mean()/1e6),
			fmt.Sprintf("%.3f", eff.Mean()),
			fmt.Sprintf("%.3f", sigma.Mean()/1e6),
		})
	}
	t.Notes = append(t.Notes,
		"extension: quantifies Section VI-D; target = analytic optimum S(p*) per N",
		"t90 = first entry into the ≥90% band that then holds (8-window dwell)")
	return t, nil
}
