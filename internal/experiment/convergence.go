package experiment

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/stats"
)

// Convergence is an extension experiment quantifying Section VI-D: how
// fast do wTOP-CSMA and TORA-CSMA reach (and hold) 90% of the analytic
// optimum in a fully connected network, as a function of N? It reports
// the first in-band time, the steady-state mean, efficiency against the
// optimum, and the steady-state standard deviation (TORA's flatter
// maxima should show as a smaller σ — the paper's Fig. 2 vs. Fig. 13
// argument).
func Convergence(o Options) (*Table, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	phy := model.PaperPHY()
	mdl := model.PPersistent{PHY: phy}
	t := &Table{
		ID:    "convergence",
		Title: "time to reach and hold 90% of the analytic optimum (connected)",
		Columns: []string{"nodes", "scheme", "converged", "t90 (s)",
			"steady Mbps", "efficiency", "steady σ (Mbps)"},
	}
	for _, n := range o.Nodes {
		target := mdl.MaxThroughput(model.UnitWeights(n))
		for _, sch := range []Scheme{SchemeWTOP, SchemeTORA} {
			var t90, eff, steady, sigma stats.Welford
			converged := 0
			for seed := 1; seed <= o.Seeds; seed++ {
				tp := buildTopology(TopoConnected, n, int64(seed))
				s, err := buildSim(sch, tp, int64(seed))
				if err != nil {
					return nil, err
				}
				res := s.Run(o.Duration)
				rep := stats.AnalyzeConvergence(&res.ThroughputSeries, target, stats.ConvergenceOptions{})
				if rep.Converged {
					converged++
					t90.Add(rep.TimeToWithin.Seconds())
				}
				eff.Add(rep.Efficiency)
				steady.Add(rep.SteadyMean)
				sigma.Add(rep.SteadyStdDev)
			}
			t90Cell := "-"
			if t90.N() > 0 {
				t90Cell = fmt.Sprintf("%.1f", t90.Mean())
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n),
				string(sch),
				fmt.Sprintf("%d/%d", converged, o.Seeds),
				t90Cell,
				fmt.Sprintf("%.3f", steady.Mean()/1e6),
				fmt.Sprintf("%.3f", eff.Mean()),
				fmt.Sprintf("%.3f", sigma.Mean()/1e6),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension: quantifies Section VI-D; target = analytic optimum S(p*) per N",
		"t90 = first entry into the ≥90% band that then holds (8-window dwell)")
	return t, nil
}
