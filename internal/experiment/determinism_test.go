package experiment

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// The parallel runner fans simulation cells out across goroutines; cell
// results must not depend on how the fan-out is scheduled. A table built
// serially, with a wide worker pool, and under different GOMAXPROCS
// values must be byte-identical — every cell owns its RNG and scheduler,
// so the only way this fails is shared mutable state leaking between
// cells.
func TestExperimentDeterministicAcrossParallelism(t *testing.T) {
	o := Options{
		Duration: 2 * sim.Second,
		Warmup:   1 * sim.Second,
		Seeds:    2,
		Nodes:    []int{5},
	}

	run := func(parallelism, maxprocs int) string {
		prev := runtime.GOMAXPROCS(maxprocs)
		defer runtime.GOMAXPROCS(prev)
		opts := o
		opts.Parallelism = parallelism
		tb, err := Fig3(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return tb.String()
	}

	serial := run(1, 1)
	for _, tc := range []struct{ parallelism, maxprocs int }{
		{8, 1},
		{1, 4},
		{8, 4},
	} {
		if got := run(tc.parallelism, tc.maxprocs); got != serial {
			t.Errorf("parallelism=%d GOMAXPROCS=%d diverged from serial run:\n%s\nvs\n%s",
				tc.parallelism, tc.maxprocs, got, serial)
		}
	}
}
