package experiment

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// tinyOptions keeps experiment tests fast: the goal here is correctness
// of the harness (structure, plumbing, monotone sanity), not statistics.
func tinyOptions() Options {
	return Options{
		Duration: 6 * sim.Second,
		Warmup:   3 * sim.Second,
		Seeds:    1,
		Nodes:    []int{5, 15},
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{},
		{Duration: sim.Second, Warmup: 2 * sim.Second, Seeds: 1, Nodes: []int{5}},
		{Duration: sim.Second, Seeds: 0, Nodes: []int{5}},
		{Duration: sim.Second, Seeds: 1},
		// CLI-override typos must fail up front, not deep inside a run:
		// a 1ns duration, hostile seed counts, out-of-range node counts.
		{Duration: 1, Seeds: 1, Nodes: []int{5}},
		{Duration: 100 * sim.Millisecond, Seeds: 1, Nodes: []int{5}},
		{Duration: sim.Second, Seeds: 1 << 30, Nodes: []int{5}},
		{Duration: sim.Second, Seeds: -3, Nodes: []int{5}},
		{Duration: sim.Second, Seeds: 1, Nodes: []int{0}},
		{Duration: sim.Second, Seeds: 1, Nodes: []int{5, 100001}},
		{Duration: 48 * 3600 * sim.Second, Warmup: sim.Second, Seeds: 1, Nodes: []int{5}},
	}
	for i, o := range bad {
		if err := o.validate(); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	if err := Quick().validate(); err != nil {
		t.Errorf("Quick() invalid: %v", err)
	}
	if err := Paper().validate(); err != nil {
		t.Errorf("Paper() invalid: %v", err)
	}
	// The exported wrapper is what CLIs call before simulating.
	if err := (Options{Duration: 1, Seeds: 1, Nodes: []int{5}}).Validate(); err == nil {
		t.Error("exported Validate accepted a 1ns duration")
	}
}

func TestBuildTopologyFamilies(t *testing.T) {
	conn := buildTopology(TopoConnected, 20, 1)
	if !conn.FullyConnected() {
		t.Error("connected family has hidden pairs")
	}
	for _, kind := range []Topo{TopoDisc16, TopoDisc20} {
		tp := buildTopology(kind, 40, 1)
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	// disc20 projection should produce at least as many hidden pairs as
	// disc16 on average (checked across seeds).
	p16, p20 := 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		p16 += len(buildTopology(TopoDisc16, 40, seed).HiddenPairs())
		p20 += len(buildTopology(TopoDisc20, 40, seed).HiddenPairs())
	}
	if p20 <= p16 {
		t.Errorf("disc20 hidden pairs (%d) not above disc16 (%d)", p20, p16)
	}
	if p16 == 0 {
		t.Error("disc16 produced no hidden pairs across 10 seeds at N=40")
	}
}

func TestBuildSimAllSchemes(t *testing.T) {
	tp := buildTopology(TopoConnected, 4, 1)
	for _, sch := range []Scheme{SchemeDCF, SchemeIdleSense, SchemeWTOP, SchemeTORA} {
		s, err := buildSim(sch, tp, 1)
		if err != nil {
			t.Fatalf("%s: %v", sch, err)
		}
		res := s.Run(time2s())
		if res.Successes == 0 {
			t.Errorf("%s: no successes in 2s", sch)
		}
	}
	if _, err := buildSim(Scheme("bogus"), tp, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func time2s() sim.Duration { return 2 * sim.Second }

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note1"},
	}
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "333") || !strings.Contains(s, "note1") {
		t.Errorf("String output incomplete:\n%s", s)
	}
	tsv := tbl.TSV()
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) != 3 {
		t.Fatalf("TSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "a\tbb" {
		t.Errorf("TSV header %q", lines[0])
	}
}

func TestRegistryCoversAllIDs(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("id %q missing from registry", id)
		}
	}
	// fig9/fig11 alias their paired runners.
	if _, ok := reg["fig9"]; !ok {
		t.Error("fig9 alias missing")
	}
	if _, ok := reg["fig11"]; !ok {
		t.Error("fig11 alias missing")
	}
}

func TestFig12IsAnalyticAndOrdered(t *testing.T) {
	tbl, err := Fig12(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 10 {
		t.Fatalf("fig12 rows = %d", len(tbl.Rows))
	}
	// Lemma 5 visible in the table: τ increases along each row across
	// the p0 columns (for c < 1).
	for _, row := range tbl.Rows[:len(tbl.Rows)-1] {
		prev := -1.0
		for col := 1; col <= 5; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", row[col], err)
			}
			if v <= prev {
				t.Fatalf("row %v: τ not increasing in p0", row)
			}
			prev = v
		}
	}
}

func TestSweepStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := tinyOptions()
	tbl, err := sweepTable(context.Background(), o, "t", "demo", TopoConnected, []Scheme{SchemeDCF})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(o.Nodes) {
		t.Fatalf("rows %d, want %d", len(tbl.Rows), len(o.Nodes))
	}
	if tbl.Columns[0] != "nodes" || tbl.Columns[1] != "802.11" {
		t.Errorf("columns %v", tbl.Columns)
	}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil || v <= 0 || v > 60 {
			t.Errorf("implausible throughput cell %q", row[1])
		}
	}
}

func TestTable2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := tinyOptions()
	o.Duration = 20 * sim.Second
	o.Warmup = 10 * sim.Second
	tbl, err := Table2(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 { // 10 stations + total
		t.Fatalf("rows = %d, want 11", len(tbl.Rows))
	}
	total, err := strconv.ParseFloat(tbl.Rows[10][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if total < 15 || total > 30 {
		t.Errorf("total throughput %.2f Mbps implausible", total)
	}
}

func TestChurnRunsAndTracksN(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := tinyOptions()
	pts, err := sweep.Expand(churnGrid(o, SchemeWTOP))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("churn grid expanded to %d points, want 2 topologies", len(pts))
	}
	res, err := runChurn(&pts[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	// The active-node series must step through the schedule values.
	seen := map[int]bool{}
	for _, v := range res.ActiveSeries.Values {
		seen[int(v)] = true
	}
	for _, n := range churnPhases {
		if !seen[n] {
			t.Errorf("active series never showed %d stations", n)
		}
	}
	dcf, err := sweep.Expand(churnGrid(o, SchemeDCF))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runChurn(&dcf[0].Spec); err == nil {
		t.Error("churn accepted a non-adaptive scheme")
	}
}
