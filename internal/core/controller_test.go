package core

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestWTOPControlBlock(t *testing.T) {
	w := NewWTOP(WTOPConfig{})
	ctrl := w.Control()
	if ctrl.Scheme != frame.ControlWTOP {
		t.Errorf("scheme = %v", ctrl.Scheme)
	}
	// First plus-probe in log space: exp(ln 0.5 + b_2) ≈ 1.1, clamped to
	// the MaxP = 0.9 cap.
	if math.Abs(ctrl.P-0.9) > 1e-12 {
		t.Errorf("first probe P = %v, want clamp at 0.9", ctrl.P)
	}
	if w.Name() != "wTOP-CSMA" {
		t.Error("name wrong")
	}
}

func TestWTOPDefaultsRespectAlgorithm1(t *testing.T) {
	w := NewWTOP(WTOPConfig{})
	if w.PVal() != 0.5 {
		t.Errorf("initial pval = %v, want 0.5", w.PVal())
	}
	if w.Iteration() != 2 {
		t.Errorf("initial k = %d, want 2", w.Iteration())
	}
	// Probes must never exceed 0.9 (Algorithm 1's clamp).
	w.OnWindowEnd(1e12) // absurd positive gradient pressure
	w.OnWindowEnd(0)
	if w.Control().P > 0.9 {
		t.Errorf("probe %v exceeded Algorithm 1's 0.9 cap", w.Control().P)
	}
}

func TestWTOPPanicsOnEmptyInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty probe interval accepted")
		}
	}()
	NewWTOP(WTOPConfig{MinP: 0.9, MaxP: 0.5})
}

// analyticThroughput builds a measurement function from the paper's
// Eq. (3) model plus relative Gaussian noise — the cleanest closed-loop
// test of wTOP-CSMA short of the full simulator.
func analyticThroughput(n int, noise float64, rng *sim.RNG) (measure func(p float64) float64, pstar float64, m model.PPersistent) {
	m = model.PPersistent{PHY: model.PaperPHY()}
	w := model.UnitWeights(n)
	pstar = m.OptimalP(w)
	measure = func(p float64) float64 {
		s := m.SystemThroughput(p, w)
		return s * (1 + noise*rng.NormFloat64())
	}
	return measure, pstar, m
}

func TestWTOPConvergesOnAnalyticModel(t *testing.T) {
	for _, n := range []int{10, 40} {
		rng := sim.NewRNG(int64(n))
		measure, pstar, m := analyticThroughput(n, 0.05, rng)
		w := NewWTOP(WTOPConfig{Scale: m.PHY.BitRate})
		for i := 0; i < 3000; i++ {
			w.OnWindowEnd(measure(w.Control().P))
		}
		// Converged throughput within a few percent of the optimum.
		// (pval itself can sit on a flat shoulder of the objective, so we
		// assert on S; the ±b_k probe bias keeps a small residual gap.)
		sOpt := m.SystemThroughput(pstar, model.UnitWeights(n))
		sGot := m.SystemThroughput(w.PVal(), model.UnitWeights(n))
		if sGot < 0.93*sOpt {
			t.Errorf("N=%d: S(pval)=%v < 95%% of S(p*)=%v (pval=%v, p*=%v)",
				n, sGot/1e6, sOpt/1e6, w.PVal(), pstar)
		}
	}
}

func TestTORAControlBlock(t *testing.T) {
	c := NewTORA(TORAConfig{})
	ctrl := c.Control()
	if ctrl.Scheme != frame.ControlTORA {
		t.Errorf("scheme = %v", ctrl.Scheme)
	}
	if ctrl.Stage != 0 {
		t.Errorf("initial stage = %d, want 0", ctrl.Stage)
	}
	if c.Name() != "TORA-CSMA" {
		t.Error("name wrong")
	}
	if c.P0Val() != 0.5 || c.J() != 0 {
		t.Errorf("initial state (%v, %d), want (0.5, 0)", c.P0Val(), c.J())
	}
}

func TestTORAStageSwitchUp(t *testing.T) {
	// Feed measurements that always favour the minus probe: pval walks
	// down; at δl the stage must increment and pval re-centre at 0.5.
	c := NewTORA(TORAConfig{M: 7})
	for i := 0; i < 500 && c.J() == 0; i++ {
		c.OnWindowEnd(0) // plus window: bad
		c.OnWindowEnd(1) // minus window: good → gradient pushes p0 down
	}
	if c.J() != 1 {
		t.Fatalf("stage never incremented; p0 = %v", c.P0Val())
	}
	if c.P0Val() != 0.5 {
		t.Errorf("pval = %v after switch, want 0.5", c.P0Val())
	}
	if c.StageSwitches() != 1 {
		t.Errorf("switches = %d, want 1", c.StageSwitches())
	}
}

func TestTORAStageSwitchDownAndBoundary(t *testing.T) {
	c := NewTORA(TORAConfig{M: 7, InitialJ: 2})
	// Favour the plus probe: pval walks up; stage must decrement at δh.
	for i := 0; i < 500 && c.J() == 2; i++ {
		c.OnWindowEnd(1)
		c.OnWindowEnd(0)
	}
	if c.J() != 1 {
		t.Fatalf("stage never decremented; p0 = %v", c.P0Val())
	}
	// Keep pushing: j reaches 0 and must stop there even at p0 ≈ 1.
	for i := 0; i < 2000; i++ {
		c.OnWindowEnd(1)
		c.OnWindowEnd(0)
	}
	if c.J() != 0 {
		t.Errorf("stage = %d, want boundary 0", c.J())
	}
	if c.P0Val() < 0.9 {
		t.Errorf("at the boundary p0 should pin high, got %v", c.P0Val())
	}
}

func TestTORAStageCapsAtMMinus1(t *testing.T) {
	c := NewTORA(TORAConfig{M: 3})
	for i := 0; i < 4000; i++ {
		c.OnWindowEnd(0)
		c.OnWindowEnd(1)
	}
	if c.J() != 2 {
		t.Errorf("stage = %d, want cap at M−1 = 2", c.J())
	}
}

func TestTORAConvergesOnAnalyticRandomReset(t *testing.T) {
	// Closed loop against the appendix fixed-point model: measurements
	// come from RandomReset throughput at the broadcast (j, p0). The
	// controller must reach a near-optimal operating point.
	rr := model.RandomReset{PHY: model.PaperPHY(), Backoff: model.PaperBackoff(), N: 20}
	rng := sim.NewRNG(77)
	c := NewTORA(TORAConfig{M: rr.Backoff.M, Scale: rr.PHY.BitRate})
	for i := 0; i < 3000; i++ {
		ctrl := c.Control()
		s, err := rr.Throughput(int(ctrl.Stage), ctrl.P0)
		if err != nil {
			t.Fatal(err)
		}
		c.OnWindowEnd(s * (1 + 0.05*rng.NormFloat64()))
	}
	_, _, bestS := rr.OptimalJP(0.05)
	got, err := rr.Throughput(c.J(), c.P0Val())
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.93*bestS {
		t.Errorf("TORA settled at (j=%d, p0=%v) with S=%v Mbps < 93%% of best %v Mbps",
			c.J(), c.P0Val(), got/1e6, bestS/1e6)
	}
}

func TestTORAPanicsOnBadConfig(t *testing.T) {
	cases := []TORAConfig{
		{M: -1},
		{M: 7, InitialJ: 7},
		{M: 7, DeltaLow: 0.9, DeltaHigh: 0.8},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted: %+v", i, cfg)
				}
			}()
			NewTORA(cfg)
		}()
	}
}

// Controllers must satisfy the shared interface.
var (
	_ Controller = (*WTOP)(nil)
	_ Controller = (*TORA)(nil)
)
