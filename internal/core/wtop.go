package core

import (
	"fmt"
	"math"

	"repro/internal/frame"
)

// Controller is the AP-side tuning loop shared by wTOP-CSMA and
// TORA-CSMA. The AP measures throughput over consecutive UPDATE_PERIOD
// windows and calls OnWindowEnd with each estimate; Control returns the
// values to broadcast (in ACKs or beacons) for the *next* window.
type Controller interface {
	// Control returns the control block to broadcast right now.
	Control() frame.Control
	// OnWindowEnd feeds the throughput (bits/second) measured over the
	// window that just closed.
	OnWindowEnd(throughput float64)
	// Name identifies the controller in reports.
	Name() string
}

// WTOPConfig parameterises the wTOP-CSMA controller of Algorithm 1.
// Zero-valued fields assume the defaults described below.
type WTOPConfig struct {
	// InitialP is the starting pval (0.5, as in Algorithm 1).
	InitialP float64
	// MinP/MaxP bound the broadcast probe values. Algorithm 1 clamps to
	// [0, 0.9]; we floor at a small ε > 0 so stations never freeze.
	MinP, MaxP float64
	// Gains is the Kiefer–Wolfowitz schedule (a_k = 1/k, b_k = k^(−1/3)).
	Gains GainSchedule
	// Scale normalises throughput measurements; set it to the channel
	// bit rate so measured values lie in [0, 1]. Zero means 1.
	Scale float64
	// LinearSpace, when true, runs the iteration on p directly as the
	// paper's pseudo-code is written. The default (false) iterates on
	// ln p: the optimal p scales as Θ(1/N) (Eq. 8), so a fixed additive
	// probe offset b_k spans many octaves of p for large N, while a
	// multiplicative probe keeps the finite-difference window matched to
	// the curvature of S at every scale. The paper's own convergence
	// plots (Figs. 2, 4, 9) are drawn against log p for the same reason.
	// Quasi-concavity and the KW regularity conditions survive the
	// monotone reparametrisation, so Theorem 2's guarantee carries over.
	LinearSpace bool
}

// WTOP is the wTOP-CSMA access-point controller: Kiefer–Wolfowitz on the
// common control variable p, broadcast to stations which then apply their
// weight mapping locally (Lemma 1). The AP needs no knowledge of the
// stations' weights — the property the paper highlights.
type WTOP struct {
	kw       *KieferWolfowitz
	log      bool
	scale    float64
	lastPlus float64
}

// NewWTOP builds the controller, applying the paper's defaults for any
// zero config fields.
func NewWTOP(cfg WTOPConfig) *WTOP {
	if cfg.InitialP == 0 {
		cfg.InitialP = 0.5
	}
	if cfg.MaxP == 0 {
		cfg.MaxP = 0.9
	}
	if cfg.MinP == 0 {
		cfg.MinP = 1e-4
	}
	if cfg.Gains == nil {
		cfg.Gains = PaperGains()
	}
	if cfg.MinP >= cfg.MaxP {
		panic(fmt.Sprintf("core: wTOP probe interval [%v, %v] empty", cfg.MinP, cfg.MaxP))
	}
	w := &WTOP{log: !cfg.LinearSpace, scale: cfg.Scale}
	if w.scale == 0 {
		w.scale = 1
	}
	if w.log {
		w.kw = NewKieferWolfowitz(math.Log(cfg.InitialP), math.Log(cfg.MinP), math.Log(cfg.MaxP), cfg.Gains)
	} else {
		w.kw = NewKieferWolfowitz(cfg.InitialP, cfg.MinP, cfg.MaxP, cfg.Gains)
	}
	// Controllers always use the self-normalising relative gradient; the
	// Scale field is kept for expressing the dead-air threshold in
	// absolute units.
	w.kw.Relative = true
	return w
}

func (w *WTOP) fromIterate(x float64) float64 {
	if w.log {
		return math.Exp(x)
	}
	return x
}

func (w *WTOP) toIterate(p float64) float64 {
	if w.log {
		return math.Log(p)
	}
	return p
}

// Control implements Controller: broadcast the current probe value of p.
func (w *WTOP) Control() frame.Control {
	return frame.Control{Scheme: frame.ControlWTOP, P: w.fromIterate(w.kw.Probe())}
}

// deadThreshold is the normalised throughput below which a measurement
// window counts as "dead air": less than 0.1% channel utilisation.
const deadThreshold = 1e-3

// OnWindowEnd implements Controller.
//
// Beyond the plain Kiefer–Wolfowitz update it applies a collapse-escape
// rule: when *both* windows of a probe pair measure essentially zero
// throughput, the channel is in collision collapse and the local gradient
// carries no information, so the iterate drifts one probe-width toward
// smaller p. The rule is sound because the saturated system always has
// S(MinP) > 0 — dead air at the current probes can only mean p is far too
// high. (In the paper's ns-3 runs residual measurement noise performs
// this escape implicitly; making it explicit keeps convergence
// deterministic for any starting point.)
func (w *WTOP) OnWindowEnd(throughput float64) {
	if w.kw.Phase() == PhasePlus {
		w.lastPlus = throughput
		w.kw.Measure(throughput)
		return
	}
	bothDead := w.lastPlus/w.scale < deadThreshold && throughput/w.scale < deadThreshold
	w.kw.Measure(throughput)
	if bothDead {
		w.kw.Reset(w.kw.X() - w.kw.Gains.B(w.kw.K()))
	}
}

// PVal returns the current candidate optimum pval (distinct from the
// probe value, which carries the ±b_k perturbation).
func (w *WTOP) PVal() float64 { return w.fromIterate(w.kw.X()) }

// Iteration returns the Kiefer–Wolfowitz iteration index k.
func (w *WTOP) Iteration() int { return w.kw.K() }

// Restart re-centres the controller at p0 and rewinds the gain schedule;
// an operator can invoke it after a known regime change (e.g. a large
// batch of arrivals) to recover fast adaptation.
func (w *WTOP) Restart(p0 float64) { w.kw.Restart(w.toIterate(p0)) }

// Name implements Controller.
func (w *WTOP) Name() string { return "wTOP-CSMA" }
