package core

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPaperGainsSatisfyConditions(t *testing.T) {
	g := PaperGains()
	if err := g.Validate(); err != nil {
		t.Fatalf("paper gains rejected: %v", err)
	}
	if g.A(1) != 1 || g.A(4) != 0.25 {
		t.Errorf("a_k wrong: a1=%v a4=%v", g.A(1), g.A(4))
	}
	if math.Abs(g.B(8)-0.5) > 1e-12 {
		t.Errorf("b_8 = %v, want 8^(-1/3) = 0.5", g.B(8))
	}
}

func TestGainValidationRejectsBadSchedules(t *testing.T) {
	bad := []PowerGains{
		{A0: 0, AExp: 1, B0: 1, BExp: 1.0 / 3}, // zero scale
		{A0: 1, AExp: 2, B0: 1, BExp: 1.0 / 3}, // Σa_k finite
		{A0: 1, AExp: 1, B0: 1, BExp: 0},       // b_k constant
		{A0: 1, AExp: 0.5, B0: 1, BExp: 0.4},   // Σ a_k b_k diverges
		{A0: 1, AExp: 1, B0: 1, BExp: 0.8},     // Σ (a_k/b_k)² diverges
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule %+v accepted", i, g)
		}
	}
}

func TestKWProbeAlternates(t *testing.T) {
	// Use a gentle probe scale so b_2 fits inside the interval and exact
	// probe values can be asserted.
	gains := PowerGains{A0: 1, AExp: 1, B0: 0.1, BExp: 1.0 / 3}
	kw := NewKieferWolfowitz(0.5, 0, 1, gains)
	if kw.Phase() != PhasePlus {
		t.Fatal("initial phase not plus")
	}
	b := gains.B(2)
	if got := kw.Probe(); math.Abs(got-(0.5+b)) > 1e-12 {
		t.Errorf("plus probe = %v, want %v", got, 0.5+b)
	}
	if kw.Measure(1.0) {
		t.Error("update applied after only the plus window")
	}
	if kw.Phase() != PhaseMinus {
		t.Error("phase did not advance to minus")
	}
	if got := kw.Probe(); math.Abs(got-(0.5-b)) > 1e-12 {
		t.Errorf("minus probe = %v, want %v", got, 0.5-b)
	}
	if !kw.Measure(0.5) {
		t.Error("no update after completing the pair")
	}
	// Positive gradient (yPlus > yMinus) must move x up.
	if kw.X() <= 0.5 {
		t.Errorf("x = %v did not increase on positive gradient", kw.X())
	}
	if kw.K() != 3 {
		t.Errorf("k = %d, want 3", kw.K())
	}
	if kw.Probes() != 2 {
		t.Errorf("probes = %d, want 2", kw.Probes())
	}
	if PhasePlus.String() != "plus" || PhaseMinus.String() != "minus" {
		t.Error("phase names wrong")
	}
}

func TestKWProjection(t *testing.T) {
	kw := NewKieferWolfowitz(0.85, 0, 0.9, PaperGains())
	// Probe must not exceed Hi even though x + b_k would.
	if got := kw.Probe(); got > 0.9 {
		t.Errorf("probe %v exceeds Hi", got)
	}
	// Force a huge positive gradient; the iterate must clamp at Hi.
	kw.Measure(1e9)
	kw.Measure(0)
	if kw.X() != 0.9 {
		t.Errorf("x = %v, want clamped to 0.9", kw.X())
	}
	// And a huge negative gradient clamps at Lo.
	kw.Measure(0)
	kw.Measure(1e9)
	if kw.X() != 0 {
		t.Errorf("x = %v, want clamped to 0", kw.X())
	}
}

func TestKWConstructorPanics(t *testing.T) {
	for _, c := range []struct{ x0, lo, hi float64 }{
		{0.5, 1, 0},
		{1.5, 0, 1},
		{-0.1, 0, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", c)
				}
			}()
			NewKieferWolfowitz(c.x0, c.lo, c.hi, PaperGains())
		}()
	}
}

// noisyObjective simulates measuring a quasi-concave function with
// additive noise — the synthetic stand-in for a throughput measurement
// window.
func noisyObjective(f func(float64) float64, noise float64, rng *sim.RNG) func(float64) float64 {
	return func(x float64) float64 {
		return f(x) + noise*rng.NormFloat64()
	}
}

func TestKWConvergesOnQuadratic(t *testing.T) {
	// S(x) = 1 − 4(x−0.3)², optimum at 0.3, measured with σ = 0.02 noise.
	rng := sim.NewRNG(11)
	measure := noisyObjective(func(x float64) float64 {
		return 1 - 4*(x-0.3)*(x-0.3)
	}, 0.02, rng)
	kw := NewKieferWolfowitz(0.8, 0, 1, PaperGains())
	for i := 0; i < 4000; i++ {
		kw.Measure(measure(kw.Probe()))
	}
	if err := math.Abs(kw.X() - 0.3); err > 0.05 {
		t.Errorf("converged to %v, want 0.3 ± 0.05", kw.X())
	}
}

func TestKWConvergesOnAsymmetricBellCurve(t *testing.T) {
	// A skewed quasi-concave objective shaped like the throughput curves
	// of Fig. 2: sharp rise, long decay. Optimum at 0.1.
	rng := sim.NewRNG(13)
	f := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return x / 0.1 * math.Exp(1-x/0.1)
	}
	measure := noisyObjective(f, 0.05, rng)
	kw := NewKieferWolfowitz(0.5, 0.001, 1, PaperGains())
	for i := 0; i < 6000; i++ {
		kw.Measure(measure(kw.Probe()))
	}
	if err := math.Abs(kw.X() - 0.1); err > 0.05 {
		t.Errorf("converged to %v, want 0.1 ± 0.05", kw.X())
	}
}

func TestKWConvergenceFromManyStarts(t *testing.T) {
	// Regardless of the starting point, the iterate must approach the
	// optimum of a clean quasi-concave objective.
	for _, x0 := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		rng := sim.NewRNG(int64(100 * x0))
		measure := noisyObjective(func(x float64) float64 {
			return -math.Abs(x - 0.6)
		}, 0.01, rng)
		kw := NewKieferWolfowitz(x0, 0, 1, PaperGains())
		for i := 0; i < 4000; i++ {
			kw.Measure(measure(kw.Probe()))
		}
		if math.Abs(kw.X()-0.6) > 0.07 {
			t.Errorf("start %v: converged to %v, want 0.6", x0, kw.X())
		}
	}
}

func TestKWScaleNormalisation(t *testing.T) {
	// With Scale = 1e6 the same relative trajectory results from
	// measurements expressed in "bits/s" as from normalised units.
	mkMeasure := func(mult float64) func(float64) float64 {
		rng := sim.NewRNG(21)
		return func(x float64) float64 {
			return mult * (1 - (x-0.4)*(x-0.4) + 0.01*rng.NormFloat64())
		}
	}
	a := NewKieferWolfowitz(0.7, 0, 1, PaperGains())
	measureA := mkMeasure(1)
	b := NewKieferWolfowitz(0.7, 0, 1, PaperGains())
	b.Scale = 1e6
	measureB := mkMeasure(1e6)
	for i := 0; i < 500; i++ {
		a.Measure(measureA(a.Probe()))
		b.Measure(measureB(b.Probe()))
	}
	if math.Abs(a.X()-b.X()) > 1e-9 {
		t.Errorf("scaled trajectory diverged: %v vs %v", a.X(), b.X())
	}
}

func TestKWResetAndRestart(t *testing.T) {
	kw := NewKieferWolfowitz(0.5, 0, 1, PaperGains())
	for i := 0; i < 20; i++ {
		kw.Measure(float64(i))
	}
	k := kw.K()
	kw.Reset(0.7)
	if kw.X() != 0.7 || kw.K() != k {
		t.Errorf("Reset changed k or missed x: x=%v k=%d", kw.X(), kw.K())
	}
	if kw.Phase() != PhasePlus {
		t.Error("Reset did not return to the plus phase")
	}
	kw.Restart(0.5)
	if kw.K() != 2 {
		t.Errorf("Restart left k = %d, want 2", kw.K())
	}
	// Reset clamps out-of-range targets.
	kw.Reset(5)
	if kw.X() != 1 {
		t.Errorf("Reset(5) gave x = %v, want clamp at 1", kw.X())
	}
}

func TestKWRewindIteration(t *testing.T) {
	kw := NewKieferWolfowitz(0.5, 0, 1, PaperGains())
	kw.Measure(1)
	kw.Measure(0) // k: 2 → 3
	kw.RewindIteration()
	if kw.K() != 2 {
		t.Errorf("k = %d after rewind, want 2", kw.K())
	}
	kw.RewindIteration() // must not go below 2
	if kw.K() != 2 {
		t.Errorf("k = %d, rewind must floor at 2", kw.K())
	}
}
