package core

import (
	"fmt"

	"repro/internal/frame"
)

// TORAConfig parameterises the TORA-CSMA controller of Algorithm 2.
// Zero-valued fields assume the paper's defaults.
type TORAConfig struct {
	// M is the highest backoff stage (CWmax = 2^M·CWmin).
	M int
	// InitialP0 is the starting reset probability pval (0.5).
	InitialP0 float64
	// InitialJ is the starting reset stage (0).
	InitialJ int
	// DeltaLow and DeltaHigh are the stage-switch thresholds δl ≈ 0 and
	// δh ≈ 1. Defaults 0.05 and 0.95.
	DeltaLow, DeltaHigh float64
	// Gains is the Kiefer–Wolfowitz schedule.
	Gains GainSchedule
	// Scale normalises throughput measurements (set to the bit rate).
	Scale float64
}

// TORA is the TORA-CSMA access-point controller: Kiefer–Wolfowitz on the
// RandomReset reset probability p0 for a fixed stage j, plus the stage
// walk of Algorithm 2 — when the tuned p0 pins at ≈0 the optimum lies at
// a slower reset (j+1); when it pins at ≈1 the optimum lies at a more
// aggressive reset (j−1). On a stage switch pval re-centres at 0.5 and,
// exactly as in Algorithm 2, the iteration counter k is *not* advanced.
type TORA struct {
	kw        *KieferWolfowitz
	m         int
	j         int
	deltaLow  float64
	deltaHigh float64
	switches  int
}

// NewTORA builds the controller, applying defaults for zero fields.
func NewTORA(cfg TORAConfig) *TORA {
	if cfg.M == 0 {
		cfg.M = 7
	}
	if cfg.M < 1 {
		panic(fmt.Sprintf("core: TORA needs M ≥ 1, got %d", cfg.M))
	}
	if cfg.InitialP0 == 0 {
		cfg.InitialP0 = 0.5
	}
	if cfg.DeltaLow == 0 {
		cfg.DeltaLow = 0.05
	}
	if cfg.DeltaHigh == 0 {
		cfg.DeltaHigh = 0.95
	}
	if cfg.Gains == nil {
		cfg.Gains = PaperGains()
	}
	if cfg.InitialJ < 0 || cfg.InitialJ > cfg.M-1 {
		panic(fmt.Sprintf("core: initial stage %d outside {0..%d}", cfg.InitialJ, cfg.M-1))
	}
	if cfg.DeltaLow < 0 || cfg.DeltaHigh > 1 || cfg.DeltaLow >= cfg.DeltaHigh {
		panic(fmt.Sprintf("core: thresholds (%v, %v) invalid", cfg.DeltaLow, cfg.DeltaHigh))
	}
	kw := NewKieferWolfowitz(cfg.InitialP0, 0, 1, cfg.Gains)
	kw.Relative = true // self-normalising gradient; see KieferWolfowitz.Relative
	return &TORA{
		kw:        kw,
		m:         cfg.M,
		j:         cfg.InitialJ,
		deltaLow:  cfg.DeltaLow,
		deltaHigh: cfg.DeltaHigh,
	}
}

// Control implements Controller: broadcast the probe p0 and the stage j.
func (t *TORA) Control() frame.Control {
	return frame.Control{
		Scheme: frame.ControlTORA,
		P0:     t.kw.Probe(),
		Stage:  uint8(t.j),
	}
}

// OnWindowEnd implements Controller: feed the KW update and, after each
// completed plus/minus pair, apply Algorithm 2's stage-switch rule.
func (t *TORA) OnWindowEnd(throughput float64) {
	if !t.kw.Measure(throughput) {
		return // only the plus window consumed; no update yet
	}
	switch {
	case t.kw.X() <= t.deltaLow && t.j < t.m-1:
		t.j++
		t.kw.Reset(0.5)
		t.kw.RewindIteration()
		t.switches++
	case t.kw.X() >= t.deltaHigh && t.j > 0:
		t.j--
		t.kw.Reset(0.5)
		t.kw.RewindIteration()
		t.switches++
	}
}

// J returns the current reset stage j.
func (t *TORA) J() int { return t.j }

// P0Val returns the current candidate optimum reset probability.
func (t *TORA) P0Val() float64 { return t.kw.X() }

// Iteration returns the Kiefer–Wolfowitz iteration index k.
func (t *TORA) Iteration() int { return t.kw.K() }

// StageSwitches returns how many times the controller walked j.
func (t *TORA) StageSwitches() int { return t.switches }

// Name implements Controller.
func (t *TORA) Name() string { return "TORA-CSMA" }
