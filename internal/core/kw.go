// Package core implements the paper's contribution: Kiefer–Wolfowitz
// stochastic approximation applied to online MAC tuning, packaged as the
// two AP-side controllers of Algorithms 1 and 2 — wTOP-CSMA (tunes the
// p-persistent control variable p) and TORA-CSMA (tunes the RandomReset
// reset probability p0 and stage j).
//
// The controllers are event-free and engine-agnostic: the surrounding
// system feeds them throughput measurements per UPDATE_PERIOD window and
// broadcasts the control values they emit. That makes the same code
// testable against synthetic objectives (convergence proofs in the test
// suite), the analytic model, and both simulators.
package core

import (
	"fmt"
	"math"
)

// GainSchedule supplies the Kiefer–Wolfowitz gain sequences. The classic
// convergence conditions require b_k → 0, Σ a_k = ∞, Σ a_k·b_k < ∞ and
// Σ (a_k/b_k)² < ∞.
type GainSchedule interface {
	// A returns the step gain a_k for iteration k ≥ 1.
	A(k int) float64
	// B returns the probe offset b_k for iteration k ≥ 1.
	B(k int) float64
}

// PowerGains is the standard polynomial schedule a_k = A0/k^AExp,
// b_k = B0/k^BExp. The paper uses a_k = 1/k, b_k = 1/k^(1/3), which
// satisfies all four summability conditions.
type PowerGains struct {
	A0, AExp float64
	B0, BExp float64
}

// PaperGains returns the schedule used in Algorithms 1 and 2.
func PaperGains() PowerGains {
	return PowerGains{A0: 1, AExp: 1, B0: 1, BExp: 1.0 / 3}
}

// A implements GainSchedule.
func (g PowerGains) A(k int) float64 { return g.A0 / math.Pow(float64(k), g.AExp) }

// B implements GainSchedule.
func (g PowerGains) B(k int) float64 { return g.B0 / math.Pow(float64(k), g.BExp) }

// Validate checks the Kiefer–Wolfowitz summability conditions for a
// polynomial schedule:
//
//	Σ a_k = ∞        ⇔ AExp ≤ 1
//	b_k → 0          ⇔ BExp > 0
//	Σ a_k·b_k < ∞    ⇔ AExp + BExp > 1
//	Σ (a_k/b_k)² < ∞ ⇔ 2·(AExp − BExp) > 1
func (g PowerGains) Validate() error {
	switch {
	case g.A0 <= 0 || g.B0 <= 0:
		return fmt.Errorf("core: gain scales A0=%v B0=%v must be positive", g.A0, g.B0)
	case g.AExp > 1:
		return fmt.Errorf("core: AExp=%v > 1 makes Σ a_k finite", g.AExp)
	case g.BExp <= 0:
		return fmt.Errorf("core: BExp=%v ≤ 0 keeps b_k from vanishing", g.BExp)
	case g.AExp+g.BExp <= 1:
		return fmt.Errorf("core: AExp+BExp=%v ≤ 1 makes Σ a_k·b_k diverge", g.AExp+g.BExp)
	case 2*(g.AExp-g.BExp) <= 1:
		return fmt.Errorf("core: 2(AExp−BExp)=%v ≤ 1 makes Σ (a_k/b_k)² diverge", 2*(g.AExp-g.BExp))
	}
	return nil
}

// Phase tells which probe window the optimiser is in.
type Phase int

// Probe phases: the optimiser alternates a "plus" window at x+b_k with a
// "minus" window at x−b_k, then applies one gradient step.
const (
	PhasePlus Phase = iota
	PhaseMinus
)

// String names the phase.
func (p Phase) String() string {
	if p == PhasePlus {
		return "plus"
	}
	return "minus"
}

// KieferWolfowitz is the finite-difference stochastic approximation
// optimiser of Section III-B, maximising an unknown function S(x) from
// noisy paired measurements:
//
//	x_{k+1} = x_k + a_k · (y_plus − y_minus) / b_k
//
// where y_plus and y_minus estimate S(x_k + b_k) and S(x_k − b_k). The
// iterate is projected onto [Lo, Hi] after every update, matching the
// clamping in Algorithm 1 (p kept within [0, 0.9]).
type KieferWolfowitz struct {
	Gains GainSchedule
	// Lo and Hi bound the probe points (projection interval).
	Lo, Hi float64
	// Scale divides the measurement difference to non-dimensionalise the
	// gradient: with throughput measured in bits/second the raw gradient
	// would dwarf a_k. Algorithm 1 sidesteps this by measuring in
	// bytes/period; Scale makes the normalisation explicit. Zero means 1.
	Scale float64
	// Relative, when true, normalises each finite difference by the mean
	// of the probe pair, so the update estimates d(ln S)/dx rather than
	// dS/dx. This makes the step size scale-free (no Scale tuning), large
	// on the exponential collision-collapse tail where S decays by
	// orders of magnitude, and small near the optimum. Since ln is a
	// strictly monotone transform, quasi-concavity — and hence the
	// Kiefer–Wolfowitz convergence point — is unchanged. The gradient
	// magnitude is bounded by 2/b_k because |y⁺−y⁻| ≤ y⁺+y⁻ for
	// non-negative measurements.
	Relative bool

	x      float64
	k      int
	phase  Phase
	yPlus  float64
	probes int
}

// NewKieferWolfowitz returns an optimiser starting at x0 with the given
// projection interval. It starts at iteration k = 2 as Algorithm 1 does
// (avoiding the overly aggressive a_1 = 1, b_1 = 1 first step).
func NewKieferWolfowitz(x0, lo, hi float64, gains GainSchedule) *KieferWolfowitz {
	if lo >= hi {
		panic(fmt.Sprintf("core: projection interval [%v, %v] empty", lo, hi))
	}
	if x0 < lo || x0 > hi {
		panic(fmt.Sprintf("core: x0=%v outside [%v, %v]", x0, lo, hi))
	}
	return &KieferWolfowitz{Gains: gains, Lo: lo, Hi: hi, x: x0, k: 2}
}

// X returns the current iterate x_k (the candidate optimum).
func (kw *KieferWolfowitz) X() float64 { return kw.x }

// K returns the current iteration index.
func (kw *KieferWolfowitz) K() int { return kw.k }

// Phase returns which probe window the optimiser expects a measurement
// for next.
func (kw *KieferWolfowitz) Phase() Phase { return kw.phase }

// Probe returns the control value to apply during the upcoming
// measurement window: x + b_k in the plus phase, x − b_k in the minus
// phase, projected onto [Lo, Hi].
func (kw *KieferWolfowitz) Probe() float64 {
	b := kw.Gains.B(kw.k)
	if kw.phase == PhasePlus {
		return kw.clamp(kw.x + b)
	}
	return kw.clamp(kw.x - b)
}

// Measure feeds the throughput estimate observed during the current probe
// window and advances the phase. On completing a minus window it applies
// the Kiefer–Wolfowitz update and returns true; the new iterate is then
// available from X.
func (kw *KieferWolfowitz) Measure(y float64) (updated bool) {
	kw.probes++
	if kw.phase == PhasePlus {
		kw.yPlus = y
		kw.phase = PhaseMinus
		return false
	}
	den := kw.Scale
	if kw.Relative {
		den = (kw.yPlus + y) / 2
	}
	if den <= 0 {
		den = 1 // degenerate pair (both zero): gradient carries no signal
	}
	a, b := kw.Gains.A(kw.k), kw.Gains.B(kw.k)
	grad := (kw.yPlus - y) / den / b
	kw.x = kw.clamp(kw.x + a*grad)
	kw.k++
	kw.phase = PhasePlus
	return true
}

// Reset re-centres the iterate (used by TORA-CSMA's stage switches, which
// reset pval to 0.5) without restarting the gain schedule.
func (kw *KieferWolfowitz) Reset(x0 float64) {
	kw.x = kw.clamp(x0)
	kw.phase = PhasePlus
}

// RewindIteration steps the gain schedule back by one iteration (never
// below the starting index 2). Algorithm 2 increments k only on ordinary
// updates: a stage switch re-centres pval *without* consuming an
// iteration, which this method expresses on top of Measure's unconditional
// advance.
func (kw *KieferWolfowitz) RewindIteration() {
	if kw.k > 2 {
		kw.k--
	}
}

// Restart re-centres the iterate and rewinds the gain schedule to k = 2,
// regaining large step sizes — useful after a detected regime change
// (node churn) when the schedule has annealed too far.
func (kw *KieferWolfowitz) Restart(x0 float64) {
	kw.Reset(x0)
	kw.k = 2
}

// Probes returns the total number of measurement windows consumed.
func (kw *KieferWolfowitz) Probes() int { return kw.probes }

func (kw *KieferWolfowitz) clamp(x float64) float64 {
	switch {
	case x < kw.Lo:
		return kw.Lo
	case x > kw.Hi:
		return kw.Hi
	default:
		return x
	}
}
