package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: the iterate never leaves [Lo, Hi] and probes never leave the
// interval either, for any measurement sequence.
func TestKWIterateStaysProjected(t *testing.T) {
	prop := func(measurements []float64) bool {
		kw := NewKieferWolfowitz(0.5, 0.1, 0.9, PaperGains())
		for _, y := range measurements {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				y = 0
			}
			p := kw.Probe()
			if p < 0.1-1e-12 || p > 0.9+1e-12 {
				return false
			}
			kw.Measure(y)
			if kw.X() < 0.1-1e-12 || kw.X() > 0.9+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with the relative gradient, the per-update step magnitude is
// bounded by a_k·2/b_k for non-negative measurements.
func TestKWRelativeStepBounded(t *testing.T) {
	prop := func(yPlusRaw, yMinusRaw uint32) bool {
		kw := NewKieferWolfowitz(0.5, 0, 1, PaperGains())
		kw.Relative = true
		a, b := PaperGains().A(2), PaperGains().B(2)
		before := kw.X()
		kw.Measure(float64(yPlusRaw))
		kw.Measure(float64(yMinusRaw))
		step := math.Abs(kw.X() - before)
		// Projection can only shrink the step.
		return step <= a*2/b+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the update direction follows the measured difference — larger
// plus-window throughput never moves the iterate down, and vice versa.
func TestKWUpdateDirection(t *testing.T) {
	prop := func(aRaw, bRaw uint16) bool {
		yPlus, yMinus := float64(aRaw)+1, float64(bRaw)+1
		kw := NewKieferWolfowitz(0.5, 0, 1, PaperGains())
		kw.Relative = true
		kw.Measure(yPlus)
		kw.Measure(yMinus)
		switch {
		case yPlus > yMinus:
			return kw.X() >= 0.5
		case yPlus < yMinus:
			return kw.X() <= 0.5
		default:
			return kw.X() == 0.5
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TORA's stage stays within {0, …, M−1} under arbitrary
// measurement sequences.
func TestTORAStageStaysInRange(t *testing.T) {
	prop := func(measurements []uint16, mRaw uint8) bool {
		m := 2 + int(mRaw%7)
		c := NewTORA(TORAConfig{M: m})
		for _, v := range measurements {
			c.OnWindowEnd(float64(v))
			if c.J() < 0 || c.J() > m-1 {
				return false
			}
			if p0 := c.P0Val(); p0 < 0 || p0 > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: wTOP's broadcast probability stays within (0, MaxP] for any
// measurement stream, including adversarial all-zero ones.
func TestWTOPBroadcastStaysInRange(t *testing.T) {
	prop := func(measurements []uint8) bool {
		w := NewWTOP(WTOPConfig{Scale: 1})
		for _, v := range measurements {
			p := w.Control().P
			if p <= 0 || p > 0.9+1e-12 {
				return false
			}
			w.OnWindowEnd(float64(v) / 255)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The collapse-escape rule must never fire on healthy measurements: with
// throughput well above the dead threshold the trajectory matches a
// controller fed the same values with no escape opportunities.
func TestCollapseEscapeInertOnHealthyStreams(t *testing.T) {
	rng := sim.NewRNG(3)
	w := NewWTOP(WTOPConfig{Scale: 1})
	for i := 0; i < 200; i++ {
		w.OnWindowEnd(0.3 + 0.1*rng.Float64()) // 30–40% utilisation
	}
	// After 100 healthy pairs the iterate must be strictly inside the
	// interval (escape would pin it near MinP).
	if w.PVal() <= 2e-4 {
		t.Errorf("healthy stream drove pval to the floor: %v", w.PVal())
	}
}
