package mac

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/sim"
)

// MediumObserver is implemented by policies that adapt based on observed
// channel activity rather than own-transmission outcomes. The simulation
// engine calls ObserveTransmission each time the station senses a busy
// period begin, passing the number of idle slots the station observed
// since the previous busy period.
type MediumObserver interface {
	ObserveTransmission(idleSlots float64)
}

// IdleSense is the Heusse et al. (SIGCOMM 2005) algorithm, the paper's
// strongest fully-connected baseline. Every station measures n_i, the
// mean number of idle slots between consecutive transmissions on the
// medium, and drives it to a fixed target by AIMD on its contention
// window:
//
//	n_i ≥ target ⇒ CW ← α·CW   (channel too idle: be more aggressive)
//	n_i < target ⇒ CW ← CW + ε (too many collisions: back off)
//
// The paper's Section VI uses target = 3.1 idle slots per transmission,
// and its Table III shows precisely why a fixed target fails with hidden
// nodes: the optimal value becomes configuration-dependent.
type IdleSense struct {
	// Target is the desired mean idle slots per transmission.
	Target float64
	// Alpha is the multiplicative decrease factor applied to CW.
	Alpha float64
	// Epsilon is the additive increase applied to CW.
	Epsilon float64
	// MaxTrans is the number of observed transmissions per estimation
	// window.
	MaxTrans int
	// CWMin and CWMax bound the continuous contention window.
	CWMin, CWMax float64

	cw       float64
	idleSum  float64
	observed int
}

// IdleSenseConfig carries the tunables; zero fields take the published
// defaults (target 3.1 per the paper, α = 1/1.0666, ε = 6.0, 5
// transmissions per window).
type IdleSenseConfig struct {
	Target   float64
	Alpha    float64
	Epsilon  float64
	MaxTrans int
	CWMin    float64
	CWMax    float64
}

// NewIdleSense returns an IdleSense policy with defaults applied.
func NewIdleSense(cfg IdleSenseConfig) *IdleSense {
	is := &IdleSense{
		Target:   cfg.Target,
		Alpha:    cfg.Alpha,
		Epsilon:  cfg.Epsilon,
		MaxTrans: cfg.MaxTrans,
		CWMin:    cfg.CWMin,
		CWMax:    cfg.CWMax,
	}
	if is.Target == 0 {
		is.Target = 3.1
	}
	if is.Alpha == 0 {
		is.Alpha = 1 / 1.0666
	}
	if is.Epsilon == 0 {
		is.Epsilon = 6.0
	}
	if is.MaxTrans == 0 {
		is.MaxTrans = 5
	}
	if is.CWMin == 0 {
		is.CWMin = 4
	}
	if is.CWMax == 0 {
		is.CWMax = 4096
	}
	if is.Target <= 0 || is.Alpha <= 0 || is.Alpha >= 1 || is.Epsilon <= 0 ||
		is.CWMin < 1 || is.CWMax < is.CWMin {
		panic(fmt.Sprintf("mac: invalid IdleSense config %+v", cfg))
	}
	is.cw = 64 // neutral starting window; AIMD converges from anywhere
	return is
}

// CW returns the current (continuous) contention window.
func (is *IdleSense) CW() float64 { return is.cw }

// ObserveTransmission implements MediumObserver: fold in one observed
// busy period preceded by idleSlots idle slots, and run the AIMD update
// once MaxTrans observations have accumulated.
func (is *IdleSense) ObserveTransmission(idleSlots float64) {
	is.idleSum += idleSlots
	is.observed++
	if is.observed < is.MaxTrans {
		return
	}
	ni := is.idleSum / float64(is.observed)
	is.idleSum, is.observed = 0, 0
	if ni >= is.Target {
		is.cw *= is.Alpha
	} else {
		is.cw += is.Epsilon
	}
	is.cw = math.Min(math.Max(is.cw, is.CWMin), is.CWMax)
}

// NextBackoff implements Policy: uniform over the current window.
func (is *IdleSense) NextBackoff(rng *sim.RNG) int {
	return rng.UniformWindow(int(math.Round(is.cw)))
}

// OnSuccess implements Policy. IdleSense does not react to outcomes; its
// feedback loop runs entirely on medium observations.
func (is *IdleSense) OnSuccess(*sim.RNG) {}

// OnFailure implements Policy.
func (is *IdleSense) OnFailure(*sim.RNG) {}

// OnControl implements Policy; IdleSense is fully distributed.
func (is *IdleSense) OnControl(frame.Control) {}

// Name implements Policy.
func (is *IdleSense) Name() string { return "IdleSense" }

// AttemptProbability implements AttemptReporter.
func (is *IdleSense) AttemptProbability() float64 { return 2 / (is.cw + 1) }
