package mac

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/sim"
)

// SlowDecrease is the slow contention-window decrease policy of Ni et
// al. (PIMRC 2003), one of the improvements the paper's related-work
// section compares against: on failure the window doubles as usual, but
// on success it shrinks by a gentle factor instead of snapping back to
// CWmin. Stations stay less aggressive right after a success, improving
// on the standard DCF without reaching the optimum (the paper's point:
// the throughput still degrades with N).
type SlowDecrease struct {
	CWMin, CWMax int
	// Delta is the multiplicative decrease factor applied to CW on
	// success (0 < Delta < 1; the published value is 0.5… per window
	// halving — we default to 0.5).
	Delta float64

	cw float64
}

// NewSlowDecrease returns the policy with the given window bounds and
// decrease factor (0 means the default 0.5).
func NewSlowDecrease(cwMin, cwMax int, delta float64) *SlowDecrease {
	if cwMin < 1 || cwMax < cwMin {
		panic(fmt.Sprintf("mac: invalid CW bounds [%d, %d]", cwMin, cwMax))
	}
	if delta == 0 {
		delta = 0.5
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("mac: SlowDecrease delta %v outside (0,1)", delta))
	}
	return &SlowDecrease{CWMin: cwMin, CWMax: cwMax, Delta: delta, cw: float64(cwMin)}
}

// CW returns the current contention window.
func (sd *SlowDecrease) CW() int { return int(math.Round(sd.cw)) }

// NextBackoff implements Policy.
func (sd *SlowDecrease) NextBackoff(rng *sim.RNG) int { return rng.UniformWindow(sd.CW()) }

// OnSuccess implements Policy: multiplicative slow decrease.
func (sd *SlowDecrease) OnSuccess(*sim.RNG) {
	sd.cw = math.Max(float64(sd.CWMin), sd.cw*sd.Delta)
}

// OnFailure implements Policy: standard doubling.
func (sd *SlowDecrease) OnFailure(*sim.RNG) {
	sd.cw = math.Min(float64(sd.CWMax), sd.cw*2)
}

// OnControl implements Policy; the scheme is fully distributed.
func (sd *SlowDecrease) OnControl(frame.Control) {}

// Name implements Policy.
func (sd *SlowDecrease) Name() string { return "SlowDecrease" }

// AttemptProbability implements AttemptReporter.
func (sd *SlowDecrease) AttemptProbability() float64 { return 2 / (sd.cw + 1) }

// EstimateN is the model-based adaptive scheme of Bianchi et al.
// (PIMRC 1996) and Calì et al.: estimate the number of contenders from
// the observed idle-slot statistics, then set the attempt probability to
// the closed-form optimum p* ≈ 1/(N̂·sqrt(T*c/2)) (Eq. 8 of the paper).
//
// It is the canonical "estimate then optimise" design the paper argues
// against: superb in the fully connected network its model assumes,
// wrong under hidden nodes, where the observed idle statistics no longer
// identify N.
type EstimateN struct {
	// TcStar is the collision duration in slot units (T*c), the only
	// PHY constant the closed form needs.
	TcStar float64
	// Window is the number of observed transmissions per estimate.
	Window int
	// MaxN caps the estimate to keep p* bounded away from zero.
	MaxN float64

	p        float64
	idleSum  float64
	observed int
	nHat     float64
}

// NewEstimateN returns the policy for the given T*c.
func NewEstimateN(tcStar float64, window int) *EstimateN {
	if tcStar <= 1 {
		panic(fmt.Sprintf("mac: T*c %v must exceed 1 slot", tcStar))
	}
	if window <= 0 {
		window = 10
	}
	return &EstimateN{
		TcStar: tcStar,
		Window: window,
		MaxN:   1000,
		p:      0.05,
		nHat:   2,
	}
}

// NHat returns the current estimate of the number of contenders.
func (e *EstimateN) NHat() float64 { return e.nHat }

// ObserveTransmission implements MediumObserver: fold one busy period
// preceded by idleSlots idle slots into the estimator. With every
// station using attempt probability p, the mean idle run is
// (1−q)/q, q = 1−(1−p)^N, so N̂ = ln(q̂·(1−p)) / ... solved from
// (1−p)^N = idle/(idle+1).
func (e *EstimateN) ObserveTransmission(idleSlots float64) {
	e.idleSum += idleSlots
	e.observed++
	if e.observed < e.Window {
		return
	}
	meanIdle := e.idleSum / float64(e.observed)
	e.idleSum, e.observed = 0, 0
	// P(idle slot) = meanIdle/(meanIdle+1) = (1−p)^N.
	pi := meanIdle / (meanIdle + 1)
	if pi <= 0 || pi >= 1 {
		return
	}
	n := math.Log(pi) / math.Log(1-e.p)
	if n < 1 {
		n = 1
	}
	if n > e.MaxN {
		n = e.MaxN
	}
	// Exponential smoothing keeps the estimate stable across windows.
	e.nHat = 0.8*e.nHat + 0.2*n
	e.p = 1 / (e.nHat * math.Sqrt(e.TcStar/2))
	if e.p > 0.5 {
		e.p = 0.5
	}
}

// NextBackoff implements Policy: geometric at the estimated optimum.
func (e *EstimateN) NextBackoff(rng *sim.RNG) int { return rng.Geometric(e.p) }

// OnSuccess implements Policy.
func (e *EstimateN) OnSuccess(*sim.RNG) {}

// OnFailure implements Policy.
func (e *EstimateN) OnFailure(*sim.RNG) {}

// OnControl implements Policy; the scheme is fully distributed.
func (e *EstimateN) OnControl(frame.Control) {}

// Name implements Policy.
func (e *EstimateN) Name() string { return "EstimateN" }

// AttemptProbability implements AttemptReporter.
func (e *EstimateN) AttemptProbability() float64 { return e.p }

// BackoffMemoryless implements Memoryless: the geometric draw carries no
// history.
func (e *EstimateN) BackoffMemoryless() bool { return true }
