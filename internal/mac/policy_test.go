package mac

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/sim"
)

func TestStandardDCFWindowLadder(t *testing.T) {
	rng := sim.NewRNG(1)
	d := NewStandardDCF(8, 1024)
	if d.CW() != 8 || d.Stage() != 0 {
		t.Fatalf("initial CW = %d stage %d", d.CW(), d.Stage())
	}
	want := []int{16, 32, 64, 128, 256, 512, 1024, 1024, 1024}
	for i, w := range want {
		d.OnFailure(rng)
		if d.CW() != w {
			t.Errorf("after %d failures CW = %d, want %d", i+1, d.CW(), w)
		}
	}
	d.OnSuccess(rng)
	if d.CW() != 8 {
		t.Errorf("after success CW = %d, want CWmin", d.CW())
	}
}

func TestStandardDCFBackoffInWindow(t *testing.T) {
	rng := sim.NewRNG(2)
	d := NewStandardDCF(8, 1024)
	for i := 0; i < 1000; i++ {
		b := d.NextBackoff(rng)
		if b < 0 || b >= d.CW() {
			t.Fatalf("backoff %d outside [0,%d)", b, d.CW())
		}
	}
	if got := d.AttemptProbability(); math.Abs(got-2.0/9) > 1e-12 {
		t.Errorf("AttemptProbability = %v, want 2/9", got)
	}
	if d.Name() != "802.11-DCF" {
		t.Error("name wrong")
	}
	d.OnControl(frame.Control{Scheme: frame.ControlWTOP, P: 0.5}) // must be ignored
	if d.CW() != 8 {
		t.Error("DCF reacted to a control broadcast")
	}
}

func TestStandardDCFPanicsOnBadBounds(t *testing.T) {
	for _, c := range [][2]int{{0, 8}, {16, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", c)
				}
			}()
			NewStandardDCF(c[0], c[1])
		}()
	}
}

func TestPPersistentGeometricMean(t *testing.T) {
	rng := sim.NewRNG(3)
	p := NewPPersistent(1, 0.1)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(p.NextBackoff(rng))
	}
	mean := sum / n
	want := (1 - 0.1) / 0.1
	if math.Abs(mean-want) > 0.25 {
		t.Errorf("mean backoff %v, want %v", mean, want)
	}
}

func TestPPersistentControlMapping(t *testing.T) {
	// Lemma 1: station with weight w maps broadcast p to
	// w·p/(1+(w−1)·p).
	for _, w := range []float64{1, 2, 3} {
		p := NewPPersistent(w, 0.1)
		p.OnControl(frame.Control{Scheme: frame.ControlWTOP, P: 0.2})
		want := w * 0.2 / (1 + (w-1)*0.2)
		if math.Abs(p.AttemptProbability()-want) > 1e-12 {
			t.Errorf("w=%v: p_t = %v, want %v", w, p.AttemptProbability(), want)
		}
	}
	// Non-wTOP broadcasts are ignored.
	p := NewPPersistent(1, 0.1)
	p.OnControl(frame.Control{Scheme: frame.ControlTORA, P0: 0.9})
	if p.AttemptProbability() != 0.1 {
		t.Error("p-persistent adopted a TORA broadcast")
	}
	// Success/failure must not change state.
	rng := sim.NewRNG(1)
	p.OnSuccess(rng)
	p.OnFailure(rng)
	if p.AttemptProbability() != 0.1 {
		t.Error("outcome notifications changed p")
	}
}

func TestPPersistentClamping(t *testing.T) {
	p := NewPPersistent(1, 0)
	if p.AttemptProbability() <= 0 {
		t.Error("initial p not floored above zero")
	}
	p.SetAttemptProbability(2)
	if p.AttemptProbability() > 0.999 {
		t.Error("p not capped below 1")
	}
	p.OnControl(frame.Control{Scheme: frame.ControlWTOP, P: 0})
	if p.AttemptProbability() < p.MinP {
		t.Error("control broadcast drove p below MinP")
	}
}

func TestPPersistentPanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("weight 0 accepted")
		}
	}()
	NewPPersistent(0, 0.1)
}

func TestRandomResetFailurePath(t *testing.T) {
	rng := sim.NewRNG(4)
	r := NewRandomReset(8, 7, 0, 1)
	for i := 1; i <= 10; i++ {
		r.OnFailure(rng)
		want := i
		if want > 7 {
			want = 7
		}
		if r.Stage() != want {
			t.Errorf("after %d failures stage = %d, want %d", i, r.Stage(), want)
		}
	}
}

func TestRandomResetDegeneratesToDCF(t *testing.T) {
	// With p0 = 1, j = 0 a success always returns to stage 0.
	rng := sim.NewRNG(5)
	r := NewRandomReset(8, 7, 0, 1)
	r.OnFailure(rng)
	r.OnFailure(rng)
	r.OnSuccess(rng)
	if r.Stage() != 0 {
		t.Errorf("stage = %d, want 0", r.Stage())
	}
}

func TestRandomResetResetDistribution(t *testing.T) {
	// With (j=2, p0=0.6): success lands on stage 2 w.p. 0.6, else
	// uniformly on {3,…,7}.
	rng := sim.NewRNG(6)
	r := NewRandomReset(8, 7, 2, 0.6)
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		r.OnSuccess(rng)
		counts[r.Stage()]++
	}
	if got := float64(counts[2]) / n; math.Abs(got-0.6) > 0.01 {
		t.Errorf("P(stage 2) = %v, want 0.6", got)
	}
	share := 0.4 / 5
	for s := 3; s <= 7; s++ {
		if got := float64(counts[s]) / n; math.Abs(got-share) > 0.01 {
			t.Errorf("P(stage %d) = %v, want %v", s, got, share)
		}
	}
	for s := 0; s < 2; s++ {
		if counts[s] != 0 {
			t.Errorf("stage %d reached %d times; reset must never go below j", s, counts[s])
		}
	}
}

func TestRandomResetSetResetClamps(t *testing.T) {
	r := NewRandomReset(8, 7, 0, 1)
	r.SetReset(-3, -1)
	if j, p0 := r.Reset(); j != 0 || p0 != 0 {
		t.Errorf("clamped to (%d, %v), want (0, 0)", j, p0)
	}
	r.SetReset(99, 2)
	if j, p0 := r.Reset(); j != 6 || p0 != 1 {
		t.Errorf("clamped to (%d, %v), want (6, 1)", j, p0)
	}
}

func TestRandomResetControl(t *testing.T) {
	r := NewRandomReset(8, 7, 0, 1)
	r.OnControl(frame.Control{Scheme: frame.ControlTORA, P0: 0.25, Stage: 3})
	if j, p0 := r.Reset(); j != 3 || math.Abs(p0-0.25) > 1e-12 {
		t.Errorf("control not adopted: (%d, %v)", j, p0)
	}
	r.OnControl(frame.Control{Scheme: frame.ControlWTOP, P: 0.9})
	if j, _ := r.Reset(); j != 3 {
		t.Error("RandomReset adopted a wTOP broadcast")
	}
	if r.Name() != "RandomReset" {
		t.Error("name wrong")
	}
	if got := r.CW(); got != 8<<3 {
		// Stage was left at 0; CW uses the *stage*, not j.
		t.Logf("CW = %d (stage %d)", got, r.Stage())
	}
}

func TestRandomResetBackoffInWindow(t *testing.T) {
	prop := func(seed int64, failures uint8) bool {
		rng := sim.NewRNG(seed)
		r := NewRandomReset(8, 7, 1, 0.5)
		for i := 0; i < int(failures%12); i++ {
			r.OnFailure(rng)
		}
		b := r.NextBackoff(rng)
		return b >= 0 && b < r.CW() && r.CW() <= 1024
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleSenseAIMD(t *testing.T) {
	is := NewIdleSense(IdleSenseConfig{})
	start := is.CW()
	// Far too many idle slots observed → multiplicative decrease.
	for i := 0; i < is.MaxTrans; i++ {
		is.ObserveTransmission(50)
	}
	if is.CW() >= start {
		t.Errorf("CW did not decrease on idle channel: %v -> %v", start, is.CW())
	}
	// Too few idle slots → additive increase.
	low := is.CW()
	for i := 0; i < is.MaxTrans; i++ {
		is.ObserveTransmission(0)
	}
	if is.CW() <= low {
		t.Errorf("CW did not increase on busy channel: %v -> %v", low, is.CW())
	}
}

func TestIdleSenseUpdatesOnlyPerWindow(t *testing.T) {
	is := NewIdleSense(IdleSenseConfig{MaxTrans: 5})
	start := is.CW()
	for i := 0; i < 4; i++ {
		is.ObserveTransmission(100)
	}
	if is.CW() != start {
		t.Error("CW changed before MaxTrans observations")
	}
	is.ObserveTransmission(100)
	if is.CW() == start {
		t.Error("CW unchanged after MaxTrans observations")
	}
}

func TestIdleSenseBounds(t *testing.T) {
	is := NewIdleSense(IdleSenseConfig{CWMin: 4, CWMax: 64})
	for i := 0; i < 1000; i++ {
		is.ObserveTransmission(1000)
	}
	if is.CW() < 4 {
		t.Errorf("CW %v fell below CWMin", is.CW())
	}
	for i := 0; i < 1000; i++ {
		is.ObserveTransmission(0)
	}
	if is.CW() > 64 {
		t.Errorf("CW %v exceeded CWMax", is.CW())
	}
}

func TestIdleSenseConvergesTowardTarget(t *testing.T) {
	// Closed loop against a toy medium model: with n stations each using
	// attempt probability 2/(CW+1), mean idle slots between transmissions
	// is (1−q)/q with q = 1−(1−τ)^n. IdleSense should drive this near its
	// target.
	const n = 20
	is := NewIdleSense(IdleSenseConfig{})
	for iter := 0; iter < 5000; iter++ {
		tau := is.AttemptProbability()
		q := 1 - math.Pow(1-tau, n)
		idle := (1 - q) / q
		is.ObserveTransmission(idle)
	}
	tau := is.AttemptProbability()
	q := 1 - math.Pow(1-tau, n)
	idle := (1 - q) / q
	if math.Abs(idle-is.Target) > 1.2 {
		t.Errorf("converged idle slots %v, want near target %v", idle, is.Target)
	}
}

func TestIdleSenseMisc(t *testing.T) {
	is := NewIdleSense(IdleSenseConfig{})
	rng := sim.NewRNG(8)
	is.OnSuccess(rng)
	is.OnFailure(rng)
	is.OnControl(frame.Control{Scheme: frame.ControlWTOP, P: 0.5})
	if is.Name() != "IdleSense" {
		t.Error("name wrong")
	}
	b := is.NextBackoff(rng)
	if b < 0 || b >= int(math.Round(is.CW())) {
		t.Errorf("backoff %d outside window %v", b, is.CW())
	}
}

func TestIdleSensePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha ≥ 1 accepted")
		}
	}()
	NewIdleSense(IdleSenseConfig{Alpha: 1.5})
}

func TestFixedWindow(t *testing.T) {
	rng := sim.NewRNG(9)
	f := NewFixedWindow(32)
	for i := 0; i < 100; i++ {
		b := f.NextBackoff(rng)
		if b < 0 || b >= 32 {
			t.Fatalf("backoff %d outside window", b)
		}
	}
	f.OnSuccess(rng)
	f.OnFailure(rng)
	f.OnControl(frame.Control{})
	if f.Window != 32 {
		t.Error("fixed window changed")
	}
	if f.Name() != "fixed-window" {
		t.Error("name wrong")
	}
	if got := f.AttemptProbability(); math.Abs(got-2.0/33) > 1e-12 {
		t.Errorf("AttemptProbability = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("window 0 accepted")
			}
		}()
		NewFixedWindow(0)
	}()
}

// Interface conformance checks.
var (
	_ Policy          = (*StandardDCF)(nil)
	_ Policy          = (*PPersistent)(nil)
	_ Policy          = (*RandomReset)(nil)
	_ Policy          = (*IdleSense)(nil)
	_ Policy          = (*FixedWindow)(nil)
	_ AttemptReporter = (*StandardDCF)(nil)
	_ AttemptReporter = (*PPersistent)(nil)
	_ AttemptReporter = (*RandomReset)(nil)
	_ AttemptReporter = (*IdleSense)(nil)
	_ AttemptReporter = (*FixedWindow)(nil)
	_ MediumObserver  = (*IdleSense)(nil)
)
