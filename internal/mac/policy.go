// Package mac implements the contention-resolution policies of Section II
// as pure, simulator-independent state machines: the standard 802.11
// exponential backoff (DCF), p-persistent CSMA, the paper's RandomReset
// backoff, IdleSense's AIMD, and a fixed-window reference policy.
//
// A policy answers exactly one question — how many idle slots to wait
// before the next transmission attempt — and is notified of the outcome of
// each attempt and of AP control broadcasts. The event-driven simulator
// (package eventsim) and the slotted simulator (package slotsim) both
// drive these same implementations, so policy behaviour is tested once,
// here, independent of either engine.
package mac

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/sim"
)

// Policy is a station's contention-resolution algorithm.
//
// The MAC engine calls NextBackoff after enqueueing a fresh transmission
// (and after every outcome notification) to learn how many idle slots the
// station must observe before attempting. OnSuccess/OnFailure report
// attempt outcomes. OnControl delivers the AP's broadcast control block
// from a decoded ACK or beacon.
type Policy interface {
	// NextBackoff draws the number of idle slots to wait before the next
	// transmission attempt.
	NextBackoff(rng *sim.RNG) int
	// OnSuccess notes that the station's attempt was acknowledged.
	OnSuccess(rng *sim.RNG)
	// OnFailure notes that the attempt failed (no ACK).
	OnFailure(rng *sim.RNG)
	// OnControl delivers an AP control broadcast. Policies ignore blocks
	// for schemes other than their own.
	OnControl(ctrl frame.Control)
	// Name identifies the policy in reports.
	Name() string
}

// AttemptReporter is implemented by policies whose current per-slot
// attempt probability is well-defined; the simulators expose it in
// diagnostics and convergence plots.
type AttemptReporter interface {
	// AttemptProbability returns the current per-slot attempt
	// probability implied by the policy state.
	AttemptProbability() float64
}

// Memoryless marks policies whose backoff is a fresh per-slot coin flip
// (p-persistent CSMA). For these the engine redraws the counter after
// every busy period instead of resuming the frozen residual: "transmit in
// a slot with probability p" applies to the first slot after a busy
// period too, whereas a frozen 802.11-style counter is conditioned ≥ 1
// there. Window-based policies (DCF, RandomReset, IdleSense) deliberately
// do NOT implement this — they freeze and resume like real 802.11.
type Memoryless interface {
	// BackoffMemoryless reports that counters may be redrawn at every
	// idle resumption without changing the policy's distribution.
	BackoffMemoryless() bool
}

// StandardDCF is the IEEE 802.11 exponential backoff: the contention
// window doubles per failure up to CWmax and resets to CWmin on success.
// The backoff counter is drawn uniformly from [0, CW−1].
type StandardDCF struct {
	CWMin int
	CWMax int
	stage int
}

// NewStandardDCF returns the standard policy with the given window bounds.
func NewStandardDCF(cwMin, cwMax int) *StandardDCF {
	if cwMin < 1 || cwMax < cwMin {
		panic(fmt.Sprintf("mac: invalid CW bounds [%d, %d]", cwMin, cwMax))
	}
	return &StandardDCF{CWMin: cwMin, CWMax: cwMax}
}

// CW returns the current contention window.
func (d *StandardDCF) CW() int {
	cw := d.CWMin << uint(d.stage)
	if cw > d.CWMax {
		return d.CWMax
	}
	return cw
}

// Stage returns the current backoff stage.
func (d *StandardDCF) Stage() int { return d.stage }

// NextBackoff implements Policy.
func (d *StandardDCF) NextBackoff(rng *sim.RNG) int { return rng.UniformWindow(d.CW()) }

// OnSuccess implements Policy: reset to stage 0.
func (d *StandardDCF) OnSuccess(*sim.RNG) { d.stage = 0 }

// OnFailure implements Policy: double the window up to CWmax.
func (d *StandardDCF) OnFailure(*sim.RNG) {
	if d.CWMin<<uint(d.stage+1) <= d.CWMax {
		d.stage++
	}
}

// OnControl implements Policy; the standard DCF has no tunables.
func (d *StandardDCF) OnControl(frame.Control) {}

// Name implements Policy.
func (d *StandardDCF) Name() string { return "802.11-DCF" }

// AttemptProbability implements AttemptReporter using the 2/(CW+1)
// approximation for a uniform [0, CW−1] draw.
func (d *StandardDCF) AttemptProbability() float64 { return 2 / float64(d.CW()+1) }

// PPersistent attempts transmission with probability p in each idle slot,
// which is equivalent to drawing a geometric backoff counter. Weighted
// stations apply Lemma 1's mapping to the broadcast control variable:
// p_t = w·p/(1 + (w−1)·p).
type PPersistent struct {
	// Weight is the station's fairness weight w_t (≥ 1 nominally, any
	// positive value accepted).
	Weight float64
	// MinP floors the attempt probability so a station never starves
	// (Algorithm 1 initialises stations at 0.1 before the first ACK).
	MinP float64

	p float64 // station attempt probability p_t

	// logQ caches math.Log1p(-p) for the inverse-transform draw;
	// logQFor records the p it was computed for.
	logQ    float64
	logQFor float64

	// batch prefetches uniform draws for the geometric backoff. Safe
	// because a station's policy is the only consumer of its RNG stream
	// (p-persistent draws nothing on success/failure), so batching
	// preserves the exact variate sequence of unbatched draws.
	batch sim.FloatBatch
}

// NewPPersistent returns a p-persistent policy with the given weight and
// initial attempt probability.
func NewPPersistent(weight, initial float64) *PPersistent {
	if weight <= 0 {
		panic(fmt.Sprintf("mac: non-positive weight %v", weight))
	}
	return &PPersistent{Weight: weight, MinP: 1e-5, p: clampProb(initial, 1e-5)}
}

// SetAttemptProbability overrides the station attempt probability
// directly, bypassing the weight mapping — used by open-loop sweeps
// (Figs. 2 and 4).
func (p *PPersistent) SetAttemptProbability(v float64) { p.p = clampProb(v, p.MinP) }

// AttemptProbability implements AttemptReporter.
func (p *PPersistent) AttemptProbability() float64 { return p.p }

// NextBackoff implements Policy: geometric with parameter p, drawn
// through a prefetch batch (p is clamped to (0,1) so every draw consumes
// exactly one uniform, batched or not). The constant ln(1-p) term of the
// inverse transform is cached until p changes; the cached value is the
// exact math.Log1p(-p) double, so draws are bit-identical to the
// uncached form.
func (p *PPersistent) NextBackoff(rng *sim.RNG) int {
	p.batch.Bind(rng)
	if p.p != p.logQFor {
		p.logQFor = p.p
		p.logQ = math.Log1p(-p.p)
	}
	return sim.GeometricFromUniformLogQ(p.batch.Next(), p.logQ)
}

// OnSuccess implements Policy; p-persistent state is outcome-independent.
func (p *PPersistent) OnSuccess(*sim.RNG) {}

// OnFailure implements Policy; p-persistent state is outcome-independent.
func (p *PPersistent) OnFailure(*sim.RNG) {}

// OnControl implements Policy: adopt the broadcast p through the weight
// mapping of Lemma 1.
func (p *PPersistent) OnControl(ctrl frame.Control) {
	if ctrl.Scheme != frame.ControlWTOP {
		return
	}
	mapped := p.Weight * ctrl.P / (1 + (p.Weight-1)*ctrl.P)
	p.p = clampProb(mapped, p.MinP)
}

// Name implements Policy.
func (p *PPersistent) Name() string { return "p-persistent" }

// BackoffMemoryless implements Memoryless: the geometric counter may be
// redrawn at any idle resumption (memorylessness of the geometric law).
func (p *PPersistent) BackoffMemoryless() bool { return true }

func clampProb(v, min float64) float64 {
	switch {
	case v < min:
		return min
	case v > 0.999:
		return 0.999
	default:
		return v
	}
}

// RandomReset performs standard exponential backoff on failure; on
// success it moves to stage j with probability p0, otherwise to a stage
// drawn uniformly from {j+1, …, m} (Definition 4). With p0 = 1, j = 0 it
// degenerates to the standard DCF.
type RandomReset struct {
	CWMin int
	M     int

	j     int
	p0    float64
	stage int
}

// NewRandomReset returns the policy with reset parameters (j, p0).
func NewRandomReset(cwMin, m, j int, p0 float64) *RandomReset {
	if cwMin < 1 || m < 1 {
		panic(fmt.Sprintf("mac: invalid RandomReset params CWmin=%d m=%d", cwMin, m))
	}
	r := &RandomReset{CWMin: cwMin, M: m}
	r.SetReset(j, p0)
	return r
}

// SetReset updates the reset parameters, clamping them to valid ranges.
func (r *RandomReset) SetReset(j int, p0 float64) {
	if j < 0 {
		j = 0
	}
	if j > r.M-1 {
		j = r.M - 1
	}
	if p0 < 0 {
		p0 = 0
	}
	if p0 > 1 {
		p0 = 1
	}
	r.j, r.p0 = j, p0
}

// Reset returns the current (j, p0).
func (r *RandomReset) Reset() (j int, p0 float64) { return r.j, r.p0 }

// Stage returns the current backoff stage.
func (r *RandomReset) Stage() int { return r.stage }

// CW returns the current contention window 2^stage · CWmin.
func (r *RandomReset) CW() int { return r.CWMin << uint(r.stage) }

// NextBackoff implements Policy.
func (r *RandomReset) NextBackoff(rng *sim.RNG) int { return rng.UniformWindow(r.CW()) }

// OnSuccess implements Policy: apply the reset distribution.
func (r *RandomReset) OnSuccess(rng *sim.RNG) {
	if rng.Bernoulli(r.p0) {
		r.stage = r.j
		return
	}
	if r.j+1 > r.M {
		r.stage = r.M
		return
	}
	r.stage = r.j + 1 + rng.Intn(r.M-r.j)
}

// OnFailure implements Policy: double up to stage M.
func (r *RandomReset) OnFailure(*sim.RNG) {
	if r.stage < r.M {
		r.stage++
	}
}

// OnControl implements Policy: adopt the broadcast (p0, j).
func (r *RandomReset) OnControl(ctrl frame.Control) {
	if ctrl.Scheme != frame.ControlTORA {
		return
	}
	r.SetReset(int(ctrl.Stage), ctrl.P0)
}

// Name implements Policy.
func (r *RandomReset) Name() string { return "RandomReset" }

// AttemptProbability implements AttemptReporter with the stage-wise
// 2/CW approximation used by the paper's analysis (κ_i).
func (r *RandomReset) AttemptProbability() float64 { return 2 / float64(r.CW()) }

// FixedWindow always draws from the same contention window regardless of
// outcomes — a reference policy for calibration tests and ablations.
type FixedWindow struct {
	Window int
}

// NewFixedWindow returns the policy with the given constant window.
func NewFixedWindow(cw int) *FixedWindow {
	if cw < 1 {
		panic(fmt.Sprintf("mac: invalid fixed window %d", cw))
	}
	return &FixedWindow{Window: cw}
}

// NextBackoff implements Policy.
func (f *FixedWindow) NextBackoff(rng *sim.RNG) int { return rng.UniformWindow(f.Window) }

// OnSuccess implements Policy.
func (f *FixedWindow) OnSuccess(*sim.RNG) {}

// OnFailure implements Policy.
func (f *FixedWindow) OnFailure(*sim.RNG) {}

// OnControl implements Policy.
func (f *FixedWindow) OnControl(frame.Control) {}

// Name implements Policy.
func (f *FixedWindow) Name() string { return "fixed-window" }

// AttemptProbability implements AttemptReporter.
func (f *FixedWindow) AttemptProbability() float64 { return 2 / float64(f.Window+1) }
