package mac

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/sim"
)

func TestSlowDecreaseWindowDynamics(t *testing.T) {
	rng := sim.NewRNG(1)
	sd := NewSlowDecrease(8, 1024, 0.5)
	if sd.CW() != 8 {
		t.Fatalf("initial CW = %d", sd.CW())
	}
	sd.OnFailure(rng)
	sd.OnFailure(rng)
	if sd.CW() != 32 {
		t.Errorf("after 2 failures CW = %d, want 32", sd.CW())
	}
	// Success halves instead of resetting.
	sd.OnSuccess(rng)
	if sd.CW() != 16 {
		t.Errorf("after success CW = %d, want 16 (slow decrease)", sd.CW())
	}
	// Floors at CWmin, caps at CWmax.
	for i := 0; i < 20; i++ {
		sd.OnSuccess(rng)
	}
	if sd.CW() != 8 {
		t.Errorf("CW floored at %d, want CWmin", sd.CW())
	}
	for i := 0; i < 20; i++ {
		sd.OnFailure(rng)
	}
	if sd.CW() != 1024 {
		t.Errorf("CW capped at %d, want CWmax", sd.CW())
	}
	b := sd.NextBackoff(rng)
	if b < 0 || b >= sd.CW() {
		t.Errorf("backoff %d outside window", b)
	}
	sd.OnControl(frame.Control{Scheme: frame.ControlWTOP, P: 0.5})
	if sd.Name() != "SlowDecrease" {
		t.Error("name wrong")
	}
	if got := sd.AttemptProbability(); math.Abs(got-2.0/1025) > 1e-9 {
		t.Errorf("attempt probability %v", got)
	}
}

func TestSlowDecreaseDefaultsAndPanics(t *testing.T) {
	sd := NewSlowDecrease(8, 1024, 0)
	if sd.Delta != 0.5 {
		t.Errorf("default delta %v", sd.Delta)
	}
	for _, c := range []struct {
		min, max int
		delta    float64
	}{{0, 8, 0.5}, {16, 8, 0.5}, {8, 1024, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", c)
				}
			}()
			NewSlowDecrease(c.min, c.max, c.delta)
		}()
	}
}

func TestEstimateNConvergesOnSyntheticChannel(t *testing.T) {
	// Feed the estimator the exact analytic idle statistics for a known
	// N; N̂ must converge near N and p near the closed-form optimum.
	const trueN = 25
	tcStar := 23.0
	e := NewEstimateN(tcStar, 10)
	for iter := 0; iter < 3000; iter++ {
		p := e.AttemptProbability()
		q := 1 - math.Pow(1-p, trueN)
		e.ObserveTransmission((1 - q) / q)
	}
	if math.Abs(e.NHat()-trueN)/trueN > 0.15 {
		t.Errorf("N̂ = %.2f, want ≈ %d", e.NHat(), trueN)
	}
	wantP := 1 / (trueN * math.Sqrt(tcStar/2))
	if math.Abs(e.AttemptProbability()-wantP)/wantP > 0.2 {
		t.Errorf("p = %.5f, want ≈ %.5f", e.AttemptProbability(), wantP)
	}
}

func TestEstimateNRobustness(t *testing.T) {
	e := NewEstimateN(23, 5)
	rng := sim.NewRNG(2)
	// Degenerate observations must not wedge the estimator.
	for i := 0; i < 100; i++ {
		e.ObserveTransmission(0)
	}
	if e.AttemptProbability() <= 0 || e.AttemptProbability() > 0.5 {
		t.Errorf("p out of range after zero-idle floods: %v", e.AttemptProbability())
	}
	for i := 0; i < 100; i++ {
		e.ObserveTransmission(1e9)
	}
	if e.NHat() > e.MaxN {
		t.Errorf("N̂ exceeded cap: %v", e.NHat())
	}
	b := e.NextBackoff(rng)
	if b < 0 {
		t.Errorf("backoff %d", b)
	}
	e.OnSuccess(rng)
	e.OnFailure(rng)
	e.OnControl(frame.Control{})
	if e.Name() != "EstimateN" {
		t.Error("name wrong")
	}
	if !e.BackoffMemoryless() {
		t.Error("EstimateN must be memoryless")
	}
}

func TestEstimateNPanicsOnBadTc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("T*c ≤ 1 accepted")
		}
	}()
	NewEstimateN(0.5, 10)
}

var (
	_ Policy          = (*SlowDecrease)(nil)
	_ Policy          = (*EstimateN)(nil)
	_ AttemptReporter = (*SlowDecrease)(nil)
	_ AttemptReporter = (*EstimateN)(nil)
	_ MediumObserver  = (*EstimateN)(nil)
	_ Memoryless      = (*EstimateN)(nil)
)
