package eventsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
)

// buildDeterminismSim assembles a fresh simulator for the golden run.
// Policies must be rebuilt per run: they carry mutable state (backoff
// stage, prefetched draws).
func buildDeterminismSim(t *testing.T, scheme string, seed int64) *Simulator {
	t.Helper()
	const n = 8
	phy := model.PaperPHY()
	policies := make([]mac.Policy, n)
	var controller core.Controller
	switch scheme {
	case "dcf":
		for i := range policies {
			policies[i] = mac.NewStandardDCF(16, 1024)
		}
	case "wtop":
		for i := range policies {
			policies[i] = mac.NewPPersistent(1, 0.1)
		}
		controller = core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	case "tora":
		back := model.PaperBackoff()
		for i := range policies {
			policies[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
		}
		controller = core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate})
	}
	s, err := New(Config{
		PHY:        phy,
		Topology:   topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies:   policies,
		Controller: controller,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func resultsIdentical(t *testing.T, scheme string, a, b *Result) {
	t.Helper()
	if a.Throughput != b.Throughput || a.Successes != b.Successes ||
		a.Collisions != b.Collisions || a.EventsFired != b.EventsFired ||
		a.APIdleSlots != b.APIdleSlots {
		t.Fatalf("%s: runs diverged: %+v vs %+v", scheme,
			[5]any{a.Throughput, a.Successes, a.Collisions, a.EventsFired, a.APIdleSlots},
			[5]any{b.Throughput, b.Successes, b.Collisions, b.EventsFired, b.APIdleSlots})
	}
	if a.ThroughputSeries.Len() != b.ThroughputSeries.Len() {
		t.Fatalf("%s: series lengths differ: %d vs %d", scheme, a.ThroughputSeries.Len(), b.ThroughputSeries.Len())
	}
	for i := range a.ThroughputSeries.Values {
		if a.ThroughputSeries.Values[i] != b.ThroughputSeries.Values[i] ||
			a.ThroughputSeries.Times[i] != b.ThroughputSeries.Times[i] {
			t.Fatalf("%s: series diverge at window %d", scheme, i)
		}
	}
	for i := range a.Stations {
		if a.Stations[i] != b.Stations[i] {
			t.Fatalf("%s: station %d stats diverge: %+v vs %+v", scheme, i, a.Stations[i], b.Stations[i])
		}
	}
}

// Identical seed and config must produce bit-identical results, run after
// run. This is the repo's reproducibility contract: the event core's
// pooling, the four-ary heap's (at, seq) ordering, and the batched RNG
// draws are all invisible to results.
func TestDeterminismSameSeedBitIdentical(t *testing.T) {
	for _, scheme := range []string{"dcf", "wtop", "tora"} {
		first := buildDeterminismSim(t, scheme, 7).Run(3 * sim.Second)
		second := buildDeterminismSim(t, scheme, 7).Run(3 * sim.Second)
		resultsIdentical(t, scheme, first, second)
	}
}

// Different seeds must actually differ — a sanity check that the golden
// comparison above is not vacuously passing on constant output.
func TestDeterminismSeedsDiffer(t *testing.T) {
	a := buildDeterminismSim(t, "dcf", 1).Run(3 * sim.Second)
	b := buildDeterminismSim(t, "dcf", 2).Run(3 * sim.Second)
	if a.Successes == b.Successes && a.Collisions == b.Collisions && a.Throughput == b.Throughput {
		t.Fatal("seeds 1 and 2 produced identical results; RNG seeding is broken")
	}
}
