package eventsim

import (
	"testing"
	"testing/quick"

	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestRandomConfigurationsNeverMisbehave sweeps random corners of the
// configuration space — topology shape, policy mix, RTS/CTS, error rate,
// churn — asserting the engine's global invariants: no panics (the
// engine's internal counters panic on violation), delivered bits conserve
// exactly, and per-station outcomes sum to the global counters.
func TestRandomConfigurationsNeverMisbehave(t *testing.T) {
	prop := func(seed int64, nRaw, mixRaw, radiusRaw uint8, rtscts bool, errRaw uint8) bool {
		n := 2 + int(nRaw%16)
		rng := sim.NewRNG(seed)
		// Topology: random disc radius 8..20, projected inside decode
		// range like the experiment harness does.
		radius := 8 + float64(radiusRaw%13)
		pts := topo.UniformDisc(n, radius, rng)
		for i, p := range pts {
			if d := p.Distance(topo.Point{}); d > 16 {
				scale := 15.9 / d
				pts[i] = topo.Point{X: p.X * scale, Y: p.Y * scale}
			}
		}
		tp := topo.New(topo.Point{}, pts, topo.PaperRadii())
		// Random per-station policy mix.
		policies := make([]mac.Policy, n)
		for i := range policies {
			switch (int(mixRaw) + i) % 5 {
			case 0:
				policies[i] = mac.NewStandardDCF(8, 1024)
			case 1:
				policies[i] = mac.NewPPersistent(1+float64(i%3), 0.05)
			case 2:
				policies[i] = mac.NewRandomReset(8, 7, i%7, float64(i%11)/10)
			case 3:
				policies[i] = mac.NewIdleSense(mac.IdleSenseConfig{})
			default:
				policies[i] = mac.NewSlowDecrease(8, 1024, 0.5)
			}
		}
		s, err := New(Config{
			Topology:       tp,
			Policies:       policies,
			Seed:           seed,
			RTSCTS:         rtscts,
			FrameErrorRate: float64(errRaw%50) / 100,
		})
		if err != nil {
			return false
		}
		// Random churn mid-run.
		if err := s.SetActiveAt(sim.Time(200*sim.Millisecond), 1+n/2); err != nil {
			return false
		}
		if err := s.SetActiveAt(sim.Time(400*sim.Millisecond), n); err != nil {
			return false
		}
		res := s.Run(700 * sim.Millisecond)

		// Conservation: station bits sum to payload × successes, and
		// per-station outcome counts sum to the global counters.
		var bits, succ, fail int64
		for _, st := range res.Stations {
			bits += st.BitsDelivered
			succ += st.Successes
			fail += st.Failures
		}
		if succ != res.Successes {
			return false
		}
		if bits != res.Successes*int64(model.PaperPHY().Payload) {
			return false
		}
		// Failures = collisions + frame errors (every collided or
		// errored frame times out exactly once). Collisions are counted
		// at frame end but the matching failure lands one ACK-timeout
		// later, so frames in flight at the horizon leave a gap of at
		// most one per station.
		gap := res.Collisions + res.FrameErrors - fail
		if gap < 0 || gap > int64(n) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
