package eventsim

import (
	"math/bits"

	"repro/internal/sim"
)

// bitset is a fixed-capacity bitmap over station ids. One word covers
// the common N ≤ 64 case; larger topologies use more words. The zero
// value is unusable — size with grow first.
type bitset struct {
	words []uint64
}

// grow (re)sizes the bitset for n ids and clears it.
func (b *bitset) grow(n int) {
	w := (n + 63) >> 6
	if cap(b.words) < w {
		b.words = make([]uint64, w)
		return
	}
	b.words = b.words[:w]
	for i := range b.words {
		b.words[i] = 0
	}
}

//wlanvet:hotpath
func (b *bitset) set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

//wlanvet:hotpath
func (b *bitset) clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Lazy contention wake-ups.
//
// A contending station on an idle medium is "armed": it has a due
// instant (runStart + remaining·σ) and a reserved scheduler sequence
// number, but no scheduler event. Exactly one live event exists for the
// whole contention system — the armed station with the smallest
// (due, vseq), tracked in armedSt/armedRef. Busy/idle transitions
// therefore cost counter updates plus at most one event cancel, instead
// of the per-neighbour arm/cancel storm of eager scheduling: scheduler
// traffic drops from O(neighbours) to O(1) amortised per transition.
//
// Bit-identity with eager scheduling is structural, not statistical:
//   - arming reserves a sequence number via TakeSeq at exactly the call
//     sites where the eager code scheduled, so every event in the run —
//     contention or not — carries the same (time, seq) key as before;
//   - the live event is submitted with the owner's reserved sequence
//     number (AtArgSeq), so same-instant ties (a due attempt racing a
//     frame completion, a beacon, an ACK) resolve exactly as they did
//     when every station held its own event;
//   - the candidate minimum is re-established (rearm) before any event
//     callback returns, so the earliest armed attempt always has a live
//     event and fires at its exact due instant.
// EventsFired is preserved too: the events that fire are precisely the
// attempts that would have fired eagerly — cancelled events never
// counted, and lazy arming never fires spuriously.

// disarm retracts st's virtual attempt (frozen or deactivated). When st
// owns the live event the candidate minimum is stale: cancel it and
// mark the system dirty so the enclosing transition batch re-arms.
//
//wlanvet:hotpath
func (s *Simulator) disarm(st *station) {
	st.armed = false
	s.ready.clear(st.id)
	if s.armedSt == st {
		s.armedRef.Cancel()
		s.armedRef = sim.Ref{}
		s.armedSt = nil
		s.contDirty = true
	}
}

// rearm re-establishes the live event on the armed station with the
// minimum (due, vseq). It runs as the scheduler's after-dispatch hook —
// once per event, after the callback's whole batch of transitions — and
// once at init for the pre-Run arming; it is O(armed stations) when
// dirty and O(1) otherwise.
//
//wlanvet:hotpath
func (s *Simulator) rearm() {
	if !s.contDirty {
		return
	}
	s.contDirty = false
	// Scan the flat (due, vseq) mirrors rather than the station structs:
	// the candidate minimum is re-established once per transition batch,
	// and a linear walk over two arrays stays in cache where pointer
	// chasing would not.
	best := -1
	for w, word := range s.ready.words {
		base := w << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			if best < 0 || s.dues[i] < s.dues[best] ||
				(s.dues[i] == s.dues[best] && s.vseqs[i] < s.vseqs[best]) {
				best = i
			}
		}
	}
	if best < 0 || s.stations[best] == s.armedSt {
		return
	}
	if s.armedSt != nil {
		s.armedRef.Cancel()
	}
	st := s.stations[best]
	s.armedSt = st
	s.armedRef = s.sched.AtArgSeq(st.due, st.vseq, s.txBeginFn, st)
}
