package eventsim

import (
	"repro/internal/mac"
	"repro/internal/sim"
)

// stationState is the MAC state of one station.
type stationState uint8

const (
	// stateContending: the station is serving its backoff (possibly
	// frozen behind a sensed transmission).
	stateContending stationState = iota
	// stateTransmitting: the station's data frame is in the air.
	stateTransmitting
	// stateAwaiting: data sent, waiting for the ACK or the timeout.
	stateAwaiting
	// stateInactive: the station is not participating.
	stateInactive
)

// station is the per-node simulation state. All mutation happens inside
// scheduler events, so no locking is needed.
type station struct {
	id     int
	policy mac.Policy
	rng    *sim.RNG
	state  stationState

	// busyCount is the number of in-air transmissions this station
	// senses (neighbouring stations' data frames plus AP frames). The
	// medium is idle for this station iff busyCount == 0.
	busyCount int
	// idleSince is when busyCount last dropped to zero (valid while
	// busyCount == 0).
	idleSince sim.Time

	// remaining is the number of backoff slots still to serve.
	remaining int
	// runStart anchors the current countdown: the station transmits at
	// runStart + remaining·σ unless the medium goes busy first. Valid
	// while txStart is active.
	runStart sim.Time
	// txStart is the pending transmission-start event. The zero Ref
	// means no attempt is armed.
	txStart sim.Ref

	// senseIdleOpen/senseIdleStart track the idle gap this station
	// observes between sensed transmissions (IdleSense's input).
	senseIdleOpen  bool
	senseIdleStart sim.Time

	seq     uint16
	retries uint8

	// Statistics.
	successes, failures int64
	bitsDelivered       int64

	// deferredStop requests deactivation at the end of the current
	// transmission attempt.
	deferredStop bool
}

// StationStats is the per-station slice of a Result.
type StationStats struct {
	// Successes and Failures count transmission attempts by outcome.
	Successes, Failures int64
	// BitsDelivered is the payload successfully delivered to the AP.
	BitsDelivered int64
	// Throughput is BitsDelivered over the measured interval, bits/s.
	Throughput float64
	// Weight echoes the station's fairness weight when its policy is
	// weighted p-persistent CSMA, else 1.
	Weight float64
}

// attemptProbability reports the policy's current attempt probability if
// it exposes one, else 0.
func (s *station) attemptProbability() float64 {
	if r, ok := s.policy.(mac.AttemptReporter); ok {
		return r.AttemptProbability()
	}
	return 0
}
