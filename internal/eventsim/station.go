package eventsim

import (
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// stationState is the MAC state of one station.
type stationState uint8

const (
	// stateContending: the station is serving its backoff (possibly
	// frozen behind a sensed transmission).
	stateContending stationState = iota
	// stateTransmitting: the station's data frame is in the air.
	stateTransmitting
	// stateAwaiting: data sent, waiting for the ACK or the timeout.
	stateAwaiting
	// stateInactive: the station is not participating.
	stateInactive
	// stateIdle: the station is active but its queue is empty — it waits
	// for the next packet arrival instead of contending. Only
	// unsaturated traffic sources ever enter this state.
	stateIdle
)

// arrivalQueue is a FIFO of packet arrival instants. Head-index popping
// with periodic compaction keeps the steady state allocation-free once
// the backing array has grown to the high-water mark.
type arrivalQueue struct {
	buf  []sim.Time
	head int
}

func (q *arrivalQueue) len() int { return len(q.buf) - q.head }

//wlanvet:hotpath
func (q *arrivalQueue) push(t sim.Time) {
	//wlanvet:allow amortised: the backing array grows to the queue high-water mark, then push reuses capacity (pop compacts in place)
	q.buf = append(q.buf, t)
}

//wlanvet:hotpath
func (q *arrivalQueue) pop() sim.Time {
	v := q.buf[q.head]
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 64 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// station is the per-node simulation state. All mutation happens inside
// scheduler events, so no locking is needed.
type station struct {
	id     int
	policy mac.Policy
	// observer and memoryless cache the policy's optional-interface
	// shape once at init: the busy/idle transition path runs for every
	// station on every frame, and repeating the type assertions there
	// costs more than the transitions themselves.
	observer   mac.MediumObserver
	memoryless bool
	rng        *sim.RNG
	state      stationState

	// busyCount is the number of in-air transmissions this station
	// senses (neighbouring stations' data frames plus AP frames). The
	// medium is idle for this station iff busyCount == 0.
	busyCount int
	// idleSince is when busyCount last dropped to zero (valid while
	// busyCount == 0).
	idleSince sim.Time

	// remaining is the number of backoff slots still to serve.
	remaining int
	// runStart anchors the current countdown: the station transmits at
	// runStart + remaining·σ unless the medium goes busy first. Valid
	// while armed.
	runStart sim.Time
	// armed marks a virtually scheduled transmission attempt: the
	// station is due to transmit at due, but holds no scheduler event of
	// its own. Only the globally earliest armed contender has a live
	// event (Simulator.armedSt); everyone else is woken lazily when the
	// candidate minimum moves (see Simulator.rearm). vseq is the
	// scheduler sequence number reserved at arm time, which preserves
	// the exact same-instant FIFO order eager per-station scheduling
	// would have produced.
	armed bool
	due   sim.Time
	vseq  uint64

	// senseIdleOpen/senseIdleStart track the idle gap this station
	// observes between sensed transmissions (IdleSense's input).
	senseIdleOpen  bool
	senseIdleStart sim.Time

	seq     uint16
	retries uint8

	// Traffic source state. arr describes the arrival process (zero
	// value: saturated); arrivalRNG is a dedicated substream so arrival
	// draws never perturb backoff draws; queue holds the arrival stamps
	// of waiting packets (unsaturated only — a saturated backlog is
	// conceptually infinite and tracks only holSince).
	arr         traffic.Spec
	arrivalRNG  *sim.RNG
	queue       arrivalQueue
	nextArrival sim.Ref
	phaseRef    sim.Ref
	trafficOn   bool

	// holSince is when the current head-of-line packet became eligible
	// for service (saturated sources: the end of the previous delivery),
	// the epoch for MAC access-delay measurement.
	holSince sim.Time

	// Per-station latency/jitter accumulators: lastLat is the previous
	// delivered packet's latency (for the mean |ΔL| jitter estimator).
	lastLat  sim.Duration
	latSum   sim.Duration
	latCount int64

	// Statistics.
	successes, failures int64
	bitsDelivered       int64
	arrivals, drops     int64

	// deferredStop requests deactivation at the end of the current
	// transmission attempt.
	deferredStop bool
}

// StationStats is the per-station slice of a Result.
type StationStats struct {
	// Successes and Failures count transmission attempts by outcome.
	Successes, Failures int64
	// BitsDelivered is the payload successfully delivered to the AP.
	BitsDelivered int64
	// Throughput is BitsDelivered over the measured interval, bits/s.
	Throughput float64
	// Weight echoes the station's fairness weight when its policy is
	// weighted p-persistent CSMA, else 1.
	Weight float64
	// Arrivals and Drops count the station's offered packets and
	// queue-overflow losses (unsaturated traffic sources only).
	Arrivals, Drops int64
	// MeanLatency is the mean packet delay from arrival (saturated:
	// head-of-line instant) to ACK completion, 0 with no deliveries.
	MeanLatency sim.Duration
}

// attemptProbability reports the policy's current attempt probability if
// it exposes one, else 0.
func (s *station) attemptProbability() float64 {
	if r, ok := s.policy.(mac.AttemptReporter); ok {
		return r.AttemptProbability()
	}
	return 0
}
