package eventsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
)

// wtopSim builds a wTOP-CSMA closed loop over the given topology.
func wtopSim(t *testing.T, tp *topo.Topology, weights []float64, seed int64) (*Simulator, *core.WTOP) {
	t.Helper()
	phy := model.PaperPHY()
	ctl := core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	ps := make([]mac.Policy, tp.N())
	for i := range ps {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		ps[i] = mac.NewPPersistent(w, 0.1)
	}
	s, err := New(Config{Topology: tp, Policies: ps, Controller: ctl, Seed: seed, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	return s, ctl
}

// wtopSimWithErrors builds a wTOP loop over a lossy channel.
func wtopSimWithErrors(t *testing.T, n int, errorRate float64, seed int64) (*Simulator, *core.WTOP) {
	t.Helper()
	phy := model.PaperPHY()
	ctl := core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewPPersistent(1, 0.1)
	}
	s, err := New(Config{
		Topology:       connectedTopo(n),
		Policies:       ps,
		Controller:     ctl,
		Seed:           seed,
		PHY:            phy,
		FrameErrorRate: errorRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, ctl
}

// toraSim builds a TORA-CSMA closed loop.
func toraSim(t *testing.T, tp *topo.Topology, seed int64) (*Simulator, *core.TORA) {
	t.Helper()
	phy := model.PaperPHY()
	back := model.PaperBackoff()
	ctl := core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate})
	ps := make([]mac.Policy, tp.N())
	for i := range ps {
		ps[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
	}
	s, err := New(Config{Topology: tp, Policies: ps, Controller: ctl, Seed: seed, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	return s, ctl
}

func TestWTOPConvergesFullyConnected(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	n := 20
	s, ctl := wtopSim(t, connectedTopo(n), nil, 41)
	res := s.Run(90 * sim.Second)
	mdl := model.PPersistent{PHY: model.PaperPHY()}
	opt := mdl.MaxThroughput(model.UnitWeights(n))
	converged := res.ConvergedThroughput(45 * sim.Second)
	if converged < 0.88*opt {
		t.Errorf("wTOP converged to %.2f Mbps < 88%% of optimum %.2f Mbps (pval %.4f, p* %.4f)",
			converged/1e6, opt/1e6, ctl.PVal(), mdl.OptimalP(model.UnitWeights(n)))
	}
}

func TestWTOPBeatsStandardDCFFullyConnected(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	// Fig. 3's core claim at N = 40: wTOP ≫ standard 802.11.
	n := 40
	s, _ := wtopSim(t, connectedTopo(n), nil, 43)
	wtop := s.Run(90 * sim.Second).ConvergedThroughput(45 * sim.Second)

	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewStandardDCF(8, 1024)
	}
	d, err := New(Config{Topology: connectedTopo(n), Policies: ps, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	dcf := d.Run(30 * sim.Second).Throughput
	// Fig. 3's shape: a clear gap at N=40. The paper shows ≈1.35× with
	// its ns-3 PHY accounting; ours lands ≈1.2× (see EXPERIMENTS.md).
	if wtop < 1.15*dcf {
		t.Errorf("wTOP %.2f Mbps not clearly above standard DCF %.2f Mbps at N=40",
			wtop/1e6, dcf/1e6)
	}
}

func TestWTOPWeightedFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	// Table II: weights 1,1,1,2,2,2,3,3,3,3 — normalised throughput must
	// be uniform and the total near the unweighted optimum.
	weights := []float64{1, 1, 1, 2, 2, 2, 3, 3, 3, 3}
	s, _ := wtopSim(t, connectedTopo(10), weights, 47)
	res := s.Run(90 * sim.Second)
	if w := res.WeightedJainIndex(); w < 0.95 {
		t.Errorf("weighted Jain index %.4f, want ≥ 0.95", w)
	}
	// Per-weight shares: station 9 (w=3) ≈ 3× station 0 (w=1).
	r0 := res.Stations[0].Throughput
	r9 := res.Stations[9].Throughput
	if ratio := r9 / r0; ratio < 2.4 || ratio > 3.6 {
		t.Errorf("weight-3/weight-1 throughput ratio %.2f, want ≈ 3", ratio)
	}
}

func TestTORAConvergesFullyConnected(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	n := 20
	s, ctl := toraSim(t, connectedTopo(n), 53)
	res := s.Run(90 * sim.Second)
	rr := model.RandomReset{PHY: model.PaperPHY(), Backoff: model.PaperBackoff(), N: n}
	_, _, best := rr.OptimalJP(0.05)
	converged := res.ConvergedThroughput(45 * sim.Second)
	if converged < 0.85*best {
		t.Errorf("TORA converged to %.2f Mbps < 85%% of best RandomReset %.2f Mbps (j=%d, p0=%.3f)",
			converged/1e6, best/1e6, ctl.J(), ctl.P0Val())
	}
}

func TestControllersBeatDCFWithHiddenNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	// The paper's hidden-node findings (Section IV, Figs. 6–7): the
	// exponential-backoff TORA-CSMA holds up and outperforms the optimal
	// p-persistent scheme, which — as the paper itself observes — "can
	// perform worse even than the standard IEEE 802.11 protocol".
	tp := topo.New(topo.Point{}, topo.UniformDisc(20, 16, sim.NewRNG(2024)), topo.PaperRadii())
	if len(tp.HiddenPairs()) == 0 {
		t.Skip("seed produced no hidden pairs")
	}
	if err := tp.Validate(); err != nil {
		t.Skip("seed produced stations outside AP range")
	}

	runDCF := func() float64 {
		ps := make([]mac.Policy, tp.N())
		for i := range ps {
			ps[i] = mac.NewStandardDCF(8, 1024)
		}
		s, err := New(Config{Topology: tp, Policies: ps, Seed: 61})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(30 * sim.Second).Throughput
	}
	dcf := runDCF()

	sw, _ := wtopSim(t, tp, nil, 61)
	wtop := sw.Run(90 * sim.Second).ConvergedThroughput(45 * sim.Second)

	st, _ := toraSim(t, tp, 61)
	tora := st.Run(90 * sim.Second).ConvergedThroughput(45 * sim.Second)

	// TORA must hold up against standard 802.11 (it generalises it: DCF
	// is RandomReset(0;1)), and must beat the p-persistent optimum — the
	// paper's case for keeping exponential backoff.
	if tora < 0.95*dcf {
		t.Errorf("hidden nodes: TORA %.2f Mbps below standard DCF %.2f Mbps", tora/1e6, dcf/1e6)
	}
	if tora <= wtop {
		t.Errorf("hidden nodes: TORA %.2f Mbps did not beat wTOP %.2f Mbps", tora/1e6, wtop/1e6)
	}
	t.Logf("hidden topology (%d hidden pairs): DCF %.2f, wTOP %.2f, TORA %.2f Mbps",
		len(tp.HiddenPairs()), dcf/1e6, wtop/1e6, tora/1e6)
}

func TestWTOPAdaptsToNodeChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	// Figs. 8–9: throughput must stay near the optimum as N steps
	// 10 → 30 → 20.
	n := 30
	phy := model.PaperPHY()
	ctl := core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewPPersistent(1, 0.1)
	}
	sim3, err := New(Config{
		Topology:      connectedTopo(n),
		Policies:      ps,
		Controller:    ctl,
		Seed:          67,
		InitialActive: 10,
		PHY:           phy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim3.SetActiveAt(sim.Time(60*sim.Second), 30); err != nil {
		t.Fatal(err)
	}
	if err := sim3.SetActiveAt(sim.Time(120*sim.Second), 20); err != nil {
		t.Fatal(err)
	}
	res := sim3.Run(180 * sim.Second)
	mdl := model.PPersistent{PHY: phy}
	// In each regime's tail the throughput should be near that regime's
	// optimum.
	phases := []struct {
		from, to sim.Time
		n        int
	}{
		{sim.Time(30 * sim.Second), sim.Time(60 * sim.Second), 10},
		{sim.Time(90 * sim.Second), sim.Time(120 * sim.Second), 30},
		{sim.Time(150 * sim.Second), sim.Time(180 * sim.Second), 20},
	}
	for _, ph := range phases {
		var sum float64
		var count int
		for i, at := range res.ThroughputSeries.Times {
			if at >= ph.from && at < ph.to {
				sum += res.ThroughputSeries.Values[i]
				count++
			}
		}
		if count == 0 {
			t.Fatalf("no samples in phase %+v", ph)
		}
		got := sum / float64(count)
		opt := mdl.MaxThroughput(model.UnitWeights(ph.n))
		if got < 0.8*opt {
			t.Errorf("churn phase N=%d: %.2f Mbps < 80%% of optimum %.2f Mbps (pval %.4f)",
				ph.n, got/1e6, opt/1e6, ctl.PVal())
		}
	}
}
