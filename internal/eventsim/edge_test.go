package eventsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestDeactivateDuringTransmission(t *testing.T) {
	// Schedule a deactivation certain to land while frames are in the
	// air (saturated stations transmit constantly); the exchange must
	// finish cleanly and the station then go quiet.
	n := 4
	s, err := New(Config{Topology: connectedTopo(n), Policies: fixedPPolicies(n, 0.2), Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		target := n - i%2 // alternate 4 and 3 active stations
		if err := s.SetActiveAt(sim.Time(i)*sim.Time(100*sim.Millisecond), target); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run(3 * sim.Second)
	if res.Successes == 0 {
		t.Fatal("no successes through churn storm")
	}
	if s.ActiveStations() != 4 {
		t.Errorf("final active = %d, want 4", s.ActiveStations())
	}
}

func TestBeaconsDoNotCorruptThroughputWithoutController(t *testing.T) {
	// Beacons steal airtime but must not break accounting; with a 50 ms
	// interval the cost is bounded (ACKTxTime per beacon).
	n := 8
	base, err := New(Config{Topology: connectedTopo(n), Policies: fixedPPolicies(n, 0.03), Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	withBeacons, err := New(Config{
		Topology:       connectedTopo(n),
		Policies:       fixedPPolicies(n, 0.03),
		Seed:           43,
		BeaconInterval: 50 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rb := base.Run(10 * sim.Second)
	rw := withBeacons.Run(10 * sim.Second)
	if rw.Throughput >= rb.Throughput {
		t.Log("beacon run matched baseline throughput (acceptable within noise)")
	}
	if rw.Throughput < 0.97*rb.Throughput {
		t.Errorf("beacons cost too much: %.3f vs %.3f Mbps", rw.ThroughputMbps(), rb.ThroughputMbps())
	}
}

func TestTORAWithRTSCTSRuns(t *testing.T) {
	// Controller + RTS/CTS compose: TORA tunes the backoff that gates
	// RTS attempts.
	phy := model.PaperPHY()
	back := model.PaperBackoff()
	ps := make([]mac.Policy, 10)
	for i := range ps {
		ps[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
	}
	s, err := New(Config{
		Topology:   hiddenTopo(10),
		Policies:   ps,
		Controller: core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate}),
		Seed:       47,
		RTSCTS:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(20 * sim.Second)
	if res.Successes == 0 {
		t.Fatal("no successes")
	}
	// RTS/CTS on a two-cluster hidden topology must hold a decent rate.
	if res.Throughput < 10e6 {
		t.Errorf("TORA+RTS/CTS on hidden clusters: %.2f Mbps, want ≥ 10", res.ThroughputMbps())
	}
}

func TestRunIsResumable(t *testing.T) {
	// Run(d1) then Run(d2 > d1) must equal a single Run(d2) for the same
	// seed (the scheduler keeps exact state).
	mk := func() *Simulator {
		s, err := New(Config{Topology: connectedTopo(6), Policies: fixedPPolicies(6, 0.05), Seed: 53})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	split := mk()
	split.Run(2 * sim.Second)
	r1 := split.Run(5 * sim.Second)
	r2 := mk().Run(5 * sim.Second)
	if r1.Successes != r2.Successes || r1.Collisions != r2.Collisions {
		t.Errorf("split run diverged: %d/%d vs %d/%d",
			r1.Successes, r1.Collisions, r2.Successes, r2.Collisions)
	}
}

func TestZeroStationsTopologyRejected(t *testing.T) {
	tp := connectedTopo(0)
	if _, err := New(Config{Topology: tp, Policies: nil}); err != nil {
		// Zero stations with zero policies is structurally consistent;
		// the simulator should either reject it or run it as dead air.
		return
	}
	s, _ := New(Config{Topology: tp, Policies: []mac.Policy{}})
	if s != nil {
		res := s.Run(100 * sim.Millisecond)
		if res.Successes != 0 || res.Collisions != 0 {
			t.Error("phantom traffic in an empty network")
		}
	}
}
