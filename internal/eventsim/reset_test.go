package eventsim_test

// Arena-reuse contract: a Simulator reset for a new configuration must
// be indistinguishable — byte for byte in its Result encoding — from a
// freshly constructed one. The scenario runner leans on this to reuse
// one simulator per worker across replications; any divergence would
// make results depend on worker scheduling.

import (
	"encoding/json"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/sim"
)

// resultBytes canonicalises a Result for exact comparison, including
// the latency histogram moments the JSON encoding cannot see.
func resultBytes(t *testing.T, res *eventsim.Result) []byte {
	t.Helper()
	data, err := json.Marshal(&resultFingerprint{
		Result:       res,
		LatencyCount: res.Latency.Count(),
		LatencyMean:  res.Latency.Mean(),
		LatencyP50:   res.Latency.Quantile(0.50),
		LatencyP99:   res.Latency.Quantile(0.99),
		LatencyMax:   res.Latency.Max(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestResetMatchesNew drives one simulator arena through the whole
// fingerprint battery — every case back to back on the same instance,
// deliberately switching topology size, scheme, traffic model and
// RTS/CTS between runs — and requires each Result to equal the fresh
// New construction bit for bit.
func TestResetMatchesNew(t *testing.T) {
	var arena *eventsim.Simulator
	for _, fc := range fingerprintCases() {
		for _, seed := range fc.seeds {
			fresh := fc.run(t, seed)
			reused := fc.runReset(t, seed, &arena)
			got, want := resultBytes(t, reused), resultBytes(t, fresh)
			if string(got) != string(want) {
				t.Errorf("%s seed %d: Reset diverges from New:\n reset %s\n fresh %s",
					fc.name, seed, got, want)
			}
		}
	}
}

// TestResetValidates confirms Reset applies the same validation as New
// and leaves no half-initialised state behind on error.
func TestResetValidates(t *testing.T) {
	fc := fingerprintCases()[0]
	var arena *eventsim.Simulator
	fc.runReset(t, 1, &arena) // materialise the arena
	if err := arena.Reset(eventsim.Config{}); err == nil {
		t.Fatal("Reset accepted a config without a topology")
	}
	// The arena must still be fully usable for a valid config.
	res := fc.runReset(t, 1, &arena)
	if string(resultBytes(t, res)) != string(resultBytes(t, fc.run(t, 1))) {
		t.Fatal("arena diverges from fresh construction after a failed Reset")
	}
}

// BenchmarkSimulatorReuse contrasts per-replication construction cost:
// a fresh New per run versus Reset on one arena — the sweep runner's
// steady state. Run with -benchmem; the reset path must shed the
// RNG-state and scheduler-pool allocations that dominate New.
func BenchmarkSimulatorReuse(b *testing.B) {
	cfg := func(seed int64) eventsim.Config {
		policies, _ := policySet("dcf", 20, phyForBench)
		return eventsim.Config{
			Topology: benchTopology(20),
			Policies: policies,
			Seed:     seed,
		}
	}
	const dur = 100 * sim.Millisecond
	b.Run("new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := eventsim.New(cfg(int64(i + 1)))
			if err != nil {
				b.Fatal(err)
			}
			s.Run(dur)
		}
	})
	b.Run("reset", func(b *testing.B) {
		b.ReportAllocs()
		var s *eventsim.Simulator
		for i := 0; i < b.N; i++ {
			c := cfg(int64(i + 1))
			if s == nil {
				var err error
				if s, err = eventsim.New(c); err != nil {
					b.Fatal(err)
				}
			} else if err := s.Reset(c); err != nil {
				b.Fatal(err)
			}
			s.Run(dur)
		}
	})
}
