package eventsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// The per-frame path — backoff countdown, transmission launch and
// completion, ACK exchange, contention restart — must be allocation-free
// once the event pool, transmission pool and air-state slices have warmed
// up. The controller window is pushed beyond the horizon so the test
// isolates the frame lifecycle (series appends are measured windows, not
// per-frame work).
func TestPerFramePathZeroAllocSteadyState(t *testing.T) {
	const n = 10
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewStandardDCF(16, 1024)
	}
	s, err := New(Config{
		Topology:     topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies:     policies,
		UpdatePeriod: 1000 * sim.Second,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * sim.Second) // warm every pool
	next := s.sched.Now()
	if avg := testing.AllocsPerRun(50, func() {
		next = next.Add(20 * sim.Millisecond)
		s.sched.RunUntil(next)
	}); avg != 0 {
		t.Errorf("per-frame path allocates %.2f allocs per 20 ms of simulated time, want 0", avg)
	}
	if s.successes == 0 {
		t.Fatal("simulation made no progress")
	}
}

// The p-persistent path additionally exercises the batched geometric
// draw; it must be allocation-free too (the FloatBatch buffer lives
// inside the policy value).
func TestPerFramePathZeroAllocPPersistent(t *testing.T) {
	const n = 20
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewPPersistent(1, 0.02)
	}
	s, err := New(Config{
		Topology:     topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies:     policies,
		UpdatePeriod: 1000 * sim.Second,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * sim.Second)
	next := s.sched.Now()
	if avg := testing.AllocsPerRun(50, func() {
		next = next.Add(20 * sim.Millisecond)
		s.sched.RunUntil(next)
	}); avg != 0 {
		t.Errorf("p-persistent per-frame path allocates %.2f allocs per 20 ms, want 0", avg)
	}
}

// The unsaturated path adds arrival events, queue pushes/pops and the
// latency/jitter accounting to the frame lifecycle; once the queue
// backing arrays have reached their high-water mark it must be
// allocation-free too.
func TestPerFramePathZeroAllocTraffic(t *testing.T) {
	const n = 10
	policies := make([]mac.Policy, n)
	arrivals := make([]traffic.Spec, n)
	for i := range policies {
		policies[i] = mac.NewStandardDCF(16, 1024)
		arrivals[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 300, QueueCap: 32}
	}
	s, err := New(Config{
		Topology:     topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies:     policies,
		Arrivals:     arrivals,
		UpdatePeriod: 1000 * sim.Second,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * sim.Second)
	next := s.sched.Now()
	if avg := testing.AllocsPerRun(50, func() {
		next = next.Add(20 * sim.Millisecond)
		s.sched.RunUntil(next)
	}); avg != 0 {
		t.Errorf("unsaturated per-frame path allocates %.2f allocs per 20 ms, want 0", avg)
	}
	if s.totalArrivals == 0 || s.successes == 0 {
		t.Fatal("traffic simulation made no progress")
	}
}

// The controller-enabled path adds window closes, control broadcasts
// and beacon frames. Window/series appends are amortised (power-of-two
// growth), so the guardrail runs whole windows and requires the
// amortised steady state to stay under one allocation per window.
func TestControllerPathSteadyAllocBound(t *testing.T) {
	const n = 12
	phy := model.PaperPHY()
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewPPersistent(1, 0.1)
	}
	s, err := New(Config{
		Topology:   topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies:   policies,
		Controller: core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate}),
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(4 * sim.Second) // warm pools and series past several growths
	next := s.sched.Now()
	if avg := testing.AllocsPerRun(20, func() {
		next = next.Add(250 * sim.Millisecond) // one controller window
		s.sched.RunUntil(next)
	}); avg > 1 {
		t.Errorf("controller path allocates %.2f allocs per window, want ≤ 1 (amortised series growth)", avg)
	}
	if s.successes == 0 {
		t.Fatal("controller simulation made no progress")
	}
}
