package eventsim

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topo"
)

// The per-frame path — backoff countdown, transmission launch and
// completion, ACK exchange, contention restart — must be allocation-free
// once the event pool, transmission pool and air-state slices have warmed
// up. The controller window is pushed beyond the horizon so the test
// isolates the frame lifecycle (series appends are measured windows, not
// per-frame work).
func TestPerFramePathZeroAllocSteadyState(t *testing.T) {
	const n = 10
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewStandardDCF(16, 1024)
	}
	s, err := New(Config{
		Topology:     topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies:     policies,
		UpdatePeriod: 1000 * sim.Second,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * sim.Second) // warm every pool
	next := s.sched.Now()
	if avg := testing.AllocsPerRun(50, func() {
		next = next.Add(20 * sim.Millisecond)
		s.sched.RunUntil(next)
	}); avg != 0 {
		t.Errorf("per-frame path allocates %.2f allocs per 20 ms of simulated time, want 0", avg)
	}
	if s.successes == 0 {
		t.Fatal("simulation made no progress")
	}
}

// The p-persistent path additionally exercises the batched geometric
// draw; it must be allocation-free too (the FloatBatch buffer lives
// inside the policy value).
func TestPerFramePathZeroAllocPPersistent(t *testing.T) {
	const n = 20
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewPPersistent(1, 0.02)
	}
	s, err := New(Config{
		Topology:     topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies:     policies,
		UpdatePeriod: 1000 * sim.Second,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * sim.Second)
	next := s.sched.Now()
	if avg := testing.AllocsPerRun(50, func() {
		next = next.Add(20 * sim.Millisecond)
		s.sched.RunUntil(next)
	}); avg != 0 {
		t.Errorf("p-persistent per-frame path allocates %.2f allocs per 20 ms, want 0", avg)
	}
}
