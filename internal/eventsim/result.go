package eventsim

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Result is the outcome of a simulation run.
type Result struct {
	// Duration is the simulated time covered.
	Duration sim.Duration
	// Throughput is total delivered payload over Duration, bits/second.
	Throughput float64
	// Stations holds per-station statistics in station-index order.
	Stations []StationStats
	// Successes and Collisions count completed station transmissions by
	// outcome (a frame involved in any overlap counts as one collision;
	// in RTS/CTS mode collided RTS frames count here too).
	Successes, Collisions int64
	// FrameErrors counts data frames lost to the i.i.d. channel error
	// process (Config.FrameErrorRate) rather than to collisions.
	FrameErrors int64
	// APIdleSlots is the mean number of idle slots between busy periods
	// observed at the AP (Table III's statistic).
	APIdleSlots float64
	// MaxConcurrent is the peak number of simultaneously in-air data
	// frames. It exceeds 1 only through collisions; in a fully connected
	// network it can still reach 2 via slot-synchronised attempts, while
	// hidden topologies routinely push it higher.
	MaxConcurrent int
	// ThroughputSeries samples windowed throughput (bits/s) at every
	// UPDATE_PERIOD boundary.
	ThroughputSeries stats.TimeSeries
	// ControlSeries samples the broadcast control variable (p for
	// wTOP-CSMA, p0 for TORA-CSMA) at the same boundaries.
	ControlSeries stats.TimeSeries
	// ActiveSeries samples the active-station count (node churn).
	ActiveSeries stats.TimeSeries
	// EventsFired counts kernel events, for performance reporting.
	EventsFired uint64
	// Latency is the histogram of delivered-packet delays: from packet
	// arrival (saturated sources: the instant the packet became
	// head-of-line) to ACK completion. Use Quantile for percentiles.
	Latency stats.DurationHist
	// JitterSum and JitterCount accumulate |ΔL| between consecutive
	// deliveries of the same station, summed across stations; their
	// ratio (JitterMean) is an RFC 3550-style delay-variation measure.
	// Kept as sums so replications aggregate exactly.
	JitterSum   sim.Duration
	JitterCount int64
	// PacketsArrived and PacketsDropped count offered packets and
	// queue-overflow losses across all unsaturated traffic sources
	// (both zero in the saturated regime).
	PacketsArrived, PacketsDropped int64
}

// JitterMean returns the mean absolute latency difference between
// consecutive deliveries, 0 with fewer than two deliveries anywhere.
func (r *Result) JitterMean() sim.Duration {
	if r.JitterCount == 0 {
		return 0
	}
	return r.JitterSum / sim.Duration(r.JitterCount)
}

// ThroughputMbps returns the run throughput in Mbit/s.
func (r *Result) ThroughputMbps() float64 { return r.Throughput / 1e6 }

// ConvergedThroughput averages windowed throughput after the warmup
// prefix, excluding the adaptation transient.
func (r *Result) ConvergedThroughput(warmup sim.Duration) float64 {
	return r.ThroughputSeries.MeanAfter(sim.Time(warmup))
}

// JainIndex returns the fairness index over per-station throughputs of
// stations that delivered or attempted anything.
func (r *Result) JainIndex() float64 {
	var xs []float64
	for _, st := range r.Stations {
		if st.Successes+st.Failures > 0 {
			xs = append(xs, st.Throughput)
		}
	}
	return stats.JainIndex(xs)
}

// WeightedJainIndex returns the weight-normalised fairness index
// (Definition 2's criterion).
func (r *Result) WeightedJainIndex() float64 {
	var xs, ws []float64
	for _, st := range r.Stations {
		if st.Successes+st.Failures > 0 {
			xs = append(xs, st.Throughput)
			ws = append(ws, st.Weight)
		}
	}
	idx, err := stats.WeightedJainIndex(xs, ws)
	if err != nil {
		return 0
	}
	return idx
}

// CollisionRate returns collided transmissions as a fraction of all
// completed transmissions.
func (r *Result) CollisionRate() float64 {
	total := r.Successes + r.Collisions
	if total == 0 {
		return 0
	}
	return float64(r.Collisions) / float64(total)
}

// String renders a compact human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "duration %.2fs  throughput %.3f Mbps  successes %d  collisions %d (%.1f%%)  idle slots %.2f",
		sim.Time(0).Add(r.Duration).Seconds(), r.ThroughputMbps(), r.Successes, r.Collisions,
		100*r.CollisionRate(), r.APIdleSlots)
	return b.String()
}
