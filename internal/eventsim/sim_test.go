package eventsim

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
)

// connectedTopo returns a fully connected N-station topology (circle of
// radius 8, paper radii).
func connectedTopo(n int) *topo.Topology {
	return topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii())
}

// hiddenTopo returns a deterministic topology where the two halves of the
// stations cannot sense each other.
func hiddenTopo(n int) *topo.Topology {
	return topo.New(topo.Point{}, topo.TwoClusters(n, 30), topo.PaperRadii())
}

func fixedPPolicies(n int, p float64) []mac.Policy {
	ps := make([]mac.Policy, n)
	for i := range ps {
		pp := mac.NewPPersistent(1, p)
		ps[i] = pp
	}
	return ps
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
	tp := connectedTopo(3)
	if _, err := New(Config{Topology: tp}); err == nil {
		t.Error("missing policies accepted")
	}
	if _, err := New(Config{Topology: tp, Policies: []mac.Policy{nil, nil, nil}}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(Config{Topology: tp, Policies: fixedPPolicies(3, 0.1), UpdatePeriod: -1}); err == nil {
		t.Error("negative update period accepted")
	}
	if _, err := New(Config{Topology: tp, Policies: fixedPPolicies(3, 0.1), InitialActive: 5}); err == nil {
		t.Error("InitialActive > N accepted")
	}
	s, err := New(Config{Topology: tp, Policies: fixedPPolicies(3, 0.1), Seed: 1})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if s.ActiveStations() != 3 {
		t.Errorf("ActiveStations = %d, want 3", s.ActiveStations())
	}
}

func TestSingleStationSaturation(t *testing.T) {
	// One station alone must deliver back-to-back frames with zero
	// collisions. Per-frame cycle = Ts + E[backoff]·σ; with p = 0.5 the
	// mean backoff is 1 slot.
	phy := model.PaperPHY()
	s, err := New(Config{
		Topology: connectedTopo(1),
		Policies: fixedPPolicies(1, 0.5),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(5 * sim.Second)
	if res.Collisions != 0 {
		t.Errorf("collisions = %d, want 0", res.Collisions)
	}
	if res.Successes == 0 {
		t.Fatal("no successes")
	}
	cycle := phy.Ts().Seconds() + 1*phy.Slot.Seconds()
	want := float64(phy.Payload) / cycle
	if math.Abs(res.Throughput-want)/want > 0.03 {
		t.Errorf("throughput %v, want ≈ %v (single-station renewal)", res.Throughput, want)
	}
	if res.MaxConcurrent != 1 {
		t.Errorf("MaxConcurrent = %d, want 1", res.MaxConcurrent)
	}
}

func TestMatchesAnalyticModelFullyConnected(t *testing.T) {
	// The headline calibration: event-driven simulation with fixed
	// attempt probability must land on Eq. (3) in a fully connected
	// network. This validates the slot/DIFS/freeze machinery end to end.
	phy := model.PaperPHY()
	m := model.PPersistent{PHY: phy}
	for _, tc := range []struct {
		n int
		p float64
	}{
		{5, 0.02}, {10, 0.02}, {20, 0.01}, {20, 0.05},
	} {
		s, err := New(Config{
			Topology: connectedTopo(tc.n),
			Policies: fixedPPolicies(tc.n, tc.p),
			Seed:     int64(tc.n * 1000),
		})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(20 * sim.Second)
		attempt := make([]float64, tc.n)
		for i := range attempt {
			attempt[i] = tc.p
		}
		want := m.SystemThroughputAt(attempt)
		rel := math.Abs(res.Throughput-want) / want
		if rel > 0.06 {
			t.Errorf("N=%d p=%v: sim %.3f Mbps vs model %.3f Mbps (rel err %.3f)",
				tc.n, tc.p, res.Throughput/1e6, want/1e6, rel)
		}
	}
}

func TestFairnessEqualWeightsFullyConnected(t *testing.T) {
	s, err := New(Config{
		Topology: connectedTopo(10),
		Policies: fixedPPolicies(10, 0.03),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(20 * sim.Second)
	if j := res.JainIndex(); j < 0.97 {
		t.Errorf("Jain index %v, want ≥ 0.97 for identical stations", j)
	}
	// Conservation: per-station bits sum to the total.
	var bits int64
	for _, st := range res.Stations {
		bits += st.BitsDelivered
	}
	if got := float64(bits) / res.Duration.Seconds(); math.Abs(got-res.Throughput) > 1 {
		t.Errorf("station bits %.0f b/s vs total %.0f b/s", got, res.Throughput)
	}
}

func TestCollisionsIncreaseWithAttemptProbability(t *testing.T) {
	rate := func(p float64) float64 {
		s, err := New(Config{
			Topology: connectedTopo(15),
			Policies: fixedPPolicies(15, p),
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(10 * sim.Second).CollisionRate()
	}
	low, high := rate(0.005), rate(0.1)
	if low >= high {
		t.Errorf("collision rate must rise with p: %.3f at 0.005 vs %.3f at 0.1", low, high)
	}
}

func TestQuasiConcaveThroughputInP(t *testing.T) {
	// Sweep p over a decade around the optimum; the simulated throughput
	// must peak in the interior (Fig. 2's bell shape).
	n := 20
	ps := []float64{0.002, 0.005, 0.015, 0.05, 0.15, 0.4}
	var ss []float64
	for _, p := range ps {
		s, err := New(Config{
			Topology: connectedTopo(n),
			Policies: fixedPPolicies(n, p),
			Seed:     int64(1000 * p),
		})
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s.Run(8*sim.Second).Throughput)
	}
	best := 0
	for i, v := range ss {
		if v > ss[best] {
			best = i
		}
	}
	if best == 0 || best == len(ss)-1 {
		t.Errorf("throughput peaked at the sweep edge: %v", ss)
	}
}

func TestHiddenNodesCollapseThroughput(t *testing.T) {
	// Two mutually hidden clusters at a p that is comfortable in a
	// connected network must see mass collisions: carrier sense is blind
	// across clusters, so overlaps at the AP are rampant.
	p := 0.02
	n := 10
	conn, err := New(Config{Topology: connectedTopo(n), Policies: fixedPPolicies(n, p), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hid, err := New(Config{Topology: hiddenTopo(n), Policies: fixedPPolicies(n, p), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rc := conn.Run(10 * sim.Second)
	rh := hid.Run(10 * sim.Second)
	if rh.Throughput >= rc.Throughput {
		t.Errorf("hidden topology (%.2f Mbps) should underperform connected (%.2f Mbps)",
			rh.ThroughputMbps(), rc.ThroughputMbps())
	}
	if rh.CollisionRate() <= rc.CollisionRate()*1.5 {
		t.Errorf("hidden collision rate %.3f not clearly above connected %.3f",
			rh.CollisionRate(), rc.CollisionRate())
	}
	if rh.MaxConcurrent < 2 {
		t.Error("hidden topology never overlapped transmissions")
	}
}

func TestHiddenPairOverlapDetection(t *testing.T) {
	// With exactly two mutually hidden stations at very high p, almost
	// every transmission should collide: each station cannot sense the
	// other, so it counts down straight through the other's frames.
	tp := hiddenTopo(2)
	if tp.FullyConnected() {
		t.Fatal("test topology unexpectedly connected")
	}
	s, err := New(Config{Topology: tp, Policies: fixedPPolicies(2, 0.5), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(5 * sim.Second)
	if res.CollisionRate() < 0.8 {
		t.Errorf("collision rate %.3f, want ≈ 1 for aggressive hidden pair", res.CollisionRate())
	}
}

func TestConnectedPairNoHiddenCollisionsAtModestP(t *testing.T) {
	// Two stations that sense each other can only collide via
	// slot-synchronised attempts, which at small p are rare.
	s, err := New(Config{Topology: connectedTopo(2), Policies: fixedPPolicies(2, 0.01), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(10 * sim.Second)
	if res.CollisionRate() > 0.05 {
		t.Errorf("collision rate %.3f too high for p=0.01, N=2", res.CollisionRate())
	}
}

func TestDCFPoliciesRunAndDegrade(t *testing.T) {
	// Standard DCF with CWmin=8: throughput at N=40 must be below
	// throughput at N=10 (Fig. 3's declining 802.11 curve).
	run := func(n int) float64 {
		ps := make([]mac.Policy, n)
		for i := range ps {
			ps[i] = mac.NewStandardDCF(8, 1024)
		}
		s, err := New(Config{Topology: connectedTopo(n), Policies: ps, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(10 * sim.Second).Throughput
	}
	s10, s40 := run(10), run(40)
	if s40 >= s10 {
		t.Errorf("DCF throughput should degrade with N: S(10)=%.2f, S(40)=%.2f Mbps", s10/1e6, s40/1e6)
	}
}

func TestDCFMatchesBianchiModel(t *testing.T) {
	// The event simulator running standard DCF should land near the
	// Bianchi fixed-point prediction in a fully connected network.
	for _, n := range []int{5, 15, 30} {
		ps := make([]mac.Policy, n)
		for i := range ps {
			ps[i] = mac.NewStandardDCF(8, 1024)
		}
		s, err := New(Config{Topology: connectedTopo(n), Policies: ps, Seed: int64(n * 7)})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(15 * sim.Second)
		want := model.DCF{PHY: model.PaperPHY(), Backoff: model.PaperBackoff(), N: n}.Throughput()
		rel := math.Abs(res.Throughput-want) / want
		if rel > 0.12 {
			t.Errorf("N=%d: sim %.2f Mbps vs Bianchi %.2f Mbps (rel %.3f)",
				n, res.Throughput/1e6, want/1e6, rel)
		}
	}
}

func TestIdleSlotTrackerMatchesModel(t *testing.T) {
	// AP-observed idle slots per transmission ≈ PI/(1−PI) with
	// PI = (1−p)^N in a fully connected network.
	n, p := 20, 0.02
	s, err := New(Config{Topology: connectedTopo(n), Policies: fixedPPolicies(n, p), Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(15 * sim.Second)
	pi := math.Pow(1-p, float64(n))
	want := pi / (1 - pi)
	if math.Abs(res.APIdleSlots-want)/want > 0.15 {
		t.Errorf("AP idle slots %.3f, want ≈ %.3f", res.APIdleSlots, want)
	}
}

func TestDynamicActivation(t *testing.T) {
	n := 12
	s, err := New(Config{
		Topology:      connectedTopo(n),
		Policies:      fixedPPolicies(n, 0.02),
		Seed:          19,
		InitialActive: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveStations() != 4 {
		t.Fatalf("initial active = %d, want 4", s.ActiveStations())
	}
	if err := s.SetActiveAt(sim.Time(2*sim.Second), 12); err != nil {
		t.Fatal(err)
	}
	if err := s.SetActiveAt(sim.Time(4*sim.Second), 6); err != nil {
		t.Fatal(err)
	}
	if err := s.SetActiveAt(sim.Time(1*sim.Second), 99); err == nil {
		t.Error("out-of-range SetActiveAt accepted")
	}
	res := s.Run(6 * sim.Second)
	if s.ActiveStations() != 6 {
		t.Errorf("final active = %d, want 6", s.ActiveStations())
	}
	// Stations 6..11 were only active during [2s, 4s]; they must have
	// delivered something, and stations 0..3 more than them.
	lateBits := res.Stations[7].BitsDelivered
	earlyBits := res.Stations[0].BitsDelivered
	if lateBits == 0 {
		t.Error("late-arriving station delivered nothing")
	}
	if earlyBits <= lateBits {
		t.Errorf("always-on station (%d bits) should out-deliver the 2s-window station (%d bits)",
			earlyBits, lateBits)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() *Result {
		s, err := New(Config{Topology: connectedTopo(8), Policies: fixedPPolicies(8, 0.03), Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(3 * sim.Second)
	}
	a, b := run(), run()
	if a.Successes != b.Successes || a.Collisions != b.Collisions || a.Throughput != b.Throughput {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	s2, _ := New(Config{Topology: connectedTopo(8), Policies: fixedPPolicies(8, 0.03), Seed: 24})
	c := s2.Run(3 * sim.Second)
	if c.Successes == a.Successes && c.Collisions == a.Collisions {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// recordingTracer counts frames by type for trace-integration tests.
type recordingTracer struct {
	data, acks, beacons, collided int
	decodeErrors                  int
}

func (r *recordingTracer) Frame(_ sim.Time, wire []byte, collided bool) {
	l, err := frame.Decode(wire)
	if err != nil {
		r.decodeErrors++
		return
	}
	switch l.FrameType() {
	case frame.TypeData:
		r.data++
	case frame.TypeACK:
		r.acks++
	case frame.TypeBeacon:
		r.beacons++
	}
	if collided {
		r.collided++
	}
}

func TestTracerSeesConsistentFrames(t *testing.T) {
	tr := &recordingTracer{}
	s, err := New(Config{
		Topology:       connectedTopo(5),
		Policies:       fixedPPolicies(5, 0.03),
		Seed:           29,
		Trace:          tr,
		BeaconInterval: 100 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(5 * sim.Second)
	if tr.decodeErrors > 0 {
		t.Fatalf("%d trace frames failed to decode", tr.decodeErrors)
	}
	// Frames whose ACK is still in flight at the end of the run are
	// traced but not yet counted; allow a one-frame boundary gap.
	if diff := int64(tr.data) - (res.Successes + res.Collisions); diff < 0 || diff > 1 {
		t.Errorf("traced %d data frames, want %d", tr.data, res.Successes+res.Collisions)
	}
	if int64(tr.acks) != res.Successes {
		t.Errorf("traced %d ACKs, want %d", tr.acks, res.Successes)
	}
	if int64(tr.collided) != res.Collisions {
		t.Errorf("traced %d collided frames, want %d", tr.collided, res.Collisions)
	}
	if tr.beacons == 0 {
		t.Error("no beacons traced despite BeaconInterval")
	}
}

func TestResultHelpers(t *testing.T) {
	s, err := New(Config{Topology: connectedTopo(4), Policies: fixedPPolicies(4, 0.05), Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(2 * sim.Second)
	if res.ThroughputMbps() != res.Throughput/1e6 {
		t.Error("ThroughputMbps inconsistent")
	}
	if res.String() == "" {
		t.Error("String empty")
	}
	if res.EventsFired == 0 {
		t.Error("EventsFired zero")
	}
	if w := res.WeightedJainIndex(); w < 0.9 {
		t.Errorf("weighted Jain %v for equal stations", w)
	}
	conv := res.ConvergedThroughput(1 * sim.Second)
	if conv <= 0 {
		t.Errorf("ConvergedThroughput = %v", conv)
	}
}
