package eventsim_test

// Bit-identity fingerprints: a battery of configurations spanning every
// engine feature — hidden topologies, RTS/CTS, channel errors, all three
// controller schemes, unsaturated traffic, node churn — each reduced to a
// SHA-256 over the canonical JSON encoding of its full Result. The
// committed fixture pins the engine's exact output, so any refactor of
// the event core (scheduler pooling, lazy contention wake-ups, arena
// reuse) must reproduce historical behaviour bit for bit, not just pass
// statistical checks.
//
// Regenerate ONLY on an intentional behaviour change:
//
//	go test ./internal/eventsim -run TestEngineFingerprints -update

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

var updateFingerprints = flag.Bool("update", false, "regenerate the engine fingerprint fixtures")

// fingerprintCase is one seeded configuration of the battery. build
// returns the config plus an optional post-construction setup hook
// (node churn); run executes it on a fresh simulator, runReset on a
// shared arena via Reset — both must produce identical Results.
type fingerprintCase struct {
	name  string
	seeds []int64
	dur   sim.Duration
	build func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error)
}

func (fc *fingerprintCase) run(t *testing.T, seed int64) *eventsim.Result {
	t.Helper()
	cfg, setup := fc.build(t, seed)
	s, err := eventsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		if err := setup(s); err != nil {
			t.Fatal(err)
		}
	}
	return s.Run(fc.dur)
}

func (fc *fingerprintCase) runReset(t *testing.T, seed int64, arena **eventsim.Simulator) *eventsim.Result {
	t.Helper()
	cfg, setup := fc.build(t, seed)
	if *arena == nil {
		s, err := eventsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		*arena = s
	} else if err := (*arena).Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		if err := setup(*arena); err != nil {
			t.Fatal(err)
		}
	}
	return (*arena).Run(fc.dur)
}

// policySet builds n fresh policies for the named scheme plus its
// controller. Policies carry mutable state, so every run rebuilds them.
func policySet(scheme string, n int, phy model.PHY) ([]mac.Policy, core.Controller) {
	policies := make([]mac.Policy, n)
	var controller core.Controller
	switch scheme {
	case "dcf":
		for i := range policies {
			policies[i] = mac.NewStandardDCF(16, 1024)
		}
	case "wtop":
		for i := range policies {
			policies[i] = mac.NewPPersistent(1, 0.1)
		}
		controller = core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	case "tora":
		back := model.PaperBackoff()
		for i := range policies {
			policies[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
		}
		controller = core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate})
	default:
		panic("unknown scheme " + scheme)
	}
	return policies, controller
}

// discTopology reproduces the scenario builder's disc construction:
// uniform draw, rim projection inside the 16 m decode radius.
func discTopology(n int, radius float64, seed int64) *topo.Topology {
	rng := sim.NewRNG(seed)
	pts := topo.UniformDisc(n, radius, rng)
	for i, p := range pts {
		if d := p.Distance(topo.Point{}); d > 16 {
			scale := 15.999 / d
			pts[i] = topo.Point{X: p.X * scale, Y: p.Y * scale}
		}
	}
	return topo.New(topo.Point{}, pts, topo.PaperRadii())
}

// phyForBench and benchTopology are shared with the reset benchmarks.
var phyForBench = model.PaperPHY()

func benchTopology(n int) *topo.Topology {
	return topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii())
}

func fingerprintCases() []fingerprintCase {
	phy := model.PaperPHY()
	return []fingerprintCase{
		{
			name: "connected-dcf", seeds: []int64{1, 2}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, _ := policySet("dcf", 8, phy)
				return eventsim.Config{
					Topology: benchTopology(8),
					Policies: policies,
					Seed:     seed,
				}, nil
			},
		},
		{
			name: "connected-wtop", seeds: []int64{3, 4}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, controller := policySet("wtop", 12, phy)
				return eventsim.Config{
					Topology:   benchTopology(12),
					Policies:   policies,
					Controller: controller,
					Seed:       seed,
				}, nil
			},
		},
		{
			name: "clusters-tora", seeds: []int64{5, 6}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, controller := policySet("tora", 10, phy)
				return eventsim.Config{
					Topology:   topo.New(topo.Point{}, topo.TwoClusters(10, 30), topo.PaperRadii()),
					Policies:   policies,
					Controller: controller,
					Seed:       seed,
				}, nil
			},
		},
		{
			name: "disc-dcf-hidden", seeds: []int64{7, 8, 9}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, _ := policySet("dcf", 16, phy)
				return eventsim.Config{
					Topology: discTopology(16, 16, seed^0x5eed),
					Policies: policies,
					Seed:     seed,
				}, nil
			},
		},
		{
			name: "disc-wtop-wide", seeds: []int64{10, 11}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, controller := policySet("wtop", 14, phy)
				return eventsim.Config{
					Topology:   discTopology(14, 20, seed^0x5eed),
					Policies:   policies,
					Controller: controller,
					Seed:       seed,
				}, nil
			},
		},
		{
			name: "connected-rtscts", seeds: []int64{12, 13}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, _ := policySet("dcf", 6, phy)
				return eventsim.Config{
					Topology: benchTopology(6),
					Policies: policies,
					RTSCTS:   true,
					Seed:     seed,
				}, nil
			},
		},
		{
			name: "clusters-rtscts-wtop", seeds: []int64{14, 15}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, controller := policySet("wtop", 8, phy)
				return eventsim.Config{
					Topology:   topo.New(topo.Point{}, topo.TwoClusters(8, 30), topo.PaperRadii()),
					Policies:   policies,
					Controller: controller,
					RTSCTS:     true,
					Seed:       seed,
				}, nil
			},
		},
		{
			name: "frame-errors", seeds: []int64{16, 17}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, _ := policySet("dcf", 8, phy)
				return eventsim.Config{
					Topology:       benchTopology(8),
					Policies:       policies,
					FrameErrorRate: 0.1,
					Seed:           seed,
				}, nil
			},
		},
		{
			name: "poisson-unsaturated", seeds: []int64{18, 19}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, _ := policySet("dcf", 8, phy)
				arrivals := make([]traffic.Spec, 8)
				for i := range arrivals {
					arrivals[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 120, QueueCap: 16}
				}
				return eventsim.Config{
					Topology: benchTopology(8),
					Policies: policies,
					Arrivals: arrivals,
					Seed:     seed,
				}, nil
			},
		},
		{
			name: "onoff-mixed", seeds: []int64{20, 21}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, _ := policySet("dcf", 6, phy)
				arrivals := make([]traffic.Spec, 6)
				for i := range arrivals {
					if i%2 == 0 {
						arrivals[i] = traffic.Spec{
							Kind: traffic.OnOff, Rate: 400,
							OnMean:  100 * sim.Millisecond,
							OffMean: 100 * sim.Millisecond,
						}
					} else {
						arrivals[i] = traffic.Spec{Kind: traffic.Saturated}
					}
				}
				return eventsim.Config{
					Topology: benchTopology(6),
					Policies: policies,
					Arrivals: arrivals,
					Seed:     seed,
				}, nil
			},
		},
		{
			name: "churn-tora", seeds: []int64{22, 23}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, controller := policySet("tora", 12, phy)
				cfg := eventsim.Config{
					Topology:      benchTopology(12),
					Policies:      policies,
					Controller:    controller,
					InitialActive: 4,
					Seed:          seed,
				}
				return cfg, func(s *eventsim.Simulator) error {
					if err := s.SetActiveAt(sim.Time(500*sim.Millisecond), 12); err != nil {
						return err
					}
					return s.SetActiveAt(sim.Time(1400*sim.Millisecond), 6)
				}
			},
		},
		{
			name: "churn-poisson-disc", seeds: []int64{24, 25}, dur: 2 * sim.Second,
			build: func(t *testing.T, seed int64) (eventsim.Config, func(*eventsim.Simulator) error) {
				policies, _ := policySet("dcf", 10, phy)
				arrivals := make([]traffic.Spec, 10)
				for i := range arrivals {
					arrivals[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 200, QueueCap: 8}
				}
				cfg := eventsim.Config{
					Topology:      discTopology(10, 16, seed^0x5eed),
					Policies:      policies,
					Arrivals:      arrivals,
					InitialActive: 5,
					Seed:          seed,
				}
				return cfg, func(s *eventsim.Simulator) error {
					return s.SetActiveAt(sim.Time(700*sim.Millisecond), 10)
				}
			},
		},
	}
}

// resultFingerprint is the hashed record: the full Result JSON plus the
// latency histogram moments JSON cannot see (unexported fields).
type resultFingerprint struct {
	Result       *eventsim.Result
	LatencyCount int64
	LatencyMean  sim.Duration
	LatencyP50   sim.Duration
	LatencyP99   sim.Duration
	LatencyMax   sim.Duration
}

// fingerprint reduces a Result to its canonical hash plus two
// human-readable scalars for debugging drift.
func fingerprint(res *eventsim.Result) (string, int64, uint64) {
	data, err := json.Marshal(&resultFingerprint{
		Result:       res,
		LatencyCount: res.Latency.Count(),
		LatencyMean:  res.Latency.Mean(),
		LatencyP50:   res.Latency.Quantile(0.50),
		LatencyP99:   res.Latency.Quantile(0.99),
		LatencyMax:   res.Latency.Max(),
	})
	if err != nil {
		panic(err)
	}
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:]), res.Successes, res.EventsFired
}

// fingerprintRecord is one fixture line.
type fingerprintRecord struct {
	Name      string `json:"name"`
	Seed      int64  `json:"seed"`
	SHA256    string `json:"sha256"`
	Successes int64  `json:"successes"`
	Events    uint64 `json:"events"`
}

const fingerprintFixture = "testdata/fingerprints.json"

// TestEngineFingerprints pins the engine's exact output across the
// feature battery. A mismatch means the change is NOT bit-identical:
// either fix it, or — only for an intentional behaviour change — run
// with -update and justify the regeneration in the commit.
func TestEngineFingerprints(t *testing.T) {
	var got []fingerprintRecord
	for _, fc := range fingerprintCases() {
		for _, seed := range fc.seeds {
			res := fc.run(t, seed)
			sha, succ, events := fingerprint(res)
			got = append(got, fingerprintRecord{
				Name: fc.name, Seed: seed, SHA256: sha,
				Successes: succ, Events: events,
			})
		}
	}
	if *updateFingerprints {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(fingerprintFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fingerprintFixture, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d fingerprints", fingerprintFixture, len(got))
		return
	}
	data, err := os.ReadFile(fingerprintFixture)
	if err != nil {
		t.Fatalf("missing fingerprint fixture (run with -update to create): %v", err)
	}
	var want []fingerprintRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d fingerprints, battery produced %d (run with -update after adding cases)", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s seed %d: engine output drifted:\n  got  %+v\n  want %+v",
				got[i].Name, got[i].Seed, got[i], want[i])
		}
	}
}

// TestFingerprintStability re-runs one battery case and requires the
// identical hash — guarding the fingerprint itself against accidental
// nondeterminism (map iteration, time stamps) that would make the
// fixture flaky rather than protective.
func TestFingerprintStability(t *testing.T) {
	fc := fingerprintCases()[3] // disc-dcf-hidden: topology draw + hidden pairs
	a, _, _ := fingerprint(fc.run(t, fc.seeds[0]))
	b, _, _ := fingerprint(fc.run(t, fc.seeds[0]))
	if a != b {
		t.Fatalf("fingerprint of identical runs differs: %s vs %s", a, b)
	}
}
