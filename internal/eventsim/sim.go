package eventsim

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// txKind distinguishes the frame classes stations put on the air.
type txKind uint8

const (
	kindData txKind = iota
	kindRTS
)

// transmission is one station frame in the air (data or RTS).
type transmission struct {
	st       *station
	kind     txKind
	start    sim.Time
	end      sim.Time
	collided bool
}

// Simulator is a single WLAN run: N stations, one AP, one channel.
// Create with New, drive with Run; a Simulator is single-use per Run
// sequence and not safe for concurrent use (run parallel instances for
// parallel experiments).
type Simulator struct {
	cfg   Config
	sched *sim.Scheduler

	stations []*station
	// sensedBy[i] lists the stations that perform carrier sense on
	// station i's transmissions. Each entry is a read-only view into the
	// topology's shared neighbour storage (topo.Topology.SensedBy), so
	// setup costs O(1) per station instead of an O(n) scan and
	// allocation.
	sensedBy [][]int32

	// Air state at the AP.
	active     []*transmission // data frames currently in the air
	apTx       bool            // AP is transmitting (ACK or beacon)
	apBusy     int             // transmissions audible at the AP (incl. its own)
	ackPending bool            // an ACK is scheduled (SIFS gap in progress)

	apIdle      *stats.IdleSlotTracker
	windowMeter *stats.ThroughputMeter
	totalBits   int64
	rootRNG     *sim.RNG
	frameErrors int64

	control    frame.Control
	beaconSeq  uint16
	beaconDue  bool
	beaconWait sim.Ref // pending PIFS countdown to a beacon

	// Pre-bound event callbacks. Binding once in New and scheduling via
	// AtArg/AfterArg keeps the per-frame path free of closure
	// allocations: each schedule passes an existing func value plus a
	// pointer argument, neither of which escapes to the heap.
	txBeginFn      func(any)
	txCompleteFn   func(any)
	failTimeoutFn  func(any)
	ctsBeginFn     func(any)
	ctsEndFn       func(any)
	reservedDataFn func(any)
	ackBeginFn     func(any)
	ackEndFn       func(any)
	windowFn       func(any)
	beaconTickFn   func(any)
	beaconTxFn     func(any)
	beaconEndFn    func(any)
	arrivalFn      func(any)
	phaseFn        func(any)

	// txPool recycles transmission records so the steady-state frame
	// lifecycle allocates nothing.
	txPool []*transmission

	// Lazy contention wake-up state (see contention.go): ready is the
	// bitmap of armed stations, armedSt/armedRef the single live
	// scheduler event on the candidate-minimum attempt, and contDirty
	// marks that the minimum must be re-established before the current
	// event callback returns. dues/vseqs mirror the armed stations'
	// (due, vseq) keys in flat arrays so the minimum scan walks memory
	// linearly instead of chasing station pointers.
	ready     bitset
	armedSt   *station
	armedRef  sim.Ref
	contDirty bool
	dues      []sim.Time
	vseqs     []uint64

	// PHY-derived durations, computed once at init: the per-frame paths
	// consume these constantly and the float maths behind TxTime is not
	// free.
	tData       sim.Duration
	tRTS        sim.Duration
	tCTS        sim.Duration
	tACK        sim.Duration
	tACKTimeout sim.Duration
	tPIFS       sim.Duration
	tNAV        sim.Duration

	throughputSeries stats.TimeSeries
	controlSeries    stats.TimeSeries
	activeSeries     stats.TimeSeries

	successes  int64
	collisions int64

	// Traffic accounting. unsaturated is true when any station has a
	// finite-load arrival process; the latency histogram and jitter
	// accumulators aggregate delivered-packet delays across stations.
	unsaturated   bool
	latHist       stats.DurationHist
	jitterSum     sim.Duration
	jitterCount   int64
	totalArrivals int64
	totalDrops    int64

	// maxConcurrent tracks the peak number of simultaneous data frames,
	// a cheap invariant probe (must stay ≥ 2 only when hidden pairs or
	// slot-synchronised collisions occur).
	maxConcurrent int
}

// New validates cfg and assembles a simulator.
func New(cfg Config) (*Simulator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		sched:       sim.NewScheduler(),
		apIdle:      stats.NewIdleSlotTracker(cfg.PHY.Slot, cfg.PHY.DIFS),
		windowMeter: stats.NewThroughputMeter(0),
	}
	s.txBeginFn = func(a any) { s.txBegin(a.(*station)) }
	s.txCompleteFn = func(a any) { s.txComplete(a.(*transmission)) }
	s.failTimeoutFn = func(a any) { s.failTimeout(a.(*station)) }
	s.ctsBeginFn = func(a any) { s.ctsBegin(a.(*station)) }
	s.ctsEndFn = func(a any) { s.ctsEnd(a.(*station)) }
	s.reservedDataFn = func(a any) { s.reservedData(a.(*station)) }
	s.ackBeginFn = func(a any) { s.ackBegin(a.(*station)) }
	s.ackEndFn = func(a any) { s.ackEnd(a.(*station)) }
	s.windowFn = func(any) { s.controllerWindow() }
	s.beaconTickFn = func(any) { s.beaconTick() }
	s.beaconTxFn = func(any) { s.beaconTx() }
	s.beaconEndFn = func(any) { s.beaconEnd() }
	s.arrivalFn = func(a any) { s.arrival(a.(*station)) }
	s.phaseFn = func(a any) { s.phaseFlip(a.(*station)) }
	// rearm runs after every dispatched event, re-establishing the
	// lazy-wakeup candidate minimum exactly once per event however many
	// transitions the callback performed — one enforcement point
	// instead of a rearm call at every callback return site.
	s.sched.SetAfterDispatch(func() { s.rearm() })
	s.init(cfg)
	return s, nil
}

// Reset reinitialises the simulator in place for a fresh run of cfg,
// reusing every warmed arena — the scheduler's event pool, station
// objects and their RNG state arrays, the transmission pool, series and
// queue storage — so a pooled simulator can replay replication after
// replication without the per-run allocation storm of building a new
// one. The reset simulator is bit-identical to a fresh New(cfg):
// TestResetMatchesNew pins Result equality byte for byte.
func (s *Simulator) Reset(cfg Config) error {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	s.sched.Reset()
	s.apIdle.Rebind(cfg.PHY.Slot, cfg.PHY.DIFS)
	s.windowMeter.Reset(0)
	s.init(cfg)
	return nil
}

// init builds run state for a validated cfg on top of s's arenas. The
// wholesale struct assignment returns every non-arena field to its zero
// value — a new field is fresh-per-run by default — while arenas and the
// pre-bound callbacks are carried explicitly.
func (s *Simulator) init(cfg Config) {
	tSeries, cSeries, aSeries := s.throughputSeries, s.controlSeries, s.activeSeries
	tSeries.Reset("throughput")
	cSeries.Reset("control")
	aSeries.Reset("active")
	root := s.rootRNG
	if root == nil {
		root = sim.NewRNG(cfg.Seed)
	} else {
		root.Reseed(cfg.Seed)
	}
	stations, sensedBy := s.stations, s.sensedBy
	*s = Simulator{
		cfg:              cfg,
		sched:            s.sched,
		apIdle:           s.apIdle,
		windowMeter:      s.windowMeter,
		rootRNG:          root,
		active:           s.active[:0],
		txPool:           s.txPool,
		ready:            s.ready,
		dues:             s.dues,
		vseqs:            s.vseqs,
		throughputSeries: tSeries,
		controlSeries:    cSeries,
		activeSeries:     aSeries,
		txBeginFn:        s.txBeginFn,
		txCompleteFn:     s.txCompleteFn,
		failTimeoutFn:    s.failTimeoutFn,
		ctsBeginFn:       s.ctsBeginFn,
		ctsEndFn:         s.ctsEndFn,
		reservedDataFn:   s.reservedDataFn,
		ackBeginFn:       s.ackBeginFn,
		ackEndFn:         s.ackEndFn,
		windowFn:         s.windowFn,
		beaconTickFn:     s.beaconTickFn,
		beaconTxFn:       s.beaconTxFn,
		beaconEndFn:      s.beaconEndFn,
		arrivalFn:        s.arrivalFn,
		phaseFn:          s.phaseFn,
	}
	if cfg.Controller != nil {
		s.control = cfg.Controller.Control()
	}
	s.tData = cfg.PHY.DataTxTime()
	s.tRTS = cfg.PHY.RTSTxTime()
	s.tCTS = cfg.PHY.CTSTxTime()
	s.tACK = cfg.PHY.ACKTxTime()
	s.tACKTimeout = cfg.PHY.ACKTimeout()
	s.tPIFS = cfg.PHY.PIFS()
	s.tNAV = cfg.PHY.SIFS + s.tData + cfg.PHY.SIFS + s.tACK
	n := cfg.Topology.N()
	if cap(stations) < n {
		grown := make([]*station, n)
		copy(grown, stations[:cap(stations)])
		stations = grown
	} else {
		stations = stations[:n]
	}
	if cap(sensedBy) < n {
		sensedBy = make([][]int32, n)
	} else {
		sensedBy = sensedBy[:n]
	}
	for i := 0; i < n; i++ {
		st := stations[i]
		if st == nil {
			st = &station{}
			stations[i] = st
		}
		rng, arrRNG, qbuf := st.rng, st.arrivalRNG, st.queue.buf[:0]
		*st = station{
			id:            i,
			policy:        cfg.Policies[i],
			arrivalRNG:    arrRNG,
			state:         stateInactive,
			senseIdleOpen: true,
		}
		st.observer, _ = st.policy.(mac.MediumObserver)
		if m, ok := st.policy.(mac.Memoryless); ok {
			st.memoryless = m.BackoffMemoryless()
		}
		st.queue.buf = qbuf
		if rng == nil {
			rng = root.Split(int64(i))
		} else {
			root.SplitInto(int64(i), rng)
		}
		st.rng = rng
		sensedBy[i] = cfg.Topology.SensedBy(i)
	}
	s.stations, s.sensedBy = stations, sensedBy
	if cap(s.dues) < n {
		s.dues = make([]sim.Time, n)
		s.vseqs = make([]uint64, n)
	} else {
		s.dues, s.vseqs = s.dues[:n], s.vseqs[:n]
	}
	if cfg.Arrivals != nil {
		for i, st := range s.stations {
			st.arr = cfg.Arrivals[i]
			if st.arr.Unsaturated() {
				s.unsaturated = true
			}
		}
		// Arrival processes get dedicated substreams, split only when an
		// unsaturated source exists: an all-saturated configuration must
		// leave the root stream untouched and stay bit-identical to a
		// nil-Arrivals run.
		if s.unsaturated {
			for i, st := range s.stations {
				if st.arrivalRNG == nil {
					st.arrivalRNG = root.Split(int64(n + i))
				} else {
					root.SplitInto(int64(n+i), st.arrivalRNG)
				}
			}
		}
	}
	s.ready.grow(n)
	s.apIdle.MediumIdle(0)
	for i := 0; i < cfg.InitialActive; i++ {
		s.activateNow(s.stations[i])
	}
	s.rearm()
}

// Scheduler exposes the event clock, mainly for tests and custom
// scenario scripting.
func (s *Simulator) Scheduler() *sim.Scheduler { return s.sched }

// ActiveStations returns how many stations currently contend.
func (s *Simulator) ActiveStations() int {
	count := 0
	for _, st := range s.stations {
		if st.state != stateInactive || st.deferredStop {
			count++
		}
	}
	return count
}

// SetActiveAt schedules the set of active stations to become exactly the
// first n stations at simulated time t. Must be called before Run reaches
// t. This drives the dynamic-arrival scenarios of Figs. 8–11.
func (s *Simulator) SetActiveAt(t sim.Time, n int) error {
	if n < 0 || n > len(s.stations) {
		return fmt.Errorf("eventsim: SetActiveAt(%v, %d): count outside [0, %d]", t, n, len(s.stations))
	}
	s.sched.At(t, func() {
		for i, st := range s.stations {
			switch {
			case i < n:
				s.activateNow(st)
			default:
				s.deactivateNow(st)
			}
		}
	})
	return nil
}

func (s *Simulator) activateNow(st *station) {
	st.deferredStop = false
	if st.state != stateInactive {
		// Reactivated while its deferred-stop exchange is still in
		// flight: deactivateNow already silenced the arrival process, so
		// restart it or the station would drain its queue and then idle
		// forever while nominally active.
		if st.arr.Unsaturated() && !st.nextArrival.Active() && !st.phaseRef.Active() {
			s.startTrafficSource(st)
		}
		return
	}
	now := s.sched.Now()
	// A newly active station has no countdown anchor yet; start a fresh
	// idle view of the medium from "now".
	if st.busyCount == 0 {
		st.idleSince = now
		st.senseIdleOpen = true
		st.senseIdleStart = now
	}
	if st.arr.Unsaturated() {
		// Unsaturated sources start their arrival process and contend
		// only once a packet exists. A queue surviving an earlier
		// deactivation resumes service.
		s.startTrafficSource(st)
		if st.queue.len() > 0 {
			s.startContention(st)
		} else {
			st.state = stateIdle
		}
		return
	}
	st.state = stateContending
	st.holSince = now
	s.startContention(st)
}

// startTrafficSource (re)arms an unsaturated station's arrival process:
// OnOff sources begin in an On phase.
func (s *Simulator) startTrafficSource(st *station) {
	st.trafficOn = true
	if st.arr.Kind == traffic.OnOff {
		st.phaseRef = s.sched.AfterArg(st.arr.NextPhase(true, st.arrivalRNG), s.phaseFn, st)
	}
	s.scheduleArrival(st)
}

func (s *Simulator) deactivateNow(st *station) {
	// Arrivals stop immediately on departure, whatever the MAC state.
	st.nextArrival.Cancel()
	st.nextArrival = sim.Ref{}
	st.phaseRef.Cancel()
	st.phaseRef = sim.Ref{}
	st.trafficOn = false
	switch st.state {
	case stateInactive:
	case stateIdle:
		st.state = stateInactive
	case stateContending:
		s.disarm(st)
		st.state = stateInactive
	default:
		// Mid-transmission or awaiting ACK: finish the exchange first.
		st.deferredStop = true
	}
}

// scheduleArrival arms the next packet-arrival event while the source is
// emitting.
//
//wlanvet:hotpath
func (s *Simulator) scheduleArrival(st *station) {
	if !st.trafficOn {
		return
	}
	st.nextArrival = s.sched.AfterArg(st.arr.NextInterArrival(st.arrivalRNG), s.arrivalFn, st)
}

// arrival delivers one packet to st's queue, dropping it when the queue
// is at capacity, and wakes the station if it was idling.
//
//wlanvet:hotpath
func (s *Simulator) arrival(st *station) {
	st.nextArrival = sim.Ref{}
	if st.state == stateInactive {
		return // defensive: arrivals are cancelled on deactivation
	}
	st.arrivals++
	s.totalArrivals++
	if st.queue.len() >= st.arr.EffectiveQueueCap() {
		st.drops++
		s.totalDrops++
	} else {
		st.queue.push(s.sched.Now())
		if st.state == stateIdle {
			s.startContention(st)
		}
	}
	s.scheduleArrival(st)
}

// phaseFlip toggles an OnOff source between emitting and silent phases.
//
//wlanvet:hotpath
func (s *Simulator) phaseFlip(st *station) {
	st.phaseRef = sim.Ref{}
	if st.state == stateInactive {
		return
	}
	st.trafficOn = !st.trafficOn
	if st.trafficOn {
		s.scheduleArrival(st)
	} else {
		st.nextArrival.Cancel()
		st.nextArrival = sim.Ref{}
	}
	st.phaseRef = s.sched.AfterArg(st.arr.NextPhase(st.trafficOn, st.arrivalRNG), s.phaseFn, st)
}

// recordLatency accounts one delivered packet's arrival→ACK delay into
// the per-station and aggregate latency/jitter statistics.
//
//wlanvet:hotpath
func (s *Simulator) recordLatency(st *station, lat sim.Duration) {
	s.latHist.Observe(lat)
	st.latSum += lat
	if st.latCount > 0 {
		d := lat - st.lastLat
		if d < 0 {
			d = -d
		}
		s.jitterSum += d
		s.jitterCount++
	}
	st.lastLat = lat
	st.latCount++
}

// startContention draws a fresh backoff and arms the countdown.
//
//wlanvet:hotpath
func (s *Simulator) startContention(st *station) {
	st.state = stateContending
	st.remaining = st.policy.NextBackoff(st.rng)
	s.armCountdown(st)
}

// armCountdown arms the transmission attempt virtually if the medium is
// currently idle for st; otherwise the countdown stays frozen until
// onBusyEnd re-arms it. Arming reserves the scheduler sequence number
// the eager code would have consumed, but pushes no event: the live
// event lands on the candidate-minimum attempt at the next rearm.
//
//wlanvet:hotpath
func (s *Simulator) armCountdown(st *station) {
	if st.busyCount > 0 || st.state != stateContending {
		return
	}
	now := s.sched.Now()
	base := st.idleSince.Add(s.cfg.PHY.DIFS)
	if base.Before(now) {
		// The station joined an already-idle medium; anchor at now.
		base = now
	}
	at := base.Add(sim.Duration(st.remaining) * s.cfg.PHY.Slot)
	st.runStart = base
	st.due = at
	st.vseq = s.sched.TakeSeq()
	st.armed = true
	s.dues[st.id], s.vseqs[st.id] = st.due, st.vseq
	s.ready.set(st.id)
	// The minimum only needs re-establishing when this attempt beats the
	// currently live one (a later vseq never ties ahead at equal due).
	if s.armedSt == nil || at < s.armedSt.due {
		s.contDirty = true
	}
}

// onBusyStart informs st that a transmission it senses has started.
//
//wlanvet:hotpath
func (s *Simulator) onBusyStart(st *station) {
	st.busyCount++
	if st.busyCount != 1 {
		return
	}
	now := s.sched.Now()
	// Close the observed idle gap (IdleSense input).
	if st.senseIdleOpen {
		if st.state != stateInactive {
			s.observeIdleGap(st, now)
		}
		st.senseIdleOpen = false
	}
	if st.state != stateContending || !st.armed {
		return
	}
	if st.due == now {
		// The station's own attempt is due at this very instant: it is
		// committed (carrier sense cannot act within the same slot
		// boundary), so the events collide — exactly the synchronised
		// slot-boundary collision of CSMA.
		return
	}
	// Freeze: bank the fully elapsed slots and retract the attempt.
	elapsed := 0
	if now.After(st.runStart) {
		//wlanvet:allow bounded: the delta is within one run and spec validation caps durations far below 2³¹ slots; clamped to remaining below
		elapsed = int(now.Sub(st.runStart) / s.cfg.PHY.Slot)
	}
	if elapsed > st.remaining {
		elapsed = st.remaining
	}
	st.remaining -= elapsed
	s.disarm(st)
}

// observeIdleGap feeds a medium-observing policy (IdleSense) the idle gap
// that just closed, using the 802.11 convention: gaps shorter than DIFS
// belong to the ongoing frame exchange, and only time beyond the
// mandatory DIFS counts as idle slots.
//
//wlanvet:hotpath
func (s *Simulator) observeIdleGap(st *station, now sim.Time) {
	if st.observer == nil {
		return
	}
	gap := now.Sub(st.senseIdleStart)
	if gap < s.cfg.PHY.DIFS {
		return
	}
	st.observer.ObserveTransmission(float64(gap-s.cfg.PHY.DIFS) / float64(s.cfg.PHY.Slot))
}

// onBusyEnd informs st that a transmission it senses has ended.
//
//wlanvet:hotpath
func (s *Simulator) onBusyEnd(st *station) {
	st.busyCount--
	if st.busyCount < 0 {
		panic("eventsim: negative busy count")
	}
	if st.busyCount != 0 {
		return
	}
	now := s.sched.Now()
	st.idleSince = now
	st.senseIdleOpen = true
	st.senseIdleStart = now
	if st.state == stateContending && !st.armed {
		// p-persistent backoff has no memory across busy periods: the
		// first slot after the resumption is an ordinary Bernoulli(p)
		// slot, so redraw instead of resuming the frozen residual
		// (which is conditioned ≥ 1 and would bias the idle-slot
		// distribution away from Eq. (2)'s i.i.d. slots).
		if st.memoryless {
			st.remaining = st.policy.NextBackoff(st.rng)
		}
		s.armCountdown(st)
	}
}

// newTransmission takes a recycled record from the pool, or allocates
// while the pool warms up.
//
//wlanvet:hotpath
func (s *Simulator) newTransmission() *transmission {
	if n := len(s.txPool); n > 0 {
		rec := s.txPool[n-1]
		s.txPool[n-1] = nil
		s.txPool = s.txPool[:n-1]
		*rec = transmission{}
		return rec
	}
	return &transmission{}
}

// freeTransmission recycles a record once txComplete has consumed it. No
// reference survives: the record has been removed from s.active and its
// scheduler event has already fired.
//
//wlanvet:hotpath
func (s *Simulator) freeTransmission(rec *transmission) {
	rec.st = nil
	//wlanvet:allow amortised: the pool grows to the concurrent-transmission high-water mark, then every append reuses capacity
	s.txPool = append(s.txPool, rec)
}

// txBegin puts st's data frame on the air. It fires as the candidate-
// minimum contention event, so the live-event slot is free again.
//
//wlanvet:hotpath
func (s *Simulator) txBegin(st *station) {
	st.armed = false
	s.ready.clear(st.id)
	s.armedSt = nil
	s.armedRef = sim.Ref{}
	s.contDirty = true
	if st.state != stateContending {
		return
	}
	now := s.sched.Now()
	st.state = stateTransmitting
	// The transmitter observes its own frame as a busy period for the
	// purposes of idle-gap measurement.
	if st.senseIdleOpen {
		s.observeIdleGap(st, now)
		st.senseIdleOpen = false
	}

	kind := kindData
	airtime := s.tData
	if s.cfg.RTSCTS {
		kind = kindRTS
		airtime = s.tRTS
	}
	rec := s.newTransmission()
	rec.st, rec.kind, rec.start, rec.end = st, kind, now, now.Add(airtime)
	s.launch(rec)
}

// launch puts a station frame on the air, applying the paper's collision
// rule: any temporal overlap of two station frames destroys both, and a
// frame overlapping an AP transmission is lost (the AP cannot receive
// while sending).
//
//wlanvet:hotpath
func (s *Simulator) launch(rec *transmission) {
	now := s.sched.Now()
	if s.apTx {
		rec.collided = true
	}
	for _, other := range s.active {
		other.collided = true
		rec.collided = true
	}
	//wlanvet:allow amortised: active grows to the concurrent-transmission high-water mark, then every append reuses capacity
	s.active = append(s.active, rec)
	if len(s.active) > s.maxConcurrent {
		s.maxConcurrent = len(s.active)
	}
	s.apBusyStart(now)
	for _, j := range s.sensedBy[rec.st.id] {
		s.onBusyStart(s.stations[j])
	}
	s.sched.AtArg(rec.end, s.txCompleteFn, rec)
}

// txComplete removes the frame from the air and routes to the ACK or
// failure path.
//
//wlanvet:hotpath
func (s *Simulator) txComplete(rec *transmission) {
	st := rec.st
	now := s.sched.Now()
	for i, r := range s.active {
		if r == rec {
			//wlanvet:allow in-place: the removal compacts s.active over its own backing array, never growing it
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	// The record is now unreachable (out of s.active, its completion
	// event fired); consume its fields and recycle it before the state
	// machinery below can schedule follow-ups.
	kind, collided := rec.kind, rec.collided
	s.freeTransmission(rec)
	s.apBusyEnd(now)
	for _, j := range s.sensedBy[st.id] {
		s.onBusyEnd(s.stations[j])
	}
	st.state = stateAwaiting
	// From the transmitter's own perspective the medium state resumes
	// from the end of its frame.
	if st.busyCount == 0 {
		st.idleSince = now
		st.senseIdleOpen = true
		st.senseIdleStart = now
	}
	if kind == kindRTS {
		if s.cfg.Trace != nil {
			wire := frame.Marshal(&frame.RTS{
				Source: frame.Address(st.id),
				//wlanvet:allow the 802.11 Duration/ID field is 16 bits by spec; one exchange's NAV is far below 65535 µs
				Duration: uint16(s.navDuration() / sim.Microsecond),
			})
			s.cfg.Trace.Frame(now, wire, collided)
		}
		if collided {
			s.collisions++
			s.sched.AfterArg(s.tACKTimeout, s.failTimeoutFn, st)
			return
		}
		s.sched.AfterArg(s.cfg.PHY.SIFS, s.ctsBeginFn, st)
		return
	}
	if s.cfg.Trace != nil {
		wire := frame.Marshal(&frame.Data{
			Source:      frame.Address(st.id),
			Destination: frame.AddressAP,
			Sequence:    st.seq,
			Retry:       st.retries,
			Bits:        s.cfg.PHY.Payload,
		})
		s.cfg.Trace.Frame(now, wire, collided)
	}
	if collided {
		s.collisions++
		s.sched.AfterArg(s.tACKTimeout, s.failTimeoutFn, st)
		return
	}
	// Footnote 1: i.i.d. channel errors on data frames. The frame is
	// simply never acknowledged; the transmitter cannot distinguish the
	// loss from a collision and takes the same failure path.
	if s.cfg.FrameErrorRate > 0 && s.rootRNG.Bernoulli(s.cfg.FrameErrorRate) {
		s.frameErrors++
		s.sched.AfterArg(s.tACKTimeout, s.failTimeoutFn, st)
		return
	}
	s.ackPending = true
	s.sched.AfterArg(s.cfg.PHY.SIFS, s.ackBeginFn, st)
}

// navDuration is the medium reservation a CTS announces: the remainder of
// the exchange after the CTS ends (SIFS + data + SIFS + ACK).
func (s *Simulator) navDuration() sim.Duration { return s.tNAV }

// ctsBegin starts the AP's clear-to-send answer to an uncollided RTS.
//
//wlanvet:hotpath
func (s *Simulator) ctsBegin(target *station) {
	now := s.sched.Now()
	if s.apTx {
		panic("eventsim: overlapping AP transmissions")
	}
	s.apTx = true
	for _, r := range s.active {
		r.collided = true // a frame overlapping the CTS is lost at the AP
	}
	s.apBusyStart(now)
	for _, st := range s.stations {
		s.onBusyStart(st)
	}
	s.sched.AfterArg(s.tCTS, s.ctsEndFn, target)
}

// ctsEnd completes the CTS: every station that could decode it arms its
// NAV for the rest of the exchange, and the reservation owner proceeds to
// its data frame after SIFS.
//
//wlanvet:hotpath
func (s *Simulator) ctsEnd(target *station) {
	now := s.sched.Now()
	s.apTx = false
	s.apBusyEnd(now)
	for _, st := range s.stations {
		s.onBusyEnd(st)
	}
	if s.cfg.Trace != nil {
		wire := frame.Marshal(&frame.CTS{
			Receiver: frame.Address(target.id),
			//wlanvet:allow the 802.11 Duration/ID field is 16 bits by spec; one exchange's NAV is far below 65535 µs
			Duration: uint16(s.navDuration() / sim.Microsecond),
		})
		s.cfg.Trace.Frame(now, wire, false)
	}
	// Arm the NAV. A station that is itself mid-transmission cannot have
	// decoded the CTS (half duplex) and keeps contending blindly — the
	// residual collision channel RTS/CTS cannot close.
	var navved []*station
	for _, st := range s.stations {
		if st == target || st.state == stateTransmitting {
			continue
		}
		s.onBusyStart(st)
		//wlanvet:allow per-exchange, not per-frame: reservations are rare and overlapping NAV windows make a shared scratch buffer unsafe
		navved = append(navved, st)
	}
	// The navved closure is the one remaining per-exchange allocation on
	// the RTS/CTS path; reservations are rare relative to data frames
	// and overlapping NAV windows make a shared scratch buffer unsafe.
	//wlanvet:allow per-exchange, not per-frame: the NAV-release closure is the one deliberate RTS/CTS allocation, documented above
	s.sched.After(s.navDuration(), func() {
		for _, st := range navved {
			s.onBusyEnd(st)
		}
	})
	s.sched.AfterArg(s.cfg.PHY.SIFS, s.reservedDataFn, target)
}

// reservedData transmits the data frame inside an RTS/CTS reservation.
//
//wlanvet:hotpath
func (s *Simulator) reservedData(st *station) {
	if st.state != stateAwaiting {
		return
	}
	now := s.sched.Now()
	st.state = stateTransmitting
	rec := s.newTransmission()
	rec.st, rec.kind = st, kindData
	rec.start, rec.end = now, now.Add(s.tData)
	s.launch(rec)
}

// ackBegin starts the AP's acknowledgement.
//
//wlanvet:hotpath
func (s *Simulator) ackBegin(target *station) {
	now := s.sched.Now()
	if s.apTx {
		panic("eventsim: overlapping AP transmissions")
	}
	s.ackPending = false
	s.apTx = true
	// Any data frame still in the air overlaps the ACK and is lost.
	for _, r := range s.active {
		r.collided = true
	}
	s.apBusyStart(now)
	for _, st := range s.stations {
		s.onBusyStart(st)
	}
	s.sched.AfterArg(s.tACK, s.ackEndFn, target)
}

// ackEnd completes a successful exchange: deliver the ACK (with the
// control broadcast) and restart contention at the transmitter.
//
//wlanvet:hotpath
func (s *Simulator) ackEnd(target *station) {
	now := s.sched.Now()
	s.apTx = false
	s.apBusyEnd(now)
	for _, st := range s.stations {
		s.onBusyEnd(st)
	}

	payload := s.cfg.PHY.Payload
	s.windowMeter.Account(payload)
	s.totalBits += int64(payload)
	target.bitsDelivered += int64(payload)
	target.successes++
	s.successes++

	if s.cfg.Trace != nil {
		wire := frame.Marshal(&frame.ACK{
			Receiver: frame.Address(target.id),
			Sequence: target.seq,
			Control:  s.control,
		})
		s.cfg.Trace.Frame(now, wire, false)
	}

	target.policy.OnSuccess(target.rng)
	// All stations hear AP transmissions (system model), so the control
	// broadcast reaches everyone, as wTOP-CSMA requires.
	s.broadcastControl()

	// Per-packet latency: from arrival (saturated sources: the instant
	// the packet became head-of-line) to ACK completion.
	if target.arr.Unsaturated() {
		s.recordLatency(target, now.Sub(target.queue.pop()))
	} else {
		s.recordLatency(target, now.Sub(target.holSince))
		target.holSince = now
	}

	target.seq++
	target.retries = 0
	if target.deferredStop {
		target.deferredStop = false
		target.state = stateInactive
		return
	}
	if target.arr.Unsaturated() && target.queue.len() == 0 {
		target.state = stateIdle
		return
	}
	s.startContention(target)
}

// failTimeout fires when the transmitter concludes its frame was lost.
//
//wlanvet:hotpath
func (s *Simulator) failTimeout(st *station) {
	st.failures++
	st.retries++
	st.policy.OnFailure(st.rng)
	if st.deferredStop {
		st.deferredStop = false
		st.state = stateInactive
		return
	}
	s.startContention(st)
}

// broadcastControl delivers the AP's current control block to every
// active station.
//
//wlanvet:hotpath
func (s *Simulator) broadcastControl() {
	if s.cfg.Controller == nil {
		return
	}
	for _, st := range s.stations {
		if st.state != stateInactive {
			st.policy.OnControl(s.control)
		}
	}
}

// apBusyStart/apBusyEnd maintain the AP-side medium view used for the
// idle-slot statistic of Table III.
//
//wlanvet:hotpath
func (s *Simulator) apBusyStart(now sim.Time) {
	s.apBusy++
	if s.apBusy == 1 {
		s.apIdle.MediumBusy(now)
		s.beaconWait.Cancel()
		s.beaconWait = sim.Ref{}
	}
}

//wlanvet:hotpath
func (s *Simulator) apBusyEnd(now sim.Time) {
	s.apBusy--
	if s.apBusy < 0 {
		panic("eventsim: negative AP busy count")
	}
	if s.apBusy == 0 {
		s.apIdle.MediumIdle(now)
		s.tryBeacon()
	}
}

// controllerWindow closes one UPDATE_PERIOD measurement window.
func (s *Simulator) controllerWindow() {
	now := s.sched.Now()
	rate := s.windowMeter.Rate(now)
	s.throughputSeries.Append(now, rate)
	s.activeSeries.Append(now, float64(s.ActiveStations()))
	if s.cfg.Controller != nil {
		s.cfg.Controller.OnWindowEnd(rate)
		s.control = s.cfg.Controller.Control()
		s.controlSeries.Append(now, s.controlValue())
	}
	s.windowMeter.ResetWindow(now)
	s.sched.AfterArg(s.cfg.UpdatePeriod, s.windowFn, nil)
}

// controlValue extracts the tuned variable for the convergence series:
// p for wTOP-CSMA, p0 for TORA-CSMA.
func (s *Simulator) controlValue() float64 {
	switch s.control.Scheme {
	case frame.ControlWTOP:
		return s.control.P
	case frame.ControlTORA:
		return s.control.P0
	default:
		return 0
	}
}

// beaconTick marks a beacon due and reschedules the timer. The beacon is
// actually sent by tryBeacon once the medium allows.
func (s *Simulator) beaconTick() {
	s.beaconDue = true
	s.tryBeacon()
	s.sched.AfterArg(s.cfg.BeaconInterval, s.beaconTickFn, nil)
}

// tryBeacon arms a PIFS countdown towards a beacon transmission when one
// is due and the medium is free at the AP. PIFS < DIFS gives the AP
// priority over every station's backoff — real 802.11 beacon behaviour —
// so control information keeps flowing even during collision collapse,
// when no ACKs exist to carry it.
//
//wlanvet:hotpath
func (s *Simulator) tryBeacon() {
	if !s.beaconDue || s.beaconWait.Active() || s.apTx || s.ackPending || s.apBusy > 0 {
		return
	}
	s.beaconWait = s.sched.AfterArg(s.tPIFS, s.beaconTxFn, nil)
}

// beaconTx puts the beacon on the air.
//
//wlanvet:hotpath
func (s *Simulator) beaconTx() {
	s.beaconWait = sim.Ref{}
	s.beaconDue = false
	now := s.sched.Now()
	s.apTx = true
	// Any data frame overlapping the beacon is lost (AP transmitting);
	// none can be active here because the PIFS countdown is cancelled on
	// any busy start, but a station may still start at the same instant
	// later in the event queue — txBegin handles that via the apTx check.
	s.apBusyStart(now)
	for _, st := range s.stations {
		s.onBusyStart(st)
	}
	s.beaconSeq++
	s.sched.AfterArg(s.tACK, s.beaconEndFn, nil)
}

// beaconEnd completes the beacon. Beacons never overlap (tryBeacon bails
// while apBusy > 0 and beaconDue stays false until the next tick), so
// s.beaconSeq still identifies the frame that just finished.
//
//wlanvet:hotpath
func (s *Simulator) beaconEnd() {
	s.apTx = false
	s.apBusyEnd(s.sched.Now())
	for _, st := range s.stations {
		s.onBusyEnd(st)
	}
	if s.cfg.Trace != nil {
		wire := frame.Marshal(&frame.Beacon{Sequence: s.beaconSeq, Control: s.control})
		s.cfg.Trace.Frame(s.sched.Now(), wire, false)
	}
	s.broadcastControl()
}

// Run advances the simulation to the given duration of simulated time
// and returns the accumulated results. Run may be called repeatedly with
// increasing durations to sample intermediate results.
func (s *Simulator) Run(duration sim.Duration) *Result {
	end := sim.Time(duration)
	if s.sched.Fired() == 0 {
		s.sched.AfterArg(s.cfg.UpdatePeriod, s.windowFn, nil)
		if s.cfg.BeaconInterval > 0 {
			s.sched.AfterArg(s.cfg.BeaconInterval, s.beaconTickFn, nil)
		}
	}
	s.sched.RunUntil(end)
	return s.result()
}

func (s *Simulator) result() *Result {
	now := s.sched.Now()
	res := &Result{
		Duration:      now.Sub(0),
		Throughput:    float64(s.totalBits) / now.Seconds(),
		Successes:     s.successes,
		Collisions:    s.collisions,
		FrameErrors:   s.frameErrors,
		APIdleSlots:   s.apIdle.Average(),
		MaxConcurrent: s.maxConcurrent,
		// The series are cloned so the Result stays valid after this
		// simulator is Reset for its next run (arena reuse).
		ThroughputSeries: s.throughputSeries.Clone(),
		ControlSeries:    s.controlSeries.Clone(),
		ActiveSeries:     s.activeSeries.Clone(),
		EventsFired:      s.sched.Fired(),
		Latency:          s.latHist,
		JitterSum:        s.jitterSum,
		JitterCount:      s.jitterCount,
		PacketsArrived:   s.totalArrivals,
		PacketsDropped:   s.totalDrops,
	}
	res.Stations = make([]StationStats, len(s.stations))
	for i, st := range s.stations {
		weight := 1.0
		if pp, ok := st.policy.(*mac.PPersistent); ok {
			weight = pp.Weight
		}
		var meanLat sim.Duration
		if st.latCount > 0 {
			meanLat = st.latSum / sim.Duration(st.latCount)
		}
		res.Stations[i] = StationStats{
			Successes:     st.successes,
			Failures:      st.failures,
			BitsDelivered: st.bitsDelivered,
			Throughput:    float64(st.bitsDelivered) / now.Seconds(),
			Weight:        weight,
			Arrivals:      st.arrivals,
			Drops:         st.drops,
			MeanLatency:   meanLat,
		}
	}
	return res
}
