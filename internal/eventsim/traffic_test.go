package eventsim

import (
	"math"
	"testing"

	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func unsatConfig(n int, arrivals []traffic.Spec, seed int64) Config {
	policies := make([]mac.Policy, n)
	for i := range policies {
		policies[i] = mac.NewStandardDCF(16, 1024)
	}
	return Config{
		PHY:      model.PaperPHY(),
		Topology: topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies: policies,
		Arrivals: arrivals,
		Seed:     seed,
	}
}

// In a clearly underloaded Poisson configuration, every offered packet
// must be delivered (no drops, queues stable) so throughput equals the
// offered load — the basic correctness property of the unsaturated
// regime the saturated paper model cannot express.
func TestPoissonUnderloadServesOfferedLoad(t *testing.T) {
	const (
		n    = 10
		rate = 100.0 // packets/s/station → 8 Mbps aggregate, well under capacity
	)
	duration := 20 * sim.Second
	if testing.Short() {
		duration = 8 * sim.Second
	}
	arr := make([]traffic.Spec, n)
	for i := range arr {
		arr[i] = traffic.Spec{Kind: traffic.Poisson, Rate: rate}
	}
	s, err := New(unsatConfig(n, arr, 5))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(duration)

	offered := n * rate * duration.Seconds() * float64(model.PaperPHY().Payload)
	if rel := math.Abs(res.Throughput*duration.Seconds()-offered) / offered; rel > 0.05 {
		t.Errorf("delivered %.0f bits vs offered %.0f (off %.1f%%)", res.Throughput*duration.Seconds(), offered, 100*rel)
	}
	if res.PacketsDropped != 0 {
		t.Errorf("underloaded run dropped %d packets", res.PacketsDropped)
	}
	if res.PacketsArrived == 0 {
		t.Fatal("no arrivals recorded")
	}
	// Arrival count must be Poisson(n·rate·T) to within 5 sigma.
	wantArrivals := float64(n) * rate * duration.Seconds()
	if dev := math.Abs(float64(res.PacketsArrived) - wantArrivals); dev > 5*math.Sqrt(wantArrivals) {
		t.Errorf("arrivals %d vs expected %.0f (dev %.0f)", res.PacketsArrived, wantArrivals, dev)
	}
	// Latency must be recorded for every delivery and be at least one
	// full data-frame airtime.
	if res.Latency.Count() != res.Successes {
		t.Errorf("latency samples %d != successes %d", res.Latency.Count(), res.Successes)
	}
	minService := model.PaperPHY().DataTxTime()
	if res.Latency.Min() < minService {
		t.Errorf("min latency %v below a single frame airtime %v", res.Latency.Min(), minService)
	}
	if res.Latency.Quantile(0.5) <= 0 || res.Latency.Quantile(0.99) < res.Latency.Quantile(0.5) {
		t.Errorf("implausible latency quantiles p50=%v p99=%v", res.Latency.Quantile(0.5), res.Latency.Quantile(0.99))
	}
}

// A one-packet queue under overload must drop and must never exceed its
// capacity (conservation: arrivals = deliveries + drops + still queued).
func TestQueueCapDropsUnderOverload(t *testing.T) {
	const n = 5
	arr := make([]traffic.Spec, n)
	for i := range arr {
		arr[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 5000, QueueCap: 1}
	}
	s, err := New(unsatConfig(n, arr, 9))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(5 * sim.Second)
	if res.PacketsDropped == 0 {
		t.Error("overloaded 1-packet queues never dropped")
	}
	var queued int64
	for _, st := range s.stations {
		queued += int64(st.queue.len())
		if st.queue.len() > 1 {
			t.Errorf("station %d queue length %d exceeds cap 1", st.id, st.queue.len())
		}
	}
	// In-flight head-of-line packets are still queued (popped at ACK), so
	// arrivals = successes + drops + queued exactly.
	if got := res.Successes + res.PacketsDropped + queued; got != res.PacketsArrived {
		t.Errorf("packet conservation: %d delivered+dropped+queued vs %d arrived", got, res.PacketsArrived)
	}
}

// OnOff sources must deliver the duty-cycle-weighted mean load.
func TestOnOffDutyCycleLoad(t *testing.T) {
	const n = 6
	duration := 30 * sim.Second
	if testing.Short() {
		duration = 12 * sim.Second
	}
	spec := traffic.Spec{
		Kind:    traffic.OnOff,
		Rate:    400,
		OnMean:  200 * sim.Millisecond,
		OffMean: 600 * sim.Millisecond,
	}
	arr := make([]traffic.Spec, n)
	for i := range arr {
		arr[i] = spec
	}
	s, err := New(unsatConfig(n, arr, 21))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(duration)
	want := float64(n) * spec.MeanRate() * duration.Seconds()
	got := float64(res.PacketsArrived)
	// Phase-level variance dominates: each station sees ~37 cycles, so
	// allow 15%.
	if rel := math.Abs(got-want) / want; rel > 0.15 {
		t.Errorf("onoff arrivals %.0f vs duty-cycle expectation %.0f (off %.1f%%)", got, want, 100*rel)
	}
	if res.PacketsDropped != 0 {
		t.Errorf("underloaded onoff run dropped %d packets", res.PacketsDropped)
	}
}

// Churn composed with unsaturated sources: departures freeze the queue,
// re-arrivals resume it, and packet conservation holds throughout.
func TestChurnWithPoissonSources(t *testing.T) {
	const n = 8
	arr := make([]traffic.Spec, n)
	for i := range arr {
		arr[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 200}
	}
	s, err := New(unsatConfig(n, arr, 33))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetActiveAt(sim.Time(2*sim.Second), 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetActiveAt(sim.Time(4*sim.Second), n); err != nil {
		t.Fatal(err)
	}
	res := s.Run(8 * sim.Second)
	var queued int64
	for _, st := range s.stations {
		queued += int64(st.queue.len())
	}
	if got := res.Successes + res.PacketsDropped + queued; got != res.PacketsArrived {
		t.Errorf("packet conservation under churn: %d vs %d arrived", got, res.PacketsArrived)
	}
	if res.Successes == 0 {
		t.Fatal("no deliveries under churn")
	}
}

// Reactivating a station while its deferred-stop exchange is still in
// flight must restart the arrival process deactivateNow silenced:
// without that the station drains its queue and idles forever while
// nominally active.
func TestRapidChurnKeepsArrivalsAlive(t *testing.T) {
	const n = 4
	arr := make([]traffic.Spec, n)
	for i := range arr {
		arr[i] = traffic.Spec{Kind: traffic.Poisson, Rate: 2000}
	}
	s, err := New(unsatConfig(n, arr, 13))
	if err != nil {
		t.Fatal(err)
	}
	// Flap every 200 µs for a while: far shorter than one frame exchange
	// (~200 µs data + SIFS + ACK), so deactivations routinely land
	// mid-exchange and the matching reactivation hits deferredStop.
	for i := 0; i < 500; i++ {
		at := sim.Time(sim.Duration(i) * 200 * sim.Microsecond)
		active := 1 + i%n
		if err := s.SetActiveAt(at, active); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run(4 * sim.Second)
	// After the flapping stops every station is active; each must still
	// have a live arrival process and comparable arrival counts.
	for _, st := range s.stations {
		if st.state == stateInactive {
			t.Fatalf("station %d inactive after final activation", st.id)
		}
		if !st.nextArrival.Active() && !st.phaseRef.Active() {
			t.Errorf("station %d: arrival process dead (trafficOn=%v)", st.id, st.trafficOn)
		}
		// ~3.9 s of post-churn life at 2000 pkt/s plus churn-phase
		// activity: a dead source would sit orders of magnitude lower.
		if st.arrivals < 4000 {
			t.Errorf("station %d: only %d arrivals, source likely stalled", st.id, st.arrivals)
		}
	}
	var queued int64
	for _, st := range s.stations {
		queued += int64(st.queue.len())
	}
	if got := res.Successes + res.PacketsDropped + queued; got != res.PacketsArrived {
		t.Errorf("packet conservation under rapid churn: %d vs %d arrived", got, res.PacketsArrived)
	}
}

// The all-saturated path must stay bit-identical whether Arrivals is nil
// or an explicit all-saturated slice — the compatibility contract that
// keeps the paper-regime goldens stable.
func TestExplicitSaturatedMatchesNilArrivals(t *testing.T) {
	run := func(arr []traffic.Spec) *Result {
		cfg := unsatConfig(6, arr, 77)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(5 * sim.Second)
	}
	a := run(nil)
	b := run(make([]traffic.Spec, 6)) // zero value = saturated
	if a.Throughput != b.Throughput || a.Successes != b.Successes ||
		a.Collisions != b.Collisions || a.EventsFired != b.EventsFired {
		t.Errorf("explicit saturated diverged from nil arrivals: %+v vs %+v",
			[4]any{a.Throughput, a.Successes, a.Collisions, a.EventsFired},
			[4]any{b.Throughput, b.Successes, b.Collisions, b.EventsFired})
	}
	// Saturated deliveries still produce access-delay latency samples.
	if a.Latency.Count() != a.Successes {
		t.Errorf("saturated latency samples %d != successes %d", a.Latency.Count(), a.Successes)
	}
}
