// Package eventsim is the ns-3 replacement: a continuous-time,
// event-driven simulator of saturated IEEE 802.11-style CSMA/CA uplink
// traffic with carrier sensing, hidden nodes, ACKs and an AP-side
// controller hook.
//
// Unlike Bianchi-style slotted models (package slotsim), nodes here keep
// their own desynchronised view of the medium: a station freezes its
// backoff only while a transmission it can *sense* is in the air, so two
// mutually hidden stations happily count down over each other's
// transmissions and collide at the AP — the exact phenomenon the paper's
// hidden-node evaluation (Figs. 4–7, Table III) exercises.
//
// The collision model is the paper's (Section II): a data transmission is
// successful iff no other station's transmission overlaps it in time at
// the AP, and the AP cannot receive while it transmits an ACK.
package eventsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Config assembles a simulation run.
type Config struct {
	// PHY supplies timing and framing (zero value: model.PaperPHY()).
	PHY model.PHY
	// Topology fixes station positions and connectivity. Required.
	Topology *topo.Topology
	// Policies holds one contention-resolution policy per station, in
	// station-index order. Required; length must equal Topology.N().
	Policies []mac.Policy
	// Controller, when non-nil, runs at the AP: it receives windowed
	// throughput measurements and its Control block is broadcast in
	// every ACK (and beacon).
	Controller core.Controller
	// UpdatePeriod is the controller measurement window Δ (default
	// 250 ms, the paper's simulation setting).
	UpdatePeriod sim.Duration
	// BeaconInterval, when positive, makes the AP broadcast a beacon
	// frame carrying the control block every interval — the paper's
	// suggested alternative to stations decoding every ACK. Beacons use
	// PIFS priority, so they survive collision collapse, which ACKs do
	// not: without them Algorithm 1's aggressive early probes (p ≈ 0.9)
	// can deadlock a dense network with zero successes and therefore
	// zero control deliveries. When a Controller is configured and this
	// field is zero it defaults to the 802.11 beacon period (102.4 ms).
	BeaconInterval sim.Duration
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// InitialActive limits how many stations start active (0 = all);
	// dynamic-arrival scenarios (Figs. 8–11) activate the rest later.
	InitialActive int
	// RTSCTS enables the RTS/CTS exchange before every data frame. The
	// AP's CTS reaches every station (system model), so it sets a NAV
	// that silences hidden nodes for the whole exchange — collisions can
	// then only hit the short control-rate RTS frames. This is the
	// trade-off of the paper's introduction: hidden nodes eliminated,
	// but substantial fixed overhead because RTS/CTS transmit at the
	// basic rate (6 Mbps) while data runs at 54 Mbps.
	RTSCTS bool
	// FrameErrorRate applies i.i.d. loss to data frames on top of
	// collisions (footnote 1 of the paper: such errors fold into the
	// framework when independent and identically distributed). A lost
	// frame draws no ACK, so the transmitter takes the failure path.
	FrameErrorRate float64
	// Trace, when non-nil, receives an encoded copy of every frame as
	// it ends (successfully or not) — the simulator's packet capture.
	Trace Tracer
	// Arrivals describes each station's packet arrival process, in
	// station-index order. Nil means every station is saturated (the
	// paper's regime, bit-identical to pre-Arrivals behaviour); when
	// set, the length must equal Topology.N(). Unsaturated stations
	// contend only while their queue is non-empty, and every delivered
	// packet's arrival→ACK latency feeds the Result's latency histogram.
	Arrivals []traffic.Spec
}

// withDefaults validates the configuration and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Topology == nil {
		return c, fmt.Errorf("eventsim: Topology is required")
	}
	if err := c.Topology.Validate(); err != nil {
		return c, err
	}
	// The event engine fans busy/idle transitions out over explicit
	// neighbour lists, so it needs the topology's adjacency materialised
	// — bounded, because the paper's AP-bounded geometry is near-complete
	// and a huge-n dense layout would otherwise allocate Θ(n²).
	if err := c.Topology.EnsureAdjacency(topo.DefaultAdjacencyBudget); err != nil {
		return c, fmt.Errorf("eventsim: %w", err)
	}
	if c.PHY == (model.PHY{}) {
		c.PHY = model.PaperPHY()
	}
	if err := c.PHY.Validate(); err != nil {
		return c, err
	}
	if len(c.Policies) != c.Topology.N() {
		return c, fmt.Errorf("eventsim: %d policies for %d stations", len(c.Policies), c.Topology.N())
	}
	for i, p := range c.Policies {
		if p == nil {
			return c, fmt.Errorf("eventsim: policy %d is nil", i)
		}
	}
	if c.UpdatePeriod == 0 {
		c.UpdatePeriod = 250 * sim.Millisecond
	}
	if c.UpdatePeriod < 0 {
		return c, fmt.Errorf("eventsim: negative UpdatePeriod %v", c.UpdatePeriod)
	}
	if c.BeaconInterval < 0 {
		return c, fmt.Errorf("eventsim: negative BeaconInterval %v", c.BeaconInterval)
	}
	if c.BeaconInterval == 0 && c.Controller != nil {
		c.BeaconInterval = 102400 * sim.Microsecond // standard 802.11 beacon period
	}
	if c.InitialActive < 0 || c.InitialActive > c.Topology.N() {
		return c, fmt.Errorf("eventsim: InitialActive %d outside [0, %d]", c.InitialActive, c.Topology.N())
	}
	if c.InitialActive == 0 {
		c.InitialActive = c.Topology.N()
	}
	if c.FrameErrorRate < 0 || c.FrameErrorRate >= 1 {
		return c, fmt.Errorf("eventsim: FrameErrorRate %v outside [0,1)", c.FrameErrorRate)
	}
	if c.Arrivals != nil {
		if len(c.Arrivals) != c.Topology.N() {
			return c, fmt.Errorf("eventsim: %d arrival specs for %d stations", len(c.Arrivals), c.Topology.N())
		}
		for i, a := range c.Arrivals {
			if err := a.Validate(); err != nil {
				return c, fmt.Errorf("eventsim: station %d: %w", i, err)
			}
		}
	}
	return c, nil
}

// Tracer observes completed frame transmissions. Implementations must not
// retain the byte slice across calls.
type Tracer interface {
	// Frame receives the wire encoding of a frame that just left the
	// air, the simulated completion instant, and whether it collided.
	Frame(at sim.Time, wire []byte, collided bool)
}
