package eventsim

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestDynamicWeightChange(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	// Section III's claim: "every node could dynamically change their
	// weights and the system would still adapt" — no AP involvement
	// needed, because the weight mapping is applied station-side.
	// Station 0 doubles its weight mid-run; its share must double while
	// the system stays optimal.
	n := 10
	s, _ := wtopSim(t, connectedTopo(n), nil, 83)
	// Grab station 0's policy to mutate its weight at t = 60 s.
	pp := s.stations[0].policy.(*mac.PPersistent)
	s.Scheduler().At(sim.Time(60*sim.Second), func() { pp.Weight = 3 })

	// Phase 1: equal weights.
	res1 := s.Run(60 * sim.Second)
	share1 := res1.Stations[0].Throughput / res1.Throughput

	// Phase 2: station 0 at weight 3. Measure its share over the second
	// phase only (bits delta).
	bitsBefore := res1.Stations[0].BitsDelivered
	totalBefore := int64(0)
	for _, st := range res1.Stations {
		totalBefore += st.BitsDelivered
	}
	res2 := s.Run(150 * sim.Second)
	bitsAfter := res2.Stations[0].BitsDelivered
	totalAfter := int64(0)
	for _, st := range res2.Stations {
		totalAfter += st.BitsDelivered
	}
	share2 := float64(bitsAfter-bitsBefore) / float64(totalAfter-totalBefore)

	// Weight 3 among 9 unit weights: fair share 3/12 = 0.25 vs 0.1.
	if share1 < 0.07 || share1 > 0.13 {
		t.Errorf("phase-1 share %.3f, want ≈ 0.10", share1)
	}
	if share2 < 0.20 || share2 > 0.30 {
		t.Errorf("phase-2 share %.3f, want ≈ 0.25 after weight change", share2)
	}
}

func TestEstimateNBreaksWithHiddenNodes(t *testing.T) {
	// The repository-wide thesis in one test: the model-based EstimateN
	// policy is near-optimal when its model holds and loses badly to the
	// model-free TORA-CSMA when hidden nodes break the model.
	phy := model.PaperPHY()
	tp := hiddenTopo(10) // two mutually hidden clusters
	mkEst := func() []mac.Policy {
		ps := make([]mac.Policy, tp.N())
		for i := range ps {
			ps[i] = mac.NewEstimateN(phy.TcSlots(), 10)
		}
		return ps
	}
	est, err := New(Config{Topology: tp, Policies: mkEst(), Seed: 31, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	rEst := est.Run(30 * sim.Second)

	tora, _ := toraSim(t, tp, 31)
	rTora := tora.Run(60 * sim.Second)

	if rEst.Throughput >= rTora.ConvergedThroughput(30*sim.Second) {
		t.Errorf("EstimateN %.2f Mbps should lose to TORA %.2f Mbps under hidden nodes",
			rEst.ThroughputMbps(), rTora.ConvergedThroughput(30*sim.Second)/1e6)
	}
	// And in the connected network the same policy is near-optimal.
	conn, err := New(Config{Topology: connectedTopo(10), Policies: mkEst(), Seed: 31, PHY: phy})
	if err != nil {
		t.Fatal(err)
	}
	rConn := conn.Run(30 * sim.Second)
	opt := model.PPersistent{PHY: phy}.MaxThroughput(model.UnitWeights(10))
	if rConn.Throughput < 0.93*opt {
		t.Errorf("EstimateN connected %.2f Mbps < 93%% of optimum %.2f Mbps",
			rConn.ThroughputMbps(), opt/1e6)
	}
}
