package eventsim

import (
	"math"
	"testing"

	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/slotsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// The two engines model the same physics on connected topologies: slotsim
// advances a global Bianchi-style slot clock, eventsim tracks continuous
// per-station carrier sense. On a matched fully-connected p-persistent
// configuration their saturation throughput must agree — this is the
// repo's strongest cross-validation, since the engines share no code
// above the policy layer.
func TestCrossSimulatorAgreementConnected(t *testing.T) {
	phy := model.PaperPHY()
	duration := 20 * sim.Second
	if testing.Short() {
		duration = 8 * sim.Second
	}
	for _, tc := range []struct {
		n int
		p float64
	}{
		{10, 0.05},
		{20, 0.02},
		{40, 0.01},
	} {
		build := func() []mac.Policy {
			ps := make([]mac.Policy, tc.n)
			for i := range ps {
				ps[i] = mac.NewPPersistent(1, tc.p)
			}
			return ps
		}
		ev, err := New(Config{
			PHY:      phy,
			Topology: topo.New(topo.Point{}, topo.CircleEdge(tc.n, 8), topo.PaperRadii()),
			Policies: build(),
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		evRes := ev.Run(duration)

		sl, err := slotsim.New(slotsim.Config{PHY: phy, Policies: build(), Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		slRes := sl.Run(duration)

		rel := math.Abs(evRes.Throughput-slRes.Throughput) / slRes.Throughput
		if rel > 0.05 {
			t.Errorf("N=%d p=%v: eventsim %.3f Mbps vs slotsim %.3f Mbps differ by %.1f%% (> 5%%)",
				tc.n, tc.p, evRes.Throughput/1e6, slRes.Throughput/1e6, 100*rel)
		}

		// Airtime conservation, slotsim side: the clock decomposes
		// exactly into idle·σ + successes·Ts + collisions·Tc.
		accounted := sim.Duration(slRes.IdleSlots)*phy.Slot +
			sim.Duration(slRes.Successes)*phy.Ts() +
			sim.Duration(slRes.Collisions)*phy.Tc()
		if accounted != slRes.Duration {
			t.Errorf("N=%d p=%v: slotsim airtime %v ≠ duration %v", tc.n, tc.p, accounted, slRes.Duration)
		}

		// Airtime conservation, eventsim side: every success occupies a
		// full Ts of air, so successful airtime can never exceed the run
		// duration; and delivered bits must equal successes × payload
		// exactly (no payload created or destroyed).
		if busy := sim.Duration(evRes.Successes) * phy.Ts(); busy > evRes.Duration {
			t.Errorf("N=%d p=%v: eventsim successful airtime %v exceeds duration %v", tc.n, tc.p, busy, evRes.Duration)
		}
		var stationBits, stationSucc int64
		for _, st := range evRes.Stations {
			stationBits += st.BitsDelivered
			stationSucc += st.Successes
		}
		if stationSucc != evRes.Successes {
			t.Errorf("N=%d p=%v: per-station successes %d ≠ total %d", tc.n, tc.p, stationSucc, evRes.Successes)
		}
		if stationBits != evRes.Successes*int64(phy.Payload) {
			t.Errorf("N=%d p=%v: delivered bits %d ≠ successes·payload %d",
				tc.n, tc.p, stationBits, evRes.Successes*int64(phy.Payload))
		}
	}
}

// The unsaturated counterpart: on a matched fully-connected p-persistent
// configuration with per-station Poisson sources well below saturation,
// both engines must serve (essentially) the entire offered load, so
// their throughputs agree with each other and with λ·n·EP. This pins the
// arrival-process plumbing of both engines against the same external
// truth, exactly as the saturated case pins the contention machinery.
func TestCrossSimulatorAgreementPoisson(t *testing.T) {
	phy := model.PaperPHY()
	duration := 20 * sim.Second
	if testing.Short() {
		duration = 8 * sim.Second
	}
	for _, tc := range []struct {
		n    int
		p    float64
		rate float64 // packets/s per station
	}{
		{10, 0.05, 100}, // 8 Mbps aggregate, ~30% of capacity
		{20, 0.02, 40},  // 6.4 Mbps aggregate
	} {
		build := func() ([]mac.Policy, []traffic.Spec) {
			ps := make([]mac.Policy, tc.n)
			arr := make([]traffic.Spec, tc.n)
			for i := range ps {
				ps[i] = mac.NewPPersistent(1, tc.p)
				arr[i] = traffic.Spec{Kind: traffic.Poisson, Rate: tc.rate}
			}
			return ps, arr
		}
		pols, arr := build()
		ev, err := New(Config{
			PHY:      phy,
			Topology: topo.New(topo.Point{}, topo.CircleEdge(tc.n, 8), topo.PaperRadii()),
			Policies: pols,
			Arrivals: arr,
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		evRes := ev.Run(duration)

		pols, arr = build()
		sl, err := slotsim.New(slotsim.Config{PHY: phy, Policies: pols, Arrivals: arr, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		slRes := sl.Run(duration)

		offered := float64(tc.n) * tc.rate * float64(phy.Payload)
		for _, eng := range []struct {
			name string
			got  float64
		}{
			{"eventsim", evRes.Throughput},
			{"slotsim", slRes.Throughput},
		} {
			if rel := math.Abs(eng.got-offered) / offered; rel > 0.05 {
				t.Errorf("N=%d rate=%v: %s throughput %.3f Mbps vs offered %.3f Mbps (off %.1f%%)",
					tc.n, tc.rate, eng.name, eng.got/1e6, offered/1e6, 100*rel)
			}
		}
		if rel := math.Abs(evRes.Throughput-slRes.Throughput) / slRes.Throughput; rel > 0.05 {
			t.Errorf("N=%d rate=%v: eventsim %.3f Mbps vs slotsim %.3f Mbps differ by %.1f%% (> 5%%)",
				tc.n, tc.rate, evRes.Throughput/1e6, slRes.Throughput/1e6, 100*rel)
		}
		if evRes.PacketsDropped != 0 || slRes.PacketsDropped != 0 {
			t.Errorf("N=%d rate=%v: stable underloaded queues dropped packets (%d/%d)",
				tc.n, tc.rate, evRes.PacketsDropped, slRes.PacketsDropped)
		}
	}
}
