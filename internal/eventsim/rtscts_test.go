package eventsim

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/sim"
)

func TestRTSCTSEliminatesHiddenCollisionsOnData(t *testing.T) {
	// The aggressive hidden pair that loses ~everything in basic mode
	// (TestHiddenPairOverlapDetection) must deliver most frames with
	// RTS/CTS: collisions can only hit the short RTS frames.
	tp := hiddenTopo(2)
	s, err := New(Config{Topology: tp, Policies: fixedPPolicies(2, 0.5), Seed: 9, RTSCTS: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(5 * sim.Second)
	if res.Successes == 0 {
		t.Fatal("no successes under RTS/CTS")
	}
	// Throughput must be a large multiple of the basic-mode disaster.
	basic, err := New(Config{Topology: tp, Policies: fixedPPolicies(2, 0.5), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rb := basic.Run(5 * sim.Second)
	if res.Throughput < 5*rb.Throughput {
		t.Errorf("RTS/CTS %.2f Mbps vs basic %.2f Mbps: expected a large win",
			res.ThroughputMbps(), rb.ThroughputMbps())
	}
}

func TestRTSCTSOverheadInConnectedNetwork(t *testing.T) {
	// The flip side (the paper's reason RTS/CTS defaults off): in a
	// fully connected network at a sane p, RTS/CTS only adds control
	// overhead and loses throughput.
	n, p := 10, 0.02
	basic, err := New(Config{Topology: connectedTopo(n), Policies: fixedPPolicies(n, p), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rts, err := New(Config{Topology: connectedTopo(n), Policies: fixedPPolicies(n, p), Seed: 3, RTSCTS: true})
	if err != nil {
		t.Fatal(err)
	}
	rb, rr := basic.Run(10*sim.Second), rts.Run(10*sim.Second)
	if rr.Throughput >= rb.Throughput {
		t.Errorf("RTS/CTS %.2f Mbps should cost throughput vs basic %.2f Mbps when no hidden nodes exist",
			rr.ThroughputMbps(), rb.ThroughputMbps())
	}
	// But not absurdly: the data payload still dominates the exchange.
	if rr.Throughput < 0.5*rb.Throughput {
		t.Errorf("RTS/CTS overhead implausibly large: %.2f vs %.2f Mbps",
			rr.ThroughputMbps(), rb.ThroughputMbps())
	}
}

func TestRTSCTSTraceContainsControlFrames(t *testing.T) {
	tr := &typeCountTracer{}
	s, err := New(Config{
		Topology: connectedTopo(4),
		Policies: fixedPPolicies(4, 0.05),
		Seed:     5,
		RTSCTS:   true,
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(3 * sim.Second)
	if tr.decodeErrors > 0 {
		t.Fatalf("%d undecodable trace frames", tr.decodeErrors)
	}
	if tr.rts == 0 || tr.cts == 0 {
		t.Fatalf("trace rts=%d cts=%d; RTS/CTS frames missing", tr.rts, tr.cts)
	}
	// Every CTS answers an uncollided RTS, and every success needed one
	// CTS.
	if int64(tr.cts) < res.Successes {
		t.Errorf("cts=%d < successes=%d", tr.cts, res.Successes)
	}
	if tr.rts < tr.cts {
		t.Errorf("rts=%d < cts=%d", tr.rts, tr.cts)
	}
	// NAV duration field must cover SIFS+data+SIFS+ACK in µs.
	wantNav := uint16((s.cfg.PHY.SIFS + s.cfg.PHY.DataTxTime() + s.cfg.PHY.SIFS + s.cfg.PHY.ACKTxTime()) / sim.Microsecond)
	if tr.lastNav != wantNav {
		t.Errorf("NAV duration %d µs, want %d", tr.lastNav, wantNav)
	}
}

type typeCountTracer struct {
	rts, cts, data, acks int
	decodeErrors         int
	lastNav              uint16
}

func (tr *typeCountTracer) Frame(_ sim.Time, wire []byte, _ bool) {
	l, err := frame.Decode(wire)
	if err != nil {
		tr.decodeErrors++
		return
	}
	switch f := l.(type) {
	case *frame.RTS:
		tr.rts++
		tr.lastNav = f.Duration
	case *frame.CTS:
		tr.cts++
		tr.lastNav = f.Duration
	case *frame.Data:
		tr.data++
	case *frame.ACK:
		tr.acks++
	}
}

func TestFrameErrorRate(t *testing.T) {
	// With i.i.d. loss e and no collisions (single station), goodput
	// scales ≈ (1-e) modulo the cheaper failed slots.
	run := func(e float64) *Result {
		s, err := New(Config{
			Topology:       connectedTopo(1),
			Policies:       fixedPPolicies(1, 0.5),
			Seed:           7,
			FrameErrorRate: e,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(10 * sim.Second)
	}
	clean := run(0)
	lossy := run(0.3)
	if lossy.FrameErrors == 0 {
		t.Fatal("no frame errors recorded at e=0.3")
	}
	if clean.FrameErrors != 0 {
		t.Fatal("frame errors at e=0")
	}
	frac := float64(lossy.FrameErrors) / float64(lossy.FrameErrors+lossy.Successes)
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("error fraction %.3f, want ≈ 0.3", frac)
	}
	if lossy.Throughput >= clean.Throughput {
		t.Error("loss did not reduce throughput")
	}
	if lossy.Throughput < 0.55*clean.Throughput {
		t.Errorf("throughput dropped too much: %.2f vs %.2f Mbps",
			lossy.ThroughputMbps(), clean.ThroughputMbps())
	}
}

func TestFrameErrorRateValidation(t *testing.T) {
	_, err := New(Config{
		Topology:       connectedTopo(1),
		Policies:       fixedPPolicies(1, 0.5),
		FrameErrorRate: 1.0,
	})
	if err == nil {
		t.Error("FrameErrorRate = 1 accepted")
	}
	_, err = New(Config{
		Topology:       connectedTopo(1),
		Policies:       fixedPPolicies(1, 0.5),
		FrameErrorRate: -0.1,
	})
	if err == nil {
		t.Error("negative FrameErrorRate accepted")
	}
}

func TestWTOPConvergesUnderChannelErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop convergence run")
	}
	// Footnote 1's claim, verified end to end: the controller maximises
	// goodput directly, so i.i.d. loss shifts the achieved level but not
	// the convergence behaviour.
	n := 15
	s, _ := wtopSimWithErrors(t, n, 0.2, 71)
	res := s.Run(90 * sim.Second)
	conv := res.ConvergedThroughput(45 * sim.Second)
	if conv < 12e6 {
		t.Errorf("converged %.2f Mbps under 20%% loss; expected a working loop ≥ 12 Mbps", conv/1e6)
	}
}
