package determinism_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analyzertest.Run(t, determinism.Analyzer, "slotsim", "svc", "util")
}
