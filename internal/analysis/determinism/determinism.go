// Package determinism flags wall-clock reads, global math/rand use and
// order-leaking map iteration inside the sim-critical packages.
//
// The repository's central contract is that a (spec, seed, engine
// version) triple maps to bit-identical output bytes: goldens, engine
// fingerprints, the sweep cache and shard merges all assume it. Three
// innocuous-looking constructs silently break it:
//
//   - time.Now / time.Since introduce the host's clock into values that
//     may reach emitted rows;
//   - the global math/rand functions draw from process-wide state shared
//     with anything else in the binary, so replication interleaving
//     changes the stream;
//   - ranging over a map hands the loop body Go's randomised iteration
//     order, which is fine for commutative folds but not for anything
//     that appends, returns or sends what it saw.
//
// Legitimate observer uses — the run-stamp wall clock in
// scenario.Metrics, a map drained into a slice that is sorted before
// use — carry a //wlanvet:allow <reason> annotation instead.
package determinism

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall clocks, global math/rand and order-leaking map ranges in sim-critical packages",
	Run:  run,
}

// wallClock lists the time package functions that read or depend on
// the host clock.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// globalRandOK lists math/rand top-level functions that do NOT touch
// the package-global generator: constructors are fine, draws are not.
var globalRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.SimCriticalPkg(pass) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return f
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	f := calleeFunc(pass, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	// Only package-level functions matter here; methods on rand.Rand or
	// time.Timer values are driven by state the caller owns.
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if wallClock[f.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in sim-critical code; simulated time comes from the scheduler (annotate observers with //wlanvet:allow <reason>)",
				f.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandOK[f.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global generator; use the per-replication sim.RNG so streams are seed-addressed",
				f.Name())
		}
	}
}

// checkRange flags map ranges whose body lets the randomised iteration
// order escape: an append, a return, or a channel send observed inside
// the loop can all carry order into results.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var escape string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if escape != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			escape = "a return"
		case *ast.SendStmt:
			escape = "a channel send"
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					escape = "an append"
				}
			}
		}
		return escape == ""
	})
	if escape != "" {
		pass.Reportf(rs.Pos(),
			"map iteration order escapes through %s; emitted results must not depend on Go's randomised map order (sort first, or annotate with //wlanvet:allow <reason>)",
			escape)
	}
}
