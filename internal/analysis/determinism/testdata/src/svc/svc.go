// Package svc is determinism-analyzer testdata for the SimExempt
// escape: its directory name matches the sweep-service control plane,
// which legitimately lives on wall clocks and timers. Every construct
// below is a finding inside the determinism boundary — here, none may
// be reported (zero want comments is the assertion).
package svc

import (
	"math/rand"
	"time"
)

// leaseDeadline is the exempt package's bread and butter: TTL
// arithmetic against the wall clock.
func leaseDeadline(ttl time.Duration) time.Time { return time.Now().Add(ttl) }

// heartbeatLoop runs a real timer — unthinkable in sim-critical code,
// definitional for a lease protocol.
func heartbeatLoop(done chan struct{}, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}

// jitteredBackoff de-correlates worker retries; sharing the process
// RNG is fine because nothing here feeds a result byte.
func jitteredBackoff(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// activeWorkers leaks map iteration order into a slice — harmless in a
// log line about lease bookkeeping.
func activeWorkers(leases map[string]string) []string {
	var ws []string
	for _, w := range leases {
		ws = append(ws, w)
	}
	return ws
}
