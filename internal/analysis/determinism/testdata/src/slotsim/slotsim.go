// Package slotsim is determinism-analyzer testdata. Its directory name
// puts it under the sim-critical scope exactly like the real package.
package slotsim

import (
	"math/rand"
	"time"
)

// wallClocks exercises the time-package checks.
func wallClocks() time.Duration {
	t0 := time.Now()        // want `time.Now reads the wall clock`
	d := time.Since(t0)     // want `time.Since reads the wall clock`
	time.Sleep(time.Second) // want `time.Sleep reads the wall clock`
	_ = time.After(d)       // want `time.After reads the wall clock`
	_ = time.Until(t0)      // want `time.Until reads the wall clock`
	_ = time.Unix(0, 42)    // constructing an instant from given data is fine
	_ = time.Duration(3e9)  // durations are just arithmetic
	return 2 * time.Second  // constants and arithmetic never touch the clock
}

// allowedWallClock shows the escape hatch: an annotated observer read.
func allowedWallClock() time.Time {
	//wlanvet:allow run-stamp observer: feeds a scrape gauge, never simulation state
	return time.Now()
}

// globalRand exercises the math/rand checks.
func globalRand() {
	_ = rand.Int()                     // want `rand.Int draws from the process-global generator`
	_ = rand.Intn(7)                   // want `rand.Intn draws from the process-global generator`
	_ = rand.Float64()                 // want `rand.Float64 draws from the process-global generator`
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle draws from the process-global generator`
}

// ownedRand shows the legitimate pattern: constructors are fine, and
// draws through a caller-owned generator are state the caller seeds.
func ownedRand() float64 {
	r := rand.New(rand.NewSource(42))
	return r.Float64()
}

// mapOrderEscapes exercises the order-leak checks.
func mapOrderEscapes(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order escapes through an append`
		keys = append(keys, k)
	}
	return keys
}

func mapOrderReturns(m map[string]int) int {
	for _, v := range m { // want `map iteration order escapes through a return`
		if v > 0 {
			return v
		}
	}
	return 0
}

func mapOrderSends(m map[string]int, ch chan int) {
	for _, v := range m { // want `map iteration order escapes through a channel send`
		ch <- v
	}
}

// mapFold shows the benign form: a commutative fold over a map does not
// observe iteration order.
func mapFold(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// mapRangeAllowed shows a map range whose order escape is annotated —
// the caller sorts the slice before use.
func mapRangeAllowed(m map[string]int) []string {
	var keys []string
	//wlanvet:allow sorted by the caller before any output depends on it
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// sliceRange shows that ranging over a slice is never flagged.
func sliceRange(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
