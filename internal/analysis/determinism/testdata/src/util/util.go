// Package util is determinism-analyzer testdata OUTSIDE the
// sim-critical scope: the same constructs that are findings in slotsim
// are unremarkable here.
package util

import (
	"math/rand"
	"time"
)

func stamp() time.Time { return time.Now() }

func roll() int { return rand.Int() }

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
