// Dataflow helpers shared by the concurrency-safety analyzers: which
// types are safe to share between goroutines, which closures cross a
// goroutine boundary, which variables a closure captures, and which
// mutexes are lexically held at a program point.
//
// Everything here is a deliberate approximation with a stated bias.
// The lockset walker is LEXICAL: it tracks Lock/Unlock pairs in source
// order inside one function body, treats a deferred Unlock as held
// until function exit, and forgets a mutex at the first Unlock it sees
// even when that Unlock sits on a conditional path. That bias
// under-approximates the held set, so the analyzers built on it miss
// some real violations but do not cry wolf on the dominant Go idiom
// (lock, branch, unlock-and-return early) — the right trade for a
// checker that gates CI on a zero-finding contract.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// sharingSafePaths are the packages whose exported types are designed
// for cross-goroutine use: values of these types are not findings when
// they cross a goroutine boundary.
var sharingSafePaths = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"context":     true,
	"time":        true, // Timer/Ticker channels are the sharing point
}

// SharingSafeType reports whether t may be shared between goroutines by
// design: sync primitives, atomics, channels, context.Context, and
// function/interface values (whose sharing discipline belongs to their
// referents, checked where those are captured).
func SharingSafeType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		_ = u
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && sharingSafePaths[pkg.Path()] {
			return true
		}
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return SharingSafeType(ptr.Elem())
	}
	return false
}

// GoBoundary is one closure that crosses a goroutine boundary inside a
// function: the operand of a `go` statement, or a func literal sent on
// a channel (the worker-pool handoff — whoever receives it runs it on
// another goroutine).
type GoBoundary struct {
	// Lit is the closure's syntax.
	Lit *ast.FuncLit
	// Pos is the boundary position (the go statement or channel send).
	Pos token.Pos
	// Kind is "go statement" or "channel send", for diagnostics.
	Kind string
}

// GoBoundaries returns the goroutine-crossing closures lexically inside
// body, outermost first. Nested boundaries (a go inside a go) are each
// reported.
func GoBoundaries(body ast.Node) []GoBoundary {
	var out []GoBoundary
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, GoBoundary{Lit: lit, Pos: n.Pos(), Kind: "go statement"})
			}
		case *ast.SendStmt:
			if lit, ok := ast.Unparen(n.Value).(*ast.FuncLit); ok {
				out = append(out, GoBoundary{Lit: lit, Pos: n.Pos(), Kind: "channel send"})
			}
		}
		return true
	})
	return out
}

// FreeVars returns the variables lit references that are declared
// OUTSIDE lit but inside some enclosing function — the captured state a
// goroutine shares with its spawner. Package-level variables and struct
// fields are excluded (fields are reached through a captured root,
// which is what gets reported), as are the closure's own parameters and
// locals. The result is sorted by name for deterministic diagnostics.
func FreeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	inside := map[*types.Var]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			inside[v] = true
		}
		return true
	})
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || inside[v] || v.IsField() {
			return true
		}
		// Package-level variables are shared process state, not capture;
		// the determinism analyzer polices those separately.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// lockMethods classifies sync.Mutex/RWMutex method names.
var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// MutexRecv returns the receiver expression of a sync.(RW)Mutex
// Lock/Unlock-family call, or nil. locking reports whether the call
// acquires (vs releases).
func MutexRecv(info *types.Info, call *ast.CallExpr) (recv ast.Expr, locking, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	f, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, false, false
	}
	recvVar := f.Type().(*types.Signature).Recv()
	if recvVar == nil {
		return nil, false, false
	}
	name := f.Name()
	switch {
	case lockMethods[name]:
		return sel.X, true, true
	case unlockMethods[name]:
		return sel.X, false, true
	}
	return nil, false, false
}

// ExprKey canonicalizes a mutex receiver expression to a stable
// within-function identity: the chain of identifiers and field names
// ("c.mu", "emitMu"). Expressions with calls or indexing inside resolve
// to "" (not trackable).
func ExprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return ExprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ExprKey(e.X)
		}
	}
	return ""
}

// MutexKey canonicalizes a mutex receiver for CROSS-function identity,
// which is what the lock-order graph needs: a field mutex is keyed by
// its declaring struct type and field path ("(repro/internal/svc.Coordinator).mu"),
// a local or package-level mutex variable by its declaring scope
// ("funcOrPkg.mu"). Untrackable receivers key to "".
func MutexKey(info *types.Info, scopeName string, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// Field path: key by the field's declaring named type so c.mu
		// and d.mu (same type) are one lock ORDER CLASS. That is the
		// right granularity for ordering discipline: the protocol
		// "Coordinator.mu before Client.jitterMu" is a statement about
		// types, not instances.
		if sel, ok := info.Selections[e]; ok && sel.Obj() != nil {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				recv := sel.Recv()
				for {
					if p, ok := recv.(*types.Pointer); ok {
						recv = p.Elem()
						continue
					}
					break
				}
				return "(" + recv.String() + ")." + v.Name()
			}
		}
		key := ExprKey(e)
		if key == "" {
			return ""
		}
		return scopeName + "." + key
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return scopeName + "." + e.Name
	case *ast.StarExpr:
		return MutexKey(info, scopeName, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return MutexKey(info, scopeName, e.X)
		}
	}
	return ""
}

// LockVisit is the callback of WalkLocks: node n is visited with the
// set of mutex keys lexically held at n (callers must not retain or
// mutate held). For a Lock/RLock call the callback fires with the set
// held BEFORE the acquire — which is exactly the edge the lock-order
// graph wants.
type LockVisit func(n ast.Node, held map[string]bool)

// WalkLocks walks body maintaining the lexically-held mutex set, keyed
// by keyFn over Lock/Unlock receiver expressions (a "" key is not
// tracked). The walk is structured, not token-linear:
//
//   - a deferred Unlock keeps its mutex held for the remainder of the
//     function (the idiomatic lock-guard);
//   - an if/switch branch is walked with a copy of the held set; a
//     branch that terminates (return, break, continue, goto, panic)
//     contributes nothing to the set after the statement, so the
//     early-unlock-and-return idiom does not strip the lock from the
//     fallthrough path;
//   - branches that fall through are merged by INTERSECTION: a mutex
//     counts as held after a conditional only when every surviving
//     path holds it (the under-approximation bias — see the package
//     comment);
//   - loop bodies are walked with a copy and their changes discarded
//     (a loop may run zero times);
//   - a function literal's body is walked with an EMPTY held set — a
//     closure generally outlives the critical section it was built in
//     — unless skipLit returns true for it, in which case the literal
//     is not entered at all (the goshare analyzer walks goroutine
//     containers separately).
func WalkLocks(info *types.Info, body *ast.BlockStmt, keyFn func(ast.Expr) string, skipLit func(*ast.FuncLit) bool, visit LockVisit) {
	w := &lockWalker{info: info, keyFn: keyFn, skipLit: skipLit, visit: visit, sticky: map[string]bool{}}
	if body != nil {
		w.stmts(body.List, map[string]bool{})
	}
}

type lockWalker struct {
	info    *types.Info
	keyFn   func(ast.Expr) string
	skipLit func(*ast.FuncLit) bool
	visit   LockVisit
	sticky  map[string]bool // deferred unlocks: held to function end
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// stmts walks a statement list sequentially, threading the held set.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// terminates reports whether a statement list certainly transfers
// control out (so lockset changes inside it never reach the statement
// after the enclosing conditional).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// branch walks a conditional branch on a copy of held and reports the
// resulting set plus whether the branch terminates.
func (w *lockWalker) branch(list []ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	out := w.stmts(list, copySet(held))
	return out, terminates(list)
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, locking, ok := MutexRecv(w.info, call); ok {
				if key := w.keyFn(recv); key != "" {
					w.visit(call, held)
					if locking {
						held[key] = true
					} else if !w.sticky[key] {
						delete(held, key)
					}
					return held
				}
			}
		}
		w.expr(s.X, held)
		return held
	case *ast.DeferStmt:
		if recv, locking, ok := MutexRecv(w.info, s.Call); ok && !locking {
			if key := w.keyFn(recv); key != "" && held[key] {
				w.sticky[key] = true
				return held
			}
		}
		w.expr(s.Call, held)
		return held
	case *ast.BlockStmt:
		return w.stmts(s.List, copySet(held))
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld, thenTerm := w.branch(s.Body.List, held)
		var elseHeld map[string]bool
		elseTerm := false
		switch e := s.Else.(type) {
		case nil:
			elseHeld = copySet(held)
		case *ast.BlockStmt:
			elseHeld, elseTerm = w.branch(e.List, held)
		case *ast.IfStmt:
			elseHeld = w.stmt(e, copySet(held))
			// A chained else-if's termination is not tracked; treat it
			// as falling through (under-approximates held).
		}
		switch {
		case thenTerm && elseTerm:
			return held // code after is unreachable; keep the set stable
		case thenTerm:
			return elseHeld
		case elseTerm:
			return thenHeld
		default:
			return intersect(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := w.stmts(s.Body.List, copySet(held))
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		return held
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, copySet(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		w.clauses(s.Body, held)
		return held
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.clauses(s.Body, held)
		return held
	case *ast.SelectStmt:
		w.clauses(s.Body, held)
		return held
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.GoStmt:
		w.expr(s.Call, held)
		return held
	default:
		// Assignments, returns, sends, declarations, incdec, …: no
		// control structure, just visit every inner node.
		w.node(s, held)
		return held
	}
}

// clauses walks each case/comm clause body on a copy of held,
// discarding the results (any clause may or may not run).
func (w *lockWalker) clauses(body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, held)
			}
			w.stmts(c.Body, copySet(held))
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, copySet(held))
			}
			w.stmts(c.Body, copySet(held))
		}
	}
}

func (w *lockWalker) expr(e ast.Expr, held map[string]bool) { w.node(e, held) }

// node visits every sub-node with the current held set, entering
// function literals with an empty set (unless skipped).
func (w *lockWalker) node(n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if lit, ok := x.(*ast.FuncLit); ok {
			if w.skipLit == nil || !w.skipLit(lit) {
				sub := &lockWalker{info: w.info, keyFn: w.keyFn, skipLit: w.skipLit, visit: w.visit, sticky: map[string]bool{}}
				sub.stmts(lit.Body.List, map[string]bool{})
			}
			return false
		}
		w.visit(x, held)
		return true
	})
}

// AtomicTarget returns the &x argument's operand of a sync/atomic
// package-function call (atomic.AddInt64(&s.n, 1) → s.n), or nil for
// other calls. Method calls on atomic.Int64-style types need no
// special-casing: those types make plain access impossible.
func AtomicTarget(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return nil
}

// FieldOf resolves a selector expression to the struct field it reads
// or writes, or nil.
func FieldOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// RootIdent returns the leftmost identifier of a selector/index chain
// (s.a.b[i].c → s), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// HeldKeys returns held's keys sorted, for diagnostics.
func HeldKeys(held map[string]bool) []string {
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ShortMutex trims a cross-function mutex key for human messages:
// "(repro/internal/svc.Coordinator).mu" → "Coordinator.mu".
func ShortMutex(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return "(" + key[i+1:]
	}
	return key
}
