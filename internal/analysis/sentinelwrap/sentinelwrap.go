// Package sentinelwrap enforces the wlan facade's error contract:
// every error that crosses the public surface wraps one of the typed
// sentinels (ErrInvalidConfig, ErrCanceled, ErrClosed, ...) so callers
// branch with errors.Is instead of matching message strings — the
// contract the facade's documentation promises and its round-trip
// tests pin.
//
// Two constructs break the contract silently:
//
//   - fmt.Errorf without a %w verb manufactures an unclassifiable
//     error: it LOOKS wrapped but errors.Is finds nothing;
//   - errors.New inside a function body mints a fresh anonymous
//     sentinel per call site that no caller can possibly test for.
//
// errors.New is legal only in package-level var declarations — that is
// what a sentinel IS. The analyzer scopes itself to the wlan package:
// internal layers have their own sentinels (scenario.ErrInvalidSpec,
// sweep.ErrInvalidGrid) but also return raw simulation errors that the
// facade's wrapErr maps; only the facade promises the closed taxonomy.
package sentinelwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the facade error-wrapping checker.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc:  "errors crossing the wlan facade must wrap a typed sentinel via %w",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.PkgBase(pass.Pkg.Path()) != "wlan" {
		return nil
	}
	for _, file := range pass.Files {
		// Track whether we are inside any function body: errors.New is
		// fine only outside them (package-level sentinel declarations).
		var depth int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				depth++
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						ast.Inspect(n.Body, walk)
					}
				case *ast.FuncLit:
					ast.Inspect(n.Body, walk)
				}
				depth--
				return false
			case *ast.CallExpr:
				checkCall(pass, n, depth > 0)
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, inFunc bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	switch {
	case f.Pkg().Path() == "errors" && f.Name() == "New":
		if inFunc {
			pass.Reportf(call.Pos(),
				"errors.New inside a function mints an anonymous error no caller can errors.Is against; wrap a package sentinel with fmt.Errorf(\"%%w: ...\", ErrX, ...) instead")
		}
	case f.Pkg().Path() == "fmt" && f.Name() == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			// A non-constant format cannot be audited; flag it so it is
			// either made constant or explicitly annotated.
			pass.Reportf(call.Pos(),
				"fmt.Errorf with a non-constant format cannot be checked for %%w sentinel wrapping; use a constant format")
			return
		}
		if !strings.Contains(constant.StringVal(tv.Value), "%w") {
			pass.Reportf(call.Pos(),
				"fmt.Errorf without %%w crossing the wlan facade: the result matches no typed sentinel under errors.Is; wrap ErrInvalidConfig/ErrCanceled/ErrClosed or the underlying error")
		}
	}
}
