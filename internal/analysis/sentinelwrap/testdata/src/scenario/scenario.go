// Package scenario is sentinelwrap-analyzer testdata OUTSIDE the
// facade scope: internal layers return raw errors that the facade's
// wrapErr maps, so the same constructs are unremarkable here.
package scenario

import (
	"errors"
	"fmt"
)

func anonymous() error {
	return errors.New("internal layers may mint raw errors")
}

func unwrapped(err error) error {
	return fmt.Errorf("context: %v", err)
}
