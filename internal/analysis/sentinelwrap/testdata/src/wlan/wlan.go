// Package wlan is sentinelwrap-analyzer testdata. Its directory name
// puts it under the facade scope exactly like the real package.
package wlan

import (
	"errors"
	"fmt"
)

// Package-level errors.New declarations are what a sentinel IS.
var (
	ErrInvalidConfig = errors.New("wlan: invalid configuration")
	ErrClosed        = errors.New("wlan: lab closed")
)

// wrapped shows the contract: cross-facade errors wrap a sentinel.
func wrapped(name string) error {
	return fmt.Errorf("%w: scenario %q", ErrInvalidConfig, name)
}

// wrappedCause shows wrapping an underlying error is fine too.
func wrappedCause(err error) error {
	return fmt.Errorf("loading spec: %w", err)
}

// anonymous mints an error no caller can errors.Is against.
func anonymous() error {
	return errors.New("something went wrong") // want `errors.New inside a function mints an anonymous error`
}

// anonymousInClosure shows the check follows function literals.
var anonymousInClosure = func() error {
	return errors.New("also anonymous") // want `errors.New inside a function mints an anonymous error`
}

// unwrapped looks wrapped but matches no sentinel under errors.Is.
func unwrapped(err error) error {
	return fmt.Errorf("loading spec: %v", err) // want `fmt.Errorf without %w crossing the wlan facade`
}

// dynamicFormat cannot be audited for %w at all.
func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err) // want `fmt.Errorf with a non-constant format`
}

// allowed shows the escape hatch for a deliberate terminal error.
func allowed() error {
	//wlanvet:allow process-exit diagnostic: never crosses the facade, printed and discarded by main
	return errors.New("usage: wlansim [flags]")
}

// otherFmt shows that fmt functions besides Errorf are out of scope.
func otherFmt(err error) string {
	return fmt.Sprintf("err: %v", err)
}
