package sentinelwrap_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/sentinelwrap"
)

func TestSentinelWrap(t *testing.T) {
	analyzertest.Run(t, sentinelwrap.Analyzer, "wlan", "scenario")
}
