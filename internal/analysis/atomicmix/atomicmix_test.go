package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analyzertest.Run(t, atomicmix.Analyzer, "countermix")
}
