// Package atomicmix flags struct fields and package-level variables
// that are accessed both through sync/atomic functions and through
// plain reads/writes anywhere in the same package.
//
// The function-call half of sync/atomic (atomic.AddInt64(&s.n, 1))
// leaves the variable an ordinary int64 that the compiler will happily
// let any other line load or store plainly — and a plain access racing
// an atomic one is a data race with all the usual consequences: torn
// reads on 32-bit platforms, reordered visibility, and in this
// repository's terms a seed-dependent nondeterminism inside a sharded
// kernel. The typed half (atomic.Int64) makes the mix impossible,
// which is why every atomic in the module today is typed; this
// analyzer keeps the function-call style from quietly reintroducing
// the mixable form. The repair is to migrate the variable to the typed
// API — or, for a deliberate plain write before the value is ever
// published to another goroutine (single-threaded construction), a
// reasoned //wlanvet:allow annotation.
//
// The check is package-wide, not per-function: the whole point is
// catching the atomic increment in one file and the plain reset in
// another, which no single-function analyzer can see.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the mixed atomic/plain access checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed through sync/atomic must never also be accessed plainly",
	Run:  run,
}

// site is one access to a tracked variable.
type site struct {
	pos   token.Pos
	write bool
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	atomicSites := map[*types.Var][]site{}
	plainWrites := map[*types.Var][]site{}
	plainReads := map[*types.Var][]site{}

	// resolve maps an access expression to the variable it denotes:
	// a struct field via its selection, a package-level or local var
	// via its identifier.
	resolve := func(e ast.Expr) *types.Var {
		if f := analysis.FieldOf(info, e); f != nil {
			return f
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				return v
			}
		}
		return nil
	}

	// atomicArgs records the exact &x expressions consumed by atomic
	// calls so the same node is not double-counted as a plain read.
	atomicArgs := map[ast.Expr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			t := analysis.AtomicTarget(info, call)
			if t == nil {
				return true
			}
			atomicArgs[t] = true
			if v := resolve(t); v != nil {
				atomicSites[v] = append(atomicSites[v], site{pos: t.Pos()})
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return nil // nothing atomic in the package, nothing can be mixed
	}
	// Assignment targets and inc/dec operands are recorded as writes;
	// the set keeps the read pass from double-counting the same node.
	writeExprs := map[ast.Expr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					writeExprs[lhs] = true
					if v := resolve(lhs); v != nil {
						if _, tracked := atomicSites[v]; tracked {
							plainWrites[v] = append(plainWrites[v], site{pos: lhs.Pos(), write: true})
						}
					}
				}
			case *ast.IncDecStmt:
				writeExprs[n.X] = true
				if v := resolve(n.X); v != nil {
					if _, tracked := atomicSites[v]; tracked {
						plainWrites[v] = append(plainWrites[v], site{pos: n.X.Pos(), write: true})
					}
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if atomicArgs[e] || writeExprs[e] {
					// Consumed by an atomic call or counted as a write;
					// do not descend, or the .field identifier inside
					// would be re-counted as a plain read.
					return false
				}
				if v := resolve(e); v != nil {
					if _, tracked := atomicSites[v]; tracked {
						plainReads[v] = append(plainReads[v], site{pos: e.Pos()})
						return false
					}
				}
			case *ast.Ident:
				// Field accesses are counted at the selector level; a
				// bare identifier only reaches here for package-level
				// and local variables.
				if atomicArgs[ast.Expr(e)] || writeExprs[ast.Expr(e)] {
					return true
				}
				if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() {
					if _, tracked := atomicSites[v]; tracked {
						plainReads[v] = append(plainReads[v], site{pos: e.Pos()})
					}
				}
			}
			return true
		})
	}
	var mixed []*types.Var
	for v := range atomicSites {
		if len(plainWrites[v]) > 0 || len(plainReads[v]) > 0 {
			mixed = append(mixed, v)
		}
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].Pos() < mixed[j].Pos() })
	for _, v := range mixed {
		sites := append(append([]site(nil), plainWrites[v]...), plainReads[v]...)
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		kind := "read"
		for _, s := range sites {
			if s.write {
				kind = "write"
				break
			}
		}
		// Prefer reporting a write (the tearing side); else the first read.
		rep := sites[0]
		for _, s := range sites {
			if s.write {
				rep = s
				break
			}
		}
		pass.Reportf(rep.pos,
			"plain %s of %s, which is accessed atomically elsewhere in this package; migrate it to the typed sync/atomic API (atomic.Int64 and friends) so the mix is impossible, or annotate pre-publication initialization with //wlanvet:allow <reason>",
			kind, v.Name())
	}
	return nil
}
