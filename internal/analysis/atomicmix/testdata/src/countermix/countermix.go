// Package countermix exercises the atomicmix rule: a variable touched
// through sync/atomic function calls must never also be read or
// written plainly anywhere in the package.
package countermix

import "sync/atomic"

// stats mixes: an atomic increment in one method, a plain reset in
// another.
type stats struct{ n int64 }

func (s *stats) bump() { atomic.AddInt64(&s.n, 1) }

func (s *stats) reset() {
	s.n = 0 // want `plain write of n, which is accessed atomically elsewhere`
}

// hits mixes at package level: atomic add here, plain read in report.
var hits int64

func observe() { atomic.AddInt64(&hits, 1) }

func report() int64 {
	return hits // want `plain read of hits, which is accessed atomically elsewhere`
}

// okstats is the repair: the typed API makes the mix impossible, so
// nothing is tracked and nothing is reported.
type okstats struct{ n atomic.Int64 }

func (s *okstats) bump()       { s.n.Add(1) }
func (s *okstats) read() int64 { return s.n.Load() }

// warm shows the sanctioned plain write: single-threaded construction
// before the value is published, under a reasoned allow.
type warm struct{ gen int64 }

func newWarm() *warm {
	w := &warm{}
	w.gen = 1 //wlanvet:allow single-threaded construction: w is unpublished until return, so no goroutine can observe the plain write
	return w
}

func (w *warm) tick() { atomic.AddInt64(&w.gen, 1) }
