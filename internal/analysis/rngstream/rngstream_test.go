package rngstream_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/rngstream"
)

func TestRngstream(t *testing.T) {
	analyzertest.Run(t, rngstream.Analyzer, "slotsim", "chaos")
}
