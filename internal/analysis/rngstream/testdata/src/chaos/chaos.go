// Package chaos (exempt by name) may mint raw streams: fault-injection
// jitter is outside the determinism contract, so rngstream stays
// silent here.
package chaos

import "math/rand"

// Jitter draws fault-injection noise from a throwaway stream.
func Jitter(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
