// Package sim is a stub of the repository's seed-substream helper:
// the one place rngstream permits raw math/rand construction, and the
// source of the RNG type the analyzer tracks across goroutine
// boundaries.
package sim

import "math/rand"

// RNG is the deterministic substream generator.
type RNG struct{ r *rand.Rand }

// NewRNG roots a stream at seed.
func NewRNG(seed int64) *RNG { return &RNG{r: rand.New(rand.NewSource(seed))} }

// Split derives an independent substream addressed by (label, idx).
func (g *RNG) Split(label string, idx int64) *RNG {
	return NewRNG(int64(len(label))<<32 ^ idx)
}

// Float64 draws from the stream.
func (g *RNG) Float64() float64 { return g.r.Float64() }
