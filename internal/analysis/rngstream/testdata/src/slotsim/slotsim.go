// Package slotsim (sim-critical by name) exercises the rngstream
// rules: streams derive through the substream helper, and neither an
// RNG nor a struct carrying one crosses a goroutine boundary.
package slotsim

import (
	"math/rand"

	"sim"
)

// freshRaw mints streams outside the helper: both constructor calls
// are findings.
func freshRaw(seed int64) *rand.Rand {
	src := rand.NewSource(seed) // want `rand.NewSource mints a stream outside the seed-substream discipline`
	return rand.New(src)        // want `rand.New mints a stream outside the seed-substream discipline`
}

// derived is the sanctioned path: root comes from the helper, draws
// come from addressed substreams.
func derived(root *sim.RNG) float64 {
	return root.Split("station", 3).Float64()
}

// leak captures a stream into a spawned closure: two goroutines would
// interleave draws from one stream, scheduler-dependently.
func leak(root *sim.RNG, out chan float64) {
	go func() { // want `goroutine closure \(go statement\) captures root, which is an RNG`
		out <- root.Float64()
	}()
}

// send ships a stream through a channel — the same boundary, worker-
// pool shaped.
func send(ch chan *sim.RNG, root *sim.RNG) {
	ch <- root // want `value sent on channel is an RNG`
}

// spawnArg hands the stream across the spawn as an argument; consume
// is additionally flagged at its declaration because the call graph
// marks it a goroutine entry point with an RNG parameter.
func spawnArg(root *sim.RNG) {
	go consume(root) // want `argument to spawned call is an RNG`
}

func consume(r *sim.RNG) { // want `consume runs as a goroutine entry point .* parameter "r" is an RNG`
	_ = r.Float64()
}

// station carries a stream in a field; capturing the struct captures
// the stream.
type station struct {
	id  int
	rng *sim.RNG
}

func carrier(st *station, out chan int) {
	go func() { // want `captures st, which carries an RNG in field rng`
		out <- st.id
	}()
}

// pooled shows the escape hatch: ownership transfer where the spawner
// provably never draws again.
func pooled(root *sim.RNG, out chan float64) {
	go func() { //wlanvet:allow ownership transfer: the spawner never touches root after this statement, so the goroutine owns the stream exclusively
		out <- root.Float64()
	}()
}
