// Package rngstream enforces RNG stream ownership in the sim-critical
// packages: every generator is derived through the seed-substream
// helper (sim.NewRNG at the root, RNG.Split/SplitInto below it), and
// no generator — nor any struct carrying one — crosses a goroutine
// boundary.
//
// The contract behind it is the repository's strongest one: same seed
// ⇒ bit-identical output at any parallelism, which PR 2 pinned for
// replication fan-out and the contention-domain kernel will have to
// re-earn per shard. Stream ownership is what makes that possible. A
// raw rand.New bypasses seed-addressing (its draws are not a function
// of the replication seed and stream index, so two shard layouts
// consume different substreams); a *rand.Rand handed to a goroutine is
// worse — two shards interleaving draws from one stream produce
// results that depend on the scheduler, the exact nondeterminism the
// determinism analyzer exists to make unrepresentable. The PR 4 arena
// work already threads one RNG per replication precisely to avoid
// this; the analyzer turns that convention into a gate.
//
// Three rules, all scoped to sim-critical packages:
//
//  1. rand.New / rand.NewSource (math/rand and v2) may appear only in
//     internal/sim itself, which implements the substream helper —
//     everywhere else streams come from NewRNG/Split/SplitInto;
//  2. no RNG-typed value (sim.RNG, sim.FloatBatch, anything from
//     math/rand) may be captured by a goroutine closure, passed to a
//     spawned call, or sent on a channel;
//  3. no struct whose fields (transitively, through named structs)
//     carry an RNG may cross those same boundaries, and a function the
//     call graph marks as a goroutine entry point may not take an RNG
//     parameter.
//
// The worker-pool arena handoff in scenario.Runner — one simulator
// (with its RNGs) owned by exactly one worker for the replication's
// duration — is the sanctioned ownership-transfer pattern: the arena
// is created inside the worker goroutine, so no RNG ever crosses the
// boundary. Sharing that is deliberate and externally serialized
// carries a reasoned //wlanvet:allow annotation.
package rngstream

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the RNG stream-ownership checker.
var Analyzer = &analysis.Analyzer{
	Name: "rngstream",
	Doc:  "RNGs in sim-critical code must come from the seed-substream helper and never cross a goroutine boundary",
	Run:  run,
}

// rawConstructors are the math/rand entry points that mint a stream
// outside the seed-substream discipline.
var rawConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.SimCriticalPkg(pass) {
		return nil
	}
	base := analysis.PkgBase(pass.Pkg.Path())
	info := pass.TypesInfo
	for _, file := range pass.Files {
		// Rule 1: raw constructors outside the helper package.
		if base != "sim" {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(info, call)
				if f == nil || f.Pkg() == nil {
					return true
				}
				if (f.Pkg().Path() == "math/rand" || f.Pkg().Path() == "math/rand/v2") && rawConstructors[f.Name()] {
					pass.Reportf(call.Pos(),
						"rand.%s mints a stream outside the seed-substream discipline; derive it with sim.NewRNG at the root and RNG.Split/SplitInto below, so draws are a function of (seed, stream index) at any shard count",
						f.Name())
				}
				return true
			})
		}
		// Rules 2 and 3: goroutine boundaries.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBoundaries(pass, fd)
			checkSpawnedDecl(pass, fd)
		}
	}
	return nil
}

// checkBoundaries inspects every goroutine boundary in fd for RNG
// values crossing it: captured by the closure, passed as a spawn
// argument, or sent on a channel.
func checkBoundaries(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	for _, b := range analysis.GoBoundaries(fd.Body) {
		for _, v := range analysis.FreeVars(info, b.Lit) {
			if why := rngCarrier(v.Type(), nil); why != "" {
				pass.Reportf(b.Pos,
					"goroutine closure (%s) captures %s, which %s; one goroutine must own a stream exclusively — Split a substream inside the goroutine instead",
					b.Kind, v.Name(), why)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if t := info.TypeOf(arg); t != nil {
					if why := rngCarrier(t, nil); why != "" {
						pass.Reportf(arg.Pos(),
							"argument to spawned call %s; an RNG must not flow across a goroutine boundary — derive a substream on the receiving side",
							why)
					}
				}
			}
		case *ast.SendStmt:
			if t := info.TypeOf(n.Value); t != nil {
				if why := rngCarrier(t, nil); why != "" {
					pass.Reportf(n.Value.Pos(),
						"value sent on channel %s; an RNG must not flow across a goroutine boundary — derive a substream on the receiving side",
						why)
				}
			}
		}
		return true
	})
}

// checkSpawnedDecl flags functions the module call graph marks as
// goroutine entry points whose signature receives an RNG — the
// interprocedural form of rule 2: the spawn site may be in another
// package entirely.
func checkSpawnedDecl(pass *analysis.Pass, fd *ast.FuncDecl) {
	if pass.Facts == nil || pass.Facts.CallGraph == nil {
		return
	}
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil || !pass.Facts.CallGraph.Spawned(fn) {
		return
	}
	sig := fn.Type().(*types.Signature)
	check := func(v *types.Var, role string) {
		if v == nil {
			return
		}
		if why := rngCarrier(v.Type(), nil); why != "" {
			pass.Reportf(fd.Pos(),
				"%s runs as a goroutine entry point (per the call graph) but its %s %q %s; the stream must be derived inside the goroutine, not handed across the spawn",
				fn.Name(), role, v.Name(), why)
		}
	}
	check(sig.Recv(), "receiver")
	for i := 0; i < sig.Params().Len(); i++ {
		check(sig.Params().At(i), "parameter")
	}
}

// rngCarrier reports why t carries an RNG: it is one, or a struct
// reachable from it (through pointers and named struct fields, depth
// bounded by the seen set) embeds one. Empty string = clean.
func rngCarrier(t types.Type, seen map[*types.Named]bool) string {
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if isRNG(t) {
		return "is an RNG (" + t.String() + ")"
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	if seen == nil {
		seen = map[*types.Named]bool{}
	}
	if seen[named] {
		return ""
	}
	seen[named] = true
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		for {
			if p, ok := ft.Underlying().(*types.Pointer); ok {
				ft = p.Elem()
				continue
			}
			break
		}
		if isRNG(ft) {
			return "carries an RNG in field " + st.Field(i).Name()
		}
		if inner, ok := ft.(*types.Named); ok {
			if why := rngCarrier(inner, seen); why != "" {
				return "carries an RNG through field " + st.Field(i).Name() + " (" + why + ")"
			}
		}
	}
	return ""
}

// isRNG reports whether t is a generator type: the repository's
// sim.RNG/FloatBatch, or anything named in math/rand or math/rand/v2.
func isRNG(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		return true
	}
	if analysis.PkgBase(obj.Pkg().Path()) == "sim" {
		switch obj.Name() {
		case "RNG", "FloatBatch":
			return true
		}
	}
	return false
}

// calleeFunc resolves a call to the package-level *types.Func it
// invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}
