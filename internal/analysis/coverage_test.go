package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// hotpathInventory is the agreed mapping between the //wlanvet:hotpath
// annotations and the runtime allocation guardrails: each group lists
// every annotated function in a package, and the guardrail tests that
// drive those paths at runtime. The test fails in both directions — a
// listed function missing its annotation, or an annotation on a
// function not listed here — so the static contract and the runtime
// contract cannot drift apart silently.
var hotpathInventory = map[string][]string{
	// TestSchedulerAfterStepZeroAlloc, TestSchedulerAfterArgStepZeroAlloc,
	// TestSchedulerCancelZeroAlloc (internal/sim/alloc_test.go).
	"../sim": {
		"After", "AfterArg", "At", "AtArg", "AtArgSeq", "Cancel", "Step",
		"TakeSeq", "alloc", "dequeue", "down", "enqueue", "peekLive",
		"peekMin", "pop", "push", "release", "schedule", "up",
	},
	// TestSlotLoopZeroAllocSteadyState, TestSlotLoopZeroAllocTraffic,
	// TestSlotLoopControllerSteadyAllocBound (internal/slotsim/alloc_test.go).
	"../slotsim": {
		"admitArrivals", "advance", "insert", "link", "minCounter",
		"observe", "redraw", "remove", "resume", "scan",
		"slotsUntilArrival", "takeExpired", "track", "untrack",
	},
	// TestPerFramePathZeroAllocSteadyState, ...PPersistent, ...Traffic,
	// TestControllerPathSteadyAllocBound (internal/eventsim/alloc_test.go).
	"../eventsim": {
		"ackBegin", "ackEnd", "apBusyEnd", "apBusyStart", "armCountdown",
		"arrival", "beaconEnd", "beaconTx", "broadcastControl", "clear",
		"ctsBegin", "ctsEnd", "disarm", "failTimeout", "freeTransmission",
		"launch", "newTransmission", "observeIdleGap", "onBusyEnd",
		"onBusyStart", "phaseFlip", "pop", "push", "rearm",
		"recordLatency", "reservedData", "scheduleArrival", "set",
		"startContention", "tryBeacon", "txBegin", "txComplete",
	},
}

// annotatedFuncs parses every non-test file in dir and returns the
// names of functions carrying the //wlanvet:hotpath directive.
func annotatedFuncs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && IsHotpath(fd) {
				names = append(names, fd.Name.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}

func TestHotpathAnnotationsMatchAllocGuardrails(t *testing.T) {
	for dir, want := range hotpathInventory {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			got := annotatedFuncs(t, dir)
			w := append([]string(nil), want...)
			sort.Strings(w)
			if strings.Join(got, ",") != strings.Join(w, ",") {
				t.Errorf("//wlanvet:hotpath functions in %s:\n got %v\nwant %v",
					dir, got, w)
			}
		})
	}
}
