package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive comment forms recognised by the driver:
//
//	//wlanvet:allow <reason>  — suppress diagnostics on this line and
//	                            the next; the reason is mandatory and
//	                            should name why the invariant holds
//	                            anyway (or why this use is outside it).
//	//wlanvet:hotpath         — marks the following function as part of
//	                            the zero-allocation contract checked by
//	                            the hotpath analyzer and the runtime
//	                            allocation guardrails.
const (
	allowPrefix   = "//wlanvet:allow"
	hotpathMarker = "//wlanvet:hotpath"
)

// Finding is one post-suppression diagnostic, resolved to a position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// PkgPath is the import path of the package the finding is in; it
	// is the primary sort key, so multi-package runs produce the same
	// order however the loader enumerated the patterns.
	PkgPath string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// allowSet records, per file, the lines covered by //wlanvet:allow
// directives.
type allowSet map[string]map[int]bool

// scanAllows collects allow directives from the package's comments.
// A directive suppresses diagnostics on its own line (trailing-comment
// style) and on the line below (directive-above style). Directives with
// no reason are themselves findings: a suppression that does not say
// why teaches the next reader nothing.
func scanAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Finding) {
	allows := allowSet{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				pos := fset.Position(c.Pos())
				if reason == "" {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "wlanvet",
						Message:  "//wlanvet:allow needs a reason: say why the invariant holds anyway",
					})
					continue
				}
				lines := allows[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					allows[pos.Filename] = lines
				}
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return allows, bad
}

// suppressed reports whether a finding at pos is covered by an allow
// directive.
func (a allowSet) suppressed(pos token.Position) bool {
	return a[pos.Filename][pos.Line]
}

// IsHotpath reports whether a function declaration carries the
// //wlanvet:hotpath directive in its doc comment.
func IsHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package, resolves //wlanvet:allow
// suppressions, and returns the surviving findings sorted by package
// path, then position — one aggregated result however many packages
// matched, so a multi-package invocation has a deterministic order and
// a single combined exit rather than first-package-wins. An analyzer
// error (a framework bug, not a finding) aborts the run.
//
// Before the per-package loop, Run builds the module-wide call graph
// over ALL loaded packages and shares it with every pass through
// Pass.Facts: the flow analyzers (goshare, rngstream, lockorder) are
// interprocedural and would be blind past a function boundary without
// it.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := &Facts{CallGraph: BuildCallGraph(pkgs)}
	var findings []Finding
	for _, pkg := range pkgs {
		allows, bad := scanAllows(pkg.Fset, pkg.Files)
		for i := range bad {
			bad[i].PkgPath = pkg.Path
		}
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			var diags []Diagnostic
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if allows.suppressed(pos) {
					continue
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message, PkgPath: pkg.Path})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
