// Package observerpurity enforces the metrics-as-pure-observers
// contract inside the sim-critical packages: simulation code may write
// instrumentation (Inc, Add, Set, Dec — one predictable atomic each)
// but may never read it back. A read — Counter.Value, Gauge.Value, a
// registry render — is the first step of instrumentation feeding into
// simulation control flow or emitted rows, which would make a
// metrics-enabled run diverge from a metrics-off run and break the
// bit-identical contract that TestMetricsDoNotChangeOutput pins.
//
// Reads belong to the scrape layer: registry GaugeFunc closures
// evaluated at render time, the wlan facade's Snapshot, the /metrics
// endpoint. The GaugeFunc bodies that live next to the sim packages
// (scenario.Metrics, sweep.Metrics deriving utilization and cache hit
// rate) are exactly the legitimate observer uses and carry
// //wlanvet:allow annotations.
package observerpurity

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the metrics-read checker.
var Analyzer = &analysis.Analyzer{
	Name: "observerpurity",
	Doc:  "flag reads of metrics values inside sim-critical packages; instrumentation must stay write-only there",
	Run:  run,
}

// readMethods are the metrics-package methods that expose accumulated
// values.
var readMethods = map[string]bool{
	"Value":           true,
	"WritePrometheus": true,
	"Handler":         true,
}

func run(pass *analysis.Pass) error {
	if !analysis.SimCriticalPkg(pass) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil {
				return true
			}
			if analysis.PkgBase(f.Pkg().Path()) != "metrics" || !readMethods[f.Name()] {
				return true
			}
			if f.Type().(*types.Signature).Recv() == nil {
				return true
			}
			pass.Reportf(call.Pos(),
				"metrics read %s.%s inside sim-critical code; instrumentation is a pure observer here — move the read to the scrape layer, or annotate a render-time observer with //wlanvet:allow <reason>",
				types.TypeString(f.Type().(*types.Signature).Recv().Type(), types.RelativeTo(pass.Pkg)),
				f.Name())
			return true
		})
	}
	return nil
}
