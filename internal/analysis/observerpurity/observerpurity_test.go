package observerpurity_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/observerpurity"
)

func TestObserverPurity(t *testing.T) {
	analyzertest.Run(t, observerpurity.Analyzer, "scenario")
}
