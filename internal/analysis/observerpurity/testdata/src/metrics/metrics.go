// Package metrics is a stub of the real internal/metrics package: the
// analyzer matches instrument types by package base name, so this
// sibling directory stands in for it in testdata.
package metrics

import "io"

type Counter struct{ v uint64 }

func (c *Counter) Inc()          { c.v++ }
func (c *Counter) Add(d uint64)  { c.v += d }
func (c *Counter) Value() uint64 { return c.v }

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64)  { g.v = v }
func (g *Gauge) Inc()         { g.v++ }
func (g *Gauge) Dec()         { g.v-- }
func (g *Gauge) Value() int64 { return g.v }

type Registry struct{}

func (r *Registry) WritePrometheus(w io.Writer) {}
