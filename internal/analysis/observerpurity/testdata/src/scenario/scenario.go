// Package scenario is observerpurity-analyzer testdata. Its directory
// name puts it under the sim-critical scope exactly like the real
// package; the sibling metrics directory stands in for internal/metrics.
package scenario

import (
	"io"

	"metrics"
)

type runner struct {
	replications *metrics.Counter
	inFlight     *metrics.Gauge
	reg          *metrics.Registry
}

// writes shows the legal direction: simulation code may bump
// instrumentation all it wants.
func (r *runner) writes() {
	r.replications.Inc()
	r.replications.Add(3)
	r.inFlight.Set(7)
	r.inFlight.Dec()
}

// reads shows the violation: a value read back from instrumentation is
// the first step of metrics feeding into simulation state.
func (r *runner) reads() uint64 {
	if r.inFlight.Value() > 0 { // want `metrics read \*metrics.Gauge.Value inside sim-critical code`
		return 0
	}
	return r.replications.Value() // want `metrics read \*metrics.Counter.Value inside sim-critical code`
}

// render shows that registry renders count as reads too.
func (r *runner) render(w io.Writer) {
	r.reg.WritePrometheus(w) // want `metrics read \*metrics.Registry.WritePrometheus inside sim-critical code`
}

// scrape shows the escape hatch: an annotated render-time observer.
func (r *runner) scrape() uint64 {
	//wlanvet:allow render-time observer: runs at scrape time, never inside a replication
	return r.replications.Value()
}
