// Call-graph construction: the interprocedural substrate the v2
// analyzers (goshare, rngstream, lockorder) stand on. Until now every
// wlanvet analyzer was single-function — fine for syntactic properties
// (a wall-clock call IS the bug), useless for flow properties, where
// the bug is a relationship between functions: a mutex held HERE while
// a callee three frames down locks ANOTHER one, an RNG created here
// and drawn from over there on a different goroutine.
//
// The graph is class-hierarchy-analysis (CHA) style, built from
// go/types alone so the framework stays std-only:
//
//   - a static call (package function, method on a concrete receiver)
//     contributes one edge;
//   - a call through an interface method contributes an edge to the
//     corresponding method of every type in the loaded package set
//     that implements the interface — sound over the loaded set,
//     deliberately over-approximate (CHA never prunes by what a value
//     can actually be);
//   - a call through a plain function value contributes no edge (the
//     loader has no SSA, so func-typed dataflow is invisible); the
//     analyzers that care treat indirect calls conservatively at the
//     call site instead.
//
// Function literals are attributed to their enclosing declaration:
// edges out of a closure body belong to the function that lexically
// contains it. What IS recorded separately is which functions are
// goroutine entry points — the callee of a `go` statement, or any
// closure/method value shipped somewhere it may be executed
// concurrently (sent on a channel, stored into a struct field) — and
// reachability from those entries, which is how "may run off the
// spawning goroutine" stops being a per-function guess.
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the module-wide CHA call graph over every package in one
// driver run, shared between analyzers through Pass.Facts.
type CallGraph struct {
	// callees maps a function to the set of functions it may call.
	callees map[*types.Func]map[*types.Func]bool
	// spawned is the set of goroutine entry points: functions that are
	// the callee of a `go` statement anywhere in the loaded set, or
	// whose closure was shipped across a concurrency boundary (channel
	// send / struct store of a func value, the worker-pool handoff
	// pattern).
	spawned map[*types.Func]bool
	// decls maps a function object to its syntax (only for functions
	// whose source is loaded — not for dependencies seen through export
	// data).
	decls map[*types.Func]*ast.FuncDecl
	// pkgOf maps a loaded function to its Package, so analyzers can
	// chase a callee into a sibling package's syntax.
	pkgOf map[*types.Func]*Package

	// concReach caches ConcurrentlyReachable.
	concReach map[*types.Func]bool
}

// Facts is the shared, whole-module analysis state computed once per
// driver run and handed to every Pass — the go/analysis pass.Facts
// idea collapsed to what the v2 analyzers need.
type Facts struct {
	// CallGraph is the module-wide call graph, nil only in tests that
	// construct a Pass by hand.
	CallGraph *CallGraph

	memo map[string]any
}

// Memo returns the value cached under key, building it on first use.
// It is how an analyzer attaches derived module-wide state (for
// example lockorder's per-function acquisition summaries) to one
// driver run instead of recomputing it for every package. The driver
// is single-goroutine per run, so no locking.
func (f *Facts) Memo(key string, build func() any) any {
	if f.memo == nil {
		f.memo = map[string]any{}
	}
	if v, ok := f.memo[key]; ok {
		return v
	}
	v := build()
	f.memo[key] = v
	return v
}

// BuildCallGraph constructs the CHA call graph for the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		callees:   map[*types.Func]map[*types.Func]bool{},
		spawned:   map[*types.Func]bool{},
		decls:     map[*types.Func]*ast.FuncDecl{},
		pkgOf:     map[*types.Func]*Package{},
		concReach: map[*types.Func]bool{},
	}
	methods := collectMethodSets(pkgs)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.decls[fn] = fd
				g.pkgOf[fn] = pkg
				g.addEdges(pkg, fn, fd.Body, methods)
			}
		}
	}
	return g
}

// concreteMethod is one (named type, method) pair for CHA dispatch.
type concreteMethod struct {
	typ *types.Named
	fn  *types.Func
}

// collectMethodSets indexes every method of every named type declared
// in the loaded packages by method name — the candidate set CHA
// resolves interface calls against.
func collectMethodSets(pkgs []*Package) map[string][]concreteMethod {
	out := map[string][]concreteMethod{}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				out[m.Name()] = append(out[m.Name()], concreteMethod{named, m})
			}
		}
	}
	return out
}

// addEdges walks one function body recording call edges and goroutine
// entry points. Closures are attributed to fn.
func (g *CallGraph) addEdges(pkg *Package, fn *types.Func, body ast.Node, methods map[string][]concreteMethod) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, callee := range g.resolve(pkg, n, methods) {
				g.addEdge(fn, callee)
			}
		case *ast.GoStmt:
			// The spawned function itself is an entry point; its edges
			// (if it is a loaded declaration or a literal attributed to
			// fn) are recorded by the surrounding walk.
			for _, callee := range g.resolve(pkg, n.Call, methods) {
				g.spawned[callee] = true
			}
			// `go func(){...}()` has no named callee: the closure body
			// belongs to fn, so fn's OWN accesses gain a concurrent
			// context. Recording fn as spawned would poison every
			// caller, so the goshare analyzer inspects GoStmt closures
			// syntactically instead; here we only mark named callees.
		case *ast.SendStmt:
			// A func value sent on a channel is the worker-pool handoff:
			// whoever receives it may run it on any goroutine. Mark the
			// named function (method values included) if one is visible.
			if f := g.funcValue(pkg, n.Value); f != nil {
				g.spawned[f] = true
			}
		}
		return true
	})
}

// funcValue resolves an expression used as a func VALUE (not called) to
// the named function it denotes, or nil for literals and locals.
func (g *CallGraph) funcValue(pkg *Package, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := pkg.TypesInfo.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pkg.TypesInfo.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// resolve returns the possible callees of one call expression: the
// static target, or the CHA candidate set for an interface method call.
func (g *CallGraph) resolve(pkg *Package, call *ast.CallExpr, methods map[string][]concreteMethod) []*types.Func {
	var id *ast.Ident
	var sel *ast.SelectorExpr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id, sel = fun.Sel, fun
	default:
		return nil
	}
	f, _ := pkg.TypesInfo.Uses[id].(*types.Func)
	if f == nil {
		return nil
	}
	// Interface dispatch: the selection's receiver is an interface, so
	// f is the abstract method. Resolve over every loaded type whose
	// method set satisfies the interface.
	if sel != nil {
		if s, ok := pkg.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				var out []*types.Func
				out = append(out, f) // keep the abstract target for identity
				for _, cm := range methods[f.Name()] {
					if implementsFor(cm.typ, iface) {
						out = append(out, cm.fn)
					}
				}
				return out
			}
		}
	}
	return []*types.Func{f}
}

// implementsFor reports whether the named type (or a pointer to it)
// satisfies iface.
func implementsFor(named *types.Named, iface *types.Interface) bool {
	if types.Implements(named, iface) {
		return true
	}
	return types.Implements(types.NewPointer(named), iface)
}

func (g *CallGraph) addEdge(from, to *types.Func) {
	set := g.callees[from]
	if set == nil {
		set = map[*types.Func]bool{}
		g.callees[from] = set
	}
	set[to] = true
}

// Callees returns fn's possible callees in deterministic order.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func {
	set := g.callees[fn]
	if len(set) == 0 {
		return nil
	}
	out := make([]*types.Func, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return funcKey(out[i]) < funcKey(out[j]) })
	return out
}

// funcKey is a stable, human-readable identity for ordering and
// diagnostics: "pkgpath.(Recv).Name" for methods, "pkgpath.Name" for
// functions.
func funcKey(f *types.Func) string {
	return f.FullName()
}

// Decl returns the loaded syntax for fn, or nil when fn comes from
// export data (a dependency outside the analyzed set).
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Functions returns every function with loaded syntax, sorted by
// FullName — the iteration order module-wide analyses (lockorder's
// summary pass) use so their derived state is deterministic.
func (g *CallGraph) Functions() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for f := range g.decls {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return funcKey(out[i]) < funcKey(out[j]) })
	return out
}

// PackageOf returns the loaded package declaring fn, or nil.
func (g *CallGraph) PackageOf(fn *types.Func) *Package { return g.pkgOf[fn] }

// Spawned reports whether fn is a direct goroutine entry point: the
// callee of some `go` statement, or a func value shipped across a
// channel/worker-pool boundary.
func (g *CallGraph) Spawned(fn *types.Func) bool { return g.spawned[fn] }

// ConcurrentlyReachable reports whether fn may execute off its caller's
// goroutine: it is a goroutine entry point, or reachable from one
// through call edges. Results are memoized; the graph must be fully
// built before the first query.
func (g *CallGraph) ConcurrentlyReachable(fn *types.Func) bool {
	if v, ok := g.concReach[fn]; ok {
		return v
	}
	// Compute the full reachable-from-spawned set once, on first query.
	seen := map[*types.Func]bool{}
	var stack []*types.Func
	for f := range g.spawned {
		if !seen[f] {
			seen[f] = true
			stack = append(stack, f)
		}
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for callee := range g.callees[f] {
			if !seen[callee] {
				seen[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	for f := range g.decls {
		g.concReach[f] = seen[f]
	}
	for f := range seen {
		g.concReach[f] = true
	}
	if v, ok := g.concReach[fn]; ok {
		return v
	}
	g.concReach[fn] = false
	return false
}

// Reachable returns the set of functions reachable from the given
// roots (inclusive) through call edges.
func (g *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for callee := range g.callees[f] {
			if !seen[callee] {
				seen[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return seen
}
