package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"testing"
)

// checkSrc parses and type-checks one source string as package path,
// resolving imports through the module's export data — the same
// pipeline the driver uses, minus the go-list pattern expansion.
func checkSrc(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: NewDepImporter(cwd, fset)}
	tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

// pkgFunc looks up a package-level function by name.
func pkgFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	f, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q in %s", name, pkg.Path)
	}
	return f
}

// method looks up a named type's method by name.
func method(t *testing.T, pkg *Package, typeName, methodName string) *types.Func {
	t.Helper()
	tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		t.Fatalf("no type %q in %s", typeName, pkg.Path)
	}
	named := tn.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == methodName {
			return m
		}
	}
	t.Fatalf("no method %s.%s", typeName, methodName)
	return nil
}

const cgSrc = `package cg

type runner interface{ Run() }

type fast struct{}

func (fast) Run() { shared() }

type slow struct{}

func (slow) Run() {}

func shared() {}

func drive(r runner) { r.Run() }

func spawner(ch chan func()) {
	go worker()
	ch <- task
}

func worker() { helper() }
func helper() {}
func task()   {}
func idle()   {}
`

func TestCallGraphStaticAndCHA(t *testing.T) {
	pkg := checkSrc(t, "cg", cgSrc)
	g := BuildCallGraph([]*Package{pkg})

	hasCallee := func(from, to *types.Func) bool {
		for _, c := range g.Callees(from) {
			if c == to {
				return true
			}
		}
		return false
	}

	fastRun := method(t, pkg, "fast", "Run")
	slowRun := method(t, pkg, "slow", "Run")
	shared := pkgFunc(t, pkg, "shared")
	drive := pkgFunc(t, pkg, "drive")

	if !hasCallee(fastRun, shared) {
		t.Errorf("fast.Run -> shared edge missing; callees = %v", g.Callees(fastRun))
	}
	// CHA: the interface call in drive dispatches to every implementing
	// type in the loaded set.
	if !hasCallee(drive, fastRun) || !hasCallee(drive, slowRun) {
		t.Errorf("drive's interface call should resolve to both Run methods; callees = %v", g.Callees(drive))
	}
	// Reachability follows the CHA edges: shared is reachable from drive
	// through fast.Run.
	if !g.Reachable(drive)[shared] {
		t.Errorf("shared should be reachable from drive through CHA dispatch")
	}
}

func TestCallGraphSpawnedAndConcurrentReachability(t *testing.T) {
	pkg := checkSrc(t, "cg", cgSrc)
	g := BuildCallGraph([]*Package{pkg})

	worker := pkgFunc(t, pkg, "worker")
	task := pkgFunc(t, pkg, "task")
	helper := pkgFunc(t, pkg, "helper")
	idle := pkgFunc(t, pkg, "idle")
	shared := pkgFunc(t, pkg, "shared")

	if !g.Spawned(worker) {
		t.Errorf("worker is the callee of a go statement; Spawned = false")
	}
	if !g.Spawned(task) {
		t.Errorf("task is sent on a channel as a func value; Spawned = false")
	}
	if g.Spawned(helper) || g.Spawned(idle) {
		t.Errorf("helper/idle are not spawn targets")
	}
	if !g.ConcurrentlyReachable(helper) {
		t.Errorf("helper is called by the spawned worker; ConcurrentlyReachable = false")
	}
	if g.ConcurrentlyReachable(idle) {
		t.Errorf("idle is unreachable from any spawn; ConcurrentlyReachable = true")
	}
	// shared is reachable only from fast.Run, which nothing spawns.
	if g.ConcurrentlyReachable(shared) {
		t.Errorf("shared is only sequentially reachable; ConcurrentlyReachable = true")
	}
}

func TestCallGraphFunctionsDeterministic(t *testing.T) {
	pkg := checkSrc(t, "cg", cgSrc)
	g := BuildCallGraph([]*Package{pkg})
	fns := g.Functions()
	if len(fns) == 0 {
		t.Fatalf("no functions in graph")
	}
	for i := 1; i < len(fns); i++ {
		if funcKey(fns[i-1]) > funcKey(fns[i]) {
			t.Errorf("Functions() out of order: %s > %s", funcKey(fns[i-1]), funcKey(fns[i]))
		}
	}
	if fd := g.Decl(pkgFunc(t, pkg, "worker")); fd == nil || fd.Name.Name != "worker" {
		t.Errorf("Decl(worker) = %v, want the worker declaration", fd)
	}
	if p := g.PackageOf(pkgFunc(t, pkg, "worker")); p != pkg {
		t.Errorf("PackageOf(worker) = %v, want the loaded package", p)
	}
}

func TestFactsMemo(t *testing.T) {
	f := &Facts{}
	builds := 0
	get := func() int {
		return f.Memo("k", func() any { builds++; return builds }).(int)
	}
	if got := get(); got != 1 {
		t.Fatalf("first Memo = %d, want 1", got)
	}
	if got := get(); got != 1 {
		t.Fatalf("second Memo = %d, want the cached 1", got)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want once", builds)
	}
}
