package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

const lkSrc = `package lk

import "sync"

func probe(tag string) {}

func earlyUnlock(mu *sync.Mutex, fail bool) {
	mu.Lock()
	if fail {
		mu.Unlock()
		probe("branch-after-unlock")
		return
	}
	probe("fallthrough-held")
	mu.Unlock()
	probe("after-unlock")
}

func deferred(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	probe("deferred-held")
}

func looped(mu *sync.Mutex, n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		probe("loop-held")
		mu.Unlock()
	}
	probe("after-loop")
}

func merged(mu, mu2 *sync.Mutex, fail bool) {
	if fail {
		mu.Lock()
	} else {
		mu.Lock()
		mu2.Lock()
	}
	probe("intersection")
}

func closures(mu *sync.Mutex) func() {
	mu.Lock()
	defer mu.Unlock()
	return func() {
		probe("inside-lit")
	}
}

type box struct{ mu sync.Mutex }

func (b *box) locked() {
	b.mu.Lock()
	probe("field-held")
	b.mu.Unlock()
}
`

// probeHeld walks fn's body and returns tag -> held keys at each probe
// call.
func probeHeld(t *testing.T, pkg *Package, fnName string, keyFn func(ast.Expr) string) map[string][]string {
	t.Helper()
	var fd *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == fnName {
				fd = x
			}
		}
	}
	if fd == nil {
		t.Fatalf("no function %q", fnName)
	}
	out := map[string][]string{}
	WalkLocks(pkg.TypesInfo, fd.Body, keyFn, nil, func(n ast.Node, held map[string]bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "probe" {
			return
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return
		}
		out[strings.Trim(lit.Value, `"`)] = HeldKeys(held)
	})
	return out
}

func TestWalkLocksStructured(t *testing.T) {
	pkg := checkSrc(t, "lk", lkSrc)
	want := map[string]map[string][]string{
		// The early-unlock branch terminates, so the fallthrough path
		// keeps the lock; the branch itself sees it released.
		"earlyUnlock": {
			"branch-after-unlock": {},
			"fallthrough-held":    {"mu"},
			"after-unlock":        {},
		},
		// A deferred Unlock keeps the mutex held to function end.
		"deferred": {"deferred-held": {"mu"}},
		// Loop bodies run zero or more times: held inside, discarded
		// after.
		"looped": {"loop-held": {"mu"}, "after-loop": {}},
		// Fallthrough branches merge by intersection.
		"merged": {"intersection": {"mu"}},
		// A function literal's body starts with an empty held set.
		"closures": {"inside-lit": {}},
	}
	for fn, probes := range want {
		got := probeHeld(t, pkg, fn, ExprKey)
		for tag, keys := range probes {
			g, ok := got[tag]
			if !ok {
				t.Errorf("%s: probe %q never visited", fn, tag)
				continue
			}
			if len(keys) == 0 {
				keys = nil
			}
			if len(g) == 0 {
				g = nil
			}
			if !reflect.DeepEqual(g, keys) {
				t.Errorf("%s: probe %q held = %v, want %v", fn, tag, g, keys)
			}
		}
	}
}

func TestMutexKeyFieldKeyedByType(t *testing.T) {
	pkg := checkSrc(t, "lk", lkSrc)
	keyFn := func(e ast.Expr) string { return MutexKey(pkg.TypesInfo, "lk.locked", e) }
	got := probeHeld(t, pkg, "locked", keyFn)
	want := []string{"(lk.box).mu"}
	if !reflect.DeepEqual(got["field-held"], want) {
		t.Errorf("field mutex key = %v, want %v (keyed by declaring type, not instance)", got["field-held"], want)
	}
}

const dfSrc = `package df

import (
	"sync"
	"context"
)

var global int

type carrier struct{ n int }

func shapes(ctx context.Context) {
	var mu sync.Mutex
	local := 0
	c := &carrier{}
	ch := make(chan int)
	go func(arg int) {
		inner := arg
		_ = inner
		_ = local
		_ = c
		_ = global
		_ = mu
		_ = ctx
		_ = ch
	}(1)
	for range []int{1} {
		ch <- 0
	}
}

func boundaries(jobs chan func()) {
	go func() {}()
	jobs <- func() {}
	f := func() {}
	f()
}
`

func TestFreeVarsExcludesOwnAndPackageScope(t *testing.T) {
	pkg := checkSrc(t, "df", dfSrc)
	var lit *ast.FuncLit
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok && lit == nil {
			lit, _ = g.Call.Fun.(*ast.FuncLit)
		}
		return true
	})
	if lit == nil {
		t.Fatalf("no go-statement literal found")
	}
	var names []string
	for _, v := range FreeVars(pkg.TypesInfo, lit) {
		names = append(names, v.Name())
	}
	// Sorted by name; excludes the literal's own param/locals (arg,
	// inner) and package-level state (global). The sync/context/chan
	// captures are still free variables — sharing-SAFETY is a separate
	// judgment (SharingSafeType), not FreeVars's.
	want := []string{"c", "ch", "ctx", "local", "mu"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("FreeVars = %v, want %v", names, want)
	}
}

func TestSharingSafeType(t *testing.T) {
	pkg := checkSrc(t, "df", dfSrc)
	scope := pkg.Types.Scope()
	shapes := scope.Lookup("shapes").(*types.Func).Scope()
	typeOf := func(name string) types.Type {
		if v := shapes.Lookup(name); v != nil {
			return v.Type()
		}
		t.Fatalf("no local %q", name)
		return nil
	}
	cases := []struct {
		name string
		want bool
	}{
		{"mu", true},                                   // sync.Mutex
		{"ctx", true},                                  // context.Context (interface anyway)
		{"ch", true},                                   // channel
		{"local", false} /* plain int */, {"c", false}, // *carrier
	}
	for _, c := range cases {
		if got := SharingSafeType(typeOf(c.name)); got != c.want {
			t.Errorf("SharingSafeType(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGoBoundariesKinds(t *testing.T) {
	pkg := checkSrc(t, "df", dfSrc)
	var fd *ast.FuncDecl
	for _, d := range pkg.Files[0].Decls {
		if x, ok := d.(*ast.FuncDecl); ok && x.Name.Name == "boundaries" {
			fd = x
		}
	}
	bs := GoBoundaries(fd.Body)
	var kinds []string
	for _, b := range bs {
		kinds = append(kinds, b.Kind)
	}
	// The go statement and the channel send cross a boundary; the
	// plain local closure does not.
	want := []string{"go statement", "channel send"}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("GoBoundaries kinds = %v, want %v", kinds, want)
	}
}
