package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestScanAllowsReasonless(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//wlanvet:allow
	_ = 0
}
`)
	allows, bad := scanAllows(fset, files)
	if len(bad) != 1 {
		t.Fatalf("want 1 reasonless-allow finding, got %d", len(bad))
	}
	if !strings.Contains(bad[0].Message, "needs a reason") {
		t.Errorf("message = %q, want it to demand a reason", bad[0].Message)
	}
	// A reasonless directive suppresses nothing.
	pos := bad[0].Pos
	pos.Line++
	if allows.suppressed(pos) {
		t.Errorf("reasonless allow at %v suppressed the next line", bad[0].Pos)
	}
}

func TestScanAllowsCoversOwnAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	//wlanvet:allow the invariant holds because of X
	_ = 0
	_ = 1 //wlanvet:allow trailing-comment style works too
}
`)
	allows, bad := scanAllows(fset, files)
	if len(bad) != 0 {
		t.Fatalf("unexpected reasonless findings: %v", bad)
	}
	check := func(line int, want bool) {
		t.Helper()
		got := allows.suppressed(token.Position{Filename: "x.go", Line: line})
		if got != want {
			t.Errorf("line %d suppressed = %v, want %v", line, got, want)
		}
	}
	check(4, true)  // the directive's own line
	check(5, true)  // the line below it
	check(6, true)  // trailing-comment directive suppresses its own line
	check(8, false) // unrelated lines stay live
}

func TestIsHotpath(t *testing.T) {
	_, files := parseOne(t, `package p

//wlanvet:hotpath
func hot() {}

// doc comment without the marker.
func cold() {}

func bare() {}
`)
	got := map[string]bool{}
	for _, d := range files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			got[fd.Name.Name] = IsHotpath(fd)
		}
	}
	want := map[string]bool{"hot": true, "cold": false, "bare": false}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("IsHotpath(%s) = %v, want %v", name, got[name], w)
		}
	}
}
