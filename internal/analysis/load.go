package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path ("repro/internal/slotsim").
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset maps token positions for Files (shared across a Load call).
	Fset *token.FileSet
	// Files is the parsed syntax of the package's non-test Go files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records the type of every expression in Files.
	TypesInfo *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	ImportMap  map[string]string
	Error      *listError
	DepsErrors []*listError
}

type listError struct {
	Pos string
	Err string
}

// goList runs `go list -e -export -deps -json` for the given patterns
// in dir and decodes the stream. -export makes the go command compile
// every listed package and report the build-cache path of its gc export
// data, which is how the type checker resolves imports without a module
// proxy: everything comes from the local toolchain and build cache.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&out)
	for {
		lp := &listPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// DepImporter resolves import paths to type-checked packages through
// the go command's export data, shelling out lazily for paths it has
// not seen. It is the importer behind both the wlanvet driver and the
// analyzertest harness (where testdata packages import std or module
// packages).
type DepImporter struct {
	dir  string
	fset *token.FileSet

	mu        sync.Mutex
	exports   map[string]string // import path -> export data file
	importMap map[string]string // source import -> resolved path
	gc        types.ImporterFrom
}

// NewDepImporter returns an importer rooted at module directory dir.
func NewDepImporter(dir string, fset *token.FileSet) *DepImporter {
	d := &DepImporter{
		dir:       dir,
		fset:      fset,
		exports:   map[string]string{},
		importMap: map[string]string{},
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, err := d.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	}
	d.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return d
}

// absorb records the export data locations from one go list run.
func (d *DepImporter) absorb(pkgs []*listPackage) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, lp := range pkgs {
		if lp.Export != "" {
			d.exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			d.importMap[from] = to
		}
	}
}

// exportFile returns the export data file for path, listing it (and
// its dependencies) on first use.
func (d *DepImporter) exportFile(path string) (string, error) {
	d.mu.Lock()
	if to, ok := d.importMap[path]; ok {
		path = to
	}
	f, ok := d.exports[path]
	d.mu.Unlock()
	if ok {
		return f, nil
	}
	pkgs, err := goList(d.dir, []string{path})
	if err != nil {
		return "", err
	}
	d.absorb(pkgs)
	d.mu.Lock()
	f, ok = d.exports[path]
	d.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("analysis: no export data for %q", path)
	}
	return f, nil
}

// Import implements types.Importer.
func (d *DepImporter) Import(path string) (*types.Package, error) {
	return d.ImportFrom(path, d.dir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (d *DepImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	return d.gc.ImportFrom(path, srcDir, mode)
}

// typeCheck parses and type-checks one package directory's files.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		var b strings.Builder
		for i, e := range typeErrs {
			if i == 8 {
				fmt.Fprintf(&b, "\n\t... and %d more", len(typeErrs)-i)
				break
			}
			fmt.Fprintf(&b, "\n\t%v", e)
		}
		return nil, fmt.Errorf("analysis: type errors in %s:%s", path, b.String())
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// CheckDir parses and type-checks every non-test .go file in dir as a
// package with the given import path, resolving imports through imp.
// It is the loading path for analyzertest testdata packages, which live
// outside the module's package graph (go list never sees a testdata
// directory) and so cannot come through Load.
func CheckDir(fset *token.FileSet, imp types.Importer, path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !e.IsDir() {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(names)
	return typeCheck(fset, imp, path, dir, names)
}

// Load resolves the go package patterns (for example "./...") relative
// to dir and returns the matched packages parsed and type-checked.
// Dependencies are resolved from gc export data, so only the matched
// packages themselves are re-checked from source. Test files are not
// loaded: the invariants the analyzers enforce are about simulation
// code, and tests are free to read wall clocks and wrap nothing.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewDepImporter(dir, fset)
	imp.absorb(listed)

	var pkgs []*Package
	var errs []string
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			errs = append(errs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error.Err))
			continue
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		p, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		pkgs = append(pkgs, p)
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return nil, fmt.Errorf("analysis: load failed:\n%s", strings.Join(errs, "\n"))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
