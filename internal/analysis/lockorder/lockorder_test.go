package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analyzertest.Run(t, lockorder.Analyzer, "locks")
}
