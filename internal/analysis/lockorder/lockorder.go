// Package lockorder builds the module-wide lock-acquisition-order
// graph and reports cycles — the static form of deadlock detection.
//
// The module's locking protocols are simple today precisely because
// each one is documented and two-level at most: scenario.Runner's
// batch loop takes mu for aggregation state and emitMu for progress
// emission but never one inside the other; svc.Coordinator's mu guards
// lease tables and is released before any RPC. Those protocols are
// prose. The moment the contention-domain kernel lands, domain locks
// acquired in topology order join the picture, and "we never hold A
// while taking B" stops being checkable by reading one function: the
// hold happens here, the take happens two calls down, in another
// package. This analyzer makes the protocol mechanical: an edge A→B
// whenever B is acquired while A is held — lexically within one
// function, or through a static call chain (via the module call graph
// and per-function acquisition summaries memoized on Pass.Facts) — and
// any strongly-connected component in that graph is a finding.
//
// Identity is per lock ORDER CLASS, not per instance: a field mutex is
// keyed by its declaring struct type ("(svc.Coordinator).mu"), so the
// discipline being checked is the type-level protocol. That is also
// the approximation's sharp edge — two distinct instances of one type
// locked in sequence (hand-over-hand locking) looks like a self-cycle.
// That pattern is absent from this module today and the planned kernel
// acquires domain locks strictly by domain index; when hand-over-hand
// arrives it carries a //wlanvet:allow <reason> at the second acquire.
//
// Bias: under-approximation everywhere the held set is uncertain (see
// the WalkLocks contract), and calls through interface values or func
// values contribute no summary edges — only static callees do. A
// reported cycle is therefore worth believing.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lock-ordering checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic across the module, counting acquisitions made through static call chains",
	Run:  run,
}

// edge is one witnessed ordering: to was acquired (directly or through
// a call chain) while from was held.
type edge struct {
	from, to string
	pos      token.Pos // the acquiring Lock call or the call expression
	pkg      string    // package path where witnessed
	fn       string    // human name of the witnessing function
	via      string    // "" for a direct acquire; callee name for call-induced
}

// lockGraph is the memoized module-wide result.
type lockGraph struct {
	edges []edge
}

func run(pass *analysis.Pass) error {
	if pass.Facts == nil || pass.Facts.CallGraph == nil {
		return nil
	}
	g := pass.Facts.Memo("lockorder.graph", func() any {
		return buildGraph(pass.Facts.CallGraph)
	}).(*lockGraph)
	reportCycles(pass, g)
	return nil
}

// buildGraph walks every loaded function once, collecting direct
// acquisition sets and ordering edges, then closes call-induced edges
// over the call graph.
func buildGraph(cg *analysis.CallGraph) *lockGraph {
	type callSite struct {
		callee *types.Func
		held   []string
		pos    token.Pos
		pkg    string
		fn     string
	}
	direct := map[*types.Func]map[string]bool{}
	var edges []edge
	var calls []callSite

	for _, fn := range cg.Functions() {
		pkg := cg.PackageOf(fn)
		fd := cg.Decl(fn)
		if pkg == nil || fd == nil || fd.Body == nil {
			continue
		}
		scope := pkg.Path + "." + fn.Name()
		keyFn := func(e ast.Expr) string { return analysis.MutexKey(pkg.TypesInfo, scope, e) }
		fnName := fn.Name()
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			fnName = fn.FullName()
		}
		acquires := direct[fn]
		if acquires == nil {
			acquires = map[string]bool{}
			direct[fn] = acquires
		}
		analysis.WalkLocks(pkg.TypesInfo, fd.Body, keyFn, nil, func(n ast.Node, held map[string]bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if recv, locking, ok := analysis.MutexRecv(pkg.TypesInfo, call); ok {
				if !locking {
					return
				}
				key := keyFn(recv)
				if key == "" {
					return
				}
				acquires[key] = true
				for _, h := range analysis.HeldKeys(held) {
					edges = append(edges, edge{from: h, to: key, pos: call.Pos(), pkg: pkg.Path, fn: fnName})
				}
				return
			}
			if len(held) == 0 {
				return
			}
			if callee := staticCallee(pkg.TypesInfo, call); callee != nil {
				calls = append(calls, callSite{callee: callee, held: analysis.HeldKeys(held), pos: call.Pos(), pkg: pkg.Path, fn: fnName})
			}
		})
	}

	// Close call-induced edges: a call made under lock inherits every
	// acquisition reachable from the callee through static call edges.
	transCache := map[*types.Func][]string{}
	trans := func(callee *types.Func) []string {
		if v, ok := transCache[callee]; ok {
			return v
		}
		set := map[string]bool{}
		for f := range cg.Reachable(callee) {
			for k := range direct[f] {
				set[k] = true
			}
		}
		out := analysis.HeldKeys(set)
		transCache[callee] = out
		return out
	}
	for _, cs := range calls {
		for _, to := range trans(cs.callee) {
			for _, from := range cs.held {
				edges = append(edges, edge{from: from, to: to, pos: cs.pos, pkg: cs.pkg, fn: cs.fn, via: cs.callee.Name()})
			}
		}
	}
	return &lockGraph{edges: edges}
}

// staticCallee resolves a call to a statically-known function or
// concrete method; interface and func-value calls return nil. The sync
// package itself is excluded (its calls are the lockset events).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() == "sync" {
		return nil
	}
	return f
}

// reportCycles finds strongly-connected components in the edge set and
// reports each cycle exactly once, in the package where its earliest
// witness edge lives — so multi-package cycles surface deterministically
// and only once per wlanvet run.
func reportCycles(pass *analysis.Pass, g *lockGraph) {
	adj := map[string]map[string]bool{}
	nodes := map[string]bool{}
	for _, e := range g.edges {
		nodes[e.from], nodes[e.to] = true, true
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	for _, scc := range tarjan(nodes, adj) {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var cyc []edge
		for _, e := range g.edges {
			if inSCC[e.from] && inSCC[e.to] && (len(scc) > 1 || e.from == e.to) {
				cyc = append(cyc, e)
			}
		}
		if len(cyc) == 0 {
			continue
		}
		sort.Slice(cyc, func(i, j int) bool {
			if cyc[i].pkg != cyc[j].pkg {
				return cyc[i].pkg < cyc[j].pkg
			}
			return cyc[i].pos < cyc[j].pos
		})
		witness := cyc[0]
		if witness.pkg != pass.Pkg.Path() {
			continue // another package's pass owns this cycle
		}
		var locks []string
		for _, n := range scc {
			locks = append(locks, analysis.ShortMutex(n))
		}
		sort.Strings(locks)
		var parts []string
		for _, e := range cyc {
			p := pass.Fset.Position(e.pos)
			step := fmt.Sprintf("%s acquires %s while holding %s", e.fn, analysis.ShortMutex(e.to), analysis.ShortMutex(e.from))
			if e.via != "" {
				step += " (through " + e.via + ")"
			}
			parts = append(parts, fmt.Sprintf("%s at %s:%d", step, filepath.Base(p.Filename), p.Line))
		}
		if len(scc) == 1 {
			pass.Reportf(witness.pos,
				"lock-order cycle: %s is re-acquired while already held — %s; a second acquisition of the same order class self-deadlocks (or, for two instances of one type, needs a documented hand-over-hand order and a //wlanvet:allow <reason>)",
				analysis.ShortMutex(scc[0]), strings.Join(parts, "; "))
		} else {
			pass.Reportf(witness.pos,
				"lock-order cycle among {%s}: %s; pick one acquisition order for these locks and hold to it on every path",
				strings.Join(locks, ", "), strings.Join(parts, "; "))
		}
	}
}

// tarjan returns the strongly-connected components of the lock graph,
// each sorted, in deterministic (sorted-root) order.
func tarjan(nodes map[string]bool, adj map[string]map[string]bool) [][]string {
	order := make([]string, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var out [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			out = append(out, scc)
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return out
}
