// Package locks exercises the lock-order analyzer: cycles in the
// acquisition graph — direct, interprocedural, and self — are
// findings; consistent orders and early-unlock branches are not.
package locks

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// abOrder and baOrder acquire the same two order classes in opposite
// directions: the two-lock deadlock. The cycle is reported once, at
// its earliest witness edge.
func abOrder(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want `lock-order cycle among`
	y.mu.Unlock()
	x.mu.Unlock()
}

func baOrder(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

// withLock and reverse build the same inversion interprocedurally:
// each holds its own lock while calling into a function that acquires
// the other. Neither function sees both locks; only the call graph
// does.
func (x *c) withLock(y *d) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.lockedOp() // want `lock-order cycle among`
}

func (y *d) lockedOp() {
	y.mu.Lock()
	y.mu.Unlock()
}

func (y *d) reverse(x *c) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.direct()
}

func (x *c) direct() {
	x.mu.Lock()
	x.mu.Unlock()
}

type e struct{ mu sync.Mutex }

// nested re-acquires the held order class through a callee: the
// self-deadlock.
func nested(x *e) {
	x.mu.Lock()
	helperLock(x) // want `re-acquired while already held`
	x.mu.Unlock()
}

func helperLock(x *e) {
	x.mu.Lock()
	x.mu.Unlock()
}

type f struct{ mu sync.Mutex }
type g struct{ mu sync.Mutex }

// fgOnce and fgTwice take f before g on every path: a consistent
// order, no finding — including through the deferred-unlock idiom.
func fgOnce(x *f, y *g) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func fgTwice(x *f, y *g) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

// branchy exercises the structured walker: the early unlock-and-return
// branch must not strip the lock from the fallthrough path, and the
// second Unlock pairs with the surviving hold.
func branchy(x *f, fail bool) int {
	x.mu.Lock()
	if fail {
		x.mu.Unlock()
		return 0
	}
	n := 1
	x.mu.Unlock()
	return n
}
