// Package analysis is the repository's static-analysis substrate: a
// self-contained reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a package loader and a
// driver, built entirely on the standard library and the go command.
//
// It exists because the simulator's four load-bearing invariants —
// bit-identical determinism, zero-allocation hot paths, metrics as pure
// observers, and int64 tick arithmetic — were until now enforced only
// dynamically, by goldens, allocation guardrails and fingerprint tests.
// A violation ships silently and is caught only when a scale tier or
// workload happens to exercise it (the PR 7 minCounter int truncation
// is the canonical incident). The wlanvet analyzers in the sibling
// packages make those invariants structural: they fail the build at the
// offending line instead of failing a golden three layers away.
//
// The API deliberately mirrors go/analysis so the analyzers can be
// lifted onto the real x/tools multichecker unchanged if the module
// ever takes on that dependency; the container this repository grows in
// has no module proxy access, so the framework itself stays std-only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name for diagnostics, a
// doc string, and the function applied to every loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and must be a valid
	// identifier.
	Name string
	// Doc is the analyzer's documentation: first line summary, then the
	// contract it enforces and the incident/test that motivated it.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// Pass is one (analyzer, package) unit of work: the syntax, type
// information and report sink for a single package.
type Pass struct {
	// Analyzer is the checker being applied.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files is the package's parsed syntax, in load order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Facts is the shared whole-module analysis state (the call graph),
	// computed once per driver run — the substrate that lets flow
	// analyzers see past function boundaries. Nil in hand-built passes.
	Facts *Facts

	report func(Diagnostic)
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the package and a
// message describing the invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// PkgBase returns the last element of a slash-separated package path:
// the analyzers scope themselves by path base (for example "slotsim",
// "sweep") so that analyzertest packages named after the real package
// fall under the same contract as the code they imitate.
func PkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// SimCritical is the set of package-path bases under the determinism
// contract: everything that executes between a seed and an emitted
// result row. Code here may not read wall clocks, global RNG state, or
// leak map iteration order into results (see the determinism, inttime
// and observerpurity analyzers).
//
// The wlan facade and the cmd binaries sit deliberately outside the
// set: run stamps and progress tickers are facts about one execution,
// not about the physics, and live in sidecars the golden diffs never
// see.
var SimCritical = map[string]bool{
	"sim":      true,
	"eventsim": true,
	"slotsim":  true,
	"scenario": true,
	"sweep":    true,
	"topo":     true,
	"traffic":  true,
	"mac":      true,
	// Pure functions of their inputs, all on the seed→row path: the
	// analytic models and scheduling policies, frame accounting, the
	// declarative scheme/stat/trace layers, and the experiment
	// orchestrators whose tables the paper figures are cut from.
	"core":       true,
	"experiment": true,
	"frame":      true,
	"model":      true,
	"scheme":     true,
	"stats":      true,
	"trace":      true,
}

// SimExempt names packages that sit deliberately OUTSIDE the
// determinism boundary even though they move sim-critical results
// around, each with the reason on record. The determinism, inttime and
// observerpurity analyzers must never cover these: their job is
// distributed-systems plumbing, where wall clocks, timers, network
// jitter and randomized backoff are the mechanism, not a leak. Nothing
// in them touches physics — they shuttle opaque, already-deterministic
// result bytes, and the byte-identity end-to-end tests in internal/svc
// enforce that dynamically.
//
// The map is consulted by SimCriticalPkg, so an exemption here wins
// even if the same base is ever added to SimCritical by mistake; the
// analysis tests additionally pin the two sets disjoint.
var SimExempt = map[string]string{
	"svc":      "coordinator/worker control plane: lease TTLs, heartbeat timers and retry backoff legitimately read wall clocks",
	"chaos":    "fault-injection transport: wall-clock-free but seeded-random by design, and its faults exist to disturb timing",
	"analysis": "the static-analysis substrate itself: it shells out to the go command and reads the build cache, and it never executes between a seed and a result row",
	"metrics":  "the observability registry: reading its own counters is its purpose (scrape, export, progress); observerpurity polices that sim code only ever writes to it",
}

// SimCriticalPkg reports whether the pass's package is inside the
// determinism boundary. An explicit SimExempt entry always wins.
func SimCriticalPkg(p *Pass) bool {
	base := PkgBase(p.Pkg.Path())
	if _, ok := SimExempt[base]; ok {
		return false
	}
	return SimCritical[base]
}
