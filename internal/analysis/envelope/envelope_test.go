package envelope_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/envelope"
)

func TestEnvelope(t *testing.T) {
	analyzertest.Run(t, envelope.Analyzer, "wire")
}
