// Package wire exercises the envelope exhaustiveness rules on a stub
// of the svc error envelope: the codeFor/httpStatus/sentinelFor trio
// is found by signature, and every sentinel and wire code must be
// explicitly mapped end to end.
package wire

import (
	"errors"
	"fmt"
	"net/http"
)

var (
	ErrExpired   = errors.New("wire: expired")
	ErrNoStatus  = errors.New("wire: no status")
	ErrNoRebuild = errors.New("wire: no rebuild")
	ErrAlias     = errors.New("wire: alias")   // want `sentinels ErrExpired and ErrAlias both map to wire code codeExpired`
	ErrMissing   = errors.New("wire: missing") // want `sentinel ErrMissing has no case in codeFor`
	//wlanvet:allow client-only sentinel: the server never emits it, so it has no wire code by design
	ErrClientOnly = errors.New("wire: client only")
)

const (
	codeExpired   = "expired"
	codeNoStatus  = "no_status"  // want `wire code codeNoStatus is emitted by codeFor but has no explicit case in httpStatus`
	codeNoRebuild = "no_rebuild" // want `wire code codeNoRebuild is emitted by codeFor but never reconstructed by sentinelFor`
	//wlanvet:allow deliberately opaque: the fallback code is retryable-by-status, never a typed identity
	codeFallback = "fallback"
)

func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrExpired):
		return codeExpired
	case errors.Is(err, ErrNoStatus):
		return codeNoStatus
	case errors.Is(err, ErrNoRebuild):
		return codeNoRebuild
	case errors.Is(err, ErrAlias):
		return codeExpired
	case errors.Is(err, ErrExpired): // want `sentinel ErrExpired is matched by two cases in codeFor`
		return codeExpired
	default:
		return codeFallback
	}
}

func httpStatus(code string) int {
	switch code {
	case codeExpired:
		return http.StatusGone
	case codeNoRebuild:
		return http.StatusTeapot
	case codeFallback:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func sentinelFor(code, message string) error {
	switch code {
	case codeExpired:
		return fmt.Errorf("%w: %s", ErrExpired, message)
	case codeNoStatus:
		return fmt.Errorf("%w: %s", ErrNoStatus, message)
	default:
		return errors.New(code + ": " + message)
	}
}
