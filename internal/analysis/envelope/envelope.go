// Package envelope checks the control plane's error envelope for
// exhaustiveness: every typed sentinel maps to exactly one wire code,
// every wire code to exactly one transport status, and every code the
// server can emit is reconstructed to a sentinel on the client side —
// so no error silently falls through a default arm into "internal
// 500" semantics it was never meant to have.
//
// The svc wire contract (proto.go) is three total functions:
//
//	codeFor:     error  -> wire code   (server, errors.Is switch)
//	httpStatus:  code   -> HTTP status (server)
//	sentinelFor: code   -> sentinel    (client, errors.Is works cross-network)
//
// Each is a switch, and Go switches don't have exhaustiveness checks —
// add a sentinel and forget one arm and the failure is silent: the new
// error travels as retryable "internal", a worker retries a terminal
// condition forever, and the chaos harness reads it as coordinator
// flakiness. PR 9's lease-reissue work grew exactly this surface
// (ErrCampaignFailed, quarantine) and every addition was a manual
// three-file audit. This analyzer does the audit.
//
// The functions are identified by signature, not name — error→string,
// string→int, string(,string)→error among the declarations of any
// package that has all three — so the check follows the pattern, not
// the package. Rules:
//
//  1. every package-level error sentinel (var Err…/err… of type error)
//     is matched by errors.Is in some case of the error→code function;
//  2. no sentinel is matched in two cases, and no two sentinels share
//     a wire code (the mapping must stay bijective);
//  3. every code the error→code function returns has an EXPLICIT case
//     in the code→status function — relying on its default arm is the
//     silent-fall-through this analyzer exists to reject;
//  4. every such code likewise has an explicit reconstruction case in
//     the code→sentinel function.
//
// A sentinel or code deliberately outside the envelope — a client-only
// sentinel the server never emits, a code whose client-side identity
// is intentionally opaque — carries //wlanvet:allow <reason> at its
// declaration.
package envelope

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the error-envelope exhaustiveness checker.
var Analyzer = &analysis.Analyzer{
	Name: "envelope",
	Doc:  "error sentinels, wire codes and HTTP statuses must map 1:1 with no default-arm fall-through",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Locate the envelope trio by signature.
	var errToCode, codeToStatus, codeToErr *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			sig := fn.Type().(*types.Signature)
			switch {
			case matches(sig, []string{"error"}, []string{"string"}):
				errToCode = fd
			case matches(sig, []string{"string"}, []string{"int"}):
				codeToStatus = fd
			case matches(sig, []string{"string"}, []string{"error"}) ||
				matches(sig, []string{"string", "string"}, []string{"error"}):
				codeToErr = fd
			}
		}
	}
	if errToCode == nil || codeToStatus == nil || codeToErr == nil {
		return nil // not an envelope package
	}

	sentinelCase := map[*types.Var][]ast.Node{} // sentinel -> case clauses matching it
	codeBySentinel := map[*types.Var]*types.Const{}
	produced := map[*types.Const]bool{} // codes errToCode can return
	ast.Inspect(errToCode.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		var caseSentinels []*types.Var
		for _, cond := range cc.List {
			ast.Inspect(cond, func(m ast.Node) bool {
				if v := sentinelArg(info, m); v != nil {
					caseSentinels = append(caseSentinels, v)
				}
				return true
			})
		}
		for _, v := range caseSentinels {
			sentinelCase[v] = append(sentinelCase[v], cc)
		}
		for _, stmt := range cc.Body {
			ret, ok := stmt.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			if c := constOf(info, ret.Results[0]); c != nil {
				produced[c] = true
				for _, v := range caseSentinels {
					if prev, ok := codeBySentinel[v]; ok && prev != c {
						pass.Reportf(cc.Pos(), "sentinel %s maps to two wire codes (%s and %s); the envelope mapping must stay a function", v.Name(), prev.Name(), c.Name())
					}
					codeBySentinel[v] = c
				}
			}
		}
		return true
	})

	// Rule 1: every package-level error sentinel is matched somewhere.
	// Rule 2a: none is matched twice.
	scope := pass.Pkg.Scope()
	var sentinels []*types.Var
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !isErrorType(v.Type()) {
			continue
		}
		sentinels = append(sentinels, v)
	}
	sort.Slice(sentinels, func(i, j int) bool { return sentinels[i].Pos() < sentinels[j].Pos() })
	for _, v := range sentinels {
		switch n := len(sentinelCase[v]); {
		case n == 0:
			pass.Reportf(v.Pos(),
				"sentinel %s has no case in %s: it will fall into the default arm and travel with semantics it was never assigned; add a case (and a wire code) or annotate a deliberately out-of-envelope sentinel with //wlanvet:allow <reason>",
				v.Name(), errToCode.Name.Name)
		case n > 1:
			pass.Reportf(sentinelCase[v][1].Pos(),
				"sentinel %s is matched by two cases in %s; only the first can ever fire", v.Name(), errToCode.Name.Name)
		}
	}
	// Rule 2b: no two sentinels share a code.
	codeUsers := map[*types.Const][]*types.Var{}
	for _, v := range sentinels {
		if c := codeBySentinel[v]; c != nil {
			codeUsers[c] = append(codeUsers[c], v)
		}
	}
	for _, v := range sentinels {
		c := codeBySentinel[v]
		if c == nil {
			continue
		}
		if users := codeUsers[c]; len(users) > 1 && users[0] != v {
			pass.Reportf(v.Pos(),
				"sentinels %s and %s both map to wire code %s; the client cannot reconstruct two identities from one code",
				users[0].Name(), v.Name(), c.Name())
		}
	}
	// The default arm's code (returned outside any case) is also a
	// produced code and must satisfy rules 3 and 4.
	ast.Inspect(errToCode.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if c := constOf(info, ret.Results[0]); c != nil {
			produced[c] = true
		}
		return true
	})

	// Rules 3 and 4: explicit arms downstream for every produced code.
	statusCases := caseConsts(info, codeToStatus)
	rebuildCases := caseConsts(info, codeToErr)
	var codes []*types.Const
	for c := range produced {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i].Pos() < codes[j].Pos() })
	for _, c := range codes {
		if !statusCases[c] {
			pass.Reportf(c.Pos(),
				"wire code %s is emitted by %s but has no explicit case in %s: it rides the default arm's status, which silently rebinds if the default changes; add an explicit case",
				c.Name(), errToCode.Name.Name, codeToStatus.Name.Name)
		}
		if !rebuildCases[c] {
			pass.Reportf(c.Pos(),
				"wire code %s is emitted by %s but never reconstructed by %s: clients cannot errors.Is on it; add a case or annotate a deliberately opaque code with //wlanvet:allow <reason>",
				c.Name(), errToCode.Name.Name, codeToErr.Name.Name)
		}
	}
	return nil
}

// matches reports whether sig's parameter and result types (by
// types.Type.String) equal the given lists.
func matches(sig *types.Signature, params, results []string) bool {
	if sig.Params().Len() != len(params) || sig.Results().Len() != len(results) {
		return false
	}
	for i, want := range params {
		if sig.Params().At(i).Type().String() != want {
			return false
		}
	}
	for i, want := range results {
		if sig.Results().At(i).Type().String() != want {
			return false
		}
	}
	return true
}

// sentinelArg returns the package-level error variable passed as the
// target of an errors.Is call, or nil.
func sentinelArg(info *types.Info, n ast.Node) *types.Var {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "errors" || f.Name() != "Is" {
		return nil
	}
	id, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// caseConsts collects the package-level constants appearing in fd's
// case-clause expressions.
func caseConsts(info *types.Info, fd *ast.FuncDecl) map[*types.Const]bool {
	out := map[*types.Const]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if c := constOf(info, e); c != nil {
				out[c] = true
			}
		}
		return true
	})
	return out
}

// constOf resolves an expression to the package-level constant it
// names, or nil.
func constOf(info *types.Info, e ast.Expr) *types.Const {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	return c
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
