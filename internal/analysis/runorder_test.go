package analysis

import (
	"reflect"
	"testing"
)

// TestRunOrdersAcrossPackages pins the multi-package contract: however
// the loader enumerated the patterns, Run returns ONE aggregated
// finding list sorted by package path first, then position — so a
// two-pattern wlanvet invocation and its reversal print byte-identical
// reports (and -json output is schema-stable for CI diffing).
func TestRunOrdersAcrossPackages(t *testing.T) {
	marker := &Analyzer{
		Name: "marker",
		Doc:  "reports every file's package clause",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Name.Pos(), "seen %s", p.Pkg.Path())
			}
			return nil
		},
	}
	late := checkSrc(t, "zz/late", "package late\n")
	early := checkSrc(t, "aa/early", "package early\n")

	paths := func(fs []Finding) []string {
		var out []string
		for _, f := range fs {
			out = append(out, f.PkgPath)
		}
		return out
	}

	fwd, err := Run([]*Package{early, late}, []*Analyzer{marker})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rev, err := Run([]*Package{late, early}, []*Analyzer{marker})
	if err != nil {
		t.Fatalf("Run (reversed): %v", err)
	}
	want := []string{"aa/early", "zz/late"}
	if got := paths(fwd); !reflect.DeepEqual(got, want) {
		t.Errorf("findings ordered %v, want %v (package path is the primary key)", got, want)
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Errorf("load order leaked into the report:\n forward: %v\nreversed: %v", fwd, rev)
	}
}
