package analysis

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// internalPackageDirs enumerates every directory under internal/ that
// holds Go source, as internal-relative slash paths ("svc/chaos").
// Testdata trees are fixtures with deliberately seeded violations, not
// packages the module builds, so they are skipped.
func internalPackageDirs(t *testing.T) []string {
	t.Helper()
	root, err := filepath.Abs("..") // internal/analysis -> internal
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	seen := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		seen[filepath.ToSlash(rel)] = true
		return nil
	})
	if err != nil {
		t.Fatalf("walk internal/: %v", err)
	}
	var dirs []string
	for d := range seen {
		dirs = append(dirs, d)
	}
	return dirs
}

// TestSimClassificationCoversInternal is the drift gate for the
// determinism boundary: every package under internal/ must be
// explicitly inside (SimCritical) or outside (SimExempt, with a
// reason), so adding a package without deciding its contract fails
// here instead of silently escaping the determinism/inttime/
// observerpurity analyzers. Subpackages of an exempt subtree inherit
// the parent's exemption (SimCriticalPkg already treats them as
// non-critical); subpackages of a critical package do NOT inherit and
// must be classified on their own.
func TestSimClassificationCoversInternal(t *testing.T) {
	for _, dir := range internalPackageDirs(t) {
		parts := strings.Split(dir, "/")
		base := parts[len(parts)-1]
		if SimCritical[base] {
			continue
		}
		if _, ok := SimExempt[base]; ok {
			continue
		}
		exemptAncestor := false
		for _, p := range parts[:len(parts)-1] {
			if _, ok := SimExempt[p]; ok {
				exemptAncestor = true
				break
			}
		}
		if exemptAncestor {
			continue
		}
		t.Errorf("internal/%s is unclassified: add %q to analysis.SimCritical or to analysis.SimExempt with a reason (is it on the seed→row path or not?)", dir, base)
	}
}

// TestSimClassificationDisjointAndLive pins the two sets disjoint (an
// SimExempt entry would silently win via SimCriticalPkg, hiding the
// conflict) and free of stale entries that no longer name a package.
func TestSimClassificationDisjointAndLive(t *testing.T) {
	bases := map[string]bool{}
	for _, dir := range internalPackageDirs(t) {
		bases[PkgBase(dir)] = true
	}
	for base := range SimCritical {
		if _, ok := SimExempt[base]; ok {
			t.Errorf("%q is in both SimCritical and SimExempt; the exemption would win silently — pick one", base)
		}
		if !bases[base] {
			t.Errorf("SimCritical[%q] names no package under internal/ — stale entry?", base)
		}
	}
	for base, reason := range SimExempt {
		if strings.TrimSpace(reason) == "" {
			t.Errorf("SimExempt[%q] has no reason; exemptions must say why", base)
		}
		if !bases[base] {
			t.Errorf("SimExempt[%q] names no package under internal/ — stale entry?", base)
		}
	}
}
