// Package workpool exercises the goshare discipline: variables shared
// with a spawned goroutine are mutex-guarded, atomic, or never written
// after the spawn; loop variables are handed off explicitly.
package workpool

import (
	"sync"
	"sync/atomic"
)

// unguarded writes a captured variable from both sides of a spawn with
// no mutex anywhere: the canonical race.
func unguarded() int {
	counter := 0
	done := make(chan bool)
	go func() {
		counter++ // want `counter is written while shared with the goroutine spawned`
		done <- true
	}()
	counter++
	<-done
	return counter
}

// guarded is the sanctioned shape: one mutex at every concurrent
// access, and the post-Wait read is sequential again.
func guarded() int {
	var mu sync.Mutex
	counter := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		counter++
		mu.Unlock()
	}()
	mu.Lock()
	counter++
	mu.Unlock()
	wg.Wait()
	return counter // after the join barrier: no lock needed
}

// initThenRead writes only before the spawn — initialization, not
// sharing.
func initThenRead() int {
	cfg := 7
	cfg *= 2
	ch := make(chan int)
	go func() { ch <- cfg }()
	return <-ch
}

// loopCapture spawns a closure over the iteration variable instead of
// handing the value off explicitly.
func loopCapture() {
	for i := 0; i < 4; i++ {
		go func() { // want `goroutine closure captures loop variable i`
			_ = i
		}()
	}
}

// rebind is the repository's handoff convention: the iteration value is
// rebound beside the spawn, so the captured variable is loop-local.
func rebind(jobs chan func()) {
	for i := 0; i < 4; i++ {
		i := i
		jobs <- func() { _ = i }
	}
}

// fixpoint mirrors scenario.Runner's process closure: a local closure
// referenced from a channel-sent literal runs on the worker goroutine,
// so its accesses are concurrent — and guarded here.
func fixpoint(jobs chan func()) func() int {
	var mu sync.Mutex
	total := 0
	process := func(n int) {
		mu.Lock()
		total += n
		mu.Unlock()
	}
	jobs <- func() { process(1) }
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return total
	}
}

// mixed combines an atomic add on the goroutine side with a plain
// increment on the spawner side.
func mixed() int64 {
	var n int64
	done := make(chan bool)
	go func() {
		atomic.AddInt64(&n, 1)
		done <- true
	}()
	n++ // want `mixed atomic and plain access to n`
	<-done
	return n
}

// allowed demonstrates the escape hatch: the channel receive below the
// write is a happens-before edge the lexical analysis cannot see.
func allowed() bool {
	flag := false
	done := make(chan bool)
	go func() {
		flag = true //wlanvet:allow handshake: the done receive below happens-after this write, so the spawner read is sequential
		done <- true
	}()
	<-done
	return flag
}
