// Package goshare enforces the goroutine-shared-state discipline the
// contention-domain parallel kernel will be held to: every variable
// that crosses a goroutine boundary must be sync-guarded (one mutex
// held at every concurrent access site), atomic, or never written
// after the spawn. The discipline exists in prose today — the comment
// block above scenario.Runner.RunBatchFunc's mu/emitMu/failed triple —
// and a sharded scheduler kernel is exactly the place where prose
// stops scaling: a plain write racing a shard's read is a silent
// nondeterminism, caught (if at all) by a golden three layers away, or
// by -race only on the interleaving the test happened to hit.
//
// A goroutine boundary is a `go` statement's closure or a function
// literal sent on a channel — the worker-pool handoff pattern
// (scenario.Runner's pool.jobs, wlansvc's lease loop). A local closure
// referenced from inside a boundary closure runs on that goroutine
// too, transitively (the Runner's process closure), so its body is
// analyzed as concurrent as well.
//
// For each variable captured by a concurrent closure the analyzer
// classifies every access in the enclosing function — read or write,
// atomic (a sync/atomic call on its address) or plain, and the set of
// mutexes lexically held at the site — then requires one of:
//
//   - read-only after spawn: writes before the first (loop-adjusted)
//     spawn point are initialization, and accesses after a
//     sync.WaitGroup.Wait() join barrier are sequential again;
//   - every concurrent access atomic — mixing atomic and plain access
//     to the same variable is itself a finding (the plain side tears);
//   - one common mutex held at every concurrent access site.
//
// Loop-variable capture into a goroutine closure is also a finding:
// per-iteration loop semantics (Go ≥ 1.22) make it memory-safe, but
// the repository's handoff convention is explicit — pass the value as
// an argument or rebind it next to the spawn — so the reader never has
// to know which language version's scoping rules apply.
//
// Escape hatches are the usual reasoned //wlanvet:allow annotations,
// for sharing that is deliberate and protected by something the
// lexical analysis cannot see (a channel handshake, a Once, an
// external happens-before edge).
package goshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the goroutine-shared-state checker.
var Analyzer = &analysis.Analyzer{
	Name: "goshare",
	Doc:  "goroutine-shared variables must be mutex-guarded, atomic, or never written after spawn",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// access is one classified use of a shared variable.
type access struct {
	id     *ast.Ident
	write  bool
	atomic bool
	lit    *ast.FuncLit // innermost concurrent container, nil = spawner code
	held   []string     // mutex keys lexically held at the site
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	boundaries := analysis.GoBoundaries(fd.Body)
	if len(boundaries) == 0 {
		return
	}
	info := pass.TypesInfo

	// Concurrent containers: the boundary literals, plus local closures
	// referenced from inside one (they run on the spawned goroutine),
	// to a fixpoint.
	conc := map[*ast.FuncLit]bool{}
	for _, b := range boundaries {
		conc[b.Lit] = true
	}
	localLits := localFuncLits(info, fd.Body)
	for changed := true; changed; {
		changed = false
		for v, lit := range localLits {
			if conc[lit] {
				continue
			}
			for cl := range conc {
				if cl != lit && usesVar(info, cl, v) {
					conc[lit] = true
					changed = true
					break
				}
			}
		}
	}

	loops := collectLoops(fd.Body)
	loopVars := collectLoopVars(info, fd.Body)

	// Loop-variable capture into a spawned closure.
	for _, b := range boundaries {
		for _, v := range analysis.FreeVars(info, b.Lit) {
			if loop, ok := loopVars[v]; ok && loop.Pos() <= b.Pos && b.Pos <= loop.End() {
				pass.Reportf(b.Pos,
					"goroutine closure captures loop variable %s; pass the iteration value as an argument or rebind it beside the spawn so the handoff is explicit",
					v.Name())
			}
		}
	}

	// Candidate variables: everything a concurrent closure captures
	// that is not sharing-safe by type. Loop variables are excluded —
	// the capture rule above owns them, and one finding per bug is the
	// contract.
	candidates := map[*types.Var]bool{}
	for lit := range conc {
		for _, v := range analysis.FreeVars(info, lit) {
			if _, isLoop := loopVars[v]; isLoop {
				continue
			}
			if !analysis.SharingSafeType(v.Type()) {
				candidates[v] = true
			}
		}
	}
	if len(candidates) == 0 {
		return
	}

	// The concurrent window opens at the first spawn — widened to the
	// start of any loop enclosing it, since a spawn in a loop repeats.
	windowStart := token.Pos(-1)
	for _, b := range boundaries {
		start := b.Pos
		for _, l := range loops {
			if l.Pos() <= b.Pos && b.Pos <= l.End() && l.Pos() < start {
				start = l.Pos()
			}
		}
		if windowStart < 0 || start < windowStart {
			windowStart = start
		}
	}
	firstSpawn := pass.Fset.Position(windowStart)

	// Join barriers: a sync.WaitGroup.Wait in spawner code makes later
	// spawner accesses sequential again.
	waits := waitGroupWaits(info, fd.Body, conc)

	atomics := atomicIdents(info, fd.Body)
	writes := writeIdents(fd.Body, atomics)
	held := heldSets(info, fd, conc)

	// Collect and classify every access to a candidate variable.
	byVar := map[*types.Var][]access{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !candidates[v] {
			return true
		}
		byVar[v] = append(byVar[v], access{
			id:     id,
			write:  writes[id],
			atomic: atomics[id],
			lit:    innermostConc(conc, id.Pos()),
			held:   held[id],
		})
		return true
	})

	vars := make([]*types.Var, 0, len(byVar))
	for v := range byVar {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })

	for _, v := range vars {
		checkVar(pass, v, byVar[v], windowStart, waits, firstSpawn)
	}
}

// checkVar applies the sharing discipline to one captured variable.
func checkVar(pass *analysis.Pass, v *types.Var, accs []access, windowStart token.Pos, waits []token.Pos, firstSpawn token.Position) {
	var concAccs []access
	for _, a := range accs {
		if a.lit != nil {
			concAccs = append(concAccs, a)
			continue
		}
		// Spawner-side access: concurrent only inside the window and
		// before a join barrier.
		if a.id.Pos() < windowStart {
			continue
		}
		joined := false
		for _, w := range waits {
			if w > windowStart && w < a.id.Pos() {
				joined = true
				break
			}
		}
		if !joined {
			concAccs = append(concAccs, a)
		}
	}
	anyWrite := false
	for _, a := range concAccs {
		if a.write {
			anyWrite = true
			break
		}
	}
	if !anyWrite {
		return // read-only sharing (or initialization-before-spawn) is fine
	}
	var atomicAccs, plainAccs []access
	for _, a := range concAccs {
		if a.atomic {
			atomicAccs = append(atomicAccs, a)
		} else {
			plainAccs = append(plainAccs, a)
		}
	}
	if len(atomicAccs) > 0 && len(plainAccs) > 0 {
		p := plainAccs[0]
		pass.Reportf(p.id.Pos(),
			"mixed atomic and plain access to %s, which is shared with the goroutine spawned at %s:%d; every concurrent access must go through sync/atomic once any does",
			v.Name(), shortFile(firstSpawn.Filename), firstSpawn.Line)
		return
	}
	if len(plainAccs) == 0 {
		return // uniformly atomic
	}
	// All plain: demand one mutex held at every concurrent access.
	common := map[string]bool{}
	for _, k := range plainAccs[0].held {
		common[k] = true
	}
	for _, a := range plainAccs[1:] {
		next := map[string]bool{}
		for _, k := range a.held {
			if common[k] {
				next[k] = true
			}
		}
		common = next
	}
	if len(common) > 0 {
		return
	}
	// Report at the first unguarded concurrent write (the side that
	// tears), falling back to the first concurrent access.
	site := plainAccs[0]
	for _, a := range plainAccs {
		if a.write && len(a.held) == 0 {
			site = a
			break
		}
	}
	pass.Reportf(site.id.Pos(),
		"%s is written while shared with the goroutine spawned at %s:%d without a consistently held mutex; hold one mutex at every access, use sync/atomic, or stop writing after spawn (//wlanvet:allow <reason> if an external happens-before edge protects it)",
		v.Name(), shortFile(firstSpawn.Filename), firstSpawn.Line)
}

// localFuncLits maps local variables to the function literals assigned
// to them (process := func(...){...}), the pattern by which a closure's
// body ends up running on a spawned goroutine without being the spawn
// operand itself.
func localFuncLits(info *types.Info, body ast.Node) map[*types.Var]*ast.FuncLit {
	out := map[*types.Var]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := info.Defs[id].(*types.Var); ok {
				out[v] = lit
			} else if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = lit
			}
		}
		return true
	})
	return out
}

// usesVar reports whether lit's body references v.
func usesVar(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// collectLoops returns every for/range statement in body.
func collectLoops(body ast.Node) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, n.(ast.Stmt))
		}
		return true
	})
	return out
}

// collectLoopVars maps iteration variables to their loop statement.
func collectLoopVars(info *types.Info, body ast.Node) map[*types.Var]ast.Stmt {
	out := map[*types.Var]ast.Stmt{}
	add := func(e ast.Expr, loop ast.Stmt) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				out[v] = loop
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				add(n.Key, n)
				add(n.Value, n)
			}
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, l := range init.Lhs {
					add(l, n)
				}
			}
		}
		return true
	})
	return out
}

// waitGroupWaits returns the positions of sync.WaitGroup.Wait calls in
// spawner code (concurrent containers excluded).
func waitGroupWaits(info *types.Info, body ast.Node, conc map[*ast.FuncLit]bool) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && conc[lit] {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" || f.Name() != "Wait" {
			return true
		}
		out = append(out, call.Pos())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// atomicIdents marks the root identifiers of sync/atomic call targets:
// atomic.AddInt64(&n, 1) marks the n ident.
func atomicIdents(info *types.Info, body ast.Node) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t := analysis.AtomicTarget(info, call); t != nil {
			if root := analysis.RootIdent(t); root != nil {
				out[root] = true
			}
		}
		return true
	})
	return out
}

// writeIdents marks identifiers through which a write happens: the
// root of an assignment target or ++/--, and non-atomic address-taking
// (an escaping alias may be written anywhere, so it counts as a write
// for discipline purposes).
func writeIdents(body ast.Node, atomics map[*ast.Ident]bool) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	mark := func(e ast.Expr) {
		if root := analysis.RootIdent(e); root != nil {
			out[root] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if root := analysis.RootIdent(n.X); root != nil && !atomics[root] {
					out[root] = true
				}
			}
		}
		return true
	})
	return out
}

// heldSets computes, per classified container, the mutexes lexically
// held at every identifier: spawner code is walked skipping concurrent
// closures, and each concurrent closure is walked on its own (its
// critical sections are the ones it opens itself).
func heldSets(info *types.Info, fd *ast.FuncDecl, conc map[*ast.FuncLit]bool) map[*ast.Ident][]string {
	out := map[*ast.Ident][]string{}
	record := func(n ast.Node, held map[string]bool) {
		if id, ok := n.(*ast.Ident); ok && len(held) > 0 {
			out[id] = analysis.HeldKeys(held)
		}
	}
	skipConc := func(lit *ast.FuncLit) bool { return conc[lit] }
	analysis.WalkLocks(info, fd.Body, analysis.ExprKey, skipConc, record)
	for lit := range conc {
		inner := lit
		skipNested := func(l *ast.FuncLit) bool { return l != inner && conc[l] }
		analysis.WalkLocks(info, lit.Body, analysis.ExprKey, skipNested, record)
	}
	return out
}

// innermostConc returns the innermost concurrent closure containing
// pos, or nil for spawner code.
func innermostConc(conc map[*ast.FuncLit]bool, pos token.Pos) *ast.FuncLit {
	var best *ast.FuncLit
	for lit := range conc {
		if lit.Pos() <= pos && pos <= lit.End() {
			if best == nil || lit.Pos() > best.Pos() {
				best = lit
			}
		}
	}
	return best
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
