package goshare_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/goshare"
)

func TestGoshare(t *testing.T) {
	analyzertest.Run(t, goshare.Analyzer, "workpool")
}
