// Package analyzertest runs a wlanvet analyzer over checked-in testdata
// packages and diffs its diagnostics against expectations written in
// the source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	t0 := time.Now() // want `wall clock`
//
// Each `// want` comment expects exactly one diagnostic on its line
// whose message matches the quoted or backquoted regular expression.
// Diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test. Testdata packages live under
// testdata/src/<name> next to the analyzer; their package path is just
// <name>, so a directory called "slotsim" falls under the sim-critical
// scope exactly like the real package, and sibling directories are
// importable by name (the stub "metrics" package, for example).
// Suppression runs through the same //wlanvet:allow machinery as the
// wlanvet driver, so the escape hatch is testable here too.
package analyzertest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// testImporter resolves testdata-sibling imports from source and
// everything else (std, module packages) from gc export data.
type testImporter struct {
	root    string // testdata/src
	fset    *token.FileSet
	dep     *analysis.DepImporter
	local   map[string]*analysis.Package
	loading map[string]bool
}

func (ti *testImporter) load(path string) (*analysis.Package, error) {
	if p, ok := ti.local[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ti.root, path)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("analyzertest: no testdata package %q under %s", path, ti.root)
	}
	if ti.loading[path] {
		return nil, fmt.Errorf("analyzertest: import cycle through %q", path)
	}
	ti.loading[path] = true
	defer delete(ti.loading, path)
	p, err := analysis.CheckDir(ti.fset, ti, path, dir)
	if err != nil {
		return nil, err
	}
	ti.local[path] = p
	return p, nil
}

// Import implements types.Importer.
func (ti *testImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ti.root, path)); err == nil && st.IsDir() {
		p, err := ti.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return ti.dep.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (ti *testImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return ti.Import(path)
}

// wantRe extracts the expectation from a `// want` comment.
var wantRe = regexp.MustCompile("// want (`([^`]*)`|\"([^\"]*)\")")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run applies the analyzer to each named testdata package and reports
// every mismatch between its diagnostics and the `// want` comments
// through t.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	// Import resolution for non-local paths needs a module context; the
	// analyzer package directory (the test's working directory) is
	// inside the module, so the go command run from here sees go.mod.
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	fset := token.NewFileSet()
	ti := &testImporter{
		root:    root,
		fset:    fset,
		dep:     analysis.NewDepImporter(cwd, fset),
		local:   map[string]*analysis.Package{},
		loading: map[string]bool{},
	}
	for _, name := range pkgs {
		pkg, err := ti.load(name)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		checkWants(t, pkg, findings)
	}
}

// checkWants diffs findings against the package's want comments.
func checkWants(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := map[string][]*want{} // "file:line" -> expectations
	key := func(file string, line int) string {
		return fmt.Sprintf("%s:%d", filepath.Base(file), line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						pos := pkg.Fset.Position(c.Pos())
						t.Errorf("%s: malformed want comment %q", pos, c.Text)
					}
					continue
				}
				expr := m[2]
				if expr == "" {
					expr = m[3]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Errorf("%s: bad want regexp %q: %v", pos, expr, err)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key(pos.Filename, pos.Line)
				wants[k] = append(wants[k], &want{re: re})
			}
		}
	}
	for _, f := range findings {
		k := key(f.Pos.Filename, f.Pos.Line)
		var hit *want
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Message)
			continue
		}
		hit.matched = true
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}
