package hotpath_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analyzertest.Run(t, hotpath.Analyzer, "hot")
}
