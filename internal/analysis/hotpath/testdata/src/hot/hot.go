// Package hot is hotpath-analyzer testdata. The analyzer keys on the
// //wlanvet:hotpath directive, not the package, so any directory works.
package hot

import "fmt"

type event struct{ id int }

type sched struct {
	free []*event
	hook func(any)
	sink []int
}

func (s *sched) take(fn func(any), arg any) {}

//wlanvet:hotpath
func (s *sched) closures(x int) {
	f := func() int { return x } // want `closure in hot path closures`
	_ = f
}

//wlanvet:hotpath
func (s *sched) formats(x int) {
	fmt.Println(x)      // want `fmt.Println call in hot path formats`
	_ = fmt.Sprint("x") // want `fmt.Sprint call in hot path formats`
}

//wlanvet:hotpath
func (s *sched) appends(e *event) {
	s.free = append(s.free, e) // want `append in hot path appends may grow the backing array`
}

//wlanvet:hotpath
func (s *sched) appendAllowed(e *event) {
	//wlanvet:allow amortised: pool grows to the high-water mark then reuses capacity
	s.free = append(s.free, e)
}

//wlanvet:hotpath
func (s *sched) boxing(e *event, n int, v struct{ a, b int }) {
	s.take(s.hook, e) // pointers box for free: not flagged
	s.take(s.hook, n) // want `argument boxes a int into any in hot path boxing`
	s.take(s.hook, v) // want `argument boxes a struct\{a int; b int\} into any in hot path boxing`
	var x any = any(e)
	_ = x
	_ = any(n) // want `conversion to any boxes a int in hot path boxing`
}

//wlanvet:hotpath
func (s *sched) variadic(args []any, n int) {
	variadicSink(args...) // forwarding a ...slice boxes nothing
	variadicSink(n)       // want `argument boxes a int into any in hot path variadic`
	variadicSink(&n)      // pointer element boxes for free
}

func variadicSink(args ...any) {}

//wlanvet:hotpath
func (s *sched) panics(x int64) {
	if x < 0 {
		// The panic path is cold by definition: its fmt call, boxing
		// and closure are exempt.
		panic(fmt.Sprintf("negative %d from %v", x, func() int { return int(x) }()))
	}
}

// coldFunc has no directive: the same constructs are unremarkable.
func (s *sched) coldFunc(n int) {
	f := func() int { return n }
	fmt.Println(f())
	s.sink = append(s.sink, n)
	s.take(s.hook, n)
}
