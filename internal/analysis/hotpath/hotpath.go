// Package hotpath turns the runtime allocation guardrails into
// source-level diagnostics: functions annotated //wlanvet:hotpath (the
// scheduler operations, the slotsim backoff tracker and observe loop,
// the eventsim per-frame handlers — the same paths the alloc_test
// guardrails drive) may not contain the four constructs that silently
// put allocations back on a zero-alloc path:
//
//   - function literals, which capture and escape;
//   - fmt calls, which box every operand;
//   - interface conversions of non-pointer-shaped values, which
//     allocate the boxed copy (pointer-shaped values — pointers,
//     funcs, channels, maps — box for free and are not flagged, which
//     is exactly why the scheduler's AtArg(arg any) contract demands
//     pointers);
//   - append, which may grow the backing array.
//
// A runtime guardrail failure says "this loop allocated"; a hotpath
// diagnostic names the line that will make it allocate. Amortised or
// pooled appends (heap growth, free lists, caller-owned scratch
// buffers) carry //wlanvet:allow annotations naming the amortisation
// argument. Constructs whose only reachable use is feeding panic are
// exempt: a panic path is by definition not the steady state the
// zero-alloc contract covers.
package hotpath

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the zero-allocation hot-path checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flag closures, fmt, boxing interface conversions and appends in //wlanvet:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.IsHotpath(fd) {
				continue
			}
			check(pass, fd.Name.Name, fd.Body, false)
		}
	}
	return nil
}

// check walks a hot function body. inPanic marks subtrees whose only
// use is building a panic argument.
func check(pass *analysis.Pass, fn string, n ast.Node, inPanic bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inPanic {
				pass.Reportf(n.Pos(),
					"closure in hot path %s: the captured variables escape and allocate; pass a pre-bound func value and an arg pointer instead", fn)
			}
			return false // the literal is the finding; don't re-flag its body
		case *ast.CallExpr:
			if isPanic(pass, n) {
				for _, arg := range n.Args {
					check(pass, fn, arg, true)
				}
				return false
			}
			checkCall(pass, fn, n, inPanic)
		}
		return true
	})
}

// isPanic reports whether call invokes the panic builtin.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func checkCall(pass *analysis.Pass, fn string, call *ast.CallExpr, inPanic bool) {
	if inPanic {
		return
	}
	// append: growth reallocates. Pooled/amortised growth is annotated.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				pass.Reportf(call.Pos(),
					"append in hot path %s may grow the backing array; preallocate, or annotate the amortisation argument with //wlanvet:allow <reason>", fn)
			}
			return
		}
	}
	// Explicit conversion to an interface type.
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) {
			if src := pass.TypesInfo.TypeOf(call.Args[0]); boxes(pass, call.Args[0], src) {
				pass.Reportf(call.Pos(),
					"conversion to %s boxes a %s in hot path %s; pass a pointer (pointer-shaped values box for free)",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)),
					types.TypeString(src, types.RelativeTo(pass.Pkg)), fn)
			}
		}
		return
	}
	// fmt: every operand is boxed and the formatter allocates.
	if f := calleeFunc(pass, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s call in hot path %s allocates; hot paths format nothing", f.Name(), fn)
		return
	}
	// Implicit boxing at interface-typed parameters.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a ...slice forwards without boxing elements
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt) {
			continue
		}
		if src := pass.TypesInfo.TypeOf(arg); boxes(pass, arg, src) {
			pass.Reportf(arg.Pos(),
				"argument boxes a %s into %s in hot path %s; pass a pointer (pointer-shaped values box for free)",
				types.TypeString(src, types.RelativeTo(pass.Pkg)),
				types.TypeString(pt, types.RelativeTo(pass.Pkg)), fn)
		}
	}
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return f
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether converting arg (of type src) to an interface
// allocates: true for concrete non-pointer-shaped values, false for
// interfaces, untyped nil and pointer-shaped types whose representation
// already fits the interface data word.
func boxes(pass *analysis.Pass, arg ast.Expr, src types.Type) bool {
	if src == nil || isInterface(src) {
		return false
	}
	if b, ok := src.Underlying().(*types.Basic); ok {
		if b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer {
			return false
		}
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return false
	}
	_ = arg
	return true
}
