package analysis

import (
	"go/types"
	"testing"
)

// TestSimExemptDisjointFromSimCritical pins the boundary bookkeeping:
// a package is inside the determinism contract or explicitly exempted
// with a reason, never both. The exemption winning inside
// SimCriticalPkg makes a double entry silent, so the sets themselves
// must stay disjoint.
func TestSimExemptDisjointFromSimCritical(t *testing.T) {
	for base := range SimExempt {
		if SimCritical[base] {
			t.Errorf("package base %q is in both SimCritical and SimExempt", base)
		}
		if SimExempt[base] == "" {
			t.Errorf("SimExempt[%q] has no reason on record", base)
		}
	}
}

// TestSimExemptWins pins that an exemption overrides a (mistaken)
// SimCritical entry rather than silently losing to it.
func TestSimExemptWins(t *testing.T) {
	SimCritical["svc"] = true
	defer delete(SimCritical, "svc")
	p := &Pass{Pkg: types.NewPackage("repro/internal/svc", "svc")}
	if SimCriticalPkg(p) {
		t.Error("SimCriticalPkg = true for an exempt package")
	}
}
