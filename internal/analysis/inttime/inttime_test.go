package inttime_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/inttime"
)

func TestIntTime(t *testing.T) {
	analyzertest.Run(t, inttime.Analyzer, "eventsim", "util")
}
