// Package inttime flags narrowing conversions of 64-bit tick, expiry
// and slot-count arithmetic inside the sim-critical packages.
//
// Simulated time (sim.Time), durations and absolute slot expiries are
// all int64. Converting such a value — or a delta derived from one —
// through int truncates on 32-bit platforms: the PR 7 minCounter bug
// pushed an overflow expiry delta (billions of slots out, from clamped
// geometric tails) through int, which wraps negative on 32-bit and
// stalls the idle jump. The dynamic tests never caught it because the
// paper-scale workloads never produced a delta that large.
//
// The analyzer therefore flags every conversion whose operand is a
// 64-bit integer type (int64, uint64, or a named type such as sim.Time
// or time.Duration) and whose target is a smaller or platform-sized
// integer type (int and uint are 32 bits on 32-bit platforms). The
// same construct guarded by an explicit clamp or bound carries a
// //wlanvet:allow annotation naming the guard. Comparisons cannot mix
// int and int64 without one of these conversions, so flagging the
// conversion covers the mixed-comparison form of the bug too.
package inttime

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the int64 tick-arithmetic checker.
var Analyzer = &analysis.Analyzer{
	Name: "inttime",
	Doc:  "flag narrowing conversions of int64 tick/expiry/slot values (the minCounter truncation class)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.SimCriticalPkg(pass) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			checkConversion(pass, call)
			return true
		})
	}
	return nil
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	tvFun, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok || !tvFun.IsType() {
		return
	}
	// Constant expressions are evaluated (and bounds-checked) at
	// compile time; only runtime narrowing can truncate silently.
	if tv, ok := pass.TypesInfo.Types[call]; ok && tv.Value != nil {
		return
	}
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil || !is64Int(src) {
		return
	}
	dst := tvFun.Type
	if !isNarrowerInt(dst) {
		return
	}
	pass.Reportf(call.Pos(),
		"narrowing conversion %s(...) of 64-bit value (%s) truncates on 32-bit platforms; keep tick/expiry arithmetic in int64 and clamp explicitly (the minCounter bug class), or annotate the guard with //wlanvet:allow <reason>",
		types.TypeString(dst, types.RelativeTo(pass.Pkg)),
		types.TypeString(src, types.RelativeTo(pass.Pkg)))
}

// is64Int reports whether t's underlying type is a 64-bit integer.
func is64Int(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Int64 || b.Kind() == types.Uint64
}

// isNarrowerInt reports whether t's underlying type is an integer type
// that cannot hold every int64/uint64 value on every platform.
func isNarrowerInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Uint, // 32 bits on 32-bit platforms
		types.Int32, types.Uint32,
		types.Int16, types.Uint16,
		types.Int8, types.Uint8:
		return true
	}
	return false
}
