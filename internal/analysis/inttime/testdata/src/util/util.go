// Package util is inttime-analyzer testdata OUTSIDE the sim-critical
// scope: narrowing conversions of non-tick values are ordinary code
// elsewhere in the module.
package util

func narrow(v int64) int { return int(v) }
