// Package eventsim is inttime-analyzer testdata. Its directory name
// puts it under the sim-critical scope exactly like the real package.
package eventsim

import "time"

// Time mirrors sim.Time: a named type whose underlying type is int64.
type Time int64

type tracker struct {
	base     int64
	overflow []int64
}

func (t *tracker) currentOverflowMin() int64 { return t.overflow[0] }

// minCounterPR7 reproduces the historical minCounter bug verbatim: the
// expiry delta — billions of slots out for clamped geometric tails —
// is compared in int, which wraps negative on 32-bit platforms and
// stalled the idle jump until PR 7 fixed it.
func (t *tracker) minCounterPR7() int {
	best := int(^uint(0) >> 1)
	if len(t.overflow) > 0 {
		if d := int(t.currentOverflowMin() - t.base); d < best { // want `narrowing conversion int\(\.\.\.\) of 64-bit value \(int64\)`
			best = d
		}
	}
	return best
}

// minCounterFixed is the PR 7 fix: compare in int64, clamp on
// conversion, annotate the guard.
func (t *tracker) minCounterFixed() int {
	const maxInt = int(^uint(0) >> 1)
	best := int64(maxInt)
	if len(t.overflow) > 0 {
		if d := t.currentOverflowMin() - t.base; d < best {
			best = d
		}
	}
	if best > int64(maxInt) {
		return maxInt
	}
	//wlanvet:allow guarded: best ≤ maxInt after the clamp above
	return int(best)
}

func narrowings(v int64, u uint64, tm Time, d time.Duration) {
	_ = int(v)                    // want `narrowing conversion int\(\.\.\.\) of 64-bit value \(int64\)`
	_ = int32(v)                  // want `narrowing conversion int32\(\.\.\.\) of 64-bit value \(int64\)`
	_ = uint16(v)                 // want `narrowing conversion uint16\(\.\.\.\) of 64-bit value \(int64\)`
	_ = int(u)                    // want `narrowing conversion int\(\.\.\.\) of 64-bit value \(uint64\)`
	_ = int(tm)                   // want `narrowing conversion int\(\.\.\.\) of 64-bit value \(Time\)`
	_ = int(d / time.Millisecond) // want `narrowing conversion int\(\.\.\.\) of 64-bit value \(time.Duration\)`
}

func widenings(n int, w int32, v int64) {
	_ = int64(n)   // widening is always safe
	_ = int64(w)   // widening is always safe
	_ = uint64(v)  // same width, not flagged: truncation is the target
	_ = float64(v) // float conversions are range changes, not this bug class
	_ = int(w)     // 32-bit source fits every platform int
}

func constants() {
	// Constant conversions are evaluated and bounds-checked at compile
	// time; they cannot truncate silently.
	_ = int(int64(1 << 20))
	const big int64 = 1 << 40
	_ = int32(big >> 20)
}
