// Package trace captures the simulator's frame stream to a line-oriented
// JSON log and analyses captures offline — the repository's equivalent of
// a pcap writer plus a protocol statistics tool.
//
// The writer implements eventsim.Tracer by decoding each wire frame
// (package frame) into a flat Record; the reader streams records back;
// Analyze aggregates per-station and per-type statistics.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/frame"
	"repro/internal/sim"
)

// Record is one captured frame.
type Record struct {
	// TimeNs is the simulated completion instant in nanoseconds.
	TimeNs int64 `json:"t"`
	// Type is the frame type name ("Data", "ACK", "Beacon", "RTS",
	// "CTS").
	Type string `json:"type"`
	// Source is the transmitting station index, -1 for the AP.
	Source int `json:"src"`
	// Sequence is the frame sequence number where applicable.
	Sequence uint16 `json:"seq,omitempty"`
	// Retry is the data frame's retry counter.
	Retry uint8 `json:"retry,omitempty"`
	// Bits is the payload size for data frames.
	Bits int `json:"bits,omitempty"`
	// Collided marks frames destroyed by overlap at the AP.
	Collided bool `json:"collided,omitempty"`
}

// Writer captures frames as JSON lines. It implements eventsim.Tracer.
// Close flushes buffered output; the caller owns the underlying writer.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Frame implements the simulator's Tracer hook.
func (w *Writer) Frame(at sim.Time, wire []byte, collided bool) {
	if w.err != nil {
		return
	}
	l, err := frame.Decode(wire)
	if err != nil {
		w.err = fmt.Errorf("trace: undecodable frame at %v: %w", at, err)
		return
	}
	rec := Record{TimeNs: int64(at), Type: l.FrameType().String(), Collided: collided, Source: -1}
	switch f := l.(type) {
	case *frame.Data:
		rec.Source = int(uint16(f.Source))
		rec.Sequence = f.Sequence
		rec.Retry = f.Retry
		rec.Bits = f.Bits
	case *frame.ACK:
		rec.Sequence = f.Sequence
	case *frame.Beacon:
		rec.Sequence = f.Sequence
	case *frame.RTS:
		rec.Source = int(uint16(f.Source))
	case *frame.CTS:
	}
	if err := w.enc.Encode(&rec); err != nil {
		w.err = err
	}
	w.n++
}

// Count returns the number of frames captured.
func (w *Writer) Count() int { return w.n }

// Close flushes the buffer and reports any deferred error.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.err
}

// Read streams records from a JSONL capture, invoking fn per record. It
// stops at the first malformed line or when fn returns an error.
func Read(r io.Reader, fn func(Record) error) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// StationSummary aggregates one station's capture statistics.
type StationSummary struct {
	Station    int
	Data       int
	Collided   int
	Retries    int
	BitsOK     int64
	MaxRetry   uint8
	FirstSeenS float64
	LastSeenS  float64
}

// Summary is the aggregate view of a capture.
type Summary struct {
	Frames    int
	ByType    map[string]int
	Stations  []StationSummary
	SpanS     float64
	Collided  int
	GoodputBp float64 // delivered payload bits per second over the span
}

// Analyze reads a capture and aggregates statistics.
func Analyze(r io.Reader) (*Summary, error) {
	s := &Summary{ByType: map[string]int{}}
	byStation := map[int]*StationSummary{}
	var minT, maxT int64
	first := true
	err := Read(r, func(rec Record) error {
		s.Frames++
		s.ByType[rec.Type]++
		if rec.Collided {
			s.Collided++
		}
		if first || rec.TimeNs < minT {
			minT = rec.TimeNs
		}
		if first || rec.TimeNs > maxT {
			maxT = rec.TimeNs
		}
		first = false
		if rec.Type != "Data" {
			return nil
		}
		st, ok := byStation[rec.Source]
		if !ok {
			st = &StationSummary{Station: rec.Source, FirstSeenS: float64(rec.TimeNs) / 1e9}
			byStation[rec.Source] = st
		}
		st.Data++
		st.LastSeenS = float64(rec.TimeNs) / 1e9
		if rec.Collided {
			st.Collided++
		} else {
			st.BitsOK += int64(rec.Bits)
		}
		if rec.Retry > 0 {
			st.Retries++
		}
		if rec.Retry > st.MaxRetry {
			st.MaxRetry = rec.Retry
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	//wlanvet:allow map order re-established: Stations is sorted by station id immediately below, so iteration order never reaches the summary
	for _, st := range byStation {
		s.Stations = append(s.Stations, *st)
	}
	sort.Slice(s.Stations, func(i, j int) bool { return s.Stations[i].Station < s.Stations[j].Station })
	if !first {
		s.SpanS = float64(maxT-minT) / 1e9
	}
	if s.SpanS > 0 {
		var bits int64
		for _, st := range s.Stations {
			bits += st.BitsOK
		}
		s.GoodputBp = float64(bits) / s.SpanS
	}
	return s, nil
}

// ShortTermFairness computes Jain's index over sliding windows of
// `window` successful data frames from a capture — the short-term
// fairness view (a scheme can be long-term fair yet starve stations for
// bursts; p-persistent CSMA's per-slot independence gives it good
// short-term fairness, one of the paper's inherited IdleSense arguments).
// It returns the per-window indices and their mean.
func ShortTermFairness(r io.Reader, window int) (indices []float64, mean float64, err error) {
	if window <= 0 {
		return nil, 0, fmt.Errorf("trace: window %d must be positive", window)
	}
	// Collect the sequence of successful data-frame sources.
	var sources []int
	maxSta := -1
	err = Read(r, func(rec Record) error {
		if rec.Type == "Data" && !rec.Collided {
			sources = append(sources, rec.Source)
			if rec.Source > maxSta {
				maxSta = rec.Source
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if len(sources) <= window || maxSta < 0 {
		return nil, 0, nil
	}
	counts := make([]float64, maxSta+1)
	// Prime the first window.
	for _, src := range sources[:window] {
		counts[src]++
	}
	indices = append(indices, jain(counts))
	for k := window; k < len(sources); k++ {
		counts[sources[k]]++
		counts[sources[k-window]]--
		indices = append(indices, jain(counts))
	}
	sum := 0.0
	for _, v := range indices {
		sum += v
	}
	return indices, sum / float64(len(indices)), nil
}

// jain is Jain's fairness index for non-negative allocations.
func jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// String renders a compact textual report.
func (s *Summary) String() string {
	out := fmt.Sprintf("frames %d over %.2fs  goodput %.3f Mbps  collided %d\n",
		s.Frames, s.SpanS, s.GoodputBp/1e6, s.Collided)
	types := make([]string, 0, len(s.ByType))
	//wlanvet:allow map order re-established: the slice is sort.Strings-ed immediately below before rendering
	for k := range s.ByType {
		types = append(types, k)
	}
	sort.Strings(types)
	for _, k := range types {
		out += fmt.Sprintf("  %-7s %d\n", k, s.ByType[k])
	}
	for _, st := range s.Stations {
		out += fmt.Sprintf("  sta%-3d data %-6d collided %-6d retried %-6d bitsOK %d\n",
			st.Station, st.Data, st.Collided, st.Retries, st.BitsOK)
	}
	return out
}
