package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestWriterReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Frame(sim.Time(1000), frame.Marshal(&frame.Data{
		Source: 3, Destination: frame.AddressAP, Sequence: 9, Retry: 1, Bits: 8000,
	}), true)
	w.Frame(sim.Time(2000), frame.Marshal(&frame.ACK{Receiver: 3, Sequence: 9}), false)
	w.Frame(sim.Time(3000), frame.Marshal(&frame.RTS{Source: 4, Duration: 300}), false)
	w.Frame(sim.Time(4000), frame.Marshal(&frame.CTS{Receiver: 4, Duration: 280}), false)
	w.Frame(sim.Time(5000), frame.Marshal(&frame.Beacon{Sequence: 1}), false)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d", w.Count())
	}
	var recs []Record
	if err := Read(&buf, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("read %d records", len(recs))
	}
	if recs[0].Type != "Data" || recs[0].Source != 3 || !recs[0].Collided || recs[0].Bits != 8000 {
		t.Errorf("data record wrong: %+v", recs[0])
	}
	if recs[1].Type != "ACK" || recs[1].Source != -1 {
		t.Errorf("ack record wrong: %+v", recs[1])
	}
	if recs[2].Type != "RTS" || recs[2].Source != 4 {
		t.Errorf("rts record wrong: %+v", recs[2])
	}
	if recs[3].Type != "CTS" {
		t.Errorf("cts record wrong: %+v", recs[3])
	}
	if recs[4].Type != "Beacon" {
		t.Errorf("beacon record wrong: %+v", recs[4])
	}
}

func TestWriterRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Frame(0, []byte{1, 2, 3}, false)
	if err := w.Close(); err == nil {
		t.Error("undecodable frame not reported")
	}
}

func TestReadMalformed(t *testing.T) {
	if err := Read(strings.NewReader("{not json}\n"), func(Record) error { return nil }); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestAnalyzeSyntheticCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Station 0: two frames, one collided; station 1: one clean frame.
	w.Frame(sim.Time(0), frame.Marshal(&frame.Data{Source: 0, Bits: 8000}), true)
	w.Frame(sim.Time(1e9), frame.Marshal(&frame.Data{Source: 0, Bits: 8000, Retry: 1}), false)
	w.Frame(sim.Time(2e9), frame.Marshal(&frame.Data{Source: 1, Bits: 8000}), false)
	w.Frame(sim.Time(2e9+1000), frame.Marshal(&frame.ACK{Receiver: 1}), false)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Frames != 4 || sum.Collided != 1 {
		t.Errorf("frames %d collided %d", sum.Frames, sum.Collided)
	}
	if sum.ByType["Data"] != 3 || sum.ByType["ACK"] != 1 {
		t.Errorf("ByType = %v", sum.ByType)
	}
	if len(sum.Stations) != 2 {
		t.Fatalf("stations = %d", len(sum.Stations))
	}
	s0 := sum.Stations[0]
	if s0.Data != 2 || s0.Collided != 1 || s0.BitsOK != 8000 || s0.Retries != 1 || s0.MaxRetry != 1 {
		t.Errorf("station 0 summary wrong: %+v", s0)
	}
	// Span is 2 s + 1 µs; goodput = 16000 bits over that.
	if sum.SpanS < 2.0 || sum.SpanS > 2.1 {
		t.Errorf("span %v", sum.SpanS)
	}
	if sum.GoodputBp < 7000 || sum.GoodputBp > 9000 {
		t.Errorf("goodput %v", sum.GoodputBp)
	}
	if !strings.Contains(sum.String(), "sta0") {
		t.Error("String() missing station lines")
	}
}

func TestShortTermFairness(t *testing.T) {
	// Round-robin sources: perfectly fair at window = multiple of N.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for k := 0; k < 40; k++ {
		w.Frame(sim.Time(k), frame.Marshal(&frame.Data{Source: frame.Address(k % 4), Bits: 100}), false)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, mean, err := ShortTermFairness(bytes.NewReader(buf.Bytes()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0.999 {
		t.Errorf("round-robin mean Jain %v, want ≈ 1", mean)
	}
	// One station hogging: indices near 1/N.
	buf.Reset()
	w = NewWriter(&buf)
	for k := 0; k < 40; k++ {
		src := frame.Address(0)
		if k == 0 {
			src = 3 // make station count 4
		}
		w.Frame(sim.Time(k), frame.Marshal(&frame.Data{Source: src, Bits: 100}), false)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, mean, err = ShortTermFairness(bytes.NewReader(buf.Bytes()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if mean > 0.5 {
		t.Errorf("hog capture mean Jain %v, want near 1/4", mean)
	}
	// Edge cases.
	if _, _, err := ShortTermFairness(strings.NewReader(""), 0); err == nil {
		t.Error("zero window accepted")
	}
	idx, _, err := ShortTermFairness(strings.NewReader(""), 5)
	if err != nil || idx != nil {
		t.Errorf("empty capture: idx=%v err=%v", idx, err)
	}
}

func TestShortTermFairnessFromSimulation(t *testing.T) {
	// p-persistent stations should show decent short-term fairness at a
	// 3N-frame window (per-slot independence ≈ random scheduling).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	n := 6
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewPPersistent(1, 0.02)
	}
	s, err := eventsim.New(eventsim.Config{
		Topology: topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies: ps,
		Seed:     21,
		Trace:    w,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10 * sim.Second)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, mean, err := ShortTermFairness(&buf, 3*n)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0.75 {
		t.Errorf("p-persistent short-term fairness %v, want ≥ 0.75 at 3N window", mean)
	}
}

func TestEndToEndCaptureFromSimulator(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	n := 5
	ps := make([]mac.Policy, n)
	for i := range ps {
		ps[i] = mac.NewPPersistent(1, 0.03)
	}
	s, err := eventsim.New(eventsim.Config{
		Topology: topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
		Policies: ps,
		Seed:     11,
		Trace:    w,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(3 * sim.Second)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(sum.ByType["Data"]) != res.Successes+res.Collisions {
		t.Errorf("capture data frames %d vs sim %d", sum.ByType["Data"], res.Successes+res.Collisions)
	}
	if int64(sum.Collided) != res.Collisions {
		t.Errorf("capture collided %d vs sim %d", sum.Collided, res.Collisions)
	}
	// Capture-derived goodput should be near the simulator's throughput
	// (span differs slightly: first frame vs t=0).
	if sum.GoodputBp < 0.8*res.Throughput || sum.GoodputBp > 1.2*res.Throughput {
		t.Errorf("capture goodput %.2f Mbps vs sim %.2f Mbps", sum.GoodputBp/1e6, res.ThroughputMbps())
	}
	if len(sum.Stations) != n {
		t.Errorf("stations in capture: %d", len(sum.Stations))
	}
}
